#pragma once
/// \file sim_adapter.hpp
/// \brief Bridges the workload simulator into the LDMS sampling path.
///
/// SimulatedNodeSource exposes one simulated node as a MetricSource whose
/// per-metric streams are seeded exactly like ClusterSimulator::run()'s
/// bulk path, so collecting an execution through samplers produces
/// *bit-identical* telemetry to bulk generation — which the integration
/// tests assert. This guarantees that results measured offline transfer
/// to the online monitoring path unchanged.

#include <memory>
#include <string>
#include <unordered_map>

#include "ldms/sampler.hpp"
#include "sim/app_model.hpp"
#include "sim/cluster_sim.hpp"
#include "sim/signal.hpp"
#include "telemetry/metric_registry.hpp"

namespace efd::ldms {

/// One simulated node, readable by samplers.
class SimulatedNodeSource final : public MetricSource {
 public:
  /// Stream seeds derive from (seed, plan.execution_id, node_id, metric).
  SimulatedNodeSource(const telemetry::MetricRegistry& registry,
                      const sim::ExecutionPlan& plan, std::uint32_t node_id,
                      std::uint64_t seed);

  /// Reads a metric at time \p t. Ticks must be read in non-decreasing
  /// time order per metric (the sampler loop guarantees this); each stream
  /// maintains its own stateful generator.
  double read(std::string_view metric_name, double t) override;

 private:
  struct Stream {
    std::unique_ptr<sim::SignalGenerator> generator;
    double last_time = -1.0;
    double last_value = 0.0;
  };
  Stream& stream_for(std::string_view metric_name);

  const telemetry::MetricRegistry& registry_;
  const sim::AppModel* app_;
  std::string input_;
  std::uint32_t node_id_;
  std::uint32_t node_count_;
  std::uint64_t execution_id_;
  std::uint64_t seed_;
  std::unordered_map<std::string, Stream> streams_;
};

/// Builds one source per node for an execution plan.
std::vector<std::unique_ptr<MetricSource>> make_node_sources(
    const telemetry::MetricRegistry& registry, const sim::ExecutionPlan& plan,
    std::uint64_t seed);

}  // namespace efd::ldms
