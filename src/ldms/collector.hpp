#pragma once
/// \file collector.hpp
/// \brief Per-node collection of sampler output into time series, and the
/// job-level sampling loop that drives all nodes of an execution.

#include <memory>
#include <string>
#include <vector>

#include "ldms/sampler.hpp"
#include "telemetry/execution_record.hpp"

namespace efd::ldms {

/// Receives every sample as it is collected — the hook the online
/// recognition path uses to observe the monitoring stream in real time
/// (RecognitionService binds one sink per job; see ldms/streaming.hpp).
/// Implementations must tolerate being called from whichever thread
/// drives the sampling loop.
class SampleSink {
 public:
  virtual ~SampleSink() = default;

  /// One sample: node \p node_id read \p metric_name = \p value at
  /// integer second \p t since job start.
  virtual void publish(std::uint32_t node_id, std::string_view metric_name,
                       int t, double value) = 0;
};

/// Aggregates one node's sampler readings into dense 1 Hz series.
class NodeCollector {
 public:
  /// \param node_id this node's rank within the job.
  /// \param samplers plugins to run each tick (borrowed; must outlive).
  NodeCollector(std::uint32_t node_id,
                const std::vector<std::unique_ptr<Sampler>>& samplers);

  std::uint32_t node_id() const noexcept { return node_id_; }

  /// All metric names across all samplers, in collection order.
  const std::vector<std::string>& metric_names() const noexcept {
    return metric_names_;
  }

  /// Reads every sampler once at time \p t and appends to the series.
  /// When \p sink is non-null every sample is also published to it.
  void tick(MetricSource& source, double t, SampleSink* sink = nullptr);

  /// Number of completed ticks.
  std::size_t tick_count() const noexcept { return tick_count_; }

  /// Collected series, aligned with metric_names().
  const std::vector<telemetry::TimeSeries>& series() const noexcept {
    return series_;
  }

  /// Moves the collected series out (collector resets to empty).
  std::vector<telemetry::TimeSeries> take_series();

 private:
  std::uint32_t node_id_;
  const std::vector<std::unique_ptr<Sampler>>& samplers_;
  std::vector<std::string> metric_names_;
  std::vector<telemetry::TimeSeries> series_;
  std::size_t tick_count_ = 0;
};

/// Drives the collectors of every node of one job for a duration, then
/// assembles the ExecutionRecord — the monitoring path an operational
/// deployment would take (vs. the bulk generator used for offline
/// experiments).
class SamplingLoop {
 public:
  /// \param samplers shared plugin set (borrowed).
  explicit SamplingLoop(const std::vector<std::unique_ptr<Sampler>>& samplers);

  /// Runs \p duration_seconds of 1 Hz ticks over all nodes. \p sources
  /// supplies one MetricSource per node. When \p sink is non-null every
  /// collected sample is streamed to it as it is taken — the path that
  /// feeds RecognitionService while the job runs.
  telemetry::ExecutionRecord run(
      std::uint64_t execution_id, const telemetry::ExecutionLabel& label,
      std::vector<std::unique_ptr<MetricSource>>& sources,
      double duration_seconds, SampleSink* sink = nullptr);

  /// Metric order produced by the plugin set.
  std::vector<std::string> metric_names() const;

 private:
  const std::vector<std::unique_ptr<Sampler>>& samplers_;
};

}  // namespace efd::ldms
