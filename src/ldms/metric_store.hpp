#pragma once
/// \file metric_store.hpp
/// \brief Aggregation point for completed executions — the piece of the
/// monitoring stack that the paper's dictionary learns from. Thread-safe:
/// collectors on many "nodes" may commit concurrently.

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "telemetry/dataset.hpp"

namespace efd::ldms {

/// Accumulates finished ExecutionRecords into a Dataset and persists them.
class MetricStore {
 public:
  /// \param metric_names the store's fixed metric axis.
  explicit MetricStore(std::vector<std::string> metric_names);

  /// Seeds the store with an existing dataset (used by load()).
  explicit MetricStore(telemetry::Dataset dataset);

  MetricStore(const MetricStore&) = delete;
  MetricStore& operator=(const MetricStore&) = delete;
  MetricStore(MetricStore&& other) noexcept;

  /// Commits one finished execution. Thread-safe. Throws
  /// std::invalid_argument if the record's metric count mismatches.
  void commit(telemetry::ExecutionRecord record);

  /// Number of committed executions.
  std::size_t size() const;

  /// Copy of the accumulated dataset (snapshot isolation).
  telemetry::Dataset snapshot() const;

  /// Writes the accumulated dataset to CSV.
  void save(const std::string& path) const;

  /// Loads a store from a CSV previously written by save().
  static MetricStore load(const std::string& path);

 private:
  mutable std::mutex mutex_;
  telemetry::Dataset dataset_;
};

}  // namespace efd::ldms
