#include "ldms/sim_adapter.hpp"

#include <stdexcept>

#include "util/rng.hpp"

namespace efd::ldms {

SimulatedNodeSource::SimulatedNodeSource(const telemetry::MetricRegistry& registry,
                                         const sim::ExecutionPlan& plan,
                                         std::uint32_t node_id, std::uint64_t seed)
    : registry_(registry),
      app_(plan.app),
      input_(plan.input_size),
      node_id_(node_id),
      node_count_(plan.node_count),
      execution_id_(plan.execution_id),
      seed_(seed) {
  if (app_ == nullptr) throw std::invalid_argument("plan.app is null");
}

SimulatedNodeSource::Stream& SimulatedNodeSource::stream_for(
    std::string_view metric_name) {
  const auto it = streams_.find(std::string(metric_name));
  if (it != streams_.end()) return it->second;

  const telemetry::MetricId id = registry_.require(metric_name);
  const telemetry::MetricInfo& info = registry_.info(id);
  // Seed derivation must match ClusterSimulator's bulk path exactly; see
  // stream_rng() in cluster_sim.cpp.
  util::Rng rng(util::mix_seed({seed_, execution_id_,
                                static_cast<std::uint64_t>(node_id_) + 1,
                                static_cast<std::uint64_t>(id) + 0x1000}));
  Stream stream;
  stream.generator = std::make_unique<sim::SignalGenerator>(
      app_->signal(info, input_, node_id_, node_count_), rng);
  return streams_.emplace(std::string(metric_name), std::move(stream))
      .first->second;
}

double SimulatedNodeSource::read(std::string_view metric_name, double t) {
  Stream& stream = stream_for(metric_name);
  if (t <= stream.last_time) return stream.last_value;  // re-read within a tick
  // Advance one tick at a time so the stateful noise path matches bulk
  // generation sample-for-sample.
  double value = stream.last_value;
  for (double tick = stream.last_time + 1.0; tick <= t; tick += 1.0) {
    value = stream.generator->sample(tick);
  }
  stream.last_time = t;
  stream.last_value = value;
  return value;
}

std::vector<std::unique_ptr<MetricSource>> make_node_sources(
    const telemetry::MetricRegistry& registry, const sim::ExecutionPlan& plan,
    std::uint64_t seed) {
  std::vector<std::unique_ptr<MetricSource>> sources;
  sources.reserve(plan.node_count);
  for (std::uint32_t node = 0; node < plan.node_count; ++node) {
    sources.push_back(
        std::make_unique<SimulatedNodeSource>(registry, plan, node, seed));
  }
  return sources;
}

}  // namespace efd::ldms
