#include "ldms/metric_store.hpp"

#include "telemetry/dataset_io.hpp"

namespace efd::ldms {

MetricStore::MetricStore(std::vector<std::string> metric_names)
    : dataset_(std::move(metric_names)) {}

MetricStore::MetricStore(telemetry::Dataset dataset)
    : dataset_(std::move(dataset)) {}

MetricStore::MetricStore(MetricStore&& other) noexcept {
  std::lock_guard<std::mutex> lock(other.mutex_);
  dataset_ = std::move(other.dataset_);
}

void MetricStore::commit(telemetry::ExecutionRecord record) {
  std::lock_guard<std::mutex> lock(mutex_);
  dataset_.add(std::move(record));
}

std::size_t MetricStore::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dataset_.size();
}

telemetry::Dataset MetricStore::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dataset_;
}

void MetricStore::save(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mutex_);
  telemetry::write_csv_file(dataset_, path);
}

MetricStore MetricStore::load(const std::string& path) {
  return MetricStore(telemetry::read_csv_file(path));
}

}  // namespace efd::ldms
