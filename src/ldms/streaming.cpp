#include "ldms/streaming.hpp"

#include <stdexcept>

#include "ldms/sim_adapter.hpp"
#include "util/thread_pool.hpp"

namespace efd::ldms {

void ServiceFeed::job_opened(std::uint64_t job_id, std::uint32_t node_count) {
  if (!service_->open_job(job_id, node_count)) {
    throw std::invalid_argument("duplicate job id in plans");
  }
}

void ServiceFeed::job_closed(std::uint64_t job_id) {
  // Short executions never fill the last window; flush them so every
  // job resolves (to "unknown", the paper's safeguard).
  service_->close_job(job_id);
}

void stream_jobs(const telemetry::MetricRegistry& registry,
                 const std::vector<sim::ExecutionPlan>& plans,
                 const std::vector<std::unique_ptr<Sampler>>& samplers,
                 std::uint64_t seed, double duration_seconds,
                 const JobSinkFactory& factory, util::ThreadPool* pool) {
  util::ThreadPool& workers = pool != nullptr ? *pool : util::global_pool();

  util::parallel_for(workers, 0, plans.size(), [&](std::size_t i) {
    const sim::ExecutionPlan& plan = plans[i];
    if (plan.app == nullptr) throw std::invalid_argument("plan.app is null");
    const std::uint64_t job_id = plan.execution_id;

    std::unique_ptr<JobSink> sink = factory(plan);
    if (sink == nullptr) throw std::invalid_argument("factory returned null");
    sink->job_opened(job_id, plan.node_count);

    double duration = duration_seconds;
    if (duration <= 0.0) duration = plan.app->typical_duration(plan.input_size);

    auto sources = make_node_sources(registry, plan, seed);
    SamplingLoop loop(samplers);
    loop.run(job_id, {plan.app->name(), plan.input_size}, sources, duration,
             sink.get());
    sink->job_closed(job_id);
  });
}

StreamingRunReport run_concurrent_jobs(
    core::RecognitionService& service,
    const telemetry::MetricRegistry& registry,
    const std::vector<sim::ExecutionPlan>& plans,
    const std::vector<std::unique_ptr<Sampler>>& samplers, std::uint64_t seed,
    double duration_seconds, util::ThreadPool* pool) {
  stream_jobs(
      registry, plans, samplers, seed, duration_seconds,
      [&service](const sim::ExecutionPlan& plan) {
        return std::make_unique<ServiceFeed>(service, plan.execution_id);
      },
      pool);

  StreamingRunReport report;
  report.jobs_run = plans.size();
  report.job_verdicts = service.drain_verdicts();
  report.verdicts = report.job_verdicts.size();
  for (const core::JobVerdict& verdict : report.job_verdicts) {
    if (verdict.result.recognized) ++report.recognized;
  }
  return report;
}

}  // namespace efd::ldms
