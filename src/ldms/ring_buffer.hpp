#pragma once
/// \file ring_buffer.hpp
/// \brief Fixed-capacity ring buffer for streaming samples.
///
/// The online recognizer only ever needs the most recent two minutes of a
/// stream, so per-stream storage is bounded regardless of job length —
/// one of the paper's key operational advantages over whole-execution
/// monitoring approaches. The ingest layer reuses the same buffer as the
/// bounded storage of its in-process transport (ingest/ring_transport.hpp),
/// consuming via pop_front instead of letting push evict.
///
/// Not internally synchronized; wrap in external locking for concurrent
/// use.

#include <cstddef>
#include <stdexcept>
#include <utility>
#include <vector>

namespace efd::ldms {

template <typename T>
class RingBuffer {
 public:
  /// \param capacity maximum retained elements; must be > 0.
  explicit RingBuffer(std::size_t capacity)
      : storage_(capacity), capacity_(capacity) {
    if (capacity == 0) throw std::invalid_argument("RingBuffer capacity must be > 0");
  }

  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  bool full() const noexcept { return size_ == capacity_; }

  /// Total elements ever pushed (indexes the stream's absolute position).
  std::size_t pushed() const noexcept { return pushed_; }

  /// Appends, evicting the oldest element when full. By-value so one
  /// body serves both copy and move callers.
  void push(T value) {
    storage_[head_] = std::move(value);
    head_ = (head_ + 1) % capacity_;
    if (size_ < capacity_) ++size_;
    ++pushed_;
  }

  /// Moves the oldest retained element into \p out. Returns false (and
  /// leaves \p out untouched) when empty — the queue-style consumption
  /// the ingest transport uses instead of push-time eviction.
  bool pop_front(T& out) {
    if (size_ == 0) return false;
    const std::size_t oldest = (head_ + capacity_ - size_) % capacity_;
    out = std::move(storage_[oldest]);
    --size_;
    return true;
  }

  /// Element \p i positions from the oldest retained element (0 = oldest).
  /// Precondition: i < size().
  const T& operator[](std::size_t i) const {
    const std::size_t oldest = (head_ + capacity_ - size_) % capacity_;
    return storage_[(oldest + i) % capacity_];
  }

  /// Copies the retained window, oldest first.
  std::vector<T> snapshot() const {
    std::vector<T> out;
    out.reserve(size_);
    for (std::size_t i = 0; i < size_; ++i) out.push_back((*this)[i]);
    return out;
  }

  void clear() noexcept {
    size_ = 0;
    head_ = 0;
    pushed_ = 0;
  }

 private:
  std::vector<T> storage_;
  std::size_t capacity_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  std::size_t pushed_ = 0;
};

}  // namespace efd::ldms
