#pragma once
/// \file sampler.hpp
/// \brief LDMS-style sampler plugins.
///
/// The paper's dataset was collected with LDMS (Agelastos et al., SC'14):
/// on every node, sampler plugins read groups of kernel counters once per
/// second and publish them as "metric sets". We reproduce that
/// architecture: a MetricSource abstracts "the node" (here: the workload
/// simulator; on a real system: /proc and the NIC), and group samplers
/// (vmstat, meminfo, NIC, procstat) read their metric set from it.

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/metric_registry.hpp"

namespace efd::ldms {

/// What samplers read from: one node's instantaneous counter values.
class MetricSource {
 public:
  virtual ~MetricSource() = default;

  /// Value of a metric at time \p t (seconds since job start). Samplers
  /// call this once per metric per tick, in metric order.
  virtual double read(std::string_view metric_name, double t) = 0;
};

/// One sampler plugin: reads a fixed metric set each tick.
class Sampler {
 public:
  /// \param set_name LDMS metric-set name ("vmstat", "meminfo", ...).
  /// \param metric_names the set's metrics, in sampling order.
  Sampler(std::string set_name, std::vector<std::string> metric_names);
  virtual ~Sampler() = default;

  const std::string& set_name() const noexcept { return set_name_; }
  const std::vector<std::string>& metric_names() const noexcept {
    return metric_names_;
  }

  /// Reads the whole metric set at time \p t. Returns one value per
  /// metric, aligned with metric_names().
  std::vector<double> sample(MetricSource& source, double t) const;

 private:
  std::string set_name_;
  std::vector<std::string> metric_names_;
};

/// Builds the sampler for one metric group, with the metric set drawn
/// from the registry (modeled metrics only by default, to match what the
/// simulator generates).
std::unique_ptr<Sampler> make_group_sampler(
    const telemetry::MetricRegistry& registry, telemetry::MetricGroup group,
    bool modeled_only = true);

/// Builds the standard plugin set (vmstat + meminfo + NIC + procstat),
/// mirroring the deployment that produced the dataset.
std::vector<std::unique_ptr<Sampler>> make_standard_samplers(
    const telemetry::MetricRegistry& registry, bool modeled_only = true);

}  // namespace efd::ldms
