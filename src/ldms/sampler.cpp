#include "ldms/sampler.hpp"

namespace efd::ldms {

Sampler::Sampler(std::string set_name, std::vector<std::string> metric_names)
    : set_name_(std::move(set_name)), metric_names_(std::move(metric_names)) {}

std::vector<double> Sampler::sample(MetricSource& source, double t) const {
  std::vector<double> values;
  values.reserve(metric_names_.size());
  for (const auto& name : metric_names_) {
    values.push_back(source.read(name, t));
  }
  return values;
}

std::unique_ptr<Sampler> make_group_sampler(
    const telemetry::MetricRegistry& registry, telemetry::MetricGroup group,
    bool modeled_only) {
  std::vector<std::string> names;
  for (telemetry::MetricId id : registry.metrics_in_group(group)) {
    if (modeled_only && !registry.info(id).modeled) continue;
    names.push_back(registry.name(id));
  }
  return std::make_unique<Sampler>(std::string(telemetry::group_suffix(group)),
                                   std::move(names));
}

std::vector<std::unique_ptr<Sampler>> make_standard_samplers(
    const telemetry::MetricRegistry& registry, bool modeled_only) {
  std::vector<std::unique_ptr<Sampler>> samplers;
  samplers.push_back(
      make_group_sampler(registry, telemetry::MetricGroup::kVmstat, modeled_only));
  samplers.push_back(
      make_group_sampler(registry, telemetry::MetricGroup::kMeminfo, modeled_only));
  samplers.push_back(
      make_group_sampler(registry, telemetry::MetricGroup::kNic, modeled_only));
  samplers.push_back(
      make_group_sampler(registry, telemetry::MetricGroup::kCpu, modeled_only));
  return samplers;
}

}  // namespace efd::ldms
