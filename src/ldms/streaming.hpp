#pragma once
/// \file streaming.hpp
/// \brief End-to-end concurrent monitoring of a simulated cluster.
///
/// Glues the layers together: for every execution plan, simulated node
/// sources (sim_adapter) are driven by the LDMS sampling loop
/// (collector), every sample is published into the RecognitionService
/// as it is taken, and the service fires a verdict the moment the job's
/// last fingerprint window closes — many jobs in flight at once across
/// a thread pool, the deployment mode the paper motivates but never
/// builds.

#include <cstdint>
#include <memory>
#include <vector>

#include "core/online/recognition_service.hpp"
#include "ldms/collector.hpp"
#include "ldms/sampler.hpp"
#include "sim/cluster_sim.hpp"
#include "telemetry/metric_registry.hpp"

namespace efd::util {
class ThreadPool;
}

namespace efd::ldms {

/// SampleSink that forwards every collected sample into a service under
/// a fixed job id (one instance per concurrently monitored job).
class ServiceFeed final : public SampleSink {
 public:
  ServiceFeed(core::RecognitionService& service, std::uint64_t job_id)
      : service_(&service), job_id_(job_id) {}

  void publish(std::uint32_t node_id, std::string_view metric_name, int t,
               double value) override {
    service_->push(job_id_, node_id, metric_name, t, value);
  }

 private:
  core::RecognitionService* service_;
  std::uint64_t job_id_;
};

/// Outcome summary of a concurrent monitoring run.
struct StreamingRunReport {
  std::size_t jobs_run = 0;       ///< plans executed
  std::size_t verdicts = 0;       ///< verdicts produced (fired + flushed)
  std::size_t recognized = 0;     ///< verdicts with a matched application
  std::vector<core::JobVerdict> job_verdicts;  ///< ordered by completion
};

/// Monitors every plan as a concurrent job: opens a stream per plan
/// (job id = plan.execution_id), drives the full LDMS sampling loop with
/// simulated node sources, and publishes each sample into \p service.
/// Jobs fan out across \p pool (global pool when null); each job's own
/// sampling loop is sequential, exactly like a real per-job daemon.
/// Jobs still open at the end (too short to fill every window) are
/// force-closed so every plan yields a verdict.
///
/// \param duration_seconds 0 means each plan's app-typical duration.
/// Must be called from outside the pool's own workers.
StreamingRunReport run_concurrent_jobs(
    core::RecognitionService& service,
    const telemetry::MetricRegistry& registry,
    const std::vector<sim::ExecutionPlan>& plans,
    const std::vector<std::unique_ptr<Sampler>>& samplers, std::uint64_t seed,
    double duration_seconds = 0.0, util::ThreadPool* pool = nullptr);

}  // namespace efd::ldms
