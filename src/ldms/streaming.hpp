#pragma once
/// \file streaming.hpp
/// \brief End-to-end concurrent monitoring of a simulated cluster.
///
/// Glues the layers together: for every execution plan, simulated node
/// sources (sim_adapter) are driven by the LDMS sampling loop
/// (collector), and every sample is published as it is taken — either
/// straight into a RecognitionService (ServiceFeed, the in-process
/// deployment) or to any JobSink a factory provides, e.g. an
/// ingest::TransportFeed that frames the samples onto a TCP socket or
/// in-process ring toward a remote service. Many jobs are in flight at
/// once across a thread pool — the deployment mode the paper motivates
/// but never builds.

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/online/recognition_service.hpp"
#include "ldms/collector.hpp"
#include "ldms/sampler.hpp"
#include "sim/cluster_sim.hpp"
#include "telemetry/metric_registry.hpp"

namespace efd::util {
class ThreadPool;
}

namespace efd::ldms {

/// SampleSink with job lifecycle hooks: a sink learns when its job's
/// stream opens and closes, so transport-backed sinks can frame the
/// lifecycle onto the wire. Lifecycle calls happen on the job's own
/// sampling thread, before the first and after the last publish().
class JobSink : public SampleSink {
 public:
  virtual void job_opened(std::uint64_t job_id, std::uint32_t node_count) {
    (void)job_id;
    (void)node_count;
  }
  virtual void job_closed(std::uint64_t job_id) { (void)job_id; }
};

/// JobSink that forwards every collected sample into a service under a
/// fixed job id (one instance per concurrently monitored job).
class ServiceFeed final : public JobSink {
 public:
  ServiceFeed(core::RecognitionService& service, std::uint64_t job_id)
      : service_(&service), job_id_(job_id) {}

  void job_opened(std::uint64_t job_id, std::uint32_t node_count) override;

  void publish(std::uint32_t node_id, std::string_view metric_name, int t,
               double value) override {
    service_->push(job_id_, node_id, metric_name, t, value);
  }

  void job_closed(std::uint64_t job_id) override;

 private:
  core::RecognitionService* service_;
  std::uint64_t job_id_;
};

/// Builds the per-job sink a streamed plan publishes into. Called on the
/// job's sampling thread; the returned sink is used by that thread only.
using JobSinkFactory = std::function<std::unique_ptr<JobSink>(
    const sim::ExecutionPlan& plan)>;

/// Outcome summary of a concurrent monitoring run.
struct StreamingRunReport {
  std::size_t jobs_run = 0;       ///< plans executed
  std::size_t verdicts = 0;       ///< verdicts produced (fired + flushed)
  std::size_t recognized = 0;     ///< verdicts with a matched application
  std::vector<core::JobVerdict> job_verdicts;  ///< ordered by completion
};

/// Streams every plan as a concurrent job into sinks from \p factory:
/// job_opened -> full LDMS sampling loop publishing each sample ->
/// job_closed, fanned out across \p pool (global pool when null); each
/// job's own sampling loop is sequential, exactly like a real per-job
/// daemon. Verdict collection is the sink's business (in-process sinks
/// complete synchronously; transport sinks' verdicts return over the
/// transport).
///
/// \param duration_seconds 0 means each plan's app-typical duration.
/// Must be called from outside the pool's own workers.
void stream_jobs(const telemetry::MetricRegistry& registry,
                 const std::vector<sim::ExecutionPlan>& plans,
                 const std::vector<std::unique_ptr<Sampler>>& samplers,
                 std::uint64_t seed, double duration_seconds,
                 const JobSinkFactory& factory,
                 util::ThreadPool* pool = nullptr);

/// Monitors every plan as a concurrent job directly against \p service
/// (job id = plan.execution_id) and drains the verdicts — stream_jobs
/// with a ServiceFeed factory. Jobs still open at the end (too short to
/// fill every window) are force-closed so every plan yields a verdict.
StreamingRunReport run_concurrent_jobs(
    core::RecognitionService& service,
    const telemetry::MetricRegistry& registry,
    const std::vector<sim::ExecutionPlan>& plans,
    const std::vector<std::unique_ptr<Sampler>>& samplers, std::uint64_t seed,
    double duration_seconds = 0.0, util::ThreadPool* pool = nullptr);

}  // namespace efd::ldms
