#include "ldms/collector.hpp"

#include <cmath>
#include <stdexcept>

namespace efd::ldms {

NodeCollector::NodeCollector(std::uint32_t node_id,
                             const std::vector<std::unique_ptr<Sampler>>& samplers)
    : node_id_(node_id), samplers_(samplers) {
  for (const auto& sampler : samplers_) {
    for (const auto& name : sampler->metric_names()) {
      metric_names_.push_back(name);
    }
  }
  series_.assign(metric_names_.size(), telemetry::TimeSeries(1.0));
}

void NodeCollector::tick(MetricSource& source, double t, SampleSink* sink) {
  std::size_t slot = 0;
  for (const auto& sampler : samplers_) {
    const std::vector<double> values = sampler->sample(source, t);
    for (double value : values) {
      if (sink != nullptr) {
        sink->publish(node_id_, metric_names_[slot], static_cast<int>(t),
                      value);
      }
      series_.at(slot++).push_back(value);
    }
  }
  ++tick_count_;
}

std::vector<telemetry::TimeSeries> NodeCollector::take_series() {
  std::vector<telemetry::TimeSeries> out = std::move(series_);
  series_.assign(metric_names_.size(), telemetry::TimeSeries(1.0));
  tick_count_ = 0;
  return out;
}

SamplingLoop::SamplingLoop(const std::vector<std::unique_ptr<Sampler>>& samplers)
    : samplers_(samplers) {}

std::vector<std::string> SamplingLoop::metric_names() const {
  std::vector<std::string> names;
  for (const auto& sampler : samplers_) {
    for (const auto& name : sampler->metric_names()) names.push_back(name);
  }
  return names;
}

telemetry::ExecutionRecord SamplingLoop::run(
    std::uint64_t execution_id, const telemetry::ExecutionLabel& label,
    std::vector<std::unique_ptr<MetricSource>>& sources,
    double duration_seconds, SampleSink* sink) {
  if (sources.empty()) throw std::invalid_argument("SamplingLoop needs >= 1 node");

  std::vector<NodeCollector> collectors;
  collectors.reserve(sources.size());
  for (std::size_t node = 0; node < sources.size(); ++node) {
    collectors.emplace_back(static_cast<std::uint32_t>(node), samplers_);
  }

  const auto ticks = static_cast<std::size_t>(std::floor(duration_seconds));
  for (std::size_t t = 0; t < ticks; ++t) {
    for (std::size_t node = 0; node < sources.size(); ++node) {
      collectors[node].tick(*sources[node], static_cast<double>(t), sink);
    }
  }

  telemetry::ExecutionRecord record(execution_id, label, sources.size(),
                                    collectors.front().metric_names().size());
  for (std::size_t node = 0; node < sources.size(); ++node) {
    auto series = collectors[node].take_series();
    for (std::size_t m = 0; m < series.size(); ++m) {
      record.series(node, m) = std::move(series[m]);
    }
  }
  return record;
}

}  // namespace efd::ldms
