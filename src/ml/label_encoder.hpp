#pragma once
/// \file label_encoder.hpp
/// \brief Maps string class labels to dense integer ids and back
/// (scikit-learn's LabelEncoder).

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace efd::ml {

class LabelEncoder {
 public:
  /// Encodes a label, registering it on first sight.
  std::uint32_t fit_encode(const std::string& label);

  /// Encodes without registering; throws std::out_of_range for unknowns.
  std::uint32_t encode(const std::string& label) const;

  /// True if the label is registered.
  bool contains(const std::string& label) const;

  /// Decodes an id; throws std::out_of_range if out of bounds.
  const std::string& decode(std::uint32_t id) const;

  /// Number of classes.
  std::size_t size() const noexcept { return labels_.size(); }

  /// All labels, in id order.
  const std::vector<std::string>& labels() const noexcept { return labels_; }

  /// Encodes a whole vector (registering new labels).
  std::vector<std::uint32_t> fit_encode_all(const std::vector<std::string>& labels);

 private:
  std::vector<std::string> labels_;
  std::unordered_map<std::string, std::uint32_t> ids_;
};

}  // namespace efd::ml
