#pragma once
/// \file matrix.hpp
/// \brief Minimal dense row-major matrix for the ML substrate. Rows are
/// samples, columns are features; contiguous storage keeps tree training
/// and distance computation cache-friendly.

#include <cstddef>
#include <span>
#include <vector>

namespace efd::ml {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  bool empty() const noexcept { return rows_ == 0 || cols_ == 0; }

  double operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }
  double& operator()(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }

  std::span<const double> row(std::size_t r) const noexcept {
    return std::span<const double>(data_).subspan(r * cols_, cols_);
  }
  std::span<double> row(std::size_t r) noexcept {
    return std::span<double>(data_).subspan(r * cols_, cols_);
  }

  /// Appends a row; the first appended row fixes the column count.
  void append_row(std::span<const double> values);

  /// Rows selected by index (copy).
  Matrix gather_rows(const std::vector<std::size_t>& indices) const;

  const std::vector<double>& data() const noexcept { return data_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace efd::ml
