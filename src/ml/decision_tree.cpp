#include "ml/decision_tree.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace efd::ml {

namespace {

/// Gini impurity from class counts.
double gini(const std::vector<std::size_t>& counts, std::size_t total) {
  if (total == 0) return 0.0;
  double impurity = 1.0;
  const double n = static_cast<double>(total);
  for (std::size_t count : counts) {
    const double p = static_cast<double>(count) / n;
    impurity -= p * p;
  }
  return impurity;
}

}  // namespace

void DecisionTree::fit(const Matrix& X, const std::vector<std::uint32_t>& y,
                       std::size_t n_classes,
                       const std::vector<std::size_t>& sample_indices) {
  if (X.rows() != y.size()) throw std::invalid_argument("X/y size mismatch");
  if (n_classes == 0) throw std::invalid_argument("n_classes must be > 0");
  nodes_.clear();
  depth_ = 0;
  n_classes_ = n_classes;

  std::vector<std::size_t> indices;
  if (sample_indices.empty()) {
    indices.resize(X.rows());
    std::iota(indices.begin(), indices.end(), std::size_t{0});
  } else {
    indices = sample_indices;
  }
  if (indices.empty()) throw std::invalid_argument("no training samples");

  util::Rng rng(config_.seed);
  root_ = build(X, y, indices, 0, indices.size(), 0, rng);
}

std::int32_t DecisionTree::make_leaf(const std::vector<std::uint32_t>& y,
                                     const std::vector<std::size_t>& indices,
                                     std::size_t begin, std::size_t end) {
  Node leaf;
  std::vector<std::size_t> counts(n_classes_, 0);
  for (std::size_t i = begin; i < end; ++i) ++counts[y[indices[i]]];
  leaf.class_fraction.resize(n_classes_, 0.0);
  const double total = static_cast<double>(end - begin);
  for (std::size_t c = 0; c < n_classes_; ++c) {
    leaf.class_fraction[c] = static_cast<double>(counts[c]) / total;
  }
  nodes_.push_back(std::move(leaf));
  return static_cast<std::int32_t>(nodes_.size() - 1);
}

std::int32_t DecisionTree::build(const Matrix& X,
                                 const std::vector<std::uint32_t>& y,
                                 std::vector<std::size_t>& indices,
                                 std::size_t begin, std::size_t end,
                                 std::size_t level, util::Rng& rng) {
  depth_ = std::max(depth_, level);
  const std::size_t count = end - begin;

  // Stop: depth, size, or purity.
  bool pure = true;
  for (std::size_t i = begin + 1; i < end && pure; ++i) {
    pure = y[indices[i]] == y[indices[begin]];
  }
  if (pure || level >= config_.max_depth || count < config_.min_samples_split) {
    return make_leaf(y, indices, begin, end);
  }

  // Candidate features: all, or a random subset (forest mode).
  std::vector<std::uint32_t> features(X.cols());
  std::iota(features.begin(), features.end(), 0u);
  std::size_t feature_count = features.size();
  if (config_.max_features > 0 && config_.max_features < features.size()) {
    // Partial Fisher-Yates: first max_features entries become the subset.
    for (std::size_t i = 0; i < config_.max_features; ++i) {
      const std::size_t j = i + rng.uniform_index(features.size() - i);
      std::swap(features[i], features[j]);
    }
    feature_count = config_.max_features;
  }

  // Scan features for the best gini split.
  double best_score = std::numeric_limits<double>::infinity();
  std::uint32_t best_feature = 0;
  double best_threshold = 0.0;

  std::vector<std::pair<double, std::uint32_t>> column(count);
  std::vector<std::size_t> left_counts(n_classes_), right_counts(n_classes_);

  for (std::size_t f = 0; f < feature_count; ++f) {
    const std::uint32_t feature = features[f];
    for (std::size_t i = 0; i < count; ++i) {
      const std::size_t row = indices[begin + i];
      column[i] = {X(row, feature), y[row]};
    }
    std::sort(column.begin(), column.end());
    if (column.front().first == column.back().first) continue;  // constant

    std::fill(left_counts.begin(), left_counts.end(), 0);
    std::fill(right_counts.begin(), right_counts.end(), 0);
    for (std::size_t i = 0; i < count; ++i) ++right_counts[column[i].second];

    for (std::size_t i = 0; i + 1 < count; ++i) {
      ++left_counts[column[i].second];
      --right_counts[column[i].second];
      if (column[i].first == column[i + 1].first) continue;  // no boundary
      const std::size_t left_n = i + 1;
      const std::size_t right_n = count - left_n;
      if (left_n < config_.min_samples_leaf || right_n < config_.min_samples_leaf) {
        continue;
      }
      const double score =
          (static_cast<double>(left_n) * gini(left_counts, left_n) +
           static_cast<double>(right_n) * gini(right_counts, right_n)) /
          static_cast<double>(count);
      if (score < best_score) {
        best_score = score;
        best_feature = feature;
        best_threshold = 0.5 * (column[i].first + column[i + 1].first);
      }
    }
  }

  if (!std::isfinite(best_score)) {
    return make_leaf(y, indices, begin, end);  // no usable split
  }

  // Partition indices in place around the threshold.
  const auto middle = std::partition(
      indices.begin() + static_cast<std::ptrdiff_t>(begin),
      indices.begin() + static_cast<std::ptrdiff_t>(end),
      [&](std::size_t row) { return X(row, best_feature) <= best_threshold; });
  const auto split =
      static_cast<std::size_t>(middle - indices.begin());
  if (split == begin || split == end) {
    return make_leaf(y, indices, begin, end);  // degenerate partition
  }

  const std::int32_t left = build(X, y, indices, begin, split, level + 1, rng);
  const std::int32_t right = build(X, y, indices, split, end, level + 1, rng);

  Node node;
  node.left = left;
  node.right = right;
  node.feature = best_feature;
  node.threshold = best_threshold;
  nodes_.push_back(std::move(node));
  return static_cast<std::int32_t>(nodes_.size() - 1);
}

std::vector<double> DecisionTree::predict_proba(std::span<const double> x) const {
  if (!fitted()) throw std::logic_error("DecisionTree not fitted");
  std::int32_t index = root_;
  while (!nodes_[static_cast<std::size_t>(index)].is_leaf()) {
    const Node& node = nodes_[static_cast<std::size_t>(index)];
    index = x[node.feature] <= node.threshold ? node.left : node.right;
  }
  return nodes_[static_cast<std::size_t>(index)].class_fraction;
}

std::uint32_t DecisionTree::predict(std::span<const double> x) const {
  const std::vector<double> proba = predict_proba(x);
  return static_cast<std::uint32_t>(
      std::max_element(proba.begin(), proba.end()) - proba.begin());
}

}  // namespace efd::ml
