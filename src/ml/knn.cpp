#include "ml/knn.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace efd::ml {

void KNearestNeighbors::fit(const Matrix& X, const std::vector<std::uint32_t>& y,
                            std::size_t n_classes) {
  if (X.rows() != y.size()) throw std::invalid_argument("X/y size mismatch");
  if (X.rows() == 0) throw std::invalid_argument("empty training set");
  X_ = X;
  y_ = y;
  n_classes_ = n_classes;
}

namespace {
double squared_distance(std::span<const double> a, std::span<const double> b) {
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}
}  // namespace

std::vector<double> KNearestNeighbors::predict_proba(
    std::span<const double> x) const {
  if (!fitted()) throw std::logic_error("KNN not fitted");
  const std::size_t k = std::min(k_, X_.rows());

  // Partial selection of the k smallest distances.
  std::vector<std::pair<double, std::uint32_t>> distances(X_.rows());
  for (std::size_t r = 0; r < X_.rows(); ++r) {
    distances[r] = {squared_distance(x, X_.row(r)), y_[r]};
  }
  std::nth_element(distances.begin(),
                   distances.begin() + static_cast<std::ptrdiff_t>(k - 1),
                   distances.end());

  std::vector<double> votes(n_classes_, 0.0);
  for (std::size_t i = 0; i < k; ++i) votes[distances[i].second] += 1.0;
  for (double& v : votes) v /= static_cast<double>(k);
  return votes;
}

std::uint32_t KNearestNeighbors::predict(std::span<const double> x) const {
  const std::vector<double> votes = predict_proba(x);
  return static_cast<std::uint32_t>(
      std::max_element(votes.begin(), votes.end()) - votes.begin());
}

double KNearestNeighbors::nearest_distance(std::span<const double> x) const {
  if (!fitted()) throw std::logic_error("KNN not fitted");
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t r = 0; r < X_.rows(); ++r) {
    best = std::min(best, squared_distance(x, X_.row(r)));
  }
  return std::sqrt(best);
}

}  // namespace efd::ml
