#include "ml/matrix.hpp"

#include <stdexcept>

namespace efd::ml {

void Matrix::append_row(std::span<const double> values) {
  if (rows_ == 0 && cols_ == 0) {
    cols_ = values.size();
  } else if (values.size() != cols_) {
    throw std::invalid_argument("append_row width mismatch");
  }
  data_.insert(data_.end(), values.begin(), values.end());
  ++rows_;
}

Matrix Matrix::gather_rows(const std::vector<std::size_t>& indices) const {
  Matrix out(indices.size(), cols_);
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const auto src = row(indices[i]);
    auto dst = out.row(i);
    for (std::size_t c = 0; c < cols_; ++c) dst[c] = src[c];
  }
  return out;
}

}  // namespace efd::ml
