#pragma once
/// \file decision_tree.hpp
/// \brief CART decision tree (gini impurity, binary splits) — the base
/// learner of the random-forest baseline.

#include <cstdint>
#include <span>
#include <vector>

#include "ml/matrix.hpp"
#include "util/rng.hpp"

namespace efd::ml {

/// Tree growth limits.
struct TreeConfig {
  std::size_t max_depth = 64;
  std::size_t min_samples_split = 2;
  std::size_t min_samples_leaf = 1;
  /// Features examined per split: 0 = all (single tree), otherwise a
  /// random subset of this size (random-forest mode).
  std::size_t max_features = 0;
  std::uint64_t seed = 1;
};

class DecisionTree {
 public:
  explicit DecisionTree(TreeConfig config = {}) : config_(config) {}

  /// Fits on rows of X (labels y encoded to [0, n_classes)).
  /// \param sample_indices training rows (with repetition for bagging);
  /// empty means all rows.
  void fit(const Matrix& X, const std::vector<std::uint32_t>& y,
           std::size_t n_classes,
           const std::vector<std::size_t>& sample_indices = {});

  /// Predicted class id for one sample.
  std::uint32_t predict(std::span<const double> x) const;

  /// Class distribution at the reached leaf (sums to 1).
  std::vector<double> predict_proba(std::span<const double> x) const;

  std::size_t node_count() const noexcept { return nodes_.size(); }
  std::size_t depth() const noexcept { return depth_; }
  std::size_t n_classes() const noexcept { return n_classes_; }
  bool fitted() const noexcept { return !nodes_.empty(); }

 private:
  struct Node {
    // Internal nodes: feature/threshold + children. Leaves: class counts.
    std::int32_t left = -1;
    std::int32_t right = -1;
    std::uint32_t feature = 0;
    double threshold = 0.0;
    std::vector<double> class_fraction;  ///< leaves only
    bool is_leaf() const noexcept { return left < 0; }
  };

  std::int32_t build(const Matrix& X, const std::vector<std::uint32_t>& y,
                     std::vector<std::size_t>& indices, std::size_t begin,
                     std::size_t end, std::size_t level, util::Rng& rng);
  std::int32_t make_leaf(const std::vector<std::uint32_t>& y,
                         const std::vector<std::size_t>& indices,
                         std::size_t begin, std::size_t end);

  TreeConfig config_;
  std::vector<Node> nodes_;
  std::int32_t root_ = -1;
  std::size_t n_classes_ = 0;
  std::size_t depth_ = 0;
};

}  // namespace efd::ml
