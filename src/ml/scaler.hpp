#pragma once
/// \file scaler.hpp
/// \brief Standard (z-score) feature scaling, fitted on training data only
/// to avoid test leakage.

#include <vector>

#include "ml/matrix.hpp"

namespace efd::ml {

/// Per-column standardization: (x - mean) / std. Columns with ~zero
/// variance pass through centered only.
class StandardScaler {
 public:
  /// Learns column means and standard deviations.
  void fit(const Matrix& data);

  /// Applies the learned transform (copy).
  Matrix transform(const Matrix& data) const;

  /// fit + transform in one step.
  Matrix fit_transform(const Matrix& data);

  const std::vector<double>& means() const noexcept { return means_; }
  const std::vector<double>& stddevs() const noexcept { return stddevs_; }
  bool fitted() const noexcept { return !means_.empty(); }

 private:
  std::vector<double> means_;
  std::vector<double> stddevs_;
};

}  // namespace efd::ml
