#pragma once
/// \file random_forest.hpp
/// \brief Bagged random forest over CART trees, with the prediction-
/// confidence output Taxonomist uses to flag unknown applications.

#include <cstdint>
#include <span>
#include <vector>

#include "ml/decision_tree.hpp"
#include "ml/matrix.hpp"

namespace efd::ml {

struct ForestConfig {
  std::size_t n_trees = 100;
  std::size_t max_depth = 64;
  std::size_t min_samples_leaf = 1;
  /// Features per split; 0 means floor(sqrt(n_features)).
  std::size_t max_features = 0;
  std::uint64_t seed = 7;
  /// Train trees across the global thread pool.
  bool parallel = true;
};

class RandomForest {
 public:
  explicit RandomForest(ForestConfig config = {}) : config_(config) {}

  /// Fits n_trees bootstrap-bagged trees.
  void fit(const Matrix& X, const std::vector<std::uint32_t>& y,
           std::size_t n_classes);

  /// Majority-vote class.
  std::uint32_t predict(std::span<const double> x) const;

  /// Mean leaf distribution over trees (sums to 1).
  std::vector<double> predict_proba(std::span<const double> x) const;

  /// Confidence of the winning class = its mean probability; Taxonomist
  /// labels a sample "unknown" when confidence falls below a threshold.
  double confidence(std::span<const double> x) const;

  std::size_t tree_count() const noexcept { return trees_.size(); }
  std::size_t n_classes() const noexcept { return n_classes_; }
  bool fitted() const noexcept { return !trees_.empty(); }

 private:
  ForestConfig config_;
  std::vector<DecisionTree> trees_;
  std::size_t n_classes_ = 0;
};

}  // namespace efd::ml
