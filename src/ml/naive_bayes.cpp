#include "ml/naive_bayes.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "util/stats.hpp"

namespace efd::ml {

void GaussianNaiveBayes::fit(const Matrix& X, const std::vector<std::uint32_t>& y,
                             std::size_t n_classes) {
  if (X.rows() != y.size()) throw std::invalid_argument("X/y size mismatch");
  if (X.rows() == 0) throw std::invalid_argument("empty training set");
  if (n_classes == 0) throw std::invalid_argument("n_classes must be > 0");
  // Validate labels before any state mutation so a failed fit leaves the
  // model unfitted rather than half-initialized.
  for (std::uint32_t label : y) {
    if (label >= n_classes) throw std::invalid_argument("label out of range");
  }

  n_features_ = X.cols();
  n_classes_ = n_classes;
  means_.assign(n_classes_ * n_features_, 0.0);
  variances_.assign(n_classes_ * n_features_, 0.0);
  log_prior_.assign(n_classes_, 0.0);

  // Global variance for the smoothing floor.
  double max_global_variance = 0.0;
  for (std::size_t f = 0; f < n_features_; ++f) {
    util::RunningMoments global;
    for (std::size_t r = 0; r < X.rows(); ++r) global.add(X(r, f));
    max_global_variance = std::max(max_global_variance, global.variance());
  }
  const double floor = std::max(variance_floor_ * max_global_variance, 1e-18);

  std::vector<std::size_t> counts(n_classes_, 0);
  std::vector<util::RunningMoments> moments(n_classes_ * n_features_);
  for (std::size_t r = 0; r < X.rows(); ++r) {
    const std::uint32_t cls = y[r];
    ++counts[cls];
    for (std::size_t f = 0; f < n_features_; ++f) {
      moments[cls * n_features_ + f].add(X(r, f));
    }
  }

  for (std::size_t cls = 0; cls < n_classes_; ++cls) {
    // Laplace-smoothed prior keeps unseen classes finite.
    log_prior_[cls] = std::log(
        (static_cast<double>(counts[cls]) + 1.0) /
        (static_cast<double>(X.rows()) + static_cast<double>(n_classes_)));
    for (std::size_t f = 0; f < n_features_; ++f) {
      const auto& m = moments[cls * n_features_ + f];
      means_[cls * n_features_ + f] = m.mean();
      variances_[cls * n_features_ + f] = std::max(m.variance(), floor);
    }
  }
}

std::vector<double> GaussianNaiveBayes::predict_proba(
    std::span<const double> x) const {
  if (!fitted()) throw std::logic_error("GaussianNaiveBayes not fitted");

  std::vector<double> log_posterior(n_classes_);
  for (std::size_t cls = 0; cls < n_classes_; ++cls) {
    double lp = log_prior_[cls];
    const double* mean = means_.data() + cls * n_features_;
    const double* variance = variances_.data() + cls * n_features_;
    for (std::size_t f = 0; f < n_features_; ++f) {
      const double d = x[f] - mean[f];
      lp -= 0.5 * (std::log(2.0 * std::numbers::pi * variance[f]) +
                   d * d / variance[f]);
    }
    log_posterior[cls] = lp;
  }

  const double max_lp =
      *std::max_element(log_posterior.begin(), log_posterior.end());
  double sum = 0.0;
  for (double& lp : log_posterior) {
    lp = std::exp(lp - max_lp);
    sum += lp;
  }
  for (double& lp : log_posterior) lp /= sum;
  return log_posterior;
}

std::uint32_t GaussianNaiveBayes::predict(std::span<const double> x) const {
  const std::vector<double> proba = predict_proba(x);
  return static_cast<std::uint32_t>(
      std::max_element(proba.begin(), proba.end()) - proba.begin());
}

}  // namespace efd::ml
