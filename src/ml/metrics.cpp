#include "ml/metrics.hpp"

#include <set>
#include <sstream>
#include <stdexcept>

#include "util/stats.hpp"
#include "util/string_utils.hpp"

namespace efd::ml {

ClassificationReport::ClassificationReport(
    const std::vector<std::string>& truth,
    const std::vector<std::string>& predicted) {
  if (truth.size() != predicted.size()) {
    throw std::invalid_argument("truth/predicted size mismatch");
  }
  sample_count_ = truth.size();

  std::set<std::string> classes(truth.begin(), truth.end());
  classes.insert(predicted.begin(), predicted.end());

  std::map<std::string, std::size_t> true_positive, false_positive, false_negative;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    ++confusion_[truth[i]][predicted[i]];
    if (truth[i] == predicted[i]) {
      ++true_positive[truth[i]];
      ++correct;
    } else {
      ++false_positive[predicted[i]];
      ++false_negative[truth[i]];
    }
  }
  accuracy_ = sample_count_ > 0
                  ? static_cast<double>(correct) / static_cast<double>(sample_count_)
                  : 0.0;

  double f1_sum = 0.0, precision_sum = 0.0, recall_sum = 0.0;
  double weighted_sum = 0.0;
  std::size_t support_total = 0;
  for (const std::string& cls : classes) {
    const double tp = static_cast<double>(true_positive[cls]);
    const double fp = static_cast<double>(false_positive[cls]);
    const double fn = static_cast<double>(false_negative[cls]);
    ClassScores scores;
    scores.support = true_positive[cls] + false_negative[cls];
    scores.precision = tp + fp > 0.0 ? tp / (tp + fp) : 0.0;
    scores.recall = tp + fn > 0.0 ? tp / (tp + fn) : 0.0;
    scores.f1 = util::harmonic_mean(scores.precision, scores.recall);
    per_class_.emplace(cls, scores);

    f1_sum += scores.f1;
    precision_sum += scores.precision;
    recall_sum += scores.recall;
    weighted_sum += scores.f1 * static_cast<double>(scores.support);
    support_total += scores.support;
  }
  const double class_count = static_cast<double>(classes.size());
  if (class_count > 0.0) {
    macro_f1_ = f1_sum / class_count;
    macro_precision_ = precision_sum / class_count;
    macro_recall_ = recall_sum / class_count;
  }
  weighted_f1_ =
      support_total > 0 ? weighted_sum / static_cast<double>(support_total) : 0.0;
}

std::string ClassificationReport::to_string() const {
  std::ostringstream out;
  out << "class                         precision  recall  f1      support\n";
  for (const auto& [cls, scores] : per_class_) {
    out << cls;
    for (std::size_t i = cls.size(); i < 30; ++i) out << ' ';
    out << util::format_fixed(scores.precision, 3) << "      "
        << util::format_fixed(scores.recall, 3) << "   "
        << util::format_fixed(scores.f1, 3) << "   " << scores.support << '\n';
  }
  out << "macro F1 " << util::format_fixed(macro_f1_, 4) << ", weighted F1 "
      << util::format_fixed(weighted_f1_, 4) << ", accuracy "
      << util::format_fixed(accuracy_, 4) << " over " << sample_count_
      << " samples\n";
  return out.str();
}

double macro_f1(const std::vector<std::string>& truth,
                const std::vector<std::string>& predicted) {
  return ClassificationReport(truth, predicted).macro_f1();
}

double accuracy(const std::vector<std::string>& truth,
                const std::vector<std::string>& predicted) {
  return ClassificationReport(truth, predicted).accuracy();
}

}  // namespace efd::ml
