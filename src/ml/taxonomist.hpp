#pragma once
/// \file taxonomist.hpp
/// \brief Reimplementation of the Taxonomist baseline (Ates et al.,
/// Euro-Par 2018) the paper compares against in Figure 2.
///
/// Pipeline: per-node statistical features over many metrics and the
/// whole execution window -> standardization -> supervised classifier
/// (random forest) -> per-node labels with confidence -> execution-level
/// majority vote. Nodes whose prediction confidence falls below a
/// threshold are labeled "unknown", which is how Taxonomist handles
/// applications absent from training.

#include <memory>
#include <string>
#include <vector>

#include "ml/features.hpp"
#include "ml/label_encoder.hpp"
#include "ml/random_forest.hpp"
#include "ml/scaler.hpp"
#include "telemetry/dataset.hpp"

namespace efd::ml {

struct TaxonomistConfig {
  /// Metrics to featurize; empty = every metric in the dataset (the
  /// baseline's "rich monitoring data": 721 metrics originally, 562 in
  /// the published artifact, all modeled metrics here).
  std::vector<std::string> metrics;

  /// Feature window; {0,0} = whole execution (the baseline's setting).
  /// The figure-2 bench also runs it restricted to [60,120) for a
  /// like-for-like data-volume comparison with the EFD.
  telemetry::Interval window{0, 0};

  /// Node predictions with confidence below this are labeled "unknown".
  /// 0 disables unknown detection (normal-fold configuration).
  double unknown_threshold = 0.0;

  ForestConfig forest{};
};

/// Trainable/queryable baseline.
class TaxonomistPipeline {
 public:
  explicit TaxonomistPipeline(TaxonomistConfig config = {});

  /// Trains on the given records (empty = all).
  void fit(const telemetry::Dataset& dataset,
           const std::vector<std::size_t>& train_indices = {});

  /// Execution-level prediction: majority vote over the record's nodes;
  /// "unknown" wins only if it out-votes every application.
  std::string predict(const telemetry::Dataset& dataset,
                      const telemetry::ExecutionRecord& record) const;

  /// Per-node predictions with confidences (diagnostics).
  struct NodePrediction {
    std::uint32_t node_id = 0;
    std::string label;
    double confidence = 0.0;
  };
  std::vector<NodePrediction> predict_nodes(
      const telemetry::Dataset& dataset,
      const telemetry::ExecutionRecord& record) const;

  const TaxonomistConfig& config() const noexcept { return config_; }
  bool fitted() const noexcept { return forest_.fitted(); }

 private:
  TaxonomistConfig config_;
  std::vector<std::string> metrics_;  ///< resolved at fit time
  StandardScaler scaler_;
  LabelEncoder encoder_;
  RandomForest forest_;
};

}  // namespace efd::ml
