#pragma once
/// \file naive_bayes.hpp
/// \brief Gaussian naive Bayes classifier. The Taxonomist paper evaluated
/// several classifier families over its features; NB is the cheapest of
/// them and serves here as the lower anchor of the classifier-choice
/// ablation (bench/ablation_classifiers).

#include <cstdint>
#include <span>
#include <vector>

#include "ml/matrix.hpp"

namespace efd::ml {

/// Per-class independent Gaussians per feature, uniform-prior-smoothed.
class GaussianNaiveBayes {
 public:
  /// \param variance_floor lower bound on per-feature variance, relative
  /// to the feature's global variance (scikit-learn's var_smoothing).
  explicit GaussianNaiveBayes(double variance_floor = 1e-9)
      : variance_floor_(variance_floor) {}

  void fit(const Matrix& X, const std::vector<std::uint32_t>& y,
           std::size_t n_classes);

  std::uint32_t predict(std::span<const double> x) const;

  /// Posterior class probabilities (normalized in log space).
  std::vector<double> predict_proba(std::span<const double> x) const;

  bool fitted() const noexcept { return n_classes_ > 0; }
  std::size_t n_classes() const noexcept { return n_classes_; }

 private:
  double variance_floor_;
  std::size_t n_features_ = 0;
  std::size_t n_classes_ = 0;
  std::vector<double> log_prior_;   ///< per class
  std::vector<double> means_;       ///< [class][feature]
  std::vector<double> variances_;   ///< [class][feature]
};

}  // namespace efd::ml
