#include "ml/random_forest.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace efd::ml {

void RandomForest::fit(const Matrix& X, const std::vector<std::uint32_t>& y,
                       std::size_t n_classes) {
  if (X.rows() == 0) throw std::invalid_argument("empty training set");
  n_classes_ = n_classes;

  const std::size_t max_features =
      config_.max_features > 0
          ? config_.max_features
          : static_cast<std::size_t>(
                std::max(1.0, std::floor(std::sqrt(static_cast<double>(X.cols())))));

  trees_.clear();
  trees_.reserve(config_.n_trees);
  for (std::size_t t = 0; t < config_.n_trees; ++t) {
    TreeConfig tree_config;
    tree_config.max_depth = config_.max_depth;
    tree_config.min_samples_leaf = config_.min_samples_leaf;
    tree_config.max_features = max_features;
    tree_config.seed = util::mix_seed({config_.seed, t, 0xfeedULL});
    trees_.emplace_back(tree_config);
  }

  auto fit_tree = [&](std::size_t t) {
    // Bootstrap sample: n rows drawn with replacement, per-tree RNG.
    util::Rng rng(util::mix_seed({config_.seed, t, 0xb007ULL}));
    std::vector<std::size_t> bag(X.rows());
    for (auto& index : bag) index = rng.uniform_index(X.rows());
    trees_[t].fit(X, y, n_classes_, bag);
  };

  if (config_.parallel) {
    util::parallel_for(0, trees_.size(), fit_tree);
  } else {
    for (std::size_t t = 0; t < trees_.size(); ++t) fit_tree(t);
  }
}

std::vector<double> RandomForest::predict_proba(std::span<const double> x) const {
  if (!fitted()) throw std::logic_error("RandomForest not fitted");
  std::vector<double> proba(n_classes_, 0.0);
  for (const DecisionTree& tree : trees_) {
    const std::vector<double> leaf = tree.predict_proba(x);
    for (std::size_t c = 0; c < n_classes_; ++c) proba[c] += leaf[c];
  }
  const double scale = 1.0 / static_cast<double>(trees_.size());
  for (double& p : proba) p *= scale;
  return proba;
}

std::uint32_t RandomForest::predict(std::span<const double> x) const {
  const std::vector<double> proba = predict_proba(x);
  return static_cast<std::uint32_t>(
      std::max_element(proba.begin(), proba.end()) - proba.begin());
}

double RandomForest::confidence(std::span<const double> x) const {
  const std::vector<double> proba = predict_proba(x);
  return *std::max_element(proba.begin(), proba.end());
}

}  // namespace efd::ml
