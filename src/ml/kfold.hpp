#pragma once
/// \file kfold.hpp
/// \brief K-fold and stratified k-fold cross-validation splitters
/// (scikit-learn semantics). The paper's experiments are built on 5-fold
/// cross-validation over executions, stratified by full label so every
/// fold sees every (application, input) pair.

#include <cstdint>
#include <string>
#include <vector>

namespace efd::ml {

/// One train/test split.
struct FoldSplit {
  std::vector<std::size_t> train;
  std::vector<std::size_t> test;
};

/// Plain k-fold over n samples: shuffled indices cut into k contiguous
/// test blocks.
std::vector<FoldSplit> kfold(std::size_t n, std::size_t k, std::uint64_t seed);

/// Stratified k-fold: each class's samples are distributed round-robin
/// over folds (after a per-class shuffle), keeping class proportions
/// nearly equal across folds.
std::vector<FoldSplit> stratified_kfold(const std::vector<std::string>& labels,
                                        std::size_t k, std::uint64_t seed);

}  // namespace efd::ml
