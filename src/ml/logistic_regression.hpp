#pragma once
/// \file logistic_regression.hpp
/// \brief Multinomial logistic regression trained with full-batch gradient
/// descent + momentum and L2 regularization. A linear baseline next to
/// the forest; its calibrated softmax output makes the unknown-detection
/// confidence threshold interpretable.

#include <cstdint>
#include <span>
#include <vector>

#include "ml/matrix.hpp"

namespace efd::ml {

struct LogisticConfig {
  std::size_t epochs = 300;
  double learning_rate = 0.1;
  double momentum = 0.9;
  double l2 = 1e-4;
  std::uint64_t seed = 3;
};

class LogisticRegression {
 public:
  explicit LogisticRegression(LogisticConfig config = {}) : config_(config) {}

  /// Fits weights on standardized features (callers should scale first).
  void fit(const Matrix& X, const std::vector<std::uint32_t>& y,
           std::size_t n_classes);

  std::uint32_t predict(std::span<const double> x) const;

  /// Softmax class probabilities.
  std::vector<double> predict_proba(std::span<const double> x) const;

  /// Final training cross-entropy (diagnostics / convergence tests).
  double final_loss() const noexcept { return final_loss_; }

  bool fitted() const noexcept { return n_classes_ > 0; }

 private:
  std::vector<double> logits(std::span<const double> x) const;

  LogisticConfig config_;
  std::size_t n_features_ = 0;
  std::size_t n_classes_ = 0;
  std::vector<double> weights_;  ///< [class][feature] row-major
  std::vector<double> biases_;
  double final_loss_ = 0.0;
};

}  // namespace efd::ml
