#include "ml/taxonomist.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace efd::ml {

TaxonomistPipeline::TaxonomistPipeline(TaxonomistConfig config)
    : config_(std::move(config)), forest_(config_.forest) {}

void TaxonomistPipeline::fit(const telemetry::Dataset& dataset,
                             const std::vector<std::size_t>& train_indices) {
  metrics_ = config_.metrics.empty() ? dataset.metric_names() : config_.metrics;

  const NodeSamples samples =
      extract_node_samples(dataset, metrics_, train_indices, config_.window);
  if (samples.features.rows() == 0) {
    throw std::invalid_argument("Taxonomist: empty training set");
  }

  const Matrix scaled = scaler_.fit_transform(samples.features);
  encoder_ = LabelEncoder();
  const std::vector<std::uint32_t> y = encoder_.fit_encode_all(samples.labels);
  forest_ = RandomForest(config_.forest);
  forest_.fit(scaled, y, encoder_.size());
}

std::vector<TaxonomistPipeline::NodePrediction> TaxonomistPipeline::predict_nodes(
    const telemetry::Dataset& dataset,
    const telemetry::ExecutionRecord& record) const {
  if (!fitted()) throw std::logic_error("Taxonomist not fitted");

  std::vector<std::size_t> slots;
  slots.reserve(metrics_.size());
  for (const auto& name : metrics_) slots.push_back(dataset.metric_slot(name));

  std::vector<NodePrediction> predictions;
  predictions.reserve(record.node_count());
  for (std::size_t node = 0; node < record.node_count(); ++node) {
    Matrix row_matrix;
    std::vector<double> row;
    row.reserve(slots.size() * kFeaturesPerMetric);
    for (std::size_t slot : slots) {
      const auto features =
          extract_series_features(record.series(node, slot), config_.window);
      row.insert(row.end(), features.begin(), features.end());
    }
    row_matrix.append_row(row);
    const Matrix scaled = scaler_.transform(row_matrix);

    NodePrediction prediction;
    prediction.node_id = record.node(node).node_id;
    prediction.confidence = forest_.confidence(scaled.row(0));
    if (config_.unknown_threshold > 0.0 &&
        prediction.confidence < config_.unknown_threshold) {
      prediction.label = "unknown";
    } else {
      prediction.label = encoder_.decode(forest_.predict(scaled.row(0)));
    }
    predictions.push_back(std::move(prediction));
  }
  return predictions;
}

std::string TaxonomistPipeline::predict(
    const telemetry::Dataset& dataset,
    const telemetry::ExecutionRecord& record) const {
  std::map<std::string, std::size_t> votes;
  for (const NodePrediction& p : predict_nodes(dataset, record)) {
    ++votes[p.label];
  }
  // Majority; deterministic tie-break on label name.
  std::string best;
  std::size_t best_votes = 0;
  for (const auto& [label, count] : votes) {
    if (count > best_votes) {
      best = label;
      best_votes = count;
    }
  }
  return best;
}

}  // namespace efd::ml
