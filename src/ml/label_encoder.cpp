#include "ml/label_encoder.hpp"

#include <stdexcept>

namespace efd::ml {

std::uint32_t LabelEncoder::fit_encode(const std::string& label) {
  const auto it = ids_.find(label);
  if (it != ids_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(labels_.size());
  labels_.push_back(label);
  ids_.emplace(label, id);
  return id;
}

std::uint32_t LabelEncoder::encode(const std::string& label) const {
  const auto it = ids_.find(label);
  if (it == ids_.end()) throw std::out_of_range("unknown label: " + label);
  return it->second;
}

bool LabelEncoder::contains(const std::string& label) const {
  return ids_.count(label) > 0;
}

const std::string& LabelEncoder::decode(std::uint32_t id) const {
  return labels_.at(id);
}

std::vector<std::uint32_t> LabelEncoder::fit_encode_all(
    const std::vector<std::string>& labels) {
  std::vector<std::uint32_t> ids;
  ids.reserve(labels.size());
  for (const auto& label : labels) ids.push_back(fit_encode(label));
  return ids;
}

}  // namespace efd::ml
