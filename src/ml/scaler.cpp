#include "ml/scaler.hpp"

#include <cmath>
#include <stdexcept>

#include "util/stats.hpp"

namespace efd::ml {

void StandardScaler::fit(const Matrix& data) {
  means_.assign(data.cols(), 0.0);
  stddevs_.assign(data.cols(), 1.0);
  if (data.rows() == 0) return;

  for (std::size_t c = 0; c < data.cols(); ++c) {
    util::RunningMoments moments;
    for (std::size_t r = 0; r < data.rows(); ++r) moments.add(data(r, c));
    means_[c] = moments.mean();
    const double sd = moments.stddev();
    stddevs_[c] = sd > 1e-12 ? sd : 1.0;
  }
}

Matrix StandardScaler::transform(const Matrix& data) const {
  if (!fitted()) throw std::logic_error("StandardScaler not fitted");
  if (data.cols() != means_.size()) {
    throw std::invalid_argument("StandardScaler column mismatch");
  }
  Matrix out(data.rows(), data.cols());
  for (std::size_t r = 0; r < data.rows(); ++r) {
    for (std::size_t c = 0; c < data.cols(); ++c) {
      out(r, c) = (data(r, c) - means_[c]) / stddevs_[c];
    }
  }
  return out;
}

Matrix StandardScaler::fit_transform(const Matrix& data) {
  fit(data);
  return transform(data);
}

}  // namespace efd::ml
