#include "ml/kfold.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "util/rng.hpp"

namespace efd::ml {

std::vector<FoldSplit> kfold(std::size_t n, std::size_t k, std::uint64_t seed) {
  if (k < 2) throw std::invalid_argument("k must be >= 2");
  if (n < k) throw std::invalid_argument("need at least k samples");

  util::Rng rng(seed);
  const std::vector<std::size_t> order = rng.permutation(n);

  std::vector<FoldSplit> folds(k);
  // Block f covers [f*n/k, (f+1)*n/k) of the shuffled order.
  for (std::size_t f = 0; f < k; ++f) {
    const std::size_t begin = f * n / k;
    const std::size_t end = (f + 1) * n / k;
    for (std::size_t i = 0; i < n; ++i) {
      if (i >= begin && i < end) folds[f].test.push_back(order[i]);
      else folds[f].train.push_back(order[i]);
    }
  }
  return folds;
}

std::vector<FoldSplit> stratified_kfold(const std::vector<std::string>& labels,
                                        std::size_t k, std::uint64_t seed) {
  if (k < 2) throw std::invalid_argument("k must be >= 2");
  if (labels.size() < k) throw std::invalid_argument("need at least k samples");

  // Group indices by class, shuffle within class, deal round-robin.
  std::map<std::string, std::vector<std::size_t>> by_class;
  for (std::size_t i = 0; i < labels.size(); ++i) by_class[labels[i]].push_back(i);

  util::Rng rng(seed);
  std::vector<std::vector<std::size_t>> test_sets(k);
  std::size_t deal = 0;
  for (auto& [label, indices] : by_class) {
    rng.shuffle(indices);
    for (std::size_t index : indices) {
      test_sets[deal % k].push_back(index);
      ++deal;
    }
  }

  std::vector<FoldSplit> folds(k);
  std::vector<std::size_t> fold_of(labels.size());
  for (std::size_t f = 0; f < k; ++f) {
    for (std::size_t index : test_sets[f]) fold_of[index] = f;
  }
  for (std::size_t i = 0; i < labels.size(); ++i) {
    for (std::size_t f = 0; f < k; ++f) {
      if (fold_of[i] == f) folds[f].test.push_back(i);
      else folds[f].train.push_back(i);
    }
  }
  return folds;
}

}  // namespace efd::ml
