#pragma once
/// \file features.hpp
/// \brief Statistical feature extraction from telemetry series — the
/// Taxonomist baseline's front end.
///
/// Taxonomist (Ates et al., Euro-Par 2018) summarizes each metric's
/// per-node time series with order statistics and moments over the whole
/// execution window, then classifies each node. We reproduce its feature
/// set: min, max, mean, standard deviation, skewness, kurtosis, and the
/// 5th/25th/50th/75th/95th percentiles — 11 features per metric.

#include <string>
#include <vector>

#include "ml/matrix.hpp"
#include "telemetry/dataset.hpp"
#include "telemetry/time_series.hpp"

namespace efd::ml {

/// Number of features extracted per metric series.
inline constexpr std::size_t kFeaturesPerMetric = 11;

/// Names of the per-metric features, in extraction order.
const std::vector<std::string>& feature_names();

/// Extracts the 11 statistical features from one series window.
/// \param window interval to summarize; an invalid interval ({0,0}) means
/// the whole series — Taxonomist's whole-execution configuration.
std::vector<double> extract_series_features(const telemetry::TimeSeries& series,
                                            telemetry::Interval window = {0, 0});

/// A per-node sample set extracted from a dataset: one row per
/// (execution, node), features of every chosen metric concatenated.
/// Taxonomist classifies nodes individually; execution-level predictions
/// aggregate over nodes (majority vote).
struct NodeSamples {
  Matrix features;                       ///< rows: (execution, node)
  std::vector<std::string> labels;       ///< application name per row
  std::vector<std::string> full_labels;  ///< "app_input" per row
  std::vector<std::size_t> execution_index;  ///< dataset record per row
  std::vector<std::string> feature_labels;   ///< "metric:stat" per column
};

/// Extracts node samples for the given records (empty indices = all).
NodeSamples extract_node_samples(const telemetry::Dataset& dataset,
                                 const std::vector<std::string>& metrics,
                                 const std::vector<std::size_t>& indices = {},
                                 telemetry::Interval window = {0, 0});

}  // namespace efd::ml
