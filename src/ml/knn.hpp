#pragma once
/// \file knn.hpp
/// \brief Brute-force k-nearest-neighbours classifier. Included both as a
/// sanity baseline for the ML pipeline and as the natural "distance
/// measure" alternative the paper's pruning mechanism deliberately avoids
/// ("computing distance measures for every example introduces unnecessary
/// computational steps") — the ablation benches quantify that trade.

#include <cstdint>
#include <span>
#include <vector>

#include "ml/matrix.hpp"

namespace efd::ml {

class KNearestNeighbors {
 public:
  /// \param k neighbours consulted per query (>= 1).
  explicit KNearestNeighbors(std::size_t k = 5) : k_(k) {}

  /// Stores the training data (lazy learner).
  void fit(const Matrix& X, const std::vector<std::uint32_t>& y,
           std::size_t n_classes);

  /// Majority label among the k nearest (Euclidean); distance-weighted
  /// tie-break.
  std::uint32_t predict(std::span<const double> x) const;

  /// Neighbour-vote distribution.
  std::vector<double> predict_proba(std::span<const double> x) const;

  /// Distance to the single nearest training sample (novelty signal).
  double nearest_distance(std::span<const double> x) const;

  bool fitted() const noexcept { return X_.rows() > 0; }

 private:
  std::size_t k_;
  Matrix X_;
  std::vector<std::uint32_t> y_;
  std::size_t n_classes_ = 0;
};

}  // namespace efd::ml
