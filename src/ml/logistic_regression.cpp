#include "ml/logistic_regression.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace efd::ml {

namespace {
void softmax_in_place(std::vector<double>& z) {
  const double max_z = *std::max_element(z.begin(), z.end());
  double sum = 0.0;
  for (double& v : z) {
    v = std::exp(v - max_z);
    sum += v;
  }
  for (double& v : z) v /= sum;
}
}  // namespace

void LogisticRegression::fit(const Matrix& X, const std::vector<std::uint32_t>& y,
                             std::size_t n_classes) {
  if (X.rows() != y.size()) throw std::invalid_argument("X/y size mismatch");
  if (X.rows() == 0) throw std::invalid_argument("empty training set");
  n_features_ = X.cols();
  n_classes_ = n_classes;

  util::Rng rng(config_.seed);
  weights_.assign(n_classes_ * n_features_, 0.0);
  for (double& w : weights_) w = rng.normal(0.0, 0.01);
  biases_.assign(n_classes_, 0.0);

  std::vector<double> weight_velocity(weights_.size(), 0.0);
  std::vector<double> bias_velocity(biases_.size(), 0.0);
  std::vector<double> grad_w(weights_.size());
  std::vector<double> grad_b(biases_.size());
  std::vector<double> proba(n_classes_);

  const double n = static_cast<double>(X.rows());
  for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    std::fill(grad_w.begin(), grad_w.end(), 0.0);
    std::fill(grad_b.begin(), grad_b.end(), 0.0);
    double loss = 0.0;

    for (std::size_t r = 0; r < X.rows(); ++r) {
      const auto x = X.row(r);
      proba = logits(x);
      softmax_in_place(proba);
      loss -= std::log(std::max(proba[y[r]], 1e-12));
      for (std::size_t c = 0; c < n_classes_; ++c) {
        const double error = proba[c] - (c == y[r] ? 1.0 : 0.0);
        grad_b[c] += error;
        double* row_grad = grad_w.data() + c * n_features_;
        for (std::size_t f = 0; f < n_features_; ++f) row_grad[f] += error * x[f];
      }
    }

    // L2 + momentum update.
    for (std::size_t i = 0; i < weights_.size(); ++i) {
      const double grad = grad_w[i] / n + config_.l2 * weights_[i];
      weight_velocity[i] =
          config_.momentum * weight_velocity[i] - config_.learning_rate * grad;
      weights_[i] += weight_velocity[i];
    }
    for (std::size_t c = 0; c < n_classes_; ++c) {
      bias_velocity[c] = config_.momentum * bias_velocity[c] -
                         config_.learning_rate * grad_b[c] / n;
      biases_[c] += bias_velocity[c];
    }
    final_loss_ = loss / n;
  }
}

std::vector<double> LogisticRegression::logits(std::span<const double> x) const {
  std::vector<double> z(n_classes_);
  for (std::size_t c = 0; c < n_classes_; ++c) {
    const double* row = weights_.data() + c * n_features_;
    double sum = biases_[c];
    for (std::size_t f = 0; f < n_features_; ++f) sum += row[f] * x[f];
    z[c] = sum;
  }
  return z;
}

std::vector<double> LogisticRegression::predict_proba(
    std::span<const double> x) const {
  if (!fitted()) throw std::logic_error("LogisticRegression not fitted");
  std::vector<double> z = logits(x);
  softmax_in_place(z);
  return z;
}

std::uint32_t LogisticRegression::predict(std::span<const double> x) const {
  const std::vector<double> proba = predict_proba(x);
  return static_cast<std::uint32_t>(
      std::max_element(proba.begin(), proba.end()) - proba.begin());
}

}  // namespace efd::ml
