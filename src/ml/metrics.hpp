#pragma once
/// \file metrics.hpp
/// \brief Classification metrics: precision, recall, F-score, confusion
/// matrix — the scoring the paper takes from scikit-learn ("F-score
/// (harmonic mean of precision and recall)").

#include <map>
#include <string>
#include <vector>

namespace efd::ml {

/// Per-class precision/recall/F1 plus supports.
struct ClassScores {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  std::size_t support = 0;  ///< true instances of the class
};

/// Full evaluation of a prediction vector against ground truth.
class ClassificationReport {
 public:
  /// \param truth ground-truth labels.
  /// \param predicted predictions, aligned with truth.
  /// Classes are the union of labels appearing in either vector.
  ClassificationReport(const std::vector<std::string>& truth,
                       const std::vector<std::string>& predicted);

  /// Per-class scores (sorted by class name).
  const std::map<std::string, ClassScores>& per_class() const noexcept {
    return per_class_;
  }

  /// Unweighted mean of per-class F1 — scikit-learn's f1_score(average=
  /// "macro"), the headline number reported throughout the paper.
  double macro_f1() const noexcept { return macro_f1_; }
  double macro_precision() const noexcept { return macro_precision_; }
  double macro_recall() const noexcept { return macro_recall_; }

  /// Support-weighted mean of per-class F1 (average="weighted").
  double weighted_f1() const noexcept { return weighted_f1_; }

  /// Fraction of exact matches.
  double accuracy() const noexcept { return accuracy_; }

  std::size_t sample_count() const noexcept { return sample_count_; }

  /// confusion()[t][p] = count of true class t predicted as p.
  const std::map<std::string, std::map<std::string, std::size_t>>& confusion()
      const noexcept {
    return confusion_;
  }

  /// Multi-line human-readable report (per-class rows + averages).
  std::string to_string() const;

 private:
  std::map<std::string, ClassScores> per_class_;
  std::map<std::string, std::map<std::string, std::size_t>> confusion_;
  double macro_f1_ = 0.0;
  double macro_precision_ = 0.0;
  double macro_recall_ = 0.0;
  double weighted_f1_ = 0.0;
  double accuracy_ = 0.0;
  std::size_t sample_count_ = 0;
};

/// Shorthand: macro F1 of predictions vs truth.
double macro_f1(const std::vector<std::string>& truth,
                const std::vector<std::string>& predicted);

/// Shorthand: accuracy.
double accuracy(const std::vector<std::string>& truth,
                const std::vector<std::string>& predicted);

}  // namespace efd::ml
