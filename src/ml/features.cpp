#include "ml/features.hpp"

#include <algorithm>

#include "util/stats.hpp"

namespace efd::ml {

const std::vector<std::string>& feature_names() {
  static const std::vector<std::string> names = {
      "min", "max", "mean", "std", "skew", "kurt",
      "p5",  "p25", "p50",  "p75", "p95",
  };
  return names;
}

std::vector<double> extract_series_features(const telemetry::TimeSeries& series,
                                            telemetry::Interval window) {
  std::span<const double> samples =
      window.valid() ? series.window(window) : series.samples();

  std::vector<double> features(kFeaturesPerMetric, 0.0);
  if (samples.empty()) return features;

  util::RunningMoments moments;
  for (double v : samples) moments.add(v);

  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());

  features[0] = sorted.front();
  features[1] = sorted.back();
  features[2] = moments.mean();
  features[3] = moments.stddev();
  features[4] = moments.skewness();
  features[5] = moments.kurtosis();
  features[6] = util::percentile_sorted(sorted, 5.0);
  features[7] = util::percentile_sorted(sorted, 25.0);
  features[8] = util::percentile_sorted(sorted, 50.0);
  features[9] = util::percentile_sorted(sorted, 75.0);
  features[10] = util::percentile_sorted(sorted, 95.0);
  return features;
}

NodeSamples extract_node_samples(const telemetry::Dataset& dataset,
                                 const std::vector<std::string>& metrics,
                                 const std::vector<std::size_t>& indices,
                                 telemetry::Interval window) {
  std::vector<std::size_t> slots;
  slots.reserve(metrics.size());
  for (const auto& name : metrics) slots.push_back(dataset.metric_slot(name));

  NodeSamples samples;
  samples.feature_labels.reserve(metrics.size() * kFeaturesPerMetric);
  for (const auto& metric : metrics) {
    for (const auto& stat : feature_names()) {
      samples.feature_labels.push_back(metric + ":" + stat);
    }
  }

  auto extract_record = [&](std::size_t record_index) {
    const telemetry::ExecutionRecord& record = dataset.record(record_index);
    for (std::size_t node = 0; node < record.node_count(); ++node) {
      std::vector<double> row;
      row.reserve(slots.size() * kFeaturesPerMetric);
      for (std::size_t slot : slots) {
        const auto features =
            extract_series_features(record.series(node, slot), window);
        row.insert(row.end(), features.begin(), features.end());
      }
      samples.features.append_row(row);
      samples.labels.push_back(record.label().application);
      samples.full_labels.push_back(record.label().full());
      samples.execution_index.push_back(record_index);
    }
  };

  if (indices.empty()) {
    for (std::size_t i = 0; i < dataset.size(); ++i) extract_record(i);
  } else {
    for (std::size_t i : indices) extract_record(i);
  }
  return samples;
}

}  // namespace efd::ml
