#include "retrain/traffic_recorder.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <map>
#include <utility>

#include "core/matcher.hpp"

namespace efd::retrain {

namespace {

/// Verdict labels that cannot train anything.
bool usable_label(const std::string& label_prediction) {
  return !label_prediction.empty() &&
         label_prediction != core::kUnknownApplication;
}

}  // namespace

TrafficRecorder::TrafficRecorder(core::FingerprintConfig layout,
                                 TrafficRecorderConfig config)
    : layout_(std::move(layout)), config_(config), rng_(config.seed) {
  if (config_.window_jobs_per_app == 0) config_.window_jobs_per_app = 1;
  if (config_.max_applications == 0) config_.max_applications = 1;
  adopt_layout_locked();
}

void TrafficRecorder::adopt_layout_locked() {
  horizon_ = config_.capture_horizon_seconds;
  if (horizon_ <= 0) {
    for (const telemetry::Interval& interval : layout_.intervals) {
      horizon_ = std::max(horizon_, interval.end_seconds);
    }
  }
  if (horizon_ <= 0) horizon_ = 1;
  // A fully dense capture is one sample per (metric, tick) per node; any
  // excess is duplicate ticks and cannot improve a window mean's fidelity
  // enough to justify unbounded memory.
  max_samples_per_job_ = layout_.metrics.size() *
                         static_cast<std::size_t>(horizon_);
}

void TrafficRecorder::rebind_layout(core::FingerprintConfig layout) {
  std::lock_guard lock(mutex_);
  layout_ = std::move(layout);
  adopt_layout_locked();
  // Old-layout captures cannot mix with the new filter: drop them and
  // refill from live traffic (observable, never silent).
  pending_.clear();
  windows_.clear();
  ++stats_.window_resets;
}

std::int64_t TrafficRecorder::now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void TrafficRecorder::prune_expired_locked(std::int64_t now) {
  if (config_.window_ttl.count() <= 0) return;
  const std::int64_t horizon =
      now - std::chrono::duration_cast<std::chrono::nanoseconds>(
                config_.window_ttl)
                .count();
  for (auto& [app, window] : windows_) {
    const std::size_t before = window.jobs.size();
    std::erase_if(window.jobs, [horizon](const auto& job) {
      return job->captured_ns < horizon;
    });
    const std::size_t expired = before - window.jobs.size();
    if (expired > 0) {
      stats_.jobs_expired += expired;
      // Recency weighting: the reservoir's admission probability is
      // capacity/seen — resetting `seen` to the surviving population
      // lets fresh jobs re-enter at ring odds instead of fighting the
      // full (now partly expired) history.
      window.seen = window.jobs.size();
    }
  }
}

void TrafficRecorder::job_opened(std::uint64_t job_id,
                                 std::uint32_t node_count,
                                 std::uint32_t source) {
  std::lock_guard lock(mutex_);
  PendingCapture& capture = pending_[job_id];
  capture.node_count = std::max<std::uint32_t>(node_count, 1);
  capture.source = source;
  capture.samples.clear();
  capture.filtered = 0;
}

void TrafficRecorder::record_batch(std::uint64_t job_id,
                                   std::vector<ingest::WireSample>&& samples) {
  std::lock_guard lock(mutex_);
  const auto it = pending_.find(job_id);
  if (it == pending_.end()) return;  // restored or already-finished job
  PendingCapture& capture = it->second;
  const std::size_t limit =
      max_samples_per_job_ * static_cast<std::size_t>(capture.node_count);

  // Filter at the door: training can only use layout metrics, ticks
  // below the horizon, and node ids inside the job. Samples are moved,
  // never copied — the pipeline has already dispatched this batch.
  for (ingest::WireSample& sample : samples) {
    const bool wanted =
        sample.t >= 0 && sample.t < horizon_ &&
        sample.node_id < capture.node_count &&
        capture.samples.size() < limit &&
        std::find(layout_.metrics.begin(), layout_.metrics.end(),
                  sample.metric) != layout_.metrics.end();
    if (wanted) {
      capture.samples.push_back(std::move(sample));
      ++stats_.samples_recorded;
    } else {
      ++capture.filtered;
      ++stats_.samples_filtered;
    }
  }
}

void TrafficRecorder::job_finished(std::uint64_t job_id, bool recognized,
                                   const std::string& label_prediction) {
  std::lock_guard lock(mutex_);
  const auto it = pending_.find(job_id);
  if (it == pending_.end()) {
    ++stats_.jobs_untracked;
    return;
  }
  PendingCapture capture = std::move(it->second);
  pending_.erase(it);

  if (!recognized || !usable_label(label_prediction)) {
    // Self-training needs the incumbent's label; an unknown verdict has
    // none. The samples are released, the miss is observable.
    ++stats_.jobs_unrecognized;
    return;
  }
  if (std::find(config_.excluded_sources.begin(),
                config_.excluded_sources.end(),
                capture.source) != config_.excluded_sources.end()) {
    // Operator-excluded ingest source (e.g. lossy UDP): its truncated
    // traffic must not shape the next dictionary.
    ++stats_.jobs_excluded_source;
    return;
  }
  ++stats_.jobs_captured;
  const std::int64_t now = now_ns();
  prune_expired_locked(now);

  const telemetry::ExecutionLabel label =
      telemetry::parse_label(label_prediction);
  auto window_it = windows_.find(label.application);
  if (window_it == windows_.end()) {
    if (windows_.size() >= config_.max_applications) {
      ++stats_.jobs_untracked;
      return;
    }
    window_it = windows_.emplace(label.application, AppWindow{}).first;
  }
  AppWindow& window = window_it->second;
  ++window.seen;

  auto job = std::make_shared<CapturedJob>();
  job->job_id = job_id;
  job->node_count = capture.node_count;
  job->source = capture.source;
  job->label = label;
  job->sequence = next_sequence_++;
  job->captured_ns = now;
  job->samples = std::move(capture.samples);

  if (window.jobs.size() < config_.window_jobs_per_app) {
    window.jobs.push_back(std::move(job));
    ++stats_.jobs_admitted;
    return;
  }
  // Ring full: reservoir admission (Algorithm R) keeps the window a
  // uniform sample of this application's served history. Replacement
  // swaps a shared pointer — a snapshot holding the victim keeps it
  // alive and frozen.
  const std::uint64_t slot = rng_.uniform_index(window.seen);
  if (slot < window.jobs.size()) {
    window.jobs[slot] = std::move(job);
    ++stats_.jobs_admitted;
    ++stats_.jobs_replaced;
  } else {
    ++stats_.jobs_sampled_out;
  }
}

WindowSnapshot TrafficRecorder::snapshot_window() const {
  std::lock_guard lock(mutex_);
  // Pointer copies only: the dispatch thread is never blocked behind a
  // data copy. Deterministic order: applications sorted by name, jobs
  // by capture sequence — identical histories snapshot identically.
  // TTL-expired entries are excluded here even before an admission has
  // pruned them, so a retrain during a quiet spell never trains on
  // stale traffic.
  std::int64_t ttl_horizon = std::numeric_limits<std::int64_t>::min();
  if (config_.window_ttl.count() > 0) {
    ttl_horizon = now_ns() -
                  std::chrono::duration_cast<std::chrono::nanoseconds>(
                      config_.window_ttl)
                      .count();
  }
  std::map<std::string, const AppWindow*> ordered;
  for (const auto& [app, window] : windows_) ordered.emplace(app, &window);
  WindowSnapshot out;
  for (const auto& [app, window] : ordered) {
    const std::size_t first = out.size();
    for (const auto& job : window->jobs) {
      if (job->captured_ns >= ttl_horizon) out.push_back(job);
    }
    std::sort(out.begin() + static_cast<std::ptrdiff_t>(first), out.end(),
              [](const auto& a, const auto& b) {
                return a->sequence < b->sequence;
              });
  }
  return out;
}

std::uint64_t TrafficRecorder::jobs_captured() const {
  std::lock_guard lock(mutex_);
  return stats_.jobs_captured;
}

TrafficRecorderStats TrafficRecorder::stats() const {
  std::lock_guard lock(mutex_);
  TrafficRecorderStats stats = stats_;
  stats.applications = windows_.size();
  stats.window_jobs = 0;
  stats.window_samples = 0;
  for (const auto& [app, window] : windows_) {
    stats.window_jobs += window.jobs.size();
    for (const auto& job : window.jobs) {
      stats.window_samples += job->samples.size();
    }
  }
  return stats;
}

namespace {

/// Rebuilds one job's telemetry as a dense ExecutionRecord on the layout
/// metric axis. Interior gaps forward-fill (a missed scrape does not
/// shift later ticks); the leading gap back-fills from the first sample.
telemetry::ExecutionRecord record_of(const CapturedJob& job,
                                     const core::FingerprintConfig& layout) {
  const std::size_t metric_count = layout.metrics.size();
  telemetry::ExecutionRecord record(job.job_id, job.label, job.node_count,
                                    metric_count);
  // (node, slot) -> samples in arrival order.
  std::vector<std::vector<std::pair<int, double>>> cells(
      static_cast<std::size_t>(job.node_count) * metric_count);
  for (const ingest::WireSample& sample : job.samples) {
    const auto slot_it =
        std::find(layout.metrics.begin(), layout.metrics.end(), sample.metric);
    if (slot_it == layout.metrics.end()) continue;  // layout changed mid-run
    const std::size_t slot =
        static_cast<std::size_t>(slot_it - layout.metrics.begin());
    if (sample.node_id >= job.node_count || sample.t < 0) continue;
    cells[sample.node_id * metric_count + slot].emplace_back(sample.t,
                                                             sample.value);
  }
  for (std::uint32_t node = 0; node < job.node_count; ++node) {
    for (std::size_t slot = 0; slot < metric_count; ++slot) {
      auto& cell = cells[node * metric_count + slot];
      if (cell.empty()) continue;
      std::stable_sort(cell.begin(), cell.end(),
                       [](const auto& a, const auto& b) {
                         return a.first < b.first;
                       });
      telemetry::TimeSeries& series = record.series(node, slot);
      const int last_t = cell.back().first;
      series.reserve(static_cast<std::size_t>(last_t) + 1);
      std::size_t cursor = 0;
      double value = cell.front().second;
      for (int t = 0; t <= last_t; ++t) {
        while (cursor < cell.size() && cell[cursor].first == t) {
          value = cell[cursor].second;  // duplicate ticks: last wins
          ++cursor;
        }
        series.push_back(value);
      }
    }
  }
  return record;
}

}  // namespace

WindowSlices slice_window(const WindowSnapshot& window,
                          const core::FingerprintConfig& layout,
                          double holdout_fraction) {
  holdout_fraction = std::clamp(holdout_fraction, 0.0, 0.9);
  WindowSlices slices{telemetry::Dataset(layout.metrics),
                      telemetry::Dataset(layout.metrics)};

  std::map<std::string, std::vector<const CapturedJob*>> by_app;
  for (const auto& job : window) {
    by_app[job->label.application].push_back(job.get());
  }
  for (auto& [app, jobs] : by_app) {
    std::sort(jobs.begin(), jobs.end(),
              [](const CapturedJob* a, const CapturedJob* b) {
                return a->sequence < b->sequence;
              });
    // Hold out the newest slice: drift shows up in the freshest traffic
    // first, and the candidate must beat the incumbent exactly there.
    std::size_t holdout = static_cast<std::size_t>(
        std::ceil(holdout_fraction * static_cast<double>(jobs.size())));
    if (jobs.size() >= 2 && holdout_fraction > 0.0) {
      holdout = std::max<std::size_t>(holdout, 1);
    }
    holdout = std::min(holdout, jobs.size() > 0 ? jobs.size() - 1 : 0);
    const std::size_t train = jobs.size() - holdout;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      (i < train ? slices.train : slices.holdout)
          .add(record_of(*jobs[i], layout));
    }
  }
  return slices;
}

}  // namespace efd::retrain
