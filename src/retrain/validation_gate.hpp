#pragma once
/// \file validation_gate.hpp
/// \brief The certification step of the closed retraining loop: never
/// publish a candidate dictionary without a quantitative check that it
/// serves the current workload at least as well as the incumbent.
///
/// The gate replays a held-out slice of the captured traffic window
/// (the newest jobs per application — where drift shows first) through
/// BOTH dictionaries with the offline Matcher and scores each:
///
///   accuracy  fraction of holdout jobs whose prediction matches the
///             label they were captured under
///   coverage  mean fraction of a job's fingerprints found in the
///             dictionary (the early-warning signal: under drift,
///             coverage decays before accuracy does)
///   score     (1 - coverage_weight) * accuracy
///             + coverage_weight * coverage
///
/// The candidate is promoted only when its score clears the incumbent's
/// by the configured margin. A margin > 0 demands a measurable win
/// (steady-state retrains that merely tie the incumbent are rejected —
/// an epoch bump with no benefit still resets observability); margin 0
/// promotes on any non-regression. Echoes the certification idea of
/// *Certifying clusters from sum-of-norms clustering*: the check is on
/// the published artifact, not on the training procedure.

#include <cstddef>
#include <string>

#include "core/dictionary_view.hpp"
#include "telemetry/dataset.hpp"

namespace efd::retrain {

struct ValidationGateConfig {
  /// candidate.score must be >= incumbent.score + margin to promote.
  double margin = 0.0;
  /// Weight of coverage in the combined score (accuracy gets the rest).
  double coverage_weight = 0.3;
  /// Gate refuses to certify (rejects) on fewer holdout jobs than this.
  std::size_t min_holdout_jobs = 1;
};

/// One dictionary's replay score over the holdout slice.
struct GateScore {
  double accuracy = 0.0;
  double coverage = 0.0;
  double score = 0.0;
  std::size_t jobs = 0;
};

struct GateDecision {
  bool promote = false;
  std::string reason;  ///< human-readable, one line
  GateScore candidate;
  GateScore incumbent;
};

/// Replays \p holdout through one dictionary. Records carry the labels
/// they were captured under; prediction is scored at the application
/// level (the paper's scoring).
GateScore score_dictionary(const core::DictionaryView& dictionary,
                           const telemetry::Dataset& holdout);

/// Scores candidate and incumbent and applies the margin rule.
GateDecision evaluate_gate(const core::DictionaryView& candidate,
                           const core::DictionaryView& incumbent,
                           const telemetry::Dataset& holdout,
                           const ValidationGateConfig& config);

}  // namespace efd::retrain
