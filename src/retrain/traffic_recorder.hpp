#pragma once
/// \file traffic_recorder.hpp
/// \brief Rolling capture of served recognition traffic — the data side
/// of the closed retraining loop (see retrain_controller.hpp).
///
/// The paper trains its dictionary once, offline. A production endpoint
/// tracking workload drift needs training data that mirrors what it is
/// serving RIGHT NOW, and the only place that data exists is the traffic
/// itself. TrafficRecorder taps the ingest pipeline's dispatch path and
/// keeps a bounded, per-application window of recently served jobs:
///
///  - Capture is cheap on the hot path: sample batches are MOVED in
///    (the pipeline has already dispatched them; their backing memory
///    would otherwise be freed), and filtering keeps only what training
///    can use — metrics the dictionary layout fingerprints, ticks below
///    the capture horizon (the last interval end; later samples cannot
///    influence any window mean). Everything else is dropped at the door
///    and counted.
///  - A job becomes trainable only when its verdict fires AND names a
///    known application: the incumbent dictionary labels the traffic
///    (self-training). Unrecognized verdicts carry no usable label and
///    are counted, not stored.
///  - Each application's window is a fixed-capacity ring; once an app
///    has produced more jobs than fit, admission switches to reservoir
///    sampling (Algorithm R, seeded — deterministic), so the window
///    stays a uniform sample of the app's served history at O(capacity)
///    memory no matter how much traffic flows.
///  - Captured jobs are immutable once admitted and shared-owned, so
///    snapshot_window() is pointer copies under the lock — a background
///    retrain works on frozen data while capture (including reservoir
///    replacement) continues without ever stalling the dispatch thread
///    behind a deep copy.
///
/// slice_window() turns a window snapshot into train/holdout datasets:
/// per application, the most recent ceil(fraction * n) jobs are held
/// out (validate on the freshest traffic — that is where drift shows),
/// the rest train the candidate.
///
/// Thread-safety: all methods are safe from any thread (one mutex; every
/// operation is O(batch) or O(window)).

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/fingerprint.hpp"
#include "ingest/wire_format.hpp"
#include "telemetry/dataset.hpp"
#include "util/rng.hpp"

namespace efd::retrain {

struct TrafficRecorderConfig {
  /// Per-application window capacity (completed jobs). The total window
  /// is bounded by window_jobs_per_app * max_applications.
  std::size_t window_jobs_per_app = 32;
  /// Distinct application windows tracked; jobs for further applications
  /// are counted (jobs_untracked) and dropped.
  std::size_t max_applications = 64;
  /// Ticks at/after this are not stored (0 = derive from the layout:
  /// the maximum interval end, since later samples cannot change any
  /// window mean).
  int capture_horizon_seconds = 0;
  /// Seed for reservoir admission (deterministic runs).
  std::uint64_t seed = 42;
  /// Recency-weighted reservoir eviction (0 = keep forever): captured
  /// jobs older than this are expired — pruned at the next admission and
  /// excluded from window snapshots — so a quiet application's window
  /// cannot keep training on stale traffic. After a prune, the
  /// reservoir's admission odds reset to the surviving population, so
  /// fresh jobs re-enter readily (recency weighting).
  std::chrono::milliseconds window_ttl{0};
  /// Ingest source tags (the mux's SourceIds) whose jobs are never
  /// admitted — the operator's knob to keep a high-loss source (e.g. a
  /// congested UDP sampler) from training the dictionary on truncated
  /// traffic. Counted in jobs_excluded_source.
  std::vector<std::uint32_t> excluded_sources;
};

struct TrafficRecorderStats {
  std::size_t window_jobs = 0;        ///< jobs currently held
  std::uint64_t window_samples = 0;   ///< samples currently held
  std::size_t applications = 0;       ///< distinct app windows
  std::uint64_t jobs_captured = 0;    ///< completed recognized jobs seen
  std::uint64_t jobs_admitted = 0;    ///< entered a window
  std::uint64_t jobs_replaced = 0;    ///< reservoir evictions
  std::uint64_t jobs_sampled_out = 0; ///< reservoir declined admission
  std::uint64_t jobs_unrecognized = 0;///< verdict had no usable label
  std::uint64_t jobs_untracked = 0;   ///< no open capture / app cap hit
  std::uint64_t samples_recorded = 0; ///< accepted into a capture (lifetime)
  std::uint64_t samples_filtered = 0; ///< beyond horizon / foreign metric
  std::uint64_t window_resets = 0;    ///< layout rebinds dropping the window
  std::uint64_t jobs_expired = 0;     ///< evicted by the window TTL
  std::uint64_t jobs_excluded_source = 0; ///< from an excluded ingest source
};

/// One completed, labeled, captured job. Immutable once admitted to a
/// window (shared between the live window and in-flight snapshots).
struct CapturedJob {
  std::uint64_t job_id = 0;
  std::uint32_t node_count = 0;
  std::uint32_t source = 0;         ///< ingest source the job arrived on
  telemetry::ExecutionLabel label;  ///< from the verdict (self-labeled)
  std::uint64_t sequence = 0;       ///< completion order within the recorder
  std::int64_t captured_ns = 0;     ///< admission time (window TTL clock)
  std::vector<ingest::WireSample> samples;  ///< filtered, arrival order
};

/// A frozen view of the capture window (shared, immutable jobs).
using WindowSnapshot = std::vector<std::shared_ptr<const CapturedJob>>;

/// Train/holdout datasets sliced from a window snapshot. Records carry
/// the captured labels, so the gate can score accuracy directly.
struct WindowSlices {
  telemetry::Dataset train;
  telemetry::Dataset holdout;
};

class TrafficRecorder {
 public:
  /// \param layout the serving dictionary's fingerprint layout: defines
  ///        the metric filter, the capture horizon, and the dataset axis
  ///        snapshots are built on. Stable across content retrains.
  explicit TrafficRecorder(core::FingerprintConfig layout,
                           TrafficRecorderConfig config = {});

  const core::FingerprintConfig& layout() const noexcept { return layout_; }
  const TrafficRecorderConfig& config() const noexcept { return config_; }
  /// Ticks at/after this are never stored.
  int capture_horizon() const noexcept { return horizon_; }

  /// Starts capturing a job (pipeline tap: successful kOpenJob).
  /// \p source tags the ingest source the job arrived on; jobs from
  /// excluded sources are dropped at completion (never admitted).
  void job_opened(std::uint64_t job_id, std::uint32_t node_count,
                  std::uint32_t source = 0);

  /// Appends a dispatched sample batch to the job's pending capture,
  /// consuming the vector (zero-copy tap: the pipeline is done with it).
  /// Unknown job ids are ignored (restored jobs, late batches).
  void record_batch(std::uint64_t job_id,
                    std::vector<ingest::WireSample>&& samples);

  /// Finalizes a capture with its verdict: a recognized verdict admits
  /// the job to its application's window (ring, then reservoir);
  /// anything else discards it with the matching counter.
  void job_finished(std::uint64_t job_id, bool recognized,
                    const std::string& label_prediction);

  /// Freezes the current window (all applications, capture order):
  /// O(window) pointer copies under the lock, never a data copy.
  WindowSnapshot snapshot_window() const;

  /// Adopts a new fingerprint layout (a restore or manual swap-dict can
  /// install an epoch whose metrics/intervals differ from the boot
  /// dictionary's). Captures made under the old layout cannot mix with
  /// the new filter, so pending captures AND the window are dropped
  /// (counted in window_resets); capture restarts from live traffic.
  void rebind_layout(core::FingerprintConfig layout);

  /// Completed recognized jobs seen so far (the retrain count trigger).
  std::uint64_t jobs_captured() const;

  TrafficRecorderStats stats() const;

 private:
  struct PendingCapture {
    std::uint32_t node_count = 0;
    std::uint32_t source = 0;
    std::vector<ingest::WireSample> samples;
    std::uint64_t filtered = 0;
  };
  struct AppWindow {
    /// Ring storage, admission order; entries are immutable and shared
    /// with snapshots.
    std::vector<std::shared_ptr<const CapturedJob>> jobs;
    std::uint64_t seen = 0;  ///< completed jobs offered to this window
  };

  /// Recomputes horizon/caps from layout_ (constructor + rebind_layout).
  void adopt_layout_locked();
  /// Evicts window entries older than the TTL (no-op when disabled).
  /// Resets each pruned window's reservoir odds to its survivors.
  void prune_expired_locked(std::int64_t now_ns);
  static std::int64_t now_ns();

  core::FingerprintConfig layout_;
  TrafficRecorderConfig config_;
  int horizon_ = 0;
  std::size_t max_samples_per_job_ = 0;

  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, PendingCapture> pending_;
  std::unordered_map<std::string, AppWindow> windows_;
  util::Rng rng_;
  std::uint64_t next_sequence_ = 0;
  TrafficRecorderStats stats_;
};

/// Splits a window snapshot into train/holdout datasets on the layout's
/// metric axis. Per application (jobs ordered by capture sequence), the
/// newest ceil(holdout_fraction * n) jobs — at least one when the app
/// has two or more — are held out; the rest train. Fully deterministic.
/// Sparse capture is tolerated: each (node, metric) series is rebuilt
/// dense up to the last captured tick, forward-filling interior gaps.
WindowSlices slice_window(const WindowSnapshot& window,
                          const core::FingerprintConfig& layout,
                          double holdout_fraction);

}  // namespace efd::retrain
