#pragma once
/// \file retrain_controller.hpp
/// \brief The closed retraining loop: rolling traffic capture →
/// background sharded retrain → validation gate → self-swap.
///
/// PR 3's DictionaryHandle made a retrained dictionary publishable
/// mid-traffic, but only an operator hand-shipping bytes over swap-dict
/// ever exercised it. RetrainController closes the loop: the service
/// retrains itself from the traffic it serves and promotes the result —
/// but only past a quantitative gate.
///
/// One cycle (trigger → train → gate → promote):
///  1. Trigger: a wall-clock interval and/or a captured-job count (both
///     checked at the pipeline's poll boundary, maybe_trigger()). A
///     cycle never starts while another is in flight.
///  2. Snapshot: the TrafficRecorder window is deep-copied at a
///     consistent point and sliced per application into train (older)
///     and holdout (newest) datasets. Capture continues concurrently.
///  3. Train: train_dictionary_sharded() builds the candidate on a
///     background thread (plus an optional worker pool), under the
///     incumbent epoch's fingerprint layout — recognition never stalls;
///     the paper's deterministic parallel builder guarantees the
///     candidate is byte-identical to a sequential retrain.
///  4. Gate: the ValidationGate replays the holdout through candidate
///     AND incumbent (the epoch pinned in step 2 — a concurrent manual
///     swap cannot slip under the comparison) and only certifies a
///     candidate that clears the margin.
///  5. Promote: RecognitionService::swap_dictionary publishes the
///     candidate as a new epoch; in-flight streams finish against the
///     epoch they pinned at open. A candidate byte-identical to the
///     active dictionary reports already-active WITHOUT burning an
///     epoch — this is also what makes an at-least-once replay after a
///     crash unable to double-promote.
///
/// Durability: every attempt (outcome, scores, epoch) lands in
/// RetrainStats and a bounded lineage, serialized as the EFD-RETRAIN-V1
/// blob the service snapshot carries in its optional Retrain section —
/// a crash mid-cycle restores the attempt history; the traffic window
/// itself is deliberately NOT persisted (it re-fills from live traffic,
/// and a snapshot that embedded it would dwarf the dictionary).
///
/// Threading: maybe_trigger()/drain_reports() belong to one scheduler
/// thread (the ingest pipeline's run() loop); the cycle body runs on an
/// internal background thread (or inline with background = false — the
/// deterministic-test mode). stats()/encode_state() are safe from any
/// thread. The recorder taps are internally synchronized.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/online/recognition_service.hpp"
#include "retrain/traffic_recorder.hpp"
#include "retrain/validation_gate.hpp"

namespace efd::util {
class ThreadPool;
}

namespace efd::retrain {

/// How a triggered cycle ended. Values travel in EFD-RETRAIN-V1 and the
/// kRetrainReport wire frame — append only, never renumber.
enum class RetrainOutcome : std::uint8_t {
  kPromoted = 1,      ///< candidate certified and published as a new epoch
  kGatedOut = 2,      ///< candidate failed the validation gate
  kAlreadyActive = 3, ///< candidate identical to the active dictionary
  kSkippedNoData = 4, ///< window had no trainable slice
  kFailed = 5,        ///< training/gate threw (detail carries the reason)
  kDryRun = 6,        ///< gate passed but dry-run withheld the promotion
};

const char* retrain_outcome_name(RetrainOutcome outcome);

/// One finished cycle, as reported to observers (and the wire).
struct RetrainReport {
  std::uint64_t cycle = 0;  ///< lifetime trigger number (1-based)
  RetrainOutcome outcome = RetrainOutcome::kFailed;
  std::uint64_t epoch = 0;  ///< active dictionary epoch after the cycle
  double candidate_score = 0.0;
  double incumbent_score = 0.0;
  std::size_t window_jobs = 0;
  std::size_t holdout_jobs = 0;
  double train_seconds = 0.0;
  double gate_seconds = 0.0;
  std::string detail;  ///< gate reason / error text
};

struct RetrainConfig {
  /// Wall-clock trigger cadence (0 = timer disabled).
  std::chrono::milliseconds interval{0};
  /// Trigger after this many newly captured jobs since the last cycle
  /// (0 = count trigger disabled). Deterministic under test harnesses.
  std::uint64_t min_new_jobs = 0;
  /// Fraction of each application's window held out for the gate.
  double holdout_fraction = 0.25;
  ValidationGateConfig gate;
  /// Run the full cycle but never promote (report kDryRun instead) —
  /// the operator's shadow-mode knob.
  bool dry_run = false;
  /// Candidate shard count (0 = match the incumbent).
  std::size_t shard_count = 0;
  /// Run cycles on an internal background thread (the serving mode).
  /// false runs them inline inside maybe_trigger()/run_cycle() — the
  /// deterministic mode tests and benches use.
  bool background = true;
  /// Worker pool for the sharded trainer (borrowed; null = global pool).
  util::ThreadPool* pool = nullptr;
  TrafficRecorderConfig recorder;
  /// Test/fault hook: invoked on the cycle thread after the candidate is
  /// trained, before the gate runs — the scripted crash point between
  /// train and promote.
  std::function<void()> after_train;
  /// Observer invoked (on the cycle thread, outside the controller's
  /// lock) for every finished cycle — operator logging. Wire fan-out
  /// happens separately via drain_reports().
  std::function<void(const RetrainReport&)> on_report;
};

/// One remembered attempt (the epoch lineage; bounded, durable).
struct RetrainAttempt {
  std::uint64_t cycle = 0;
  RetrainOutcome outcome = RetrainOutcome::kFailed;
  std::uint64_t epoch = 0;
  double candidate_score = 0.0;
  double incumbent_score = 0.0;

  bool operator==(const RetrainAttempt&) const = default;
};

/// Aggregate counters (monitoring endpoint material; durable).
struct RetrainStats {
  std::uint64_t cycles_triggered = 0;
  std::uint64_t cycles_trained = 0;  ///< produced a candidate
  std::uint64_t cycles_promoted = 0;
  std::uint64_t cycles_gated_out = 0;
  std::uint64_t cycles_already_active = 0;
  std::uint64_t cycles_skipped_no_data = 0;
  std::uint64_t cycles_failed = 0;
  std::uint64_t cycles_dry_run = 0;
  std::uint64_t last_cycle = 0;          ///< last FINISHED cycle number
  std::uint64_t last_promoted_epoch = 0; ///< 0 = never promoted
  double last_candidate_score = 0.0;
  double last_incumbent_score = 0.0;
};

/// Maximum attempts the durable lineage retains (oldest dropped first).
inline constexpr std::size_t kMaxRetrainLineage = 64;

class RetrainController {
 public:
  /// \param service the serving endpoint (borrowed; must outlive). The
  ///        recorder adopts the ACTIVE epoch's fingerprint layout;
  ///        content retrains never change it, but a restore or a manual
  ///        swap-dict CAN install a different layout — the controller
  ///        detects that at the next trigger/cycle and rebinds the
  ///        recorder (dropping the now-unusable window, counted in
  ///        TrafficRecorderStats::window_resets).
  RetrainController(core::RecognitionService& service, RetrainConfig config);
  ~RetrainController();

  RetrainController(const RetrainController&) = delete;
  RetrainController& operator=(const RetrainController&) = delete;

  TrafficRecorder& recorder() noexcept { return recorder_; }
  const TrafficRecorder& recorder() const noexcept { return recorder_; }
  const RetrainConfig& config() const noexcept { return config_; }

  /// Scheduler-thread poll: starts a cycle when a trigger condition
  /// holds and none is in flight. Returns true when a cycle was started
  /// (background) or completed (inline).
  bool maybe_trigger(std::chrono::steady_clock::time_point now);

  /// Runs one full cycle synchronously on the calling thread, regardless
  /// of trigger state (tests, benches, an operator's "retrain now").
  /// Must not be called concurrently with a background cycle.
  RetrainReport run_cycle();

  /// Moves out reports finished since the last drain (completion order).
  std::vector<RetrainReport> drain_reports();

  bool cycle_in_flight() const noexcept {
    return busy_.load(std::memory_order_acquire);
  }

  /// Waits for an in-flight background cycle to finish.
  void join();

  RetrainStats stats() const;

  /// Finished attempts, oldest first (bounded by kMaxRetrainLineage).
  std::vector<RetrainAttempt> lineage() const;

  /// EFD-RETRAIN-V1: serializes stats + lineage for the snapshot's
  /// Retrain section.
  std::vector<std::uint8_t> encode_state() const;

  /// Inverse of encode_state(). Returns false (controller untouched) on
  /// an unrecognized or corrupt blob; an empty blob is a no-op success.
  bool restore_state(const std::vector<std::uint8_t>& blob);

 private:
  RetrainReport execute_cycle(std::uint64_t cycle);
  void finish_cycle(RetrainReport report);
  /// Reaps a finished background thread (scheduler thread only).
  void reap_worker();
  /// Rebinds the recorder when the active epoch's fingerprint layout no
  /// longer matches the capture filter (scheduler/cycle thread only).
  /// Returns true when a rebind (window reset) happened.
  bool maybe_rebind_layout();

  core::RecognitionService& service_;
  RetrainConfig config_;
  TrafficRecorder recorder_;

  std::thread worker_;
  std::atomic<bool> busy_{false};
  bool timer_armed_ = false;
  std::chrono::steady_clock::time_point last_trigger_{};
  std::uint64_t captured_at_last_trigger_ = 0;

  mutable std::mutex mutex_;  ///< stats_, lineage_, pending_reports_
  RetrainStats stats_;
  std::vector<RetrainAttempt> lineage_;
  std::vector<RetrainReport> pending_reports_;
};

}  // namespace efd::retrain
