#include "retrain/validation_gate.hpp"

#include <algorithm>
#include <sstream>

#include "core/matcher.hpp"
#include "util/string_utils.hpp"

namespace efd::retrain {

GateScore score_dictionary(const core::DictionaryView& dictionary,
                           const telemetry::Dataset& holdout) {
  GateScore score;
  score.jobs = holdout.size();
  if (holdout.empty()) return score;

  const core::Matcher matcher(dictionary);
  std::size_t correct = 0;
  double coverage_sum = 0.0;
  for (const telemetry::ExecutionRecord& record : holdout.records()) {
    const core::RecognitionResult result = matcher.recognize(record, holdout);
    if (result.prediction() == record.label().application) ++correct;
    if (result.fingerprint_count > 0) {
      coverage_sum += static_cast<double>(result.matched_count) /
                      static_cast<double>(result.fingerprint_count);
    }
  }
  score.accuracy =
      static_cast<double>(correct) / static_cast<double>(holdout.size());
  score.coverage = coverage_sum / static_cast<double>(holdout.size());
  return score;
}

GateDecision evaluate_gate(const core::DictionaryView& candidate,
                           const core::DictionaryView& incumbent,
                           const telemetry::Dataset& holdout,
                           const ValidationGateConfig& config) {
  GateDecision decision;
  decision.candidate = score_dictionary(candidate, holdout);
  decision.incumbent = score_dictionary(incumbent, holdout);

  const double weight = std::clamp(config.coverage_weight, 0.0, 1.0);
  const auto combine = [weight](GateScore& score) {
    score.score =
        (1.0 - weight) * score.accuracy + weight * score.coverage;
  };
  combine(decision.candidate);
  combine(decision.incumbent);

  std::ostringstream reason;
  if (holdout.size() < config.min_holdout_jobs) {
    decision.promote = false;
    reason << "holdout too small (" << holdout.size() << " < "
           << config.min_holdout_jobs << " jobs)";
  } else if (decision.candidate.score >=
             decision.incumbent.score + config.margin) {
    decision.promote = true;
    reason << "candidate " << util::format_fixed(decision.candidate.score, 4)
           << " >= incumbent "
           << util::format_fixed(decision.incumbent.score, 4) << " + margin "
           << util::format_fixed(config.margin, 4);
  } else {
    decision.promote = false;
    reason << "candidate " << util::format_fixed(decision.candidate.score, 4)
           << " below incumbent "
           << util::format_fixed(decision.incumbent.score, 4) << " + margin "
           << util::format_fixed(config.margin, 4);
  }
  decision.reason = std::move(reason).str();
  return decision;
}

}  // namespace efd::retrain
