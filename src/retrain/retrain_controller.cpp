#include "retrain/retrain_controller.hpp"

#include <chrono>
#include <utility>

#include "core/trainer.hpp"
#include "util/binary_io.hpp"

namespace efd::retrain {

namespace {

/// EFD-RETRAIN-V1 blob version byte.
constexpr std::uint8_t kRetrainStateVersion = 1;
constexpr std::size_t kAttemptBytes = 8 + 1 + 8 + 8 + 8;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

bool valid_outcome(std::uint8_t byte) {
  return byte >= static_cast<std::uint8_t>(RetrainOutcome::kPromoted) &&
         byte <= static_cast<std::uint8_t>(RetrainOutcome::kDryRun);
}

}  // namespace

const char* retrain_outcome_name(RetrainOutcome outcome) {
  switch (outcome) {
    case RetrainOutcome::kPromoted: return "promoted";
    case RetrainOutcome::kGatedOut: return "gated-out";
    case RetrainOutcome::kAlreadyActive: return "already-active";
    case RetrainOutcome::kSkippedNoData: return "skipped-no-data";
    case RetrainOutcome::kFailed: return "failed";
    case RetrainOutcome::kDryRun: return "dry-run";
  }
  return "unknown";
}

RetrainController::RetrainController(core::RecognitionService& service,
                                     RetrainConfig config)
    : service_(service),
      config_(std::move(config)),
      recorder_(service.dictionary().config(), config_.recorder) {}

RetrainController::~RetrainController() { join(); }

void RetrainController::join() {
  if (worker_.joinable()) worker_.join();
}

void RetrainController::reap_worker() {
  if (!busy_.load(std::memory_order_acquire) && worker_.joinable()) {
    worker_.join();
  }
}

bool RetrainController::maybe_rebind_layout() {
  const auto incumbent = service_.dictionary_handle().acquire();
  const core::FingerprintConfig& live = incumbent->dictionary.config();
  const core::FingerprintConfig& captured = recorder_.layout();
  if (live.metrics == captured.metrics &&
      live.intervals == captured.intervals) {
    return false;
  }
  // A restore or manual swap-dict installed a different layout: the
  // captured window filters the wrong metrics/horizon and would train
  // every future candidate on systematically truncated data. Reset and
  // refill from live traffic instead of silently degrading.
  recorder_.rebind_layout(live);
  return true;
}

bool RetrainController::maybe_trigger(
    std::chrono::steady_clock::time_point now) {
  reap_worker();
  if (busy_.load(std::memory_order_acquire)) return false;
  maybe_rebind_layout();

  if (!timer_armed_) {
    // The first interval is measured from the first poll, not from an
    // epoch-zero time point that would fire immediately at startup.
    last_trigger_ = now;
    timer_armed_ = true;
  }
  const std::uint64_t captured = recorder_.jobs_captured();
  const std::uint64_t fresh = captured - captured_at_last_trigger_;
  // Without at least one new captured job a cycle could only retrain the
  // exact window the previous cycle saw — wasted work at best, an
  // already-active churn loop at worst.
  if (fresh == 0) return false;

  const bool timer_due =
      config_.interval.count() > 0 && now - last_trigger_ >= config_.interval;
  const bool count_due =
      config_.min_new_jobs > 0 && fresh >= config_.min_new_jobs;
  if (!timer_due && !count_due) return false;

  last_trigger_ = now;
  captured_at_last_trigger_ = captured;
  std::uint64_t cycle = 0;
  {
    std::lock_guard lock(mutex_);
    cycle = ++stats_.cycles_triggered;
  }
  if (!config_.background) {
    finish_cycle(execute_cycle(cycle));
    return true;
  }
  busy_.store(true, std::memory_order_release);
  worker_ = std::thread([this, cycle] {
    finish_cycle(execute_cycle(cycle));
    busy_.store(false, std::memory_order_release);
  });
  return true;
}

RetrainReport RetrainController::run_cycle() {
  maybe_rebind_layout();
  std::uint64_t cycle = 0;
  {
    std::lock_guard lock(mutex_);
    cycle = ++stats_.cycles_triggered;
  }
  captured_at_last_trigger_ = recorder_.jobs_captured();
  RetrainReport report = execute_cycle(cycle);
  finish_cycle(report);
  return report;
}

RetrainReport RetrainController::execute_cycle(std::uint64_t cycle) {
  RetrainReport report;
  report.cycle = cycle;
  // Pin the incumbent NOW: the gate must compare against the epoch that
  // was serving when the cycle started, even if a manual swap-dict lands
  // mid-train.
  const auto incumbent = service_.dictionary_handle().acquire();
  report.epoch = incumbent->version;
  try {
    const WindowSnapshot window = recorder_.snapshot_window();
    report.window_jobs = window.size();
    const core::FingerprintConfig layout = incumbent->dictionary.config();
    WindowSlices slices =
        slice_window(window, layout, config_.holdout_fraction);
    report.holdout_jobs = slices.holdout.size();
    if (slices.train.empty()) {
      report.outcome = RetrainOutcome::kSkippedNoData;
      report.detail = "window has no trainable slice";
      return report;
    }
    if (slices.holdout.size() < config_.gate.min_holdout_jobs) {
      // The gate could never certify this cycle — skip BEFORE paying for
      // the training run, and report it as a data problem (skipped), not
      // a quality verdict (gated-out).
      report.outcome = RetrainOutcome::kSkippedNoData;
      report.detail = "holdout too small to certify (" +
                      std::to_string(slices.holdout.size()) + " < " +
                      std::to_string(config_.gate.min_holdout_jobs) +
                      " jobs)";
      return report;
    }

    const std::size_t shards = config_.shard_count != 0
                                   ? config_.shard_count
                                   : incumbent->dictionary.shard_count();
    const auto train_start = std::chrono::steady_clock::now();
    core::ShardedDictionary candidate = core::train_dictionary_sharded(
        slices.train, layout, {}, shards, config_.pool);
    report.train_seconds = seconds_since(train_start);

    if (config_.after_train) config_.after_train();

    const auto gate_start = std::chrono::steady_clock::now();
    const GateDecision decision = evaluate_gate(
        candidate, incumbent->dictionary, slices.holdout, config_.gate);
    report.gate_seconds = seconds_since(gate_start);
    report.candidate_score = decision.candidate.score;
    report.incumbent_score = decision.incumbent.score;
    report.detail = decision.reason;

    if (!decision.promote) {
      report.outcome = RetrainOutcome::kGatedOut;
      return report;
    }
    if (config_.dry_run) {
      report.outcome = RetrainOutcome::kDryRun;
      report.detail = "dry-run withheld promotion: " + decision.reason;
      return report;
    }
    const auto swap = service_.swap_dictionary(std::move(candidate));
    report.epoch = swap.epoch;
    if (swap.already_active) {
      // The no-op guard doubles as double-promotion protection: an
      // at-least-once replay after a crash retrains the same window and
      // arrives here with a byte-identical candidate.
      report.outcome = RetrainOutcome::kAlreadyActive;
      report.detail = "candidate identical to the active dictionary";
    } else {
      report.outcome = RetrainOutcome::kPromoted;
    }
  } catch (const std::exception& error) {
    report.outcome = RetrainOutcome::kFailed;
    report.detail = error.what();
  }
  return report;
}

void RetrainController::finish_cycle(RetrainReport report) {
  {
    std::lock_guard lock(mutex_);
    switch (report.outcome) {
      case RetrainOutcome::kPromoted:
        ++stats_.cycles_trained;
        ++stats_.cycles_promoted;
        stats_.last_promoted_epoch = report.epoch;
        break;
      case RetrainOutcome::kGatedOut:
        ++stats_.cycles_trained;
        ++stats_.cycles_gated_out;
        break;
      case RetrainOutcome::kAlreadyActive:
        ++stats_.cycles_trained;
        ++stats_.cycles_already_active;
        break;
      case RetrainOutcome::kSkippedNoData:
        ++stats_.cycles_skipped_no_data;
        break;
      case RetrainOutcome::kFailed:
        ++stats_.cycles_failed;
        break;
      case RetrainOutcome::kDryRun:
        ++stats_.cycles_trained;
        ++stats_.cycles_dry_run;
        break;
    }
    stats_.last_cycle = report.cycle;
    stats_.last_candidate_score = report.candidate_score;
    stats_.last_incumbent_score = report.incumbent_score;

    lineage_.push_back({report.cycle, report.outcome, report.epoch,
                        report.candidate_score, report.incumbent_score});
    if (lineage_.size() > kMaxRetrainLineage) {
      lineage_.erase(lineage_.begin(),
                     lineage_.begin() +
                         static_cast<std::ptrdiff_t>(lineage_.size() -
                                                     kMaxRetrainLineage));
    }
    pending_reports_.push_back(report);
  }
  if (config_.on_report) config_.on_report(report);
}

std::vector<RetrainReport> RetrainController::drain_reports() {
  std::lock_guard lock(mutex_);
  std::vector<RetrainReport> drained;
  drained.swap(pending_reports_);
  return drained;
}

RetrainStats RetrainController::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

std::vector<RetrainAttempt> RetrainController::lineage() const {
  std::lock_guard lock(mutex_);
  return lineage_;
}

std::vector<std::uint8_t> RetrainController::encode_state() const {
  std::lock_guard lock(mutex_);
  std::vector<std::uint8_t> out;
  util::put_u8(out, kRetrainStateVersion);
  util::put_u64(out, stats_.cycles_triggered);
  util::put_u64(out, stats_.cycles_trained);
  util::put_u64(out, stats_.cycles_promoted);
  util::put_u64(out, stats_.cycles_gated_out);
  util::put_u64(out, stats_.cycles_already_active);
  util::put_u64(out, stats_.cycles_skipped_no_data);
  util::put_u64(out, stats_.cycles_failed);
  util::put_u64(out, stats_.cycles_dry_run);
  util::put_u64(out, stats_.last_cycle);
  util::put_u64(out, stats_.last_promoted_epoch);
  util::put_f64(out, stats_.last_candidate_score);
  util::put_f64(out, stats_.last_incumbent_score);
  util::put_u32(out, static_cast<std::uint32_t>(lineage_.size()));
  for (const RetrainAttempt& attempt : lineage_) {
    util::put_u64(out, attempt.cycle);
    util::put_u8(out, static_cast<std::uint8_t>(attempt.outcome));
    util::put_u64(out, attempt.epoch);
    util::put_f64(out, attempt.candidate_score);
    util::put_f64(out, attempt.incumbent_score);
  }
  return out;
}

bool RetrainController::restore_state(const std::vector<std::uint8_t>& blob) {
  if (blob.empty()) return true;  // snapshot predates the retrain loop
  util::ByteReader reader(blob.data(), blob.size());
  std::uint8_t version = 0;
  if (!reader.read_u8(version) || version != kRetrainStateVersion) {
    return false;
  }
  // Stage everything; the controller mutates only after the blob fully
  // validated (the snapshot decoder's all-or-nothing discipline).
  RetrainStats staged;
  if (!reader.read_u64(staged.cycles_triggered) ||
      !reader.read_u64(staged.cycles_trained) ||
      !reader.read_u64(staged.cycles_promoted) ||
      !reader.read_u64(staged.cycles_gated_out) ||
      !reader.read_u64(staged.cycles_already_active) ||
      !reader.read_u64(staged.cycles_skipped_no_data) ||
      !reader.read_u64(staged.cycles_failed) ||
      !reader.read_u64(staged.cycles_dry_run) ||
      !reader.read_u64(staged.last_cycle) ||
      !reader.read_u64(staged.last_promoted_epoch) ||
      !reader.read_f64(staged.last_candidate_score) ||
      !reader.read_f64(staged.last_incumbent_score)) {
    return false;
  }
  std::uint32_t count = 0;
  if (!reader.read_u32(count) ||
      static_cast<std::size_t>(count) * kAttemptBytes > reader.remaining() ||
      count > kMaxRetrainLineage) {
    return false;
  }
  std::vector<RetrainAttempt> staged_lineage;
  staged_lineage.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    RetrainAttempt attempt;
    std::uint8_t outcome = 0;
    if (!reader.read_u64(attempt.cycle) || !reader.read_u8(outcome) ||
        !valid_outcome(outcome) || !reader.read_u64(attempt.epoch) ||
        !reader.read_f64(attempt.candidate_score) ||
        !reader.read_f64(attempt.incumbent_score)) {
      return false;
    }
    attempt.outcome = static_cast<RetrainOutcome>(outcome);
    staged_lineage.push_back(attempt);
  }
  if (reader.remaining() != 0) return false;

  std::lock_guard lock(mutex_);
  stats_ = staged;
  lineage_ = std::move(staged_lineage);
  return true;
}

}  // namespace efd::retrain
