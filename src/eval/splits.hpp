#pragma once
/// \file splits.hpp
/// \brief The paper's five evaluation protocols (Section 4) as train/test
/// split generators, shared by the EFD and Taxonomist runners so both
/// methods are scored on identical rounds.
///
/// Executions have two identifying dimensions — application name and
/// input size — and the experiments differ in how learning and testing
/// sets are split along them:
///
///  1. normal fold   — stratified 5-fold CV on the full dataset.
///  2. soft input    — normal fold, with one input size removed from
///                     learning; testing sets stay the same. Averaged
///                     over the removed input.
///  3. soft unknown  — normal fold, with one application removed from
///                     learning; testing sets stay the same. The removed
///                     application's correct prediction is "unknown".
///  4. hard input    — learning has 3 of 4 input sizes, testing only the
///                     4th (exclusively unknown input sizes).
///  5. hard unknown  — learning has 10 of 11 applications, testing only
///                     the 11th (exclusively unknown applications).

#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/dataset.hpp"

namespace efd::eval {

enum class ExperimentKind {
  kNormalFold,
  kSoftInput,
  kSoftUnknown,
  kHardInput,
  kHardUnknown,
};

/// Paper-style display name ("normal fold", "soft input", ...).
std::string_view experiment_name(ExperimentKind kind) noexcept;

/// All five kinds, in Figure 2 order.
const std::vector<ExperimentKind>& all_experiments();

/// One scoring round: a learning set, a testing set, and the ground-truth
/// label the evaluation expects per test execution (application name, or
/// "unknown" for applications removed from learning).
struct EvaluationRound {
  std::vector<std::size_t> train;
  std::vector<std::size_t> test;
  std::vector<std::string> truth;  ///< aligned with test
  std::string description;         ///< e.g. "fold 2, removed input Y"
};

struct SplitConfig {
  std::size_t folds = 5;      ///< outer folds for normal/soft experiments
  std::uint64_t seed = 2021;
};

/// Builds the rounds of one experiment over a dataset. Soft experiments
/// yield folds x removed-dimension rounds; hard experiments yield one
/// round per removed input/application.
std::vector<EvaluationRound> make_rounds(const telemetry::Dataset& dataset,
                                         ExperimentKind kind,
                                         const SplitConfig& config = {});

/// Aggregated score of one experiment.
struct ExperimentScore {
  double mean_f1 = 0.0;
  std::vector<double> per_round_f1;
  std::vector<std::string> round_descriptions;
};

}  // namespace efd::eval
