#include "eval/report.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <ostream>
#include <set>
#include <stdexcept>

#include "util/csv.hpp"
#include "util/string_utils.hpp"

namespace efd::eval {

void write_results_csv(const std::vector<ResultSeries>& series,
                       std::ostream& out) {
  util::CsvWriter writer(out);
  writer.write_row({"series", "experiment", "round", "description", "f1"});
  for (const ResultSeries& s : series) {
    for (const auto& [kind, score] : s.results) {
      const std::string experiment(experiment_name(kind));
      for (std::size_t r = 0; r < score.per_round_f1.size(); ++r) {
        writer.write_row({s.name, experiment, std::to_string(r + 1),
                          r < score.round_descriptions.size()
                              ? score.round_descriptions[r]
                              : "",
                          util::format_fixed(score.per_round_f1[r], 6)});
      }
      writer.write_row(
          {s.name, experiment, "mean", "", util::format_fixed(score.mean_f1, 6)});
    }
  }
}

void write_results_csv_file(const std::vector<ResultSeries>& series,
                            const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  write_results_csv(series, out);
  if (!out) throw std::runtime_error("write failed: " + path);
}

void write_results_markdown(const std::vector<ResultSeries>& series,
                            std::ostream& out) {
  // Experiments in canonical order, restricted to those present anywhere.
  std::set<ExperimentKind> present;
  for (const ResultSeries& s : series) {
    for (const auto& [kind, score] : s.results) present.insert(kind);
  }

  out << "| experiment |";
  for (const ResultSeries& s : series) out << ' ' << s.name << " |";
  out << "\n|---|";
  for (std::size_t i = 0; i < series.size(); ++i) out << "---|";
  out << '\n';

  for (ExperimentKind kind : all_experiments()) {
    if (!present.count(kind)) continue;
    out << "| " << experiment_name(kind) << " |";
    for (const ResultSeries& s : series) {
      const auto it = std::find_if(
          s.results.begin(), s.results.end(),
          [kind](const auto& entry) { return entry.first == kind; });
      if (it == s.results.end()) {
        out << " – |";
        continue;
      }
      const ExperimentScore& score = it->second;
      double lo = 1.0, hi = 0.0;
      for (double f : score.per_round_f1) {
        lo = std::min(lo, f);
        hi = std::max(hi, f);
      }
      out << ' ' << util::format_fixed(score.mean_f1, 3);
      if (score.per_round_f1.size() > 1) {
        out << " (" << util::format_fixed(lo, 3) << "–"
            << util::format_fixed(hi, 3) << ")";
      }
      out << " |";
    }
    out << '\n';
  }
}

void write_results_markdown_file(const std::vector<ResultSeries>& series,
                                 const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  write_results_markdown(series, out);
  if (!out) throw std::runtime_error("write failed: " + path);
}

}  // namespace efd::eval
