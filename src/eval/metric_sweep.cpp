#include "eval/metric_sweep.hpp"

#include <algorithm>
#include <map>

#include "core/depth_selector.hpp"
#include "util/thread_pool.hpp"

namespace efd::eval {

std::vector<MetricSweepEntry> run_metric_sweep(const telemetry::Dataset& dataset,
                                               const MetricSweepConfig& config) {
  const std::vector<std::string> metrics =
      config.metrics.empty() ? dataset.metric_names() : config.metrics;

  std::vector<MetricSweepEntry> entries(metrics.size());

  auto sweep_one = [&](std::size_t m) {
    EfdExperimentConfig experiment = config.experiment;
    experiment.metrics = {metrics[m]};
    experiment.parallel = false;  // the sweep itself is the parallel axis

    MetricSweepEntry entry;
    entry.metric = metrics[m];
    entry.f_score =
        run_efd_experiment(dataset, ExperimentKind::kNormalFold, experiment)
            .mean_f1;

    // Report the depth the inner selection favours on the full dataset
    // (diagnostic column; the per-round depths are chosen per fold).
    if (experiment.auto_depth) {
      core::FingerprintConfig fp;
      fp.metrics = {metrics[m]};
      fp.intervals = experiment.intervals;
      core::DepthSelectionConfig inner = experiment.depth_selection;
      inner.parallel = false;
      entry.selected_depth =
          core::select_rounding_depth(dataset, fp, {}, inner).best_depth;
    } else {
      entry.selected_depth = experiment.fixed_depth;
    }
    entries[m] = std::move(entry);
  };

  if (config.parallel) {
    util::parallel_for(0, metrics.size(), sweep_one);
  } else {
    for (std::size_t m = 0; m < metrics.size(); ++m) sweep_one(m);
  }

  std::stable_sort(entries.begin(), entries.end(),
                   [](const MetricSweepEntry& a, const MetricSweepEntry& b) {
                     return a.f_score > b.f_score;
                   });
  return entries;
}

}  // namespace efd::eval
