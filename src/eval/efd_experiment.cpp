#include "eval/efd_experiment.hpp"

#include "core/matcher.hpp"
#include "core/trainer.hpp"
#include "ml/metrics.hpp"
#include "util/logging.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace efd::eval {

namespace {

core::FingerprintConfig base_fingerprint_config(const EfdExperimentConfig& config) {
  core::FingerprintConfig fp;
  fp.metrics = config.metrics;
  fp.intervals = config.intervals;
  fp.rounding_depth = config.fixed_depth;
  fp.combine_metrics = config.combine_metrics;
  return fp;
}

}  // namespace

ExperimentScore run_efd_experiment(const telemetry::Dataset& dataset,
                                   ExperimentKind kind,
                                   const EfdExperimentConfig& config) {
  const std::vector<EvaluationRound> rounds =
      make_rounds(dataset, kind, config.split);

  std::vector<std::size_t> metric_slots;
  metric_slots.reserve(config.metrics.size());
  for (const std::string& name : config.metrics) {
    metric_slots.push_back(dataset.metric_slot(name));
  }

  ExperimentScore score;
  score.per_round_f1.resize(rounds.size(), 0.0);
  score.round_descriptions.reserve(rounds.size());
  for (const EvaluationRound& round : rounds) {
    score.round_descriptions.push_back(round.description);
  }

  auto run_round = [&](std::size_t r) {
    const EvaluationRound& round = rounds[r];

    core::FingerprintConfig fp = base_fingerprint_config(config);
    if (config.auto_depth &&
        round.train.size() >= config.depth_selection.folds * 2) {
      // The paper selects the depth by CV inside the training set; the
      // inner selection must not look at this round's test executions.
      core::DepthSelectionConfig inner = config.depth_selection;
      inner.parallel = false;  // round-level parallelism is enough
      fp.rounding_depth =
          core::select_rounding_depth(dataset, fp, round.train, inner).best_depth;
    }

    const core::Dictionary dictionary =
        core::train_dictionary(dataset, fp, round.train);
    const core::Matcher matcher(dictionary);

    std::vector<std::string> predicted;
    predicted.reserve(round.test.size());
    for (std::size_t index : round.test) {
      predicted.push_back(
          matcher.recognize(dataset.record(index), metric_slots).prediction());
    }
    score.per_round_f1[r] = ml::macro_f1(round.truth, predicted);
  };

  if (config.parallel) {
    util::parallel_for(0, rounds.size(), run_round);
  } else {
    for (std::size_t r = 0; r < rounds.size(); ++r) run_round(r);
  }

  score.mean_f1 = util::mean(score.per_round_f1);
  EFD_LOG(kInfo, "efd-experiment")
      << experiment_name(kind) << ": mean F=" << score.mean_f1 << " over "
      << rounds.size() << " rounds";
  return score;
}

std::vector<std::pair<ExperimentKind, ExperimentScore>> run_all_efd_experiments(
    const telemetry::Dataset& dataset, const EfdExperimentConfig& config) {
  std::vector<std::pair<ExperimentKind, ExperimentScore>> results;
  for (ExperimentKind kind : all_experiments()) {
    results.emplace_back(kind, run_efd_experiment(dataset, kind, config));
  }
  return results;
}

}  // namespace efd::eval
