#pragma once
/// \file report.hpp
/// \brief Experiment result export: machine-readable CSV and
/// human-readable markdown, so bench output can feed plotting scripts and
/// CI regression checks without scraping ASCII tables.

#include <iosfwd>
#include <string>
#include <vector>

#include "eval/splits.hpp"

namespace efd::eval {

/// One named result series (e.g. "EFD" or "Taxonomist" in Figure 2).
struct ResultSeries {
  std::string name;
  /// (experiment, score) pairs, in presentation order.
  std::vector<std::pair<ExperimentKind, ExperimentScore>> results;
};

/// Writes a long-format CSV: series,experiment,round,description,f1 —
/// one row per round plus a summary row (round = "mean") per experiment.
void write_results_csv(const std::vector<ResultSeries>& series,
                       std::ostream& out);
void write_results_csv_file(const std::vector<ResultSeries>& series,
                            const std::string& path);

/// Writes a markdown comparison table: one row per experiment, one column
/// per series (mean F with per-round min/max in parentheses).
void write_results_markdown(const std::vector<ResultSeries>& series,
                            std::ostream& out);
void write_results_markdown_file(const std::vector<ResultSeries>& series,
                                 const std::string& path);

}  // namespace efd::eval
