#pragma once
/// \file taxonomist_experiment.hpp
/// \brief Runs the paper's experiments with the Taxonomist baseline on the
/// identical rounds, producing Figure 2's comparison series. The paper
/// reports the baseline only for the normal fold and soft experiments
/// ("the 'hard input' and 'hard unknown' experiments were not conducted
/// in the Taxonomist"), but the runner supports all five for the
/// extended comparison.

#include "eval/splits.hpp"
#include "ml/taxonomist.hpp"

namespace efd::eval {

struct TaxonomistExperimentConfig {
  ml::TaxonomistConfig pipeline{};
  SplitConfig split{};
  /// Confidence threshold applied in the unknown experiments (soft/hard
  /// unknown); the normal-fold/input runs keep the pipeline's own value.
  double unknown_threshold = 0.5;
  bool parallel = true;
};

ExperimentScore run_taxonomist_experiment(
    const telemetry::Dataset& dataset, ExperimentKind kind,
    const TaxonomistExperimentConfig& config = {});

}  // namespace efd::eval
