#include "eval/splits.hpp"

#include <stdexcept>

#include "core/matcher.hpp"  // kUnknownApplication
#include "ml/kfold.hpp"

namespace efd::eval {

std::string_view experiment_name(ExperimentKind kind) noexcept {
  switch (kind) {
    case ExperimentKind::kNormalFold: return "normal fold";
    case ExperimentKind::kSoftInput: return "soft input";
    case ExperimentKind::kSoftUnknown: return "soft unknown";
    case ExperimentKind::kHardInput: return "hard input";
    case ExperimentKind::kHardUnknown: return "hard unknown";
  }
  return "unknown experiment";
}

const std::vector<ExperimentKind>& all_experiments() {
  static const std::vector<ExperimentKind> kinds = {
      ExperimentKind::kNormalFold, ExperimentKind::kSoftInput,
      ExperimentKind::kSoftUnknown, ExperimentKind::kHardInput,
      ExperimentKind::kHardUnknown,
  };
  return kinds;
}

namespace {

/// Ground truth for a test record given the applications removed from
/// learning: the application name, or "unknown" when it was removed.
std::string truth_label(const telemetry::ExecutionRecord& record,
                        const std::vector<std::string>& removed_applications) {
  for (const std::string& removed : removed_applications) {
    if (record.label().application == removed) {
      return core::kUnknownApplication;
    }
  }
  return record.label().application;
}

std::vector<ml::FoldSplit> outer_folds(const telemetry::Dataset& dataset,
                                       const SplitConfig& config) {
  std::vector<std::string> strata;
  strata.reserve(dataset.size());
  for (const auto& record : dataset.records()) {
    strata.push_back(record.label().full());
  }
  return ml::stratified_kfold(strata, config.folds, config.seed);
}

}  // namespace

std::vector<EvaluationRound> make_rounds(const telemetry::Dataset& dataset,
                                         ExperimentKind kind,
                                         const SplitConfig& config) {
  if (dataset.empty()) throw std::invalid_argument("empty dataset");
  std::vector<EvaluationRound> rounds;

  const std::vector<std::string> applications = dataset.applications();
  const std::vector<std::string> inputs = dataset.input_sizes();

  switch (kind) {
    case ExperimentKind::kNormalFold: {
      for (const ml::FoldSplit& fold : outer_folds(dataset, config)) {
        EvaluationRound round;
        round.train = fold.train;
        round.test = fold.test;
        for (std::size_t index : round.test) {
          round.truth.push_back(dataset.record(index).label().application);
        }
        round.description = "fold " + std::to_string(rounds.size() + 1);
        rounds.push_back(std::move(round));
      }
      break;
    }

    case ExperimentKind::kSoftInput: {
      // Extends normal fold: each input size removed from learning once;
      // testing sets stay the same.
      const auto folds = outer_folds(dataset, config);
      for (const std::string& removed : inputs) {
        std::size_t fold_number = 0;
        for (const ml::FoldSplit& fold : folds) {
          ++fold_number;
          EvaluationRound round;
          for (std::size_t index : fold.train) {
            if (dataset.record(index).label().input_size != removed) {
              round.train.push_back(index);
            }
          }
          round.test = fold.test;
          for (std::size_t index : round.test) {
            round.truth.push_back(dataset.record(index).label().application);
          }
          round.description = "fold " + std::to_string(fold_number) +
                              ", removed input " + removed;
          rounds.push_back(std::move(round));
        }
      }
      break;
    }

    case ExperimentKind::kSoftUnknown: {
      // Each application removed from learning once; an execution of the
      // removed application is correctly predicted as "unknown".
      const auto folds = outer_folds(dataset, config);
      for (const std::string& removed : applications) {
        std::size_t fold_number = 0;
        for (const ml::FoldSplit& fold : folds) {
          ++fold_number;
          EvaluationRound round;
          for (std::size_t index : fold.train) {
            if (dataset.record(index).label().application != removed) {
              round.train.push_back(index);
            }
          }
          round.test = fold.test;
          for (std::size_t index : round.test) {
            round.truth.push_back(truth_label(dataset.record(index), {removed}));
          }
          round.description = "fold " + std::to_string(fold_number) +
                              ", removed app " + removed;
          rounds.push_back(std::move(round));
        }
      }
      break;
    }

    case ExperimentKind::kHardInput: {
      // Learning: 3 of 4 input sizes; testing: exclusively the 4th.
      for (const std::string& held_out : inputs) {
        EvaluationRound round;
        for (std::size_t i = 0; i < dataset.size(); ++i) {
          if (dataset.record(i).label().input_size == held_out) {
            round.test.push_back(i);
            round.truth.push_back(dataset.record(i).label().application);
          } else {
            round.train.push_back(i);
          }
        }
        round.description = "held-out input " + held_out;
        rounds.push_back(std::move(round));
      }
      break;
    }

    case ExperimentKind::kHardUnknown: {
      // Learning: 10 of 11 applications; testing: exclusively the 11th,
      // whose only correct prediction is "unknown".
      for (const std::string& held_out : applications) {
        EvaluationRound round;
        for (std::size_t i = 0; i < dataset.size(); ++i) {
          if (dataset.record(i).label().application == held_out) {
            round.test.push_back(i);
            round.truth.push_back(core::kUnknownApplication);
          } else {
            round.train.push_back(i);
          }
        }
        round.description = "held-out app " + held_out;
        rounds.push_back(std::move(round));
      }
      break;
    }
  }
  return rounds;
}

}  // namespace efd::eval
