#pragma once
/// \file efd_experiment.hpp
/// \brief Runs the paper's experiments with the EFD method.

#include "core/depth_selector.hpp"
#include "core/fingerprint.hpp"
#include "eval/splits.hpp"

namespace efd::eval {

struct EfdExperimentConfig {
  /// Metrics to fingerprint (paper headline: just nr_mapped_vmstat).
  std::vector<std::string> metrics{"nr_mapped_vmstat"};
  std::vector<telemetry::Interval> intervals{telemetry::kPaperInterval};
  bool combine_metrics = false;

  /// Depth policy: auto (inner CV on each round's training set — the
  /// paper's procedure) or fixed.
  bool auto_depth = true;
  int fixed_depth = 3;
  core::DepthSelectionConfig depth_selection{};

  SplitConfig split{};
  bool parallel = true;  ///< run rounds across the thread pool
};

/// Scores one experiment kind; returns macro F-score per round plus mean.
ExperimentScore run_efd_experiment(const telemetry::Dataset& dataset,
                                   ExperimentKind kind,
                                   const EfdExperimentConfig& config = {});

/// Runs all five experiments (Figure 2's EFD series).
std::vector<std::pair<ExperimentKind, ExperimentScore>> run_all_efd_experiments(
    const telemetry::Dataset& dataset, const EfdExperimentConfig& config = {});

}  // namespace efd::eval
