#pragma once
/// \file metric_sweep.hpp
/// \brief Per-metric recognition quality — regenerates Table 3
/// ("Excerpt of Individual System Metric Results"): the normal-fold
/// F-score of an EFD built on each individual system metric.

#include <string>
#include <vector>

#include "eval/efd_experiment.hpp"
#include "eval/splits.hpp"

namespace efd::eval {

struct MetricSweepEntry {
  std::string metric;
  double f_score = 0.0;
  int selected_depth = 0;  ///< depth chosen most often across rounds
};

struct MetricSweepConfig {
  /// Metrics to sweep; empty = every metric in the dataset.
  std::vector<std::string> metrics;
  EfdExperimentConfig experiment{};
  bool parallel = true;
};

/// Runs the normal-fold experiment once per metric and returns entries
/// sorted by F-score descending (Table 3's ordering).
std::vector<MetricSweepEntry> run_metric_sweep(const telemetry::Dataset& dataset,
                                               const MetricSweepConfig& config = {});

}  // namespace efd::eval
