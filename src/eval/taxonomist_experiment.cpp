#include "eval/taxonomist_experiment.hpp"

#include <algorithm>
#include <map>

#include "ml/kfold.hpp"
#include "ml/label_encoder.hpp"
#include "ml/metrics.hpp"
#include "ml/random_forest.hpp"
#include "ml/scaler.hpp"
#include "util/logging.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace efd::eval {

namespace {

/// Rows of `samples` belonging to the given executions.
std::vector<std::size_t> rows_for_executions(
    const ml::NodeSamples& samples, const std::vector<std::size_t>& executions) {
  std::vector<bool> wanted;
  for (std::size_t execution : executions) {
    if (execution >= wanted.size()) wanted.resize(execution + 1, false);
    wanted[execution] = true;
  }
  std::vector<std::size_t> rows;
  for (std::size_t row = 0; row < samples.execution_index.size(); ++row) {
    const std::size_t execution = samples.execution_index[row];
    if (execution < wanted.size() && wanted[execution]) rows.push_back(row);
  }
  return rows;
}

}  // namespace

ExperimentScore run_taxonomist_experiment(
    const telemetry::Dataset& dataset, ExperimentKind kind,
    const TaxonomistExperimentConfig& config) {
  const std::vector<EvaluationRound> rounds =
      make_rounds(dataset, kind, config.split);

  // Feature extraction is by far the dominant cost and is identical for
  // every round (features depend only on (execution, node, window)), so
  // extract the whole dataset once up front.
  const std::vector<std::string> metrics = config.pipeline.metrics.empty()
                                               ? dataset.metric_names()
                                               : config.pipeline.metrics;
  const ml::NodeSamples samples =
      ml::extract_node_samples(dataset, metrics, {}, config.pipeline.window);

  const bool unknown_experiment = kind == ExperimentKind::kSoftUnknown ||
                                  kind == ExperimentKind::kHardUnknown;
  const double threshold =
      unknown_experiment ? config.unknown_threshold
                         : config.pipeline.unknown_threshold;

  ExperimentScore score;
  score.per_round_f1.resize(rounds.size(), 0.0);
  for (const EvaluationRound& round : rounds) {
    score.round_descriptions.push_back(round.description);
  }

  auto run_round = [&](std::size_t r) {
    const EvaluationRound& round = rounds[r];
    const std::vector<std::size_t> train_rows =
        rows_for_executions(samples, round.train);

    // Scale and encode on training rows only (no test leakage).
    ml::StandardScaler scaler;
    scaler.fit(samples.features.gather_rows(train_rows));
    const ml::Matrix train_X =
        scaler.transform(samples.features.gather_rows(train_rows));

    ml::LabelEncoder encoder;
    std::vector<std::uint32_t> train_y;
    train_y.reserve(train_rows.size());
    for (std::size_t row : train_rows) {
      train_y.push_back(encoder.fit_encode(samples.labels[row]));
    }

    ml::ForestConfig forest_config = config.pipeline.forest;
    forest_config.parallel = !config.parallel;  // avoid nested oversubscription
    ml::RandomForest forest(forest_config);
    forest.fit(train_X, train_y, encoder.size());

    // Execution-level prediction: per-node labels (confidence-gated when
    // detecting unknowns) aggregated by majority vote.
    std::vector<std::string> predicted;
    predicted.reserve(round.test.size());
    for (std::size_t execution : round.test) {
      const std::vector<std::size_t> rows =
          rows_for_executions(samples, {execution});
      std::map<std::string, std::size_t> votes;
      for (std::size_t row : rows) {
        ml::Matrix one;
        one.append_row(samples.features.row(row));
        const ml::Matrix scaled = scaler.transform(one);
        const std::vector<double> proba = forest.predict_proba(scaled.row(0));
        const auto best =
            std::max_element(proba.begin(), proba.end()) - proba.begin();
        if (threshold > 0.0 && proba[static_cast<std::size_t>(best)] < threshold) {
          ++votes["unknown"];
        } else {
          ++votes[encoder.decode(static_cast<std::uint32_t>(best))];
        }
      }
      std::string winner;
      std::size_t winner_votes = 0;
      for (const auto& [label, count] : votes) {
        if (count > winner_votes) {
          winner = label;
          winner_votes = count;
        }
      }
      predicted.push_back(winner);
    }
    score.per_round_f1[r] = ml::macro_f1(round.truth, predicted);
  };

  if (config.parallel) {
    util::parallel_for(0, rounds.size(), run_round);
  } else {
    for (std::size_t r = 0; r < rounds.size(); ++r) run_round(r);
  }

  score.mean_f1 = util::mean(score.per_round_f1);
  EFD_LOG(kInfo, "taxonomist-experiment")
      << experiment_name(kind) << ": mean F=" << score.mean_f1 << " over "
      << rounds.size() << " rounds";
  return score;
}

}  // namespace efd::eval
