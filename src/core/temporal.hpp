#pragma once
/// \file temporal.hpp
/// \brief Temporally aligned fingerprints — the paper's Section 6
/// direction ("more exclusive, temporally aligned, and combinatorial
/// fingerprints, which would bring the EFD closer to the mechanism used
/// by Shazam").
///
/// Shazam gains exclusiveness by hashing *pairs of peaks with their time
/// offset*, not individual peaks. The analogue here: instead of one mean
/// over [60, 120), a temporal fingerprint carries the means of several
/// consecutive sub-windows in order, so two applications must agree on the
/// whole temporal profile — level *and* shape — to collide.
///
/// Two encodings are provided:
///  * absolute: the rounded mean of each sub-window
///    ([60:80) -> 7540, [80:100) -> 7540, [100:120) -> 7550);
///  * relative ("delta"): the first sub-window's rounded mean anchors the
///    key and subsequent windows contribute the rounded *ratio* to that
///    anchor — making the shape component invariant to small level shifts,
///    like Shazam's relative peak structure.

#include <vector>

#include "core/dictionary.hpp"
#include "core/fingerprint.hpp"
#include "telemetry/dataset.hpp"

namespace efd::core {

struct TemporalConfig {
  std::string metric = "nr_mapped_vmstat";
  /// First sub-window starts here (after the init phase, as in the paper).
  int window_begin = 60;
  /// Length of each sub-window in seconds.
  int window_length = 20;
  /// Number of consecutive sub-windows; 3 covers the paper's [60, 120).
  int window_count = 3;
  /// Rounding depth applied to the anchor mean (and to absolute windows).
  int rounding_depth = 3;
  /// Rounding depth applied to the ratios in relative mode (coarser than
  /// the anchor: shapes are noisier than levels).
  int ratio_depth = 3;
  /// Relative (delta) encoding instead of absolute sub-window means.
  bool relative = false;

  /// Envelope interval covered by the whole sequence.
  telemetry::Interval envelope() const noexcept {
    return {window_begin, window_begin + window_length * window_count};
  }
};

/// Builds one temporal key per node of the execution. Nodes whose series
/// do not cover the full envelope are skipped. The key's metric field is
/// tagged ("metric@T20x3" / "metric@T20x3r") so temporal keys never
/// alias plain keys in a shared dictionary.
std::vector<FingerprintKey> build_temporal_fingerprints(
    const telemetry::ExecutionRecord& record, const TemporalConfig& config,
    std::size_t metric_slot);

/// Convenience: resolves the metric slot from the dataset first.
std::vector<FingerprintKey> build_temporal_fingerprints(
    const telemetry::ExecutionRecord& record, const TemporalConfig& config,
    const telemetry::Dataset& dataset);

/// Trains a dictionary of temporal fingerprints (empty indices = all).
/// The dictionary's stored FingerprintConfig reflects the envelope and
/// depth so diagnostics remain meaningful; lookups must go through
/// build_temporal_fingerprints with the same TemporalConfig.
Dictionary train_temporal_dictionary(const telemetry::Dataset& dataset,
                                     const TemporalConfig& config,
                                     const std::vector<std::size_t>& indices = {});

}  // namespace efd::core
