#pragma once
/// \file dictionary_index.hpp
/// \brief Immutable flat probe index compiled from a frozen dictionary.
///
/// ShardedDictionary is built for concurrent *training*: N shards, each a
/// node-based hash map behind a shared_mutex. Between RCU epoch swaps the
/// published dictionary never changes, yet every recognition probe still
/// paid a lock acquisition, a bucket-list pointer chase, and a full
/// DictionaryEntry copy-out. DictionaryIndex is the read-side artifact the
/// serve path deserves: at publication time (train completion, epoch swap,
/// snapshot restore — see DictionaryHandle::Epoch) the frozen content is
/// compiled once into flat arrays, and probes touch nothing else.
///
/// Layout (all contiguous, no per-node allocation, no locks):
///
///   tags_        one byte per slot: 0 = empty, else 0x80 | top-7-bits of
///                the key's hash. A kTagScanWindow-byte mirror of the
///                first slots is appended so a scan window starting at any
///                slot can load wrap-free.
///   slot_entry_  u32 per slot -> entry ordinal (valid where tag != 0).
///   entries_     32-byte POD per key: node/interval/metric-id plus
///                [begin,count) cursors into the payload arrays.
///   means_       every key's rounded means, concatenated (CSR values).
///   label_ids_   every entry's interned label ids, concatenated — the
///                scoring loop votes straight off this span.
///
/// Probing is open addressing with linear windows: hash the key, scan
/// kTagScanWindow tags at once for candidate matches (SIMD fast path:
/// AVX2 compare+movemask, runtime-dispatched exactly like
/// rounding_kernel.cpp and honoring EFD_SIMD=off; the scalar build
/// produces bit-identical masks), verify candidates with full key
/// equality, stop at the first empty slot. Found/not-found semantics match
/// the shard maps exactly because equality is FingerprintKey::operator==
/// and the table holds precisely the published key set.
///
/// The index is derived state: never serialized (EFD-DICT-V1 unchanged),
/// rebuilt from content at every publish, and dropped — not patched — the
/// moment the owning dictionary learns a new observation (see
/// ShardedDictionary::probe_index). EFD_FLAT_INDEX=off disables
/// compilation entirely, restoring the sharded lookup path.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/dictionary.hpp"
#include "core/fingerprint.hpp"

namespace efd::core {

/// Slots examined per tag-scan step — one AVX2 register of tags.
inline constexpr std::size_t kTagScanWindow = 32;

namespace index_detail {

/// Computes candidate masks over one kTagScanWindow-byte window: bit i of
/// *match is set when tags[i] == tag, bit i of *empty when tags[i] == 0.
/// Both builds produce identical masks by construction (pure byte
/// compares); test_dictionary_index asserts it anyway.
void tag_scan_scalar(const std::uint8_t* tags, std::uint8_t tag,
                     std::uint32_t* match, std::uint32_t* empty) noexcept;
void tag_scan_avx2(const std::uint8_t* tags, std::uint8_t tag,
                   std::uint32_t* match, std::uint32_t* empty) noexcept;

}  // namespace index_detail

/// Name of the dispatched tag-scan kernel ("avx2" or "scalar").
const char* index_kernel_name() noexcept;

/// EFD_FLAT_INDEX gate, read per call so tests can toggle: "off"/"OFF"/
/// "0"/"false" disable index compilation (the escape hatch back to the
/// sharded probe path); anything else — including unset — enables it.
bool flat_index_enabled() noexcept;

/// The compiled index. Immutable after compile(); concurrent probes from
/// any number of threads are safe (const reads of frozen arrays).
class DictionaryIndex {
 public:
  /// One key's packed descriptor. 32 bytes: half a cache line, so a
  /// random probe touches at most two lines before the payload.
  struct Entry {
    std::uint32_t node_id = 0;
    std::uint32_t metric_id = 0;       ///< index into metric_names_
    std::int32_t begin_seconds = 0;
    std::int32_t end_seconds = 0;
    std::uint32_t means_begin = 0;     ///< cursor into means_
    std::uint32_t means_count = 0;
    std::uint32_t labels_begin = 0;    ///< cursor into label_ids_
    std::uint32_t labels_count = 0;
  };
  static_assert(sizeof(Entry) == 32);

  /// The placement hash: the dictionary's own FingerprintKeyHash run
  /// through a splitmix64 finalizer, because open addressing masks with
  /// the LOW bits while FNV concentrates its quality in the high ones.
  static std::uint64_t hash_key(const FingerprintKey& key) noexcept;

  /// Compiles the index from a dictionary's sorted_entries() output.
  /// Deterministic: identical content (in identical order) produces an
  /// identical table shape regardless of which process builds it — the
  /// restored-snapshot-equals-live-training test leans on this. Returns
  /// nullptr when any entry's label_ids are misaligned or unassigned
  /// (content populated outside insert()): callers then keep the sharded
  /// path, which handles such entries string-keyed.
  static std::shared_ptr<const DictionaryIndex> compile(
      const std::vector<std::pair<FingerprintKey, DictionaryEntry>>& entries);

  /// Pulls the probe's first tag/slot cache lines toward L1. Issue this
  /// for key i+K while resolving key i (Matcher pipelines with K = 8) so
  /// the random-access miss overlaps useful work instead of stalling it.
  void prefetch(std::uint64_t hash) const noexcept {
    if (slots_ == 0) return;
    const std::size_t pos = static_cast<std::size_t>(hash) & mask_;
    __builtin_prefetch(tags_.data() + pos, 0, 3);
    __builtin_prefetch(slot_entry_.data() + pos, 0, 2);
  }

  /// Probe with a precomputed hash_key() value. Returns the entry or
  /// nullptr; lock-free, allocation-free, safe from any thread.
  const Entry* find_hashed(const FingerprintKey& key,
                           std::uint64_t hash) const noexcept;

  /// Convenience single probe.
  const Entry* find(const FingerprintKey& key) const noexcept {
    return find_hashed(key, hash_key(key));
  }

  /// The entry's interned label ids — feed straight to
  /// RecognitionScratch::score_entry_ids.
  std::span<const std::uint32_t> label_ids(const Entry& entry) const noexcept {
    return {label_ids_.data() + entry.labels_begin, entry.labels_count};
  }

  std::size_t key_count() const noexcept { return entries_.size(); }
  std::size_t slot_count() const noexcept { return slots_; }

  /// Wall-clock cost of compile() — the efd_dictionary_index_build_seconds
  /// gauge, visible before anyone ships a thousand-tenant config.
  double build_seconds() const noexcept { return build_seconds_; }

  /// Total bytes resident in the index's arrays (the
  /// efd_dictionary_index_bytes gauge).
  std::uint64_t resident_bytes() const noexcept { return resident_bytes_; }

 private:
  DictionaryIndex() = default;

  /// Full key equality against a packed entry, cheapest fields first.
  /// Mirrors FingerprintKey::operator== (double ==, so a NaN mean never
  /// matches — same behavior the shard maps have).
  bool key_matches(const Entry& entry,
                   const FingerprintKey& key) const noexcept;

  std::size_t slots_ = 0;  ///< power of two >= kTagScanWindow; 0 = empty
  std::size_t mask_ = 0;
  std::vector<std::uint8_t> tags_;        ///< slots_ + kTagScanWindow mirror
  std::vector<std::uint32_t> slot_entry_;
  std::vector<Entry> entries_;
  std::vector<double> means_;
  std::vector<std::uint32_t> label_ids_;
  std::vector<std::string> metric_names_;  ///< distinct, first-seen order
  double build_seconds_ = 0.0;
  std::uint64_t resident_bytes_ = 0;
};

}  // namespace efd::core
