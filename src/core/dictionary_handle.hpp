#pragma once
/// \file dictionary_handle.hpp
/// \brief Versioned, hot-swappable holder of the active dictionary.
///
/// A production service must take a retrained dictionary live without
/// dropping the streams it is currently recognizing ("dictionary updates
/// while serving" — the ROADMAP's durable-serving gap). DictionaryHandle
/// is the RCU-snapshot publication point that makes that safe, the same
/// pattern ApplicationRegistry uses for application epoch order:
///
///  - The active dictionary lives inside an immutable-identity Epoch
///    (its ShardedDictionary stays internally synchronized, so learn()
///    keeps inserting into the active epoch). Readers pin an epoch once
///    per stream via acquire() — a single atomic shared_ptr load — and
///    then touch only the pinned epoch for the stream's whole life:
///    the per-sample recognition hot path never revisits the handle.
///  - swap() builds the successor Epoch (version + 1) and publishes it
///    with one atomic store. In-flight streams keep recognizing against
///    the epoch they pinned at open; streams opened after the swap see
///    the new one. No stream ever observes a half-swapped dictionary.
///  - Reclamation is reference-counted: a superseded epoch is freed the
///    moment the last in-flight stream pinned to it finishes — unlike
///    ApplicationRegistry's retire list, because dictionaries are far
///    too big to retain one per swap for the handle's lifetime.
///
/// version()/swap_count() are lock-free atomic reads (monitoring/stats
/// material). Thread-safety: all methods are safe to call concurrently;
/// moving a handle while other threads use it is not.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>

#include "core/sharded_dictionary.hpp"

namespace efd::core {

/// Publication point for the active dictionary epoch.
class DictionaryHandle {
 public:
  /// One published dictionary generation. The version is immutable; the
  /// dictionary itself is internally synchronized (online learning keeps
  /// inserting into the active epoch while streams recognize against it).
  struct Epoch {
    /// Construction is the publication point for the dictionary's derived
    /// read structures: the flat probe index (dictionary_index.hpp) is
    /// compiled here, so every path that publishes an epoch — initial
    /// handle construction (train completion), swap(), and the snapshot
    /// restorer's pre-built epoch for reset() — atomically ships
    /// structure + index together. In-flight streams keep their pinned
    /// epoch's index; EFD_FLAT_INDEX=off skips compilation.
    Epoch(std::uint64_t version, ShardedDictionary dictionary)
        : version(version), dictionary(std::move(dictionary)) {
      this->dictionary.compile_probe_index();
    }

    const std::uint64_t version;
    ShardedDictionary dictionary;
  };

  /// The initial dictionary becomes epoch 1.
  explicit DictionaryHandle(ShardedDictionary initial);

  DictionaryHandle(const DictionaryHandle&) = delete;
  DictionaryHandle& operator=(const DictionaryHandle&) = delete;

  /// Pins the active epoch: the returned pointer (and the dictionary
  /// inside it) stays valid until the caller drops it, across any number
  /// of concurrent swaps. One atomic load; never blocks on a swap.
  std::shared_ptr<Epoch> acquire() const {
    return current_.load(std::memory_order_acquire);
  }

  /// Version of the active epoch (starts at 1). Lock-free.
  std::uint64_t version() const noexcept {
    return version_.load(std::memory_order_acquire);
  }

  /// Number of swap()/reset() publications since construction. Lock-free.
  std::uint64_t swap_count() const noexcept {
    return swaps_.load(std::memory_order_relaxed);
  }

  /// Atomically publishes \p next as the new active epoch (version + 1)
  /// and returns that new version. In-flight pins keep their old epoch.
  std::uint64_t swap(ShardedDictionary next);

  /// Restore path: installs a pre-built epoch (explicit version) with an
  /// explicit swap-count — snapshot continuity across restarts. Taking
  /// the epoch ready-made lets the restorer pin streams to it BEFORE
  /// publication, so a failed restore never half-installs anything.
  void reset(std::shared_ptr<Epoch> epoch, std::uint64_t swap_count);

 private:
  std::atomic<std::shared_ptr<Epoch>> current_;
  std::atomic<std::uint64_t> version_;
  std::atomic<std::uint64_t> swaps_{0};
  /// Serializes swap()/reset() so versions stay dense and monotone;
  /// readers never take it (ApplicationRegistry's writer discipline).
  std::mutex writer_mutex_;
};

}  // namespace efd::core
