#include "core/rounding_kernel.hpp"

#include <atomic>
#include <cstdlib>
#include <string>

namespace efd::core {

namespace detail {

// Built with the same std::pow the legacy path called at runtime, so the
// scale bits (including the inf/0 entries past the double range) match
// exactly. Dynamic init is fine: nothing in this project rounds during
// static initialization.
const std::array<double, 2 * kPow10Bias + 1> kPow10 = [] {
  std::array<double, 2 * kPow10Bias + 1> table{};
  for (int k = -kPow10Bias; k <= kPow10Bias; ++k) {
    table[static_cast<std::size_t>(k + kPow10Bias)] =
        std::pow(10.0, static_cast<double>(k));
  }
  return table;
}();

// floor((e-1023)*log10(2)). The product is never within ~1e-3 of an
// integer for |e-1023| <= 1023 (continued-fraction bound on log10(2)),
// so double arithmetic computes the floor exactly.
const std::array<std::int16_t, 2048> kDecadeEstimate = [] {
  std::array<std::int16_t, 2048> table{};
  for (int e = 1; e < 2047; ++e) {
    table[static_cast<std::size_t>(e)] = static_cast<std::int16_t>(
        std::floor(static_cast<double>(e - 1023) * std::log10(2.0)));
  }
  return table;
}();

}  // namespace detail

namespace {

// Shared loop body for every target build. round_value screens specials
// and clamps depth per element; the compiler hoists the table bases and
// vectorizes the arithmetic under the wider target.
inline void round_lanes_body(std::span<double> values, int depth) noexcept {
  if (depth < 1) depth = 1;
  if (depth > kKernelMaxDepth) depth = kKernelMaxDepth;
  for (double& value : values) {
    value = round_value(value, depth);
  }
}

}  // namespace

namespace {

// Shared loop body of accumulate_lanes for every target build. The
// per-lane work is branchless (masked selects over parallel arrays), so
// the wider target vectorizes it; the sum update uses the blend form
// `in ? sum + value : sum` — NOT `sum += in ? value : 0.0`, because
// adding a signed zero is not an IEEE identity (-0.0 + 0.0 == +0.0) and
// would break scalar/AVX2 bit parity.
inline std::size_t accumulate_lanes_body(const AccumulatorLanes& lanes,
                                         std::int32_t t,
                                         double value) noexcept {
  std::size_t completed = 0;
  for (std::size_t i = 0; i < lanes.size; ++i) {
    const std::int32_t last = lanes.last_ts[i];
    const std::int32_t end = lanes.ends[i];
    const std::uint64_t count = lanes.counts[i];
    const bool fresh = t > last;  // dup/out-of-order ticks change nothing
    const bool in_window = fresh & (t >= lanes.begins[i]) & (t < end);
    const bool was_complete = (last >= end - 1) & (count > 0);
    const double sum = lanes.sums[i];
    lanes.sums[i] = in_window ? sum + value : sum;
    const std::uint64_t next_count = count + (in_window ? 1u : 0u);
    lanes.counts[i] = next_count;
    // last_t advances on every fresh tick, in-window or not — the same
    // monotone clock WindowAccumulator::push keeps.
    const std::int32_t next_last = fresh ? t : last;
    lanes.last_ts[i] = next_last;
    const bool now_complete = (next_last >= end - 1) & (next_count > 0);
    completed += static_cast<std::size_t>(now_complete & !was_complete);
  }
  return completed;
}

}  // namespace

void round_lanes_scalar(std::span<double> values, int depth) noexcept {
  round_lanes_body(values, depth);
}

std::size_t accumulate_lanes_scalar(const AccumulatorLanes& lanes,
                                    std::int32_t t, double value) noexcept {
  return accumulate_lanes_body(lanes, t, value);
}

#if defined(__x86_64__) || defined(__i386__)
__attribute__((target("avx2,fma"))) void round_lanes_avx2(
    std::span<double> values, int depth) noexcept {
  // Same body, compiled for AVX2. No a*b+c shapes exist in round_normal
  // (fabs/floor/copysign separate every multiply from every add), so
  // enabling FMA here cannot contract anything and the results stay
  // bit-identical to the scalar build — test_hot_path asserts this.
  round_lanes_body(values, depth);
}

__attribute__((target("avx2,fma"))) std::size_t accumulate_lanes_avx2(
    const AccumulatorLanes& lanes, std::int32_t t, double value) noexcept {
  // One add and three compares per lane — nothing FMA-contractible, so
  // this build is bit-identical to the scalar one by construction.
  return accumulate_lanes_body(lanes, t, value);
}
#else
void round_lanes_avx2(std::span<double> values, int depth) noexcept {
  round_lanes_body(values, depth);
}

std::size_t accumulate_lanes_avx2(const AccumulatorLanes& lanes,
                                  std::int32_t t, double value) noexcept {
  return accumulate_lanes_body(lanes, t, value);
}
#endif

namespace {

using LanesFn = void (*)(std::span<double>, int) noexcept;
using AccumFn = std::size_t (*)(const AccumulatorLanes&, std::int32_t,
                                double) noexcept;

bool simd_disabled_by_env() {
  const char* env = std::getenv("EFD_SIMD");
  if (env == nullptr) return false;
  const std::string value(env);
  return value == "off" || value == "OFF" || value == "0" ||
         value == "scalar";
}

LanesFn pick_kernel(const char** name, AccumFn* accumulate) {
#if defined(__x86_64__) || defined(__i386__)
  if (!simd_disabled_by_env() && __builtin_cpu_supports("avx2")) {
    *name = "avx2";
    *accumulate = &accumulate_lanes_avx2;
    return &round_lanes_avx2;
  }
#else
  (void)simd_disabled_by_env;
#endif
  *name = "scalar";
  *accumulate = &accumulate_lanes_scalar;
  return &round_lanes_scalar;
}

struct Dispatch {
  const char* name = "scalar";
  LanesFn fn = &round_lanes_scalar;
  AccumFn accumulate = &accumulate_lanes_scalar;
  Dispatch() { fn = pick_kernel(&name, &accumulate); }
};

const Dispatch& dispatch() {
  static const Dispatch chosen;
  return chosen;
}

}  // namespace

void round_lanes(std::span<double> values, int depth) noexcept {
  dispatch().fn(values, depth);
}

std::size_t accumulate_lanes(const AccumulatorLanes& lanes, std::int32_t t,
                             double value) noexcept {
  return dispatch().accumulate(lanes, t, value);
}

bool simd_active() noexcept { return dispatch().fn != &round_lanes_scalar; }

const char* kernel_name() noexcept { return dispatch().name; }

}  // namespace efd::core
