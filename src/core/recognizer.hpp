#pragma once
/// \file recognizer.hpp
/// \brief High-level facade: configure once, train, recognize — the
/// public entry point most library users want (see examples/quickstart).

#include <optional>
#include <string>
#include <vector>

#include "core/depth_selector.hpp"
#include "core/dictionary.hpp"
#include "core/matcher.hpp"
#include "core/trainer.hpp"
#include "telemetry/dataset.hpp"

namespace efd::core {

/// End-user configuration of the recognizer.
struct RecognizerConfig {
  /// Metrics to fingerprint; the paper's headline configuration is the
  /// single metric "nr_mapped_vmstat".
  std::vector<std::string> metrics{"nr_mapped_vmstat"};

  /// Fingerprint windows (paper: {[60,120)}).
  std::vector<telemetry::Interval> intervals{telemetry::kPaperInterval};

  /// Fixed rounding depth; ignored when auto_depth is set.
  int rounding_depth = 2;

  /// Select the depth by inner cross-validation on the training set (the
  /// paper's procedure). Falls back to rounding_depth if selection is
  /// impossible (e.g. too few training executions for the inner folds).
  bool auto_depth = true;
  DepthSelectionConfig depth_selection{};

  /// Combinatorial multi-metric fingerprints (paper Section 6).
  bool combine_metrics = false;
};

/// Trainable application recognizer.
class Recognizer {
 public:
  explicit Recognizer(RecognizerConfig config = {});

  /// Learns a dictionary from the given records (empty = all). Performs
  /// depth selection first when configured.
  void train(const telemetry::Dataset& dataset,
             const std::vector<std::size_t>& train_indices = {});

  /// Like train(), but builds the dictionary with the deterministic
  /// sharded parallel trainer (train_dictionary_sharded) across the
  /// global thread pool. The resulting dictionary is identical to the
  /// one train() produces. Call from outside pool workers only.
  void train_parallel(const telemetry::Dataset& dataset,
                      const std::vector<std::size_t>& train_indices = {},
                      std::size_t shard_count = 0,
                      util::ThreadPool* pool = nullptr);

  /// Recognizes one execution. Requires train() first.
  RecognitionResult recognize(const telemetry::Dataset& dataset,
                              const telemetry::ExecutionRecord& record) const;

  /// Recognizes every record of \p dataset, fanned out across a thread
  /// pool (global pool when null). Results align with dataset records.
  std::vector<RecognitionResult> recognize_batch(
      const telemetry::Dataset& dataset,
      util::ThreadPool* pool = nullptr) const;

  /// Snapshot of the trained dictionary as a concurrent sharded engine
  /// (for RecognitionService or lock-free scale-out of lookups).
  ShardedDictionary make_sharded(std::size_t shard_count = 0) const;

  /// Adds one labeled execution to an already-trained dictionary —
  /// "learning new applications is as simple as adding new keys"
  /// (paper Section 6).
  void learn_execution(const telemetry::Dataset& dataset,
                       const telemetry::ExecutionRecord& record);

  bool trained() const noexcept { return dictionary_.has_value(); }
  const Dictionary& dictionary() const;

  /// Depth actually in use (after auto selection).
  int rounding_depth() const;

  /// Inner-CV scores from the last auto selection (empty if fixed depth).
  const std::map<int, double>& depth_scores() const noexcept {
    return depth_scores_;
  }

  /// Persistence.
  void save(const std::string& path) const;
  static Recognizer load(const std::string& path);

 private:
  FingerprintConfig fingerprint_config() const;
  void select_depth(const telemetry::Dataset& dataset,
                    const std::vector<std::size_t>& train_indices);

  RecognizerConfig config_;
  std::optional<Dictionary> dictionary_;
  std::map<int, double> depth_scores_;
  int selected_depth_ = 0;
};

}  // namespace efd::core
