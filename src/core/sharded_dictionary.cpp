#include "core/sharded_dictionary.hpp"

#include <algorithm>
#include <fstream>
#include <mutex>
#include <ostream>
#include <set>
#include <stdexcept>
#include <thread>

#include "telemetry/execution_record.hpp"

namespace efd::core {

std::size_t ShardedDictionary::default_shard_count() {
  const std::size_t hardware =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  return std::min(kMaxShards, std::max<std::size_t>(1, hardware * 4));
}

ShardedDictionary::ShardedDictionary(FingerprintConfig config,
                                     std::size_t shard_count)
    : config_(std::move(config)) {
  if (shard_count == 0) shard_count = default_shard_count();
  shard_count = std::min(shard_count, kMaxShards);
  shards_.reserve(shard_count);
  for (std::size_t s = 0; s < shard_count; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

ShardedDictionary::ShardedDictionary(ShardedDictionary&& other) noexcept
    : config_(std::move(other.config_)),
      shards_(std::move(other.shards_)),
      applications_(std::move(other.applications_)),
      labels_(std::move(other.labels_)),
      index_(std::move(other.index_)),
      index_stale_(other.index_stale_.load(std::memory_order_relaxed)) {}

ShardedDictionary& ShardedDictionary::operator=(
    ShardedDictionary&& other) noexcept {
  if (this != &other) {
    config_ = std::move(other.config_);
    shards_ = std::move(other.shards_);
    applications_ = std::move(other.applications_);
    labels_ = std::move(other.labels_);
    index_ = std::move(other.index_);
    index_stale_.store(other.index_stale_.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
  }
  return *this;
}

void ShardedDictionary::compile_probe_index() {
  if (!flat_index_enabled()) {
    index_.reset();
    return;
  }
  index_ = DictionaryIndex::compile(sorted_entries());
  index_stale_.store(false, std::memory_order_release);
}

std::size_t ShardedDictionary::shard_of(
    const FingerprintKey& key) const noexcept {
  return FingerprintKeyHash{}(key) % shards_.size();
}

std::size_t ShardedDictionary::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::shared_lock lock(shard->mutex);
    total += shard->entries.size();
  }
  return total;
}

void ShardedDictionary::register_application(const std::string& application) {
  applications_.register_application(application);
}

void ShardedDictionary::insert(const FingerprintKey& key,
                               const std::string& label,
                               std::uint32_t count) {
  if (count == 0) return;
  // Online learning into a published epoch outdates its compiled index:
  // hide it BEFORE the shard mutation so a probe that still sees the
  // index races only with this insert's visibility (the same guarantee a
  // reader overlapping the shard lock had), never with a later one.
  invalidate_probe_index();
  // Lock-free when the application is already registered (every insert
  // but an application's first); no lock is ever held with a shard mutex.
  // Interning likewise happens before the shard lock, so a reader that
  // copies an entry out under the shard lock is guaranteed to find every
  // id it sees already published in the label table.
  applications_.register_application(telemetry::parse_label(label).application);
  const std::uint32_t label_id = labels_->intern(label);
  Shard& shard = *shards_[shard_of(key)];
  std::unique_lock lock(shard.mutex);
  DictionaryEntry& entry = shard.entries[key];
  entry.observe(label, count);
  // observe() appends at most this one label at the end; append the id
  // exactly when labels grew to keep the lists aligned.
  if (entry.label_ids.size() < entry.labels.size()) {
    entry.label_ids.push_back(label_id);
  }
}

bool ShardedDictionary::lookup_entry(const FingerprintKey& key,
                                     DictionaryEntry& out) const {
  out.labels.clear();
  out.counts.clear();
  out.label_ids.clear();
  const Shard& shard = *shards_[shard_of(key)];
  std::shared_lock lock(shard.mutex);
  const auto it = shard.entries.find(key);
  if (it == shard.entries.end()) return false;
  out = it->second;
  return true;
}

std::size_t ShardedDictionary::application_order(
    const std::string& application) const {
  return applications_.order_of(application);  // unknowns sort last
}

std::vector<std::string> ShardedDictionary::applications_in_order() const {
  return applications_.in_order();
}

std::size_t ShardedDictionary::prune_rare(std::uint32_t min_observations) {
  invalidate_probe_index();
  std::size_t removed = 0;
  for (const auto& shard : shards_) {
    std::unique_lock lock(shard->mutex);
    for (auto it = shard->entries.begin(); it != shard->entries.end();) {
      if (it->second.total_count() < min_observations) {
        it = shard->entries.erase(it);
        ++removed;
      } else {
        ++it;
      }
    }
  }
  return removed;
}

void ShardedDictionary::merge(const Dictionary& other) {
  const FingerprintConfig& a = config_;
  const FingerprintConfig& b = other.config();
  if (!(a.metrics == b.metrics && a.intervals == b.intervals &&
        a.rounding_depth == b.rounding_depth &&
        a.combine_metrics == b.combine_metrics)) {
    throw std::invalid_argument(
        "cannot merge dictionaries with different configs");
  }
  // Adopt the source's application epoch order first so tie-breaking is
  // deterministic regardless of entry iteration order below.
  for (const std::string& application : other.applications_in_order()) {
    register_application(application);
  }
  for (const auto& [key, entry] : other) {
    for (std::size_t i = 0; i < entry.labels.size(); ++i) {
      insert(key, entry.labels[i], entry.counts[i]);
    }
  }
}

DictionaryStats ShardedDictionary::stats() const {
  DictionaryStats stats;
  std::size_t label_total = 0;
  for (const auto& shard : shards_) {
    std::shared_lock lock(shard->mutex);
    stats.key_count += shard->entries.size();
    for (const auto& [key, entry] : shard->entries) {
      std::set<std::string> applications;
      for (const auto& label : entry.labels) {
        applications.insert(telemetry::parse_label(label).application);
      }
      if (applications.size() <= 1) ++stats.exclusive_keys;
      else ++stats.colliding_keys;
      label_total += entry.labels.size();
      stats.total_observations += entry.total_count();
    }
  }
  stats.mean_labels_per_key =
      stats.key_count == 0 ? 0.0
                           : static_cast<double>(label_total) /
                                 static_cast<double>(stats.key_count);
  return stats;
}

std::vector<std::pair<FingerprintKey, DictionaryEntry>>
ShardedDictionary::sorted_entries() const {
  std::vector<std::pair<FingerprintKey, DictionaryEntry>> sorted;
  for (const auto& shard : shards_) {
    std::shared_lock lock(shard->mutex);
    sorted.insert(sorted.end(), shard->entries.begin(), shard->entries.end());
  }
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    return detail::fingerprint_key_before(a.first, b.first);
  });
  return sorted;
}

std::vector<FingerprintKey> ShardedDictionary::keys_for_label(
    const std::string& label) const {
  std::vector<FingerprintKey> keys;
  for (const auto& [key, entry] : sorted_entries()) {
    if (entry.contains(label)) keys.push_back(key);
  }
  return keys;
}

void ShardedDictionary::save(std::ostream& out) const {
  detail::save_dictionary_text(out, config_, sorted_entries());
}

void ShardedDictionary::save_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  save(out);
  if (!out) throw std::runtime_error("write failed: " + path);
}

ShardedDictionary ShardedDictionary::load(std::istream& in,
                                          std::size_t shard_count) {
  return from_dictionary(Dictionary::load(in), shard_count);
}

ShardedDictionary ShardedDictionary::load_file(const std::string& path,
                                               std::size_t shard_count) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open dictionary: " + path);
  return load(in, shard_count);
}

ShardedDictionary ShardedDictionary::from_dictionary(
    const Dictionary& dictionary, std::size_t shard_count) {
  ShardedDictionary sharded(dictionary.config(), shard_count);
  sharded.merge(dictionary);
  return sharded;
}

Dictionary ShardedDictionary::to_dictionary() const {
  Dictionary dictionary(config_);
  // Replay observations label-by-label: entry label order and counts are
  // preserved, and pre-seeding the epoch order keeps tie-breaking exact.
  for (const std::string& application : applications_in_order()) {
    dictionary.register_application(application);
  }
  for (const auto& [key, entry] : sorted_entries()) {
    for (std::size_t i = 0; i < entry.labels.size(); ++i) {
      dictionary.insert(key, entry.labels[i], entry.counts[i]);
    }
  }
  return dictionary;
}

}  // namespace efd::core
