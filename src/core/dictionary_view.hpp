#pragma once
/// \file dictionary_view.hpp
/// \brief Read-side abstraction over a trained Execution Fingerprint
/// Dictionary.
///
/// The recognition path (Matcher, OnlineRecognizer, RecognitionService)
/// only ever needs three things from a dictionary: its fingerprint
/// config, entry lookup, and the application first-seen order used for
/// paper-identical tie-breaking. DictionaryView captures exactly that,
/// so the same recognition code runs against the single-threaded
/// Dictionary and the concurrent ShardedDictionary.
///
/// lookup_entry copies the entry out instead of returning a pointer:
/// concurrent implementations hold their shard lock only for the
/// duration of the copy, so readers never observe a half-written entry
/// while training keeps inserting.

#include <string>

#include "core/fingerprint.hpp"

namespace efd::core {

struct DictionaryEntry;
class DictionaryIndex;
class LabelTable;

/// Read-only view of a trained dictionary. Implementations state their
/// own thread-safety: Dictionary is single-threaded, ShardedDictionary
/// supports concurrent lookup_entry/application_order against inserts.
class DictionaryView {
 public:
  virtual ~DictionaryView() = default;

  /// Fingerprinting settings the dictionary was trained with. Stable for
  /// the lifetime of the dictionary (never mutated after construction).
  virtual const FingerprintConfig& config() const noexcept = 0;

  /// Copies the entry for \p key into \p out (clearing previous
  /// contents); returns false and leaves \p out empty if absent.
  virtual bool lookup_entry(const FingerprintKey& key,
                            DictionaryEntry& out) const = 0;

  /// Application-name first-seen rank (for deterministic tie arrays);
  /// unknown applications rank last.
  virtual std::size_t application_order(const std::string& application) const = 0;

  /// Label interner backing the allocation-free id-based scoring path, or
  /// nullptr when the implementation does not provide one (callers fall
  /// back to string-keyed scoring). The table is append-only and owned by
  /// the dictionary; ids are stable for the dictionary's lifetime.
  virtual const LabelTable* label_table() const noexcept { return nullptr; }

  /// Compiled flat probe index (dictionary_index.hpp), or nullptr when no
  /// index is published — because the implementation never compiles one,
  /// EFD_FLAT_INDEX=off, or the dictionary has learned since the last
  /// compile (the index is a snapshot of frozen content, never patched).
  /// Callers holding the dictionary may hold the returned pointer for the
  /// same lifetime: a compiled index is only ever released with its
  /// dictionary.
  virtual const DictionaryIndex* probe_index() const noexcept {
    return nullptr;
  }
};

}  // namespace efd::core
