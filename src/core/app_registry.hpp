#pragma once
/// \file app_registry.hpp
/// \brief Lock-free-read registry of application first-seen (epoch) order.
///
/// Every ShardedDictionary::insert must know whether a label's application
/// has been seen before (tie-break order is global first-seen order, paper
/// §3 / Table 4), and every recognition tie-break queries that order. With
/// a shared_mutex both paths funnel through one global lock — the last
/// global contention point on the write path. This registry removes it:
///
///  - Readers (contains / order_of / size / in_order) do a single
///    acquire-load of an immutable snapshot pointer and a hash lookup —
///    no lock, no reference counting, no retries.
///  - Writers (register_application) are rare: an application is
///    registered once per dictionary lifetime. They serialize on a plain
///    mutex, copy the current snapshot, add the new name, and publish the
///    successor with a release store (RCU-style copy-on-write).
///
/// Reclamation: superseded snapshots are retired into a list owned by the
/// registry and freed on destruction. One snapshot is retired per distinct
/// application ever registered, so retained memory is O(applications²)
/// strings — the paper's deployments see dozens of applications, making
/// this bound a few kilobytes. In exchange, readers never synchronize
/// with reclamation at all.
///
/// Thread-safety: all methods are safe to call concurrently. Moving a
/// registry while other threads use it is not (same contract as
/// ShardedDictionary).

#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace efd::core {

/// Application names in global first-seen order, lock-free to read.
class ApplicationRegistry {
 public:
  ApplicationRegistry();
  ~ApplicationRegistry();

  ApplicationRegistry(ApplicationRegistry&& other) noexcept;
  ApplicationRegistry& operator=(ApplicationRegistry&& other) noexcept;
  ApplicationRegistry(const ApplicationRegistry&) = delete;
  ApplicationRegistry& operator=(const ApplicationRegistry&) = delete;

  /// True if the application has been registered. Lock-free.
  bool contains(const std::string& application) const noexcept;

  /// Epoch rank of an application; unknown applications rank last
  /// (== size() at the time of the call). Lock-free.
  std::size_t order_of(const std::string& application) const noexcept;

  /// Number of registered applications. Lock-free.
  std::size_t size() const noexcept;

  /// All applications in epoch order. Lock-free read (copies the names).
  std::vector<std::string> in_order() const;

  /// Registers an application; the first call wins (idempotent). Fast
  /// lock-free exit when already registered — the insert hot path.
  void register_application(const std::string& application);

 private:
  struct Snapshot {
    std::unordered_map<std::string, std::size_t> rank;
    std::vector<std::string> names;  ///< index == epoch rank
  };

  /// The shared immutable empty snapshot (fresh and moved-from
  /// registries point here; never owned, never freed).
  static const Snapshot* empty_snapshot();

  const Snapshot* snapshot() const noexcept {
    return current_.load(std::memory_order_acquire);
  }

  std::atomic<const Snapshot*> current_;
  std::mutex writer_mutex_;
  /// Owns every snapshot ever published (current one included); guarded
  /// by writer_mutex_. Freed only on destruction/move so readers need no
  /// synchronized reclamation.
  std::vector<std::unique_ptr<const Snapshot>> snapshots_;
};

}  // namespace efd::core
