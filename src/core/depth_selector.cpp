#include "core/depth_selector.hpp"

#include <numeric>

#include "core/matcher.hpp"
#include "core/trainer.hpp"
#include "ml/kfold.hpp"
#include "ml/metrics.hpp"
#include "util/logging.hpp"
#include "util/thread_pool.hpp"

namespace efd::core {

DepthSelectionResult select_rounding_depth(
    const telemetry::Dataset& dataset, const FingerprintConfig& base,
    const std::vector<std::size_t>& train_indices,
    const DepthSelectionConfig& selection) {
  std::vector<std::size_t> indices = train_indices;
  if (indices.empty()) {
    indices.resize(dataset.size());
    std::iota(indices.begin(), indices.end(), std::size_t{0});
  }

  // Stratify the inner folds on full labels so each fold covers every
  // (application, input) pair when possible.
  std::vector<std::string> strata;
  strata.reserve(indices.size());
  for (std::size_t index : indices) {
    strata.push_back(dataset.record(index).label().full());
  }
  const std::vector<ml::FoldSplit> folds =
      ml::stratified_kfold(strata, selection.folds, selection.seed);

  std::vector<std::size_t> metric_slots;
  metric_slots.reserve(base.metrics.size());
  for (const std::string& name : base.metrics) {
    metric_slots.push_back(dataset.metric_slot(name));
  }

  const int depth_count = selection.max_depth - selection.min_depth + 1;
  std::vector<double> mean_f(static_cast<std::size_t>(depth_count), 0.0);

  auto evaluate_depth = [&](std::size_t depth_offset) {
    const int depth = selection.min_depth + static_cast<int>(depth_offset);
    FingerprintConfig config = base;
    config.rounding_depth = depth;

    double f_sum = 0.0;
    for (const ml::FoldSplit& fold : folds) {
      // Fold indices are positions within `indices`.
      std::vector<std::size_t> learn;
      learn.reserve(fold.train.size());
      for (std::size_t position : fold.train) learn.push_back(indices[position]);

      const Dictionary dictionary = train_dictionary(dataset, config, learn);
      const Matcher matcher(dictionary);

      std::vector<std::string> truth, predicted;
      truth.reserve(fold.test.size());
      predicted.reserve(fold.test.size());
      for (std::size_t position : fold.test) {
        const telemetry::ExecutionRecord& record = dataset.record(indices[position]);
        truth.push_back(record.label().application);
        predicted.push_back(matcher.recognize(record, metric_slots).prediction());
      }
      f_sum += ml::macro_f1(truth, predicted);
    }
    mean_f[depth_offset] = f_sum / static_cast<double>(folds.size());
  };

  if (selection.parallel) {
    util::parallel_for(0, static_cast<std::size_t>(depth_count), evaluate_depth);
  } else {
    for (std::size_t d = 0; d < static_cast<std::size_t>(depth_count); ++d) {
      evaluate_depth(d);
    }
  }

  DepthSelectionResult result;
  double best_f = -1.0;
  for (int d = 0; d < depth_count; ++d) {
    const int depth = selection.min_depth + d;
    const double f = mean_f[static_cast<std::size_t>(d)];
    result.f_score_by_depth[depth] = f;
    if (f > best_f + 1e-12) {  // strict improvement; ties keep shallower
      best_f = f;
      result.best_depth = depth;
    }
  }
  EFD_LOG(kDebug, "depth-selector")
      << "selected depth " << result.best_depth << " (inner F=" << best_f << ")";
  return result;
}

}  // namespace efd::core
