#include "core/rounding.hpp"

#include <cmath>

#include "util/string_utils.hpp"

namespace efd::core {

double round_to_depth(double value, int depth) noexcept {
  if (value == 0.0 || !std::isfinite(value)) return value;
  if (depth < 1) depth = 1;

  const double magnitude = std::floor(std::log10(std::fabs(value)));
  // Digit position being rounded to: the depth-th significant digit sits
  // at 10^(magnitude - depth + 1).
  const double position = magnitude - static_cast<double>(depth) + 1.0;
  const double scale = std::pow(10.0, -position);

  // Round half away from zero, like Python's round() for the magnitudes
  // involved here and like the paper's examples (5.28 -> 5.3 at depth 2).
  const double scaled = value * scale;
  const double rounded = std::copysign(std::floor(std::fabs(scaled) + 0.5), scaled);
  return rounded / scale;
}

double bucket_width(double value, int depth) noexcept {
  if (value == 0.0 || !std::isfinite(value)) return 0.0;
  if (depth < 1) depth = 1;
  const double magnitude = std::floor(std::log10(std::fabs(value)));
  return std::pow(10.0, magnitude - static_cast<double>(depth) + 1.0);
}

std::string format_rounded(double rounded_value) {
  return util::format_mean(rounded_value);
}

}  // namespace efd::core
