#include "core/rounding.hpp"

#include <cmath>

#include "core/rounding_kernel.hpp"
#include "util/string_utils.hpp"

namespace efd::core {

double round_to_depth(double value, int depth) noexcept {
  // Delegates to the hot-path kernel (rounding_kernel.hpp) so the
  // train-time keys and the vectorized serve-time keys come from ONE
  // rounding implementation — any divergence would silently empty the
  // dictionary. The kernel replicates the historical log10/pow formula
  // operation-for-operation for normal inputs (round half away from
  // zero, e.g. 5.28 -> 5.3 at depth 2).
  return round_value(value, depth);
}

double bucket_width(double value, int depth) noexcept {
  if (value == 0.0 || !std::isfinite(value)) return 0.0;
  if (depth < 1) depth = 1;
  const double magnitude = std::floor(std::log10(std::fabs(value)));
  return std::pow(10.0, magnitude - static_cast<double>(depth) + 1.0);
}

std::string format_rounded(double rounded_value) {
  return util::format_mean(rounded_value);
}

}  // namespace efd::core
