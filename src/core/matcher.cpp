#include "core/matcher.hpp"

#include <algorithm>
#include <set>

#include "core/dictionary_index.hpp"
#include "core/recognition_scratch.hpp"
#include "util/thread_pool.hpp"

namespace efd::core {

std::string RecognitionResult::label_prediction() const {
  if (!recognized || applications.empty()) return kUnknownApplication;
  const std::string& winner = applications.front();
  int best_votes = 0;
  std::string best_label;
  // matched_labels preserves first-seen order, so ties resolve earliest.
  for (const std::string& label : matched_labels) {
    if (telemetry::parse_label(label).application != winner) continue;
    const auto it = label_votes.find(label);
    const int count = it != label_votes.end() ? it->second : 0;
    if (count > best_votes) {
      best_votes = count;
      best_label = label;
    }
  }
  return best_label.empty() ? winner : best_label;
}

RecognitionResult Matcher::recognize_keys(
    const std::vector<FingerprintKey>& keys) const {
  return recognize_key_span(keys);
}

RecognitionResult Matcher::recognize_key_span(
    std::span<const FingerprintKey> keys) const {
  RecognitionResult result;
  result.fingerprint_count = keys.size();

  std::set<std::string> seen_labels;  // dedup while preserving first-seen order
  DictionaryEntry entry;              // reused copy-out buffer
  for (const FingerprintKey& key : keys) {
    if (!dictionary_->lookup_entry(key, entry)) continue;
    ++result.matched_count;

    // One vote per matched fingerprint per distinct application name in
    // the entry (an entry listing sp_X, sp_Y, bt_X yields one sp vote and
    // one bt vote for this fingerprint).
    std::set<std::string> applications_in_entry;
    for (const std::string& label : entry.labels) {
      applications_in_entry.insert(telemetry::parse_label(label).application);
      ++result.label_votes[label];
      if (seen_labels.insert(label).second) {
        result.matched_labels.push_back(label);
      }
    }
    for (const std::string& application : applications_in_entry) {
      ++result.votes[application];
    }
  }

  if (result.matched_count == 0) return result;  // recognized stays false

  int best_votes = 0;
  for (const auto& [application, votes] : result.votes) {
    best_votes = std::max(best_votes, votes);
  }
  for (const auto& [application, votes] : result.votes) {
    if (votes == best_votes) result.applications.push_back(application);
  }
  // Tie array ordered by dictionary first-seen order (paper Section 3 /
  // Table 4: "in this case SP" — SP was learned before BT).
  std::sort(result.applications.begin(), result.applications.end(),
            [this](const std::string& a, const std::string& b) {
              return dictionary_->application_order(a) <
                     dictionary_->application_order(b);
            });
  result.recognized = true;
  return result;
}

RecognitionResult Matcher::recognize(
    const telemetry::ExecutionRecord& record,
    const std::vector<std::size_t>& metric_slots) const {
  return recognize_keys(
      build_fingerprints(record, dictionary_->config(), metric_slots));
}

RecognitionResult Matcher::recognize(const telemetry::ExecutionRecord& record,
                                     const telemetry::Dataset& dataset) const {
  return recognize(record, resolve_metric_slots(dataset));
}

void Matcher::recognize_keys_into(std::span<const FingerprintKey> keys,
                                  RecognitionScratch& scratch) const {
  const LabelTable* table = dictionary_->label_table();
  if (table == nullptr) {
    scratch.set_legacy(recognize_key_span(keys));
    return;
  }
  if (const DictionaryIndex* index = dictionary_->probe_index()) {
    // Flat-index batch probe: every key's hash first (one pass of pure
    // arithmetic over the arena), then a software-pipelined probe loop —
    // prefetch probe i+K's bucket while resolving probe i, so the
    // random-access cache miss of each lookup overlaps the tag scan and
    // vote tally of an earlier one instead of serializing behind it.
    scratch.begin(*table);
    std::vector<std::uint64_t>& hashes = scratch.hash_buffer();
    hashes.resize(keys.size());
    for (std::size_t i = 0; i < keys.size(); ++i) {
      hashes[i] = DictionaryIndex::hash_key(keys[i]);
    }
    constexpr std::size_t kPrefetchDistance = 8;
    for (std::size_t i = 0; i < keys.size(); ++i) {
      if (i + kPrefetchDistance < keys.size()) {
        index->prefetch(hashes[i + kPrefetchDistance]);
      }
      const DictionaryIndex::Entry* entry =
          index->find_hashed(keys[i], hashes[i]);
      if (entry == nullptr) continue;
      if (!scratch.score_entry_ids(index->label_ids(*entry))) {
        scratch.set_legacy(recognize_key_span(keys));  // defensive
        return;
      }
    }
    scratch.finish(*dictionary_, keys.size());
    return;
  }
  scratch.begin(*table);
  DictionaryEntry& entry = scratch.entry_buffer();
  for (const FingerprintKey& key : keys) {
    if (!dictionary_->lookup_entry(key, entry)) continue;
    if (!scratch.score_entry(entry)) {
      // Defensive: an entry without aligned ids means the dictionary was
      // populated outside insert(); score the whole set string-keyed.
      scratch.set_legacy(recognize_key_span(keys));
      return;
    }
  }
  scratch.finish(*dictionary_, keys.size());
}

void Matcher::recognize_into(const telemetry::ExecutionRecord& record,
                             const std::vector<std::size_t>& metric_slots,
                             RecognitionScratch& scratch) const {
  build_fingerprints_into(record, dictionary_->config(), metric_slots, scratch);
  recognize_keys_into(scratch.keys(), scratch);
}

std::vector<RecognitionResult> Matcher::recognize_batch(
    std::span<const telemetry::ExecutionRecord> records,
    const std::vector<std::size_t>& metric_slots, util::ThreadPool* pool) const {
  std::vector<RecognitionResult> results(records.size());
  util::ThreadPool& workers = pool != nullptr ? *pool : util::global_pool();
  util::parallel_for(workers, 0, records.size(), [&](std::size_t i) {
    // One scratch per pool worker, kept warm across records and batches:
    // after the first few records each iteration runs allocation-free up
    // to the final per-record render.
    thread_local RecognitionScratch scratch;
    recognize_into(records[i], metric_slots, scratch);
    scratch.render_result(results[i]);
  });
  return results;
}

std::vector<RecognitionResult> Matcher::recognize_batch(
    const telemetry::Dataset& dataset, util::ThreadPool* pool) const {
  return recognize_batch(std::span(dataset.records()),
                         resolve_metric_slots(dataset), pool);
}

std::vector<std::size_t> Matcher::resolve_metric_slots(
    const telemetry::Dataset& dataset) const {
  std::vector<std::size_t> slots;
  slots.reserve(dictionary_->config().metrics.size());
  for (const std::string& name : dictionary_->config().metrics) {
    slots.push_back(dataset.metric_slot(name));
  }
  return slots;
}

}  // namespace efd::core
