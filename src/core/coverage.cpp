#include "core/coverage.hpp"

#include <numeric>
#include <set>
#include <sstream>

#include "util/string_utils.hpp"

namespace efd::core {

std::string CoverageReport::to_string() const {
  std::ostringstream out;
  out << "executions: " << executions << " (" << fully_matched << " fully, "
      << partially_matched << " partially, " << unmatched
      << " unmatched); mean match fraction "
      << util::format_fixed(mean_match_fraction, 3) << "\n";
  for (const auto& [application, fraction] : match_fraction_by_application) {
    out << "  " << application << ": match "
        << util::format_fixed(fraction, 3) << ", ";
    const auto it = keys_by_application.find(application);
    out << (it != keys_by_application.end() ? it->second : 0) << " keys\n";
  }
  return out.str();
}

CoverageReport analyze_coverage(const Dictionary& dictionary,
                                const telemetry::Dataset& dataset,
                                const std::vector<std::size_t>& indices) {
  std::vector<std::size_t> all = indices;
  if (all.empty()) {
    all.resize(dataset.size());
    std::iota(all.begin(), all.end(), std::size_t{0});
  }

  std::vector<std::size_t> slots;
  slots.reserve(dictionary.config().metrics.size());
  for (const std::string& name : dictionary.config().metrics) {
    slots.push_back(dataset.metric_slot(name));
  }

  CoverageReport report;
  report.executions = all.size();
  std::map<std::string, double> fraction_sum;
  std::map<std::string, std::size_t> fraction_count;

  double total_fraction = 0.0;
  for (std::size_t index : all) {
    const auto& record = dataset.record(index);
    const auto keys = build_fingerprints(record, dictionary.config(), slots);
    std::size_t matched = 0;
    for (const auto& key : keys) {
      if (dictionary.lookup(key) != nullptr) ++matched;
    }
    const double fraction =
        keys.empty() ? 0.0
                     : static_cast<double>(matched) /
                           static_cast<double>(keys.size());
    total_fraction += fraction;
    if (matched == 0) ++report.unmatched;
    else if (matched == keys.size()) ++report.fully_matched;
    else ++report.partially_matched;

    const std::string& application = record.label().application;
    fraction_sum[application] += fraction;
    ++fraction_count[application];
  }
  report.mean_match_fraction =
      all.empty() ? 0.0 : total_fraction / static_cast<double>(all.size());
  for (const auto& [application, sum] : fraction_sum) {
    report.match_fraction_by_application[application] =
        sum / static_cast<double>(fraction_count[application]);
  }

  // Bucket spread per application, from the dictionary side.
  for (const auto& [key, entry] : dictionary) {
    std::set<std::string> applications;
    for (const auto& label : entry.labels) {
      applications.insert(telemetry::parse_label(label).application);
    }
    for (const auto& application : applications) {
      ++report.keys_by_application[application];
    }
  }
  return report;
}

}  // namespace efd::core
