#include "core/temporal.hpp"

#include <stdexcept>

#include "core/rounding.hpp"

namespace efd::core {

namespace {

std::string temporal_tag(const TemporalConfig& config) {
  std::string tag = config.metric + "@T" +
                    std::to_string(config.window_length) + "x" +
                    std::to_string(config.window_count);
  if (config.relative) tag += "r";
  return tag;
}

}  // namespace

std::vector<FingerprintKey> build_temporal_fingerprints(
    const telemetry::ExecutionRecord& record, const TemporalConfig& config,
    std::size_t metric_slot) {
  if (config.window_length <= 0 || config.window_count <= 0) {
    throw std::invalid_argument("temporal windows must be positive");
  }
  const telemetry::Interval envelope = config.envelope();

  std::vector<FingerprintKey> keys;
  for (std::size_t node = 0; node < record.node_count(); ++node) {
    const telemetry::TimeSeries& series = record.series(node, metric_slot);
    if (!series.covers(envelope)) continue;

    FingerprintKey key;
    key.metric = temporal_tag(config);
    key.node_id = record.node(node).node_id;
    key.interval = envelope;
    key.rounded_means.reserve(static_cast<std::size_t>(config.window_count));

    double anchor = 0.0;
    for (int w = 0; w < config.window_count; ++w) {
      const telemetry::Interval window{
          config.window_begin + w * config.window_length,
          config.window_begin + (w + 1) * config.window_length};
      const double mean = series.mean_over(window);
      if (w == 0) {
        anchor = mean;
        key.rounded_means.push_back(
            round_to_depth(mean, config.rounding_depth));
      } else if (config.relative) {
        // Shape component: ratio to the anchor, rounded coarsely. A zero
        // anchor (idle metric) degrades to the absolute value.
        const double ratio = anchor != 0.0 ? mean / anchor : mean;
        key.rounded_means.push_back(round_to_depth(ratio, config.ratio_depth));
      } else {
        key.rounded_means.push_back(
            round_to_depth(mean, config.rounding_depth));
      }
    }
    keys.push_back(std::move(key));
  }
  return keys;
}

std::vector<FingerprintKey> build_temporal_fingerprints(
    const telemetry::ExecutionRecord& record, const TemporalConfig& config,
    const telemetry::Dataset& dataset) {
  return build_temporal_fingerprints(record, config,
                                     dataset.metric_slot(config.metric));
}

Dictionary train_temporal_dictionary(const telemetry::Dataset& dataset,
                                     const TemporalConfig& config,
                                     const std::vector<std::size_t>& indices) {
  FingerprintConfig stored;
  stored.metrics = {temporal_tag(config)};
  stored.intervals = {config.envelope()};
  stored.rounding_depth = config.rounding_depth;
  Dictionary dictionary(stored);

  const std::size_t slot = dataset.metric_slot(config.metric);
  auto learn_one = [&](const telemetry::ExecutionRecord& record) {
    const std::string label = record.label().full();
    for (const FingerprintKey& key :
         build_temporal_fingerprints(record, config, slot)) {
      dictionary.insert(key, label);
    }
  };

  if (indices.empty()) {
    for (const auto& record : dataset.records()) learn_one(record);
  } else {
    for (std::size_t index : indices) learn_one(dataset.record(index));
  }
  return dictionary;
}

}  // namespace efd::core
