#pragma once
/// \file fingerprint.hpp
/// \brief Execution fingerprints — the dictionary keys of the EFD.
///
/// A fingerprint identifies "how one node used one resource during one
/// window": (metric name, node id, time interval, rounded mean). The
/// paper's example: [nr_mapped_vmstat, 0, [60:120], 6000.0].
///
/// The key type generalizes the paper's single-metric fingerprint to the
/// multi-metric *combinatorial* fingerprints its Section 6 proposes: a key
/// carries one rounded mean per fingerprinted metric (one entry in the
/// paper's baseline configuration).

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "telemetry/dataset.hpp"
#include "telemetry/execution_record.hpp"
#include "telemetry/time_series.hpp"

namespace efd::core {

/// Dictionary key. Equality is exact (that is the point of rounding).
struct FingerprintKey {
  std::string metric;        ///< metric name, or "+"-joined names when combined
  std::uint32_t node_id = 0;
  telemetry::Interval interval{60, 120};
  std::vector<double> rounded_means;  ///< one per fingerprinted metric

  bool operator==(const FingerprintKey& other) const = default;

  /// Human-readable rendering matching the paper's notation:
  /// "[nr_mapped_vmstat, 0, [60:120], 6000.0]".
  std::string to_string() const;
};

/// Hash for unordered containers.
struct FingerprintKeyHash {
  std::size_t operator()(const FingerprintKey& key) const noexcept;
};

/// Settings that determine how fingerprints are constructed. Training and
/// testing must use identical settings — the recognizer enforces this by
/// storing the config inside the dictionary.
struct FingerprintConfig {
  /// Metrics to fingerprint. Each metric yields its own keys unless
  /// \p combine_metrics is set.
  std::vector<std::string> metrics;

  /// Time windows; the paper uses exactly {[60,120)}. Multiple intervals
  /// co-exist in one dictionary (Section 6).
  std::vector<telemetry::Interval> intervals{telemetry::kPaperInterval};

  /// The EFD's only tunable parameter.
  int rounding_depth = 2;

  /// Combinatorial fingerprints: one key per (node, interval) carrying the
  /// rounded means of *all* configured metrics jointly (Section 6).
  bool combine_metrics = false;
};

/// Builds the fingerprint keys of one execution under a config.
///
/// \param record the execution's telemetry.
/// \param metric_slots dataset slot index per configured metric (aligned
///   with config.metrics).
/// \returns one key per (node, interval[, metric]) whose window is covered
///   by the record's series; windows the record does not cover are skipped
///   (short executions simply yield fewer fingerprints).
std::vector<FingerprintKey> build_fingerprints(
    const telemetry::ExecutionRecord& record, const FingerprintConfig& config,
    const std::vector<std::size_t>& metric_slots);

/// Convenience: resolves slots from the dataset's metric list first.
std::vector<FingerprintKey> build_fingerprints(
    const telemetry::ExecutionRecord& record, const FingerprintConfig& config,
    const telemetry::Dataset& dataset);

class RecognitionScratch;

/// Allocation-free variant of build_fingerprints: emits the same keys in
/// the same order into \p scratch's reusable arena (recognition_scratch
/// .hpp). Interval means are first gathered into contiguous lanes and
/// rounded in one vectorized round_lanes() pass instead of per-key
/// round_to_depth calls. After the scratch's buffers warm up, this
/// performs zero heap allocations per record.
void build_fingerprints_into(const telemetry::ExecutionRecord& record,
                             const FingerprintConfig& config,
                             const std::vector<std::size_t>& metric_slots,
                             RecognitionScratch& scratch);

}  // namespace efd::core

namespace std {
template <>
struct hash<efd::core::FingerprintKey> {
  std::size_t operator()(const efd::core::FingerprintKey& key) const noexcept {
    return efd::core::FingerprintKeyHash{}(key);
  }
};
}  // namespace std
