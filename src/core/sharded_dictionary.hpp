#pragma once
/// \file sharded_dictionary.hpp
/// \brief Concurrent, sharded variant of the Execution Fingerprint
/// Dictionary.
///
/// The single hash table of dictionary.hpp is split into N shards, each
/// owning a disjoint slice of the key space (shard = hash(key) mod N)
/// behind its own std::shared_mutex. Lookups take a shard's shared lock;
/// inserts take its exclusive lock — so a production deployment can keep
/// learning new executions while many recognition streams query
/// concurrently, with contention limited to 1/N of the key space.
///
/// Tie-break semantics stay paper-identical: application first-seen
/// order is a *global* epoch counter held in an ApplicationRegistry
/// (lock-free reads; a writer mutex only on first registration of an
/// application), and because every key maps to exactly one shard,
/// per-entry label first-seen order is exactly the insertion order
/// within that shard. The deterministic parallel builder in trainer.hpp
/// exploits this: one worker per shard, each consuming records in
/// dataset order, reproduces the sequential Dictionary byte-for-byte
/// (same entries, same label order, same serialization).
///
/// Locking discipline:
///  - shard mutex:  guards that shard's hash map and its entries.
///  - application registry: lock-free to read (see app_registry.hpp);
///    insert's already-registered check and every tie-break order query
///    take no lock at all, so there is no global contention point on
///    either the write or the read path.
///  - Bulk operations (prune_rare, merge, stats, sorted_entries, save)
///    lock one shard at a time; they are safe against concurrent
///    inserts/lookups but see a point-in-time view per shard.

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/app_registry.hpp"
#include "core/dictionary.hpp"
#include "core/dictionary_index.hpp"
#include "core/dictionary_view.hpp"
#include "core/fingerprint.hpp"
#include "core/label_table.hpp"

namespace efd::core {

/// Concurrent EFD. Same serialization format and lookup semantics as
/// Dictionary; thread-safe insert/lookup_entry/application_order.
class ShardedDictionary final : public DictionaryView {
 public:
  /// Shard-count heuristic: 4x hardware concurrency, clamped to
  /// [1, kMaxShards]. Over-provisioning shards relative to threads keeps
  /// the probability of two concurrent inserts hitting the same shard
  /// low without measurable memory cost.
  static std::size_t default_shard_count();
  static constexpr std::size_t kMaxShards = 256;

  /// \param shard_count 0 means default_shard_count().
  explicit ShardedDictionary(FingerprintConfig config = {},
                             std::size_t shard_count = 0);

  /// Movable (not thread-safe to move while in use), not copyable.
  ShardedDictionary(ShardedDictionary&& other) noexcept;
  ShardedDictionary& operator=(ShardedDictionary&& other) noexcept;
  ShardedDictionary(const ShardedDictionary&) = delete;
  ShardedDictionary& operator=(const ShardedDictionary&) = delete;

  const FingerprintConfig& config() const noexcept override { return config_; }
  std::size_t shard_count() const noexcept { return shards_.size(); }

  /// Label interner for the id-based scoring path. Interning order (and
  /// therefore id values) depends on insert interleaving under parallel
  /// training; ids are never serialized or compared across dictionaries,
  /// so this nondeterminism is unobservable.
  const LabelTable* label_table() const noexcept override {
    return labels_.get();
  }

  /// Shard index a key lives in (stable for the dictionary's lifetime).
  std::size_t shard_of(const FingerprintKey& key) const noexcept;

  /// Unique keys across all shards. Takes each shard's shared lock.
  std::size_t size() const;
  bool empty() const { return size() == 0; }

  /// Adds one (key, label) observation. Thread-safe.
  void insert(const FingerprintKey& key, const std::string& label) {
    insert(key, label, 1);
  }

  /// Adds \p count observations of (key, label) at once. Thread-safe.
  void insert(const FingerprintKey& key, const std::string& label,
              std::uint32_t count);

  /// Thread-safe copy-out lookup (see dictionary_view.hpp).
  bool lookup_entry(const FingerprintKey& key,
                    DictionaryEntry& out) const override;

  /// Lock-free epoch lookup; unknown applications rank last.
  std::size_t application_order(const std::string& application) const override;

  /// Pre-registers an application in the global epoch order without
  /// inserting any key. The deterministic parallel builder uses this to
  /// fix tie-break order up front (idempotent: the first call wins).
  void register_application(const std::string& application);

  /// Applications in epoch order.
  std::vector<std::string> applications_in_order() const;

  /// Removes keys with total observations below the threshold; returns
  /// the number removed. Locks one shard at a time (exclusive).
  std::size_t prune_rare(std::uint32_t min_observations);

  /// Merges a single-threaded dictionary's observations (same config
  /// required; throws std::invalid_argument otherwise).
  void merge(const Dictionary& other);

  /// Aggregate statistics; same definition as Dictionary::stats().
  DictionaryStats stats() const;

  /// All entries sorted by key rendering order — identical ordering (and
  /// therefore identical serialization) to Dictionary::sorted_entries().
  std::vector<std::pair<FingerprintKey, DictionaryEntry>> sorted_entries() const;

  /// Every key observed for a full label, in sorted-entry order.
  std::vector<FingerprintKey> keys_for_label(const std::string& label) const;

  /// Serialization: byte-identical format to Dictionary (EFD-DICT-V1),
  /// so dictionaries trained sharded and sequentially interchange.
  void save(std::ostream& out) const;
  void save_file(const std::string& path) const;
  static ShardedDictionary load(std::istream& in, std::size_t shard_count = 0);
  static ShardedDictionary load_file(const std::string& path,
                                     std::size_t shard_count = 0);

  /// Conversions to/from the single-threaded Dictionary. Both preserve
  /// entry label order and the application epoch order exactly.
  static ShardedDictionary from_dictionary(const Dictionary& dictionary,
                                           std::size_t shard_count = 0);
  Dictionary to_dictionary() const;

  /// Compiles the flat probe index from the current content (no-op under
  /// EFD_FLAT_INDEX=off). Call ONLY while the dictionary is frozen and
  /// pre-publication — DictionaryHandle::Epoch's constructor is the
  /// intended (and sole in-tree) production call site, covering train
  /// completion, epoch swap, and snapshot restore. The index is derived
  /// state: never serialized, and hidden again by the stale flag the
  /// moment insert()/merge()/prune_rare() mutate the content.
  void compile_probe_index();

  /// The compiled index, or nullptr when none was compiled or the content
  /// has mutated since compilation (online learn() into the active epoch
  /// self-invalidates; readers fall back to the sharded path). Lock-free.
  const DictionaryIndex* probe_index() const noexcept override {
    if (index_ == nullptr) return nullptr;
    if (index_stale_.load(std::memory_order_acquire)) return nullptr;
    return index_.get();
  }

  /// Build cost / footprint of the last compiled index (0 when none) —
  /// reported even while stale, so the swap-time gauges survive the
  /// first post-swap learn(). Lock-free.
  double index_build_seconds() const noexcept {
    return index_ != nullptr ? index_->build_seconds() : 0.0;
  }
  std::uint64_t index_resident_bytes() const noexcept {
    return index_ != nullptr ? index_->resident_bytes() : 0;
  }

 private:
  /// Hides the index from probe_index() on the first content mutation
  /// after compilation. The branch keeps training-loop inserts (index_
  /// never compiled) from hammering a shared cache line.
  void invalidate_probe_index() noexcept {
    if (index_ != nullptr && !index_stale_.load(std::memory_order_relaxed)) {
      index_stale_.store(true, std::memory_order_release);
    }
  }

  struct Shard {
    mutable std::shared_mutex mutex;
    std::unordered_map<FingerprintKey, DictionaryEntry, FingerprintKeyHash>
        entries;
  };

  FingerprintConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;
  ApplicationRegistry applications_;
  std::shared_ptr<LabelTable> labels_ = std::make_shared<LabelTable>();
  /// Set once by compile_probe_index() before publication, then released
  /// only with the dictionary — so probe_index()'s raw pointer stays
  /// valid for every reader that outlives its epoch pin.
  std::shared_ptr<const DictionaryIndex> index_;
  std::atomic<bool> index_stale_{false};
};

}  // namespace efd::core
