#pragma once
/// \file recognition_scratch.hpp
/// \brief Per-worker reusable state for allocation-free recognition.
///
/// The legacy scoring path allocates on every call: a fresh
/// std::vector<FingerprintKey> (each key owning a metric string and a
/// means vector), a std::set to dedup applications per entry, and a
/// std::map node per vote. At sampling rate that is thousands of
/// allocations per second per stream for results that are discarded
/// moments later.
///
/// RecognitionScratch replaces all of it with flat arrays owned by the
/// caller (one scratch per worker thread) that reach a steady state
/// after the first few calls and then never touch the heap again:
///
///  - a fingerprint *arena*: FingerprintKey slots reused in place, so
///    metric strings and means vectors keep their capacity;
///  - SoA *lanes*: the interval means of a whole record are gathered
///    contiguously and rounded in one round_lanes() pass (the
///    vectorizable form of the per-key round_to_depth calls);
///  - *stamped vote arrays* indexed by the dictionary's interned label
///    and application ids (core/label_table.hpp): a generation stamp
///    makes "clear" O(1) instead of O(table size), and an entry serial
///    stamp replaces the per-entry application dedup set.
///
/// The scoring product is IdRecognitionResult — ids and parallel flat
/// vectors. The string-keyed RecognitionResult the CLI and evaluation
/// use is produced on demand by render_result(), which allocates (map
/// nodes, strings) and is therefore called once per verdict, not once
/// per sample.
///
/// Thread-compatibility: a scratch belongs to exactly one thread at a
/// time (Matcher::recognize_batch keeps one per pool worker in
/// thread_local storage). Concurrent scratches over one shared
/// dictionary are safe: they only read the dictionary and label table.

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/dictionary.hpp"
#include "core/label_table.hpp"
#include "core/matcher.hpp"

namespace efd::core {

/// Recognition outcome in interned-id space. All vectors are owned by
/// the scratch's result buffer and reused across calls; copy what you
/// need to keep. Use LabelTable::label_name / application_name to
/// resolve ids.
struct IdRecognitionResult {
  bool recognized = false;
  std::size_t fingerprint_count = 0;
  std::size_t matched_count = 0;

  /// Application ids with the maximum vote count, in dictionary
  /// first-seen (tie-break) order — same contract as
  /// RecognitionResult::applications.
  std::vector<std::uint32_t> applications;

  /// Every application that received votes, in first-touch order, with
  /// the vote count parallel in app_votes.
  std::vector<std::uint32_t> matched_apps;
  std::vector<int> app_votes;

  /// Every matched label id in first-seen order (the legacy
  /// matched_labels order), with counts parallel in label_votes.
  std::vector<std::uint32_t> matched_labels;
  std::vector<int> label_votes;
};

class RecognitionScratch {
 public:
  RecognitionScratch() = default;

  // Scratches are worker-local by design; copying one would defeat the
  // buffer reuse that is its entire purpose.
  RecognitionScratch(const RecognitionScratch&) = delete;
  RecognitionScratch& operator=(const RecognitionScratch&) = delete;
  RecognitionScratch(RecognitionScratch&&) = default;
  RecognitionScratch& operator=(RecognitionScratch&&) = default;

  // --- fingerprint arena (filled by build_fingerprints_into) ---

  /// Resets the arena to empty without releasing key capacity.
  void begin_keys() noexcept { key_count_ = 0; }

  /// Returns the next reusable key slot: rounded_means cleared, metric
  /// string left with its capacity for assign().
  FingerprintKey& next_key();

  /// The keys built since begin_keys().
  std::span<const FingerprintKey> keys() const noexcept {
    return {keys_.data(), key_count_};
  }

  /// SoA lanes and the reused combined-metric-name buffer, exposed for
  /// build_fingerprints_into.
  std::vector<double>& means_lane() noexcept { return means_; }
  std::vector<std::uint8_t>& covered_lane() noexcept { return covered_; }
  std::string& name_buffer() noexcept { return combined_name_; }

  /// Reused per-batch key-hash buffer for the flat-index probe pipeline
  /// (Matcher precomputes every hash, then prefetches probe i+K's bucket
  /// while resolving probe i).
  std::vector<std::uint64_t>& hash_buffer() noexcept { return hashes_; }

  // --- scoring (driven by Matcher::recognize_keys_into) ---

  /// Starts a scoring pass against \p table: sizes the vote arrays to
  /// the table and advances the generation stamp (O(1) logical clear).
  void begin(const LabelTable& table);

  /// Tallies one matched entry's votes. Returns false when the entry's
  /// label_ids are unusable (misaligned with labels) — the caller falls
  /// back to string-keyed scoring for the whole key set.
  bool score_entry(const DictionaryEntry& entry) {
    if (entry.label_ids.size() != entry.labels.size()) return false;
    return score_entry_ids(entry.label_ids);
  }

  /// The tallying core, shared verbatim by the sharded copy-out path
  /// (score_entry) and the flat-index path (which feeds
  /// DictionaryIndex::label_ids spans directly) — vote parity between the
  /// two probe paths holds by construction, not by testing alone.
  /// Returns false on an unassigned id (defensive; compiled indexes
  /// reject those at build time).
  bool score_entry_ids(std::span<const std::uint32_t> label_ids);

  /// Finalizes result(): copies touched votes out and computes the tied
  /// winner array in \p dictionary first-seen order.
  void finish(const DictionaryView& dictionary, std::size_t fingerprint_count);

  /// Reused copy-out buffer for DictionaryView::lookup_entry.
  DictionaryEntry& entry_buffer() noexcept { return entry_; }

  /// Records a string-keyed result produced by the legacy fallback path;
  /// render_result() then returns it verbatim.
  void set_legacy(RecognitionResult&& result);

  /// The id-space result of the last scoring pass. Meaningful only when
  /// !fell_back().
  const IdRecognitionResult& result() const noexcept { return result_; }

  /// True when the last pass used the string-keyed fallback (dictionary
  /// without a label table, or defensive id misalignment).
  bool fell_back() const noexcept { return fell_back_; }

  /// Renders the last result as the legacy string-keyed struct. This is
  /// the allocating step (strings, map nodes); call it once per verdict,
  /// not once per sample.
  void render_result(RecognitionResult& out) const;

 private:
  // Fingerprint arena + SoA lanes.
  std::vector<FingerprintKey> keys_;
  std::size_t key_count_ = 0;
  std::vector<double> means_;
  std::vector<std::uint8_t> covered_;
  std::string combined_name_;
  std::vector<std::uint64_t> hashes_;

  // Vote arrays indexed by label/application id, valid for the current
  // generation only (stamp != generation_ means "zero").
  std::vector<int> label_votes_;
  std::vector<int> app_votes_;
  std::vector<std::uint64_t> label_stamp_;
  std::vector<std::uint64_t> app_stamp_;
  // Per-entry application dedup: one vote per app per entry.
  std::vector<std::uint64_t> app_entry_stamp_;
  std::uint64_t generation_ = 0;
  std::uint64_t entry_serial_ = 0;

  std::vector<std::uint32_t> touched_labels_;  // first-seen order
  std::vector<std::uint32_t> touched_apps_;    // first-touch order

  DictionaryEntry entry_;
  const LabelTable* table_ = nullptr;

  IdRecognitionResult result_;
  bool fell_back_ = false;
  RecognitionResult legacy_result_;
};

}  // namespace efd::core
