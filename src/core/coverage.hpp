#pragma once
/// \file coverage.hpp
/// \brief Dictionary coverage diagnostics.
///
/// Operationally, a dictionary degrades in two ways: executions drift away
/// from their learned fingerprints (match fraction falls), or an
/// application's keys get diluted across too many buckets (noise wider
/// than the rounding bucket). This analysis quantifies both against a
/// reference corpus, giving operators a health check before trusting
/// recognitions — and giving the anomaly-detection example its signal.

#include <map>
#include <string>
#include <vector>

#include "core/dictionary.hpp"
#include "core/matcher.hpp"
#include "telemetry/dataset.hpp"

namespace efd::core {

/// Coverage of one corpus under one dictionary.
struct CoverageReport {
  std::size_t executions = 0;
  std::size_t fully_matched = 0;     ///< every fingerprint found
  std::size_t partially_matched = 0; ///< some but not all fingerprints found
  std::size_t unmatched = 0;         ///< zero fingerprints found

  /// Mean fraction of an execution's fingerprints found in the dictionary.
  double mean_match_fraction = 0.0;

  /// Per-application mean match fraction (sorted by name).
  std::map<std::string, double> match_fraction_by_application;

  /// Distinct keys carrying each application (bucket spread; a large
  /// count relative to nodes x intervals means noisy fingerprints).
  std::map<std::string, std::size_t> keys_by_application;

  /// Human-readable multi-line rendering.
  std::string to_string() const;
};

/// Analyzes how well \p dictionary covers \p dataset (empty indices = all
/// records). Fingerprints are built with the dictionary's own config.
CoverageReport analyze_coverage(const Dictionary& dictionary,
                                const telemetry::Dataset& dataset,
                                const std::vector<std::size_t>& indices = {});

}  // namespace efd::core
