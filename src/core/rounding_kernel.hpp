#pragma once
/// \file rounding_kernel.hpp
/// \brief Vectorizable significant-digit rounding: the hot-path form of
/// core/rounding.hpp's round_to_depth.
///
/// The legacy scalar path spends its time in std::log10 and std::pow —
/// libm calls that defeat auto-vectorization and cost ~50ns per value.
/// This kernel replaces both with table lookups:
///
///  - magnitude: floor(log10(|v|)) is estimated from the IEEE-754 binary
///    exponent (floor((e-1023)*log10(2)), a 2048-entry i16 table) and
///    corrected by at most one branchless comparison against the next
///    power of ten. For normal doubles the estimate is off by at most
///    one decade, always downward, so one `|v| >= 10^(est+1)` test fixes
///    it exactly.
///  - scale: 10^k comes from a table of std::pow(10.0, k) values, so the
///    bits match what the legacy path computed at runtime.
///
/// The remaining arithmetic (`scaled = v*scale; r = copysign(floor(|s| +
/// 0.5), s); r/scale`) is replicated operation-for-operation, including
/// the final *division* by scale — multiplying by 10^-k instead is NOT
/// bit-equivalent in IEEE arithmetic. There are no a*b+c shapes, so FMA
/// contraction cannot perturb results and the scalar and AVX2 builds of
/// this exact sequence produce byte-identical doubles (test_hot_path
/// sweeps this).
///
/// Behavioral deltas vs. the legacy formula, both unobservable in real
/// data and covered by tests:
///  - subnormal inputs pass through unchanged (the legacy path returned
///    NaN via inf/inf);
///  - depth is clamped to kKernelMaxDepth (doubles carry at most 17
///    significant digits, so deeper settings already returned the input).
///
/// round_lanes() dispatches once (first call) to an AVX2 build of the
/// loop when the CPU supports it; set EFD_SIMD=off to force scalar.

#include <array>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <span>

namespace efd::core {

/// Depths beyond this are clamped (identity rounding for doubles anyway);
/// keeps the power-of-ten table index in range for every normal input.
inline constexpr int kKernelMaxDepth = 40;

namespace detail {

/// 10^k for k in [-kPow10Bias, kPow10Bias], bits identical to
/// std::pow(10.0, k). Entries beyond the double range are inf/0 — exactly
/// what the legacy runtime std::pow produced, so out-of-range depths
/// degrade identically.
inline constexpr int kPow10Bias = 352;
extern const std::array<double, 2 * kPow10Bias + 1> kPow10;

/// floor((e - 1023) * log10(2)) per biased binary exponent e: the decade
/// estimate that is exact or one low for every normal double.
extern const std::array<std::int16_t, 2048> kDecadeEstimate;

/// Core of round_to_depth for pre-clamped depth and a pre-screened normal
/// value. Kept header-inline so both the default-target and AVX2-target
/// loop bodies inline the same code.
inline double round_normal(double value, int depth) noexcept {
  std::uint64_t bits;
  std::memcpy(&bits, &value, sizeof bits);
  const int exponent = static_cast<int>((bits >> 52) & 0x7FFu);
  int magnitude = kDecadeEstimate[exponent];
  const double abs_value = std::fabs(value);
  magnitude += abs_value >= kPow10[magnitude + 1 + kPow10Bias];

  const double scale = kPow10[depth - 1 - magnitude + kPow10Bias];
  const double scaled = value * scale;
  const double rounded =
      std::copysign(std::floor(std::fabs(scaled) + 0.5), scaled);
  return rounded / scale;
}

}  // namespace detail

/// Scalar kernel entry point: bit-identical to the vector lanes and (for
/// normal inputs) to the legacy log10/pow formula. Zero, subnormals,
/// infinities and NaN pass through unchanged; depth is clamped to
/// [1, kKernelMaxDepth].
inline double round_value(double value, int depth) noexcept {
  std::uint64_t bits;
  std::memcpy(&bits, &value, sizeof bits);
  const int exponent = static_cast<int>((bits >> 52) & 0x7FFu);
  if (exponent == 0 || exponent == 0x7FF) return value;
  if (depth < 1) depth = 1;
  if (depth > kKernelMaxDepth) depth = kKernelMaxDepth;
  return detail::round_normal(value, depth);
}

/// In-place rounding of a lane of values at one depth — always the scalar
/// build, for dispatch tests and baselines.
void round_lanes_scalar(std::span<double> values, int depth) noexcept;

/// AVX2-target build of the same loop (x86-64 only; on other targets an
/// alias of the scalar build). Callers must check simd_active() or CPU
/// support before preferring it; exposed for bit-exactness tests.
void round_lanes_avx2(std::span<double> values, int depth) noexcept;

/// In-place rounding of a lane of values at one depth, dispatched once at
/// first use to the best kernel for this CPU (EFD_SIMD=off forces scalar).
void round_lanes(std::span<double> values, int depth) noexcept;

/// One contiguous block of interval-window accumulators in SoA form:
/// parallel sum/count/last-tick lanes plus the (immutable) per-lane
/// window bounds. This is OnlineRecognizer's storage for one
/// (node, metric-slot) pair; accumulate_lanes() applies a single sample
/// to every lane — the vector form of WindowAccumulator::push plus
/// completion-transition counting.
struct AccumulatorLanes {
  double* sums = nullptr;
  std::uint64_t* counts = nullptr;
  std::int32_t* last_ts = nullptr;
  const std::int32_t* begins = nullptr;  ///< interval begin (inclusive)
  const std::int32_t* ends = nullptr;    ///< interval end (exclusive)
  std::size_t size = 0;
};

/// Applies the sample (t, value) to every lane with WindowAccumulator
/// semantics — ticks at or before a lane's last tick are dropped, an
/// in-window fresh tick adds to sum/count, and last_t advances for every
/// fresh tick whether or not it lands in the window. Returns the number
/// of lanes that TRANSITIONED to complete (last_t >= end-1 && count > 0)
/// on this sample, so callers can maintain an O(1) ready() counter.
///
/// Bit-identity across builds: the sum update is the blend form
/// `sum = in_window ? sum + value : sum` — a plain IEEE add selected by
/// a mask, never `sum += in_window ? value : 0.0` (adding a signed zero
/// is not an identity: -0.0 + 0.0 flips the sign bit). There are no
/// a*b+c shapes, so FMA contraction cannot perturb the AVX2 build and
/// scalar/AVX2 results stay byte-identical (test_hot_path sweeps this).
/// One carve-out: when BOTH addends are NaN, only NaN-ness is
/// guaranteed, not the payload bits — IEEE lets an add return either
/// operand's payload, addition is commutative to the compiler, and the
/// scalar/vector instruction forms may pick opposite operands.
///
/// Always the scalar build, for dispatch tests and baselines.
std::size_t accumulate_lanes_scalar(const AccumulatorLanes& lanes,
                                    std::int32_t t, double value) noexcept;

/// AVX2-target build of the same loop (x86-64 only; on other targets an
/// alias of the scalar build). Exposed for bit-exactness tests.
std::size_t accumulate_lanes_avx2(const AccumulatorLanes& lanes,
                                  std::int32_t t, double value) noexcept;

/// Dispatched form: picks the best kernel for this CPU at first use
/// (shared dispatch with round_lanes; EFD_SIMD=off forces scalar).
std::size_t accumulate_lanes(const AccumulatorLanes& lanes, std::int32_t t,
                             double value) noexcept;

/// True when round_lanes()/accumulate_lanes() dispatch to vector builds.
bool simd_active() noexcept;

/// Human-readable name of the dispatched kernel ("avx2" / "scalar").
const char* kernel_name() noexcept;

}  // namespace efd::core
