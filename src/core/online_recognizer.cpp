#include "core/online_recognizer.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/rounding.hpp"
#include "core/rounding_kernel.hpp"

namespace efd::core {

namespace {
const std::string kEmptyMetricName;
}  // namespace

void WindowAccumulator::push(int t, double value) noexcept {
  if (t <= last_t_) return;  // duplicate/out-of-order ticks are dropped
  last_t_ = t;
  if (t >= interval_.begin_seconds && t < interval_.end_seconds) {
    sum_ += value;
    ++count_;
  }
}

bool WindowAccumulator::complete() const noexcept {
  return last_t_ >= interval_.end_seconds - 1 && count_ > 0;
}

double WindowAccumulator::mean() const noexcept {
  return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
}

OnlineRecognizer::OnlineRecognizer(const DictionaryView& dictionary,
                                   std::uint32_t node_count)
    : dictionary_(&dictionary), node_count_(node_count) {
  const FingerprintConfig& config = dictionary_->config();
  accumulators_.resize(node_count_);
  for (auto& per_metric : accumulators_) {
    per_metric.resize(config.metrics.size());
    for (auto& per_interval : per_metric) {
      per_interval.reserve(config.intervals.size());
      for (const telemetry::Interval& interval : config.intervals) {
        per_interval.emplace_back(interval);
      }
    }
  }
  windows_total_ = static_cast<std::size_t>(node_count_) *
                   config.metrics.size() * config.intervals.size();
}

std::uint32_t OnlineRecognizer::metric_slot(
    std::string_view metric_name) const noexcept {
  const FingerprintConfig& config = dictionary_->config();
  for (std::size_t m = 0; m < config.metrics.size(); ++m) {
    if (config.metrics[m] == metric_name) return static_cast<std::uint32_t>(m);
  }
  return kNoMetricSlot;
}

const std::string& OnlineRecognizer::metric_name(
    std::uint32_t slot) const noexcept {
  const FingerprintConfig& config = dictionary_->config();
  if (slot >= config.metrics.size()) return kEmptyMetricName;
  return config.metrics[slot];
}

void OnlineRecognizer::push_slot(std::uint32_t node_id, std::uint32_t slot,
                                 int t, double value) noexcept {
  if (node_id >= node_count_) return;
  const auto& per_metric = accumulators_[node_id];
  if (slot >= per_metric.size()) return;
  for (WindowAccumulator& acc : accumulators_[node_id][slot]) {
    const bool was_complete = acc.complete();
    acc.push(t, value);
    // complete() is monotone (last_t and count only grow), so counting
    // transitions keeps windows_complete_ exact.
    if (!was_complete && acc.complete()) ++windows_complete_;
  }
  cached_.reset();  // new data invalidates a cached verdict
}

void OnlineRecognizer::push(std::uint32_t node_id, std::string_view metric_name,
                            int t, double value) {
  const std::uint32_t slot = metric_slot(metric_name);
  if (slot == kNoMetricSlot) return;
  push_slot(node_id, slot, t, value);
}

bool OnlineRecognizer::ready() const noexcept {
  // Same truth table as walking every accumulator: zero-metric configs
  // have windows_total_ == 0 and report ready whenever nodes exist.
  return !accumulators_.empty() && windows_complete_ == windows_total_;
}

std::vector<OnlineRecognizer::AccumulatorState> OnlineRecognizer::export_state()
    const {
  std::vector<AccumulatorState> states;
  for (const auto& per_metric : accumulators_) {
    for (const auto& per_interval : per_metric) {
      for (const WindowAccumulator& acc : per_interval) {
        states.push_back({acc.sum(), static_cast<std::uint64_t>(acc.count()),
                          static_cast<std::int32_t>(acc.last_t())});
      }
    }
  }
  return states;
}

void OnlineRecognizer::import_state(
    const std::vector<AccumulatorState>& states) {
  std::size_t total = 0;
  for (const auto& per_metric : accumulators_) {
    for (const auto& per_interval : per_metric) total += per_interval.size();
  }
  if (states.size() != total) {
    throw std::invalid_argument(
        "accumulator state count does not match recognizer layout");
  }
  std::size_t i = 0;
  windows_complete_ = 0;
  for (auto& per_metric : accumulators_) {
    for (auto& per_interval : per_metric) {
      for (WindowAccumulator& acc : per_interval) {
        const AccumulatorState& state = states[i++];
        acc.restore_state(state.sum, static_cast<std::size_t>(state.count),
                          static_cast<int>(state.last_t));
        if (acc.complete()) ++windows_complete_;
      }
    }
  }
  cached_.reset();
}

int OnlineRecognizer::seconds_until_ready(int current_t) const noexcept {
  int latest_end = 0;
  for (const telemetry::Interval& interval : dictionary_->config().intervals) {
    latest_end = std::max(latest_end, interval.end_seconds);
  }
  return std::max(0, latest_end - current_t);
}

std::optional<RecognitionResult> OnlineRecognizer::result() const {
  if (!ready()) return std::nullopt;
  if (cached_) return cached_;

  const FingerprintConfig& config = dictionary_->config();

  // Gather every window mean into one contiguous lane (node, interval,
  // metric order — this path's historical key order) and round it in a
  // single vectorized pass.
  std::vector<double>& means = scratch_.means_lane();
  means.clear();
  for (std::uint32_t node = 0; node < node_count_; ++node) {
    for (std::size_t i = 0; i < config.intervals.size(); ++i) {
      for (std::size_t m = 0; m < config.metrics.size(); ++m) {
        means.push_back(accumulators_[node][m][i].mean());
      }
    }
  }
  round_lanes(means, config.rounding_depth);

  // Combined keys join all metric names, matching build_fingerprints.
  std::string& joined = scratch_.name_buffer();
  if (config.combine_metrics) {
    joined.clear();
    for (std::size_t m = 0; m < config.metrics.size(); ++m) {
      if (m != 0) joined += '+';
      joined += config.metrics[m];
    }
  }

  scratch_.begin_keys();
  std::size_t lane = 0;
  for (std::uint32_t node = 0; node < node_count_; ++node) {
    for (std::size_t i = 0; i < config.intervals.size(); ++i) {
      if (config.combine_metrics) {
        FingerprintKey& key = scratch_.next_key();
        key.metric.assign(joined);
        key.node_id = node;
        key.interval = config.intervals[i];
        for (std::size_t m = 0; m < config.metrics.size(); ++m) {
          key.rounded_means.push_back(means[lane++]);
        }
      } else {
        for (std::size_t m = 0; m < config.metrics.size(); ++m) {
          FingerprintKey& key = scratch_.next_key();
          key.metric.assign(config.metrics[m]);
          key.node_id = node;
          key.interval = config.intervals[i];
          key.rounded_means.push_back(means[lane++]);
        }
      }
    }
  }

  Matcher(*dictionary_).recognize_keys_into(scratch_.keys(), scratch_);
  RecognitionResult rendered;
  scratch_.render_result(rendered);
  cached_ = std::move(rendered);
  return cached_;
}

}  // namespace efd::core
