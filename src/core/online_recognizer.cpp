#include "core/online_recognizer.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/rounding.hpp"

namespace efd::core {

void WindowAccumulator::push(int t, double value) noexcept {
  if (t <= last_t_) return;  // duplicate/out-of-order ticks are dropped
  last_t_ = t;
  if (t >= interval_.begin_seconds && t < interval_.end_seconds) {
    sum_ += value;
    ++count_;
  }
}

bool WindowAccumulator::complete() const noexcept {
  return last_t_ >= interval_.end_seconds - 1 && count_ > 0;
}

double WindowAccumulator::mean() const noexcept {
  return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
}

OnlineRecognizer::OnlineRecognizer(const DictionaryView& dictionary,
                                   std::uint32_t node_count)
    : dictionary_(&dictionary), node_count_(node_count) {
  const FingerprintConfig& config = dictionary_->config();
  accumulators_.resize(node_count_);
  for (auto& per_metric : accumulators_) {
    per_metric.resize(config.metrics.size());
    for (auto& per_interval : per_metric) {
      per_interval.reserve(config.intervals.size());
      for (const telemetry::Interval& interval : config.intervals) {
        per_interval.emplace_back(interval);
      }
    }
  }
}

void OnlineRecognizer::push(std::uint32_t node_id, std::string_view metric_name,
                            int t, double value) {
  if (node_id >= node_count_) return;
  const FingerprintConfig& config = dictionary_->config();
  for (std::size_t m = 0; m < config.metrics.size(); ++m) {
    if (config.metrics[m] != metric_name) continue;
    for (WindowAccumulator& acc : accumulators_[node_id][m]) {
      acc.push(t, value);
    }
    cached_.reset();  // new data invalidates a cached verdict
  }
}

bool OnlineRecognizer::ready() const noexcept {
  for (const auto& per_metric : accumulators_) {
    for (const auto& per_interval : per_metric) {
      for (const WindowAccumulator& acc : per_interval) {
        if (!acc.complete()) return false;
      }
    }
  }
  return !accumulators_.empty();
}

std::vector<OnlineRecognizer::AccumulatorState> OnlineRecognizer::export_state()
    const {
  std::vector<AccumulatorState> states;
  for (const auto& per_metric : accumulators_) {
    for (const auto& per_interval : per_metric) {
      for (const WindowAccumulator& acc : per_interval) {
        states.push_back({acc.sum(), static_cast<std::uint64_t>(acc.count()),
                          static_cast<std::int32_t>(acc.last_t())});
      }
    }
  }
  return states;
}

void OnlineRecognizer::import_state(
    const std::vector<AccumulatorState>& states) {
  std::size_t total = 0;
  for (const auto& per_metric : accumulators_) {
    for (const auto& per_interval : per_metric) total += per_interval.size();
  }
  if (states.size() != total) {
    throw std::invalid_argument(
        "accumulator state count does not match recognizer layout");
  }
  std::size_t i = 0;
  for (auto& per_metric : accumulators_) {
    for (auto& per_interval : per_metric) {
      for (WindowAccumulator& acc : per_interval) {
        const AccumulatorState& state = states[i++];
        acc.restore_state(state.sum, static_cast<std::size_t>(state.count),
                          static_cast<int>(state.last_t));
      }
    }
  }
  cached_.reset();
}

int OnlineRecognizer::seconds_until_ready(int current_t) const noexcept {
  int latest_end = 0;
  for (const telemetry::Interval& interval : dictionary_->config().intervals) {
    latest_end = std::max(latest_end, interval.end_seconds);
  }
  return std::max(0, latest_end - current_t);
}

std::optional<RecognitionResult> OnlineRecognizer::result() const {
  if (!ready()) return std::nullopt;
  if (cached_) return cached_;

  const FingerprintConfig& config = dictionary_->config();
  std::vector<FingerprintKey> keys;
  for (std::uint32_t node = 0; node < node_count_; ++node) {
    for (std::size_t i = 0; i < config.intervals.size(); ++i) {
      if (config.combine_metrics) {
        FingerprintKey key;
        key.metric = config.metrics.empty() ? "" : config.metrics.front();
        // Combined keys join all metric names, matching build_fingerprints.
        std::string joined;
        for (std::size_t m = 0; m < config.metrics.size(); ++m) {
          if (m != 0) joined += "+";
          joined += config.metrics[m];
        }
        key.metric = joined;
        key.node_id = node;
        key.interval = config.intervals[i];
        for (std::size_t m = 0; m < config.metrics.size(); ++m) {
          key.rounded_means.push_back(round_to_depth(
              accumulators_[node][m][i].mean(), config.rounding_depth));
        }
        keys.push_back(std::move(key));
      } else {
        for (std::size_t m = 0; m < config.metrics.size(); ++m) {
          FingerprintKey key;
          key.metric = config.metrics[m];
          key.node_id = node;
          key.interval = config.intervals[i];
          key.rounded_means.push_back(round_to_depth(
              accumulators_[node][m][i].mean(), config.rounding_depth));
          keys.push_back(std::move(key));
        }
      }
    }
  }
  cached_ = Matcher(*dictionary_).recognize_keys(keys);
  return cached_;
}

}  // namespace efd::core
