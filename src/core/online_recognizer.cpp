#include "core/online_recognizer.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/rounding.hpp"
#include "core/rounding_kernel.hpp"

namespace efd::core {

namespace {
const std::string kEmptyMetricName;
}  // namespace

void WindowAccumulator::push(int t, double value) noexcept {
  if (t <= last_t_) return;  // duplicate/out-of-order ticks are dropped
  last_t_ = t;
  if (t >= interval_.begin_seconds && t < interval_.end_seconds) {
    sum_ += value;
    ++count_;
  }
}

bool WindowAccumulator::complete() const noexcept {
  return last_t_ >= interval_.end_seconds - 1 && count_ > 0;
}

double WindowAccumulator::mean() const noexcept {
  return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
}

OnlineRecognizer::OnlineRecognizer(const DictionaryView& dictionary,
                                   std::uint32_t node_count)
    : dictionary_(&dictionary), node_count_(node_count) {
  const FingerprintConfig& config = dictionary_->config();
  metric_count_ = config.metrics.size();
  interval_count_ = config.intervals.size();
  windows_total_ =
      static_cast<std::size_t>(node_count_) * metric_count_ * interval_count_;
  sums_.assign(windows_total_, 0.0);
  counts_.assign(windows_total_, 0);
  last_ts_.assign(windows_total_, -1);
  interval_begins_.reserve(interval_count_);
  interval_ends_.reserve(interval_count_);
  for (const telemetry::Interval& interval : config.intervals) {
    interval_begins_.push_back(interval.begin_seconds);
    interval_ends_.push_back(interval.end_seconds);
  }
}

std::uint32_t OnlineRecognizer::metric_slot(
    std::string_view metric_name) const noexcept {
  const FingerprintConfig& config = dictionary_->config();
  for (std::size_t m = 0; m < config.metrics.size(); ++m) {
    if (config.metrics[m] == metric_name) return static_cast<std::uint32_t>(m);
  }
  return kNoMetricSlot;
}

const std::string& OnlineRecognizer::metric_name(
    std::uint32_t slot) const noexcept {
  const FingerprintConfig& config = dictionary_->config();
  if (slot >= config.metrics.size()) return kEmptyMetricName;
  return config.metrics[slot];
}

void OnlineRecognizer::push_slot(std::uint32_t node_id, std::uint32_t slot,
                                 int t, double value) noexcept {
  if (node_id >= node_count_) return;
  if (slot >= metric_count_) return;
  // One accumulate_lanes pass over the (node, slot) block's interval
  // lanes: WindowAccumulator::push semantics per lane plus the
  // complete-transition count (complete() is monotone — last_t and count
  // only grow — so counting transitions keeps windows_complete_ exact).
  const std::size_t base = lane_index(node_id, slot, 0);
  windows_complete_ += accumulate_lanes(
      AccumulatorLanes{sums_.data() + base, counts_.data() + base,
                       last_ts_.data() + base, interval_begins_.data(),
                       interval_ends_.data(), interval_count_},
      t, value);
  cached_.reset();  // new data invalidates a cached verdict
}

void OnlineRecognizer::push(std::uint32_t node_id, std::string_view metric_name,
                            int t, double value) {
  const std::uint32_t slot = metric_slot(metric_name);
  if (slot == kNoMetricSlot) return;
  push_slot(node_id, slot, t, value);
}

bool OnlineRecognizer::ready() const noexcept {
  // Same truth table as walking every accumulator: zero-metric configs
  // have windows_total_ == 0 and report ready whenever nodes exist.
  return node_count_ > 0 && windows_complete_ == windows_total_;
}

std::vector<OnlineRecognizer::AccumulatorState> OnlineRecognizer::export_state()
    const {
  // The flat lane order IS the historical (node, metric, interval)
  // snapshot serialization order, so EFD-SNAP-V1 streams stay
  // byte-compatible across the AoS -> SoA restructure.
  std::vector<AccumulatorState> states;
  states.reserve(windows_total_);
  for (std::size_t w = 0; w < windows_total_; ++w) {
    states.push_back({sums_[w], counts_[w], last_ts_[w]});
  }
  return states;
}

void OnlineRecognizer::import_state(
    const std::vector<AccumulatorState>& states) {
  if (states.size() != windows_total_) {
    throw std::invalid_argument(
        "accumulator state count does not match recognizer layout");
  }
  windows_complete_ = 0;
  for (std::size_t w = 0; w < windows_total_; ++w) {
    sums_[w] = states[w].sum;
    counts_[w] = states[w].count;
    last_ts_[w] = states[w].last_t;
    const std::int32_t end = interval_ends_[w % interval_count_];
    if (last_ts_[w] >= end - 1 && counts_[w] > 0) ++windows_complete_;
  }
  cached_.reset();
}

int OnlineRecognizer::seconds_until_ready(int current_t) const noexcept {
  int latest_end = 0;
  for (const telemetry::Interval& interval : dictionary_->config().intervals) {
    latest_end = std::max(latest_end, interval.end_seconds);
  }
  return std::max(0, latest_end - current_t);
}

std::optional<RecognitionResult> OnlineRecognizer::result() const {
  return result_with(scratch_);
}

std::optional<RecognitionResult> OnlineRecognizer::result(
    RecognitionScratch& scratch) const {
  return result_with(scratch);
}

std::optional<RecognitionResult> OnlineRecognizer::result_with(
    RecognitionScratch& scratch) const {
  if (!ready()) return std::nullopt;
  if (cached_) return cached_;

  const FingerprintConfig& config = dictionary_->config();

  // Gather every window mean into one contiguous lane (node, interval,
  // metric order — this path's historical key order) and round it in a
  // single vectorized pass.
  std::vector<double>& means = scratch.means_lane();
  means.clear();
  for (std::uint32_t node = 0; node < node_count_; ++node) {
    for (std::size_t i = 0; i < interval_count_; ++i) {
      for (std::size_t m = 0; m < metric_count_; ++m) {
        means.push_back(lane_mean(lane_index(node, m, i)));
      }
    }
  }
  round_lanes(means, config.rounding_depth);

  // Combined keys join all metric names, matching build_fingerprints.
  std::string& joined = scratch.name_buffer();
  if (config.combine_metrics) {
    joined.clear();
    for (std::size_t m = 0; m < config.metrics.size(); ++m) {
      if (m != 0) joined += '+';
      joined += config.metrics[m];
    }
  }

  scratch.begin_keys();
  std::size_t lane = 0;
  for (std::uint32_t node = 0; node < node_count_; ++node) {
    for (std::size_t i = 0; i < interval_count_; ++i) {
      if (config.combine_metrics) {
        FingerprintKey& key = scratch.next_key();
        key.metric.assign(joined);
        key.node_id = node;
        key.interval = config.intervals[i];
        for (std::size_t m = 0; m < metric_count_; ++m) {
          key.rounded_means.push_back(means[lane++]);
        }
      } else {
        for (std::size_t m = 0; m < metric_count_; ++m) {
          FingerprintKey& key = scratch.next_key();
          key.metric.assign(config.metrics[m]);
          key.node_id = node;
          key.interval = config.intervals[i];
          key.rounded_means.push_back(means[lane++]);
        }
      }
    }
  }

  Matcher(*dictionary_).recognize_keys_into(scratch.keys(), scratch);
  RecognitionResult rendered;
  scratch.render_result(rendered);
  cached_ = std::move(rendered);
  return cached_;
}

}  // namespace efd::core
