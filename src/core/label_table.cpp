#include "core/label_table.hpp"

#include "telemetry/execution_record.hpp"

namespace efd::core {

namespace {
const std::string kEmptyString;
}  // namespace

const LabelTable::Snapshot* LabelTable::empty_snapshot() {
  static const Snapshot empty;
  return &empty;
}

LabelTable::LabelTable() : current_(empty_snapshot()) {}

LabelTable::~LabelTable() = default;

LabelTable::LabelTable(LabelTable&& other) noexcept
    : current_(empty_snapshot()) {
  std::lock_guard<std::mutex> lock(other.writer_mutex_);
  current_.store(other.current_.load(std::memory_order_acquire),
                 std::memory_order_release);
  snapshots_ = std::move(other.snapshots_);
  other.snapshots_.clear();
  other.current_.store(empty_snapshot(), std::memory_order_release);
}

LabelTable& LabelTable::operator=(LabelTable&& other) noexcept {
  if (this == &other) return *this;
  std::scoped_lock lock(writer_mutex_, other.writer_mutex_);
  current_.store(other.current_.load(std::memory_order_acquire),
                 std::memory_order_release);
  snapshots_ = std::move(other.snapshots_);
  other.snapshots_.clear();
  other.current_.store(empty_snapshot(), std::memory_order_release);
  return *this;
}

std::uint32_t LabelTable::intern(const std::string& label) {
  {
    const Snapshot* snap = snapshot();
    auto it = snap->label_ids.find(label);
    if (it != snap->label_ids.end()) return it->second;
  }

  std::lock_guard<std::mutex> lock(writer_mutex_);
  const Snapshot* snap = snapshot();
  auto it = snap->label_ids.find(label);
  if (it != snap->label_ids.end()) return it->second;

  auto next = std::make_unique<Snapshot>(*snap);
  const std::string application =
      telemetry::parse_label(label).application;
  std::uint32_t app_id;
  auto app_it = next->app_ids.find(application);
  if (app_it != next->app_ids.end()) {
    app_id = app_it->second;
  } else {
    app_id = static_cast<std::uint32_t>(next->app_names.size());
    next->app_ids.emplace(application, app_id);
    next->app_names.push_back(application);
  }
  const auto label_id = static_cast<std::uint32_t>(next->label_names.size());
  next->label_ids.emplace(label, label_id);
  next->label_names.push_back(label);
  next->label_app.push_back(app_id);

  current_.store(next.get(), std::memory_order_release);
  snapshots_.push_back(std::move(next));
  return label_id;
}

std::uint32_t LabelTable::id_of(const std::string& label) const noexcept {
  const Snapshot* snap = snapshot();
  auto it = snap->label_ids.find(label);
  return it != snap->label_ids.end() ? it->second : kNoLabelId;
}

const std::string& LabelTable::label_name(
    std::uint32_t label_id) const noexcept {
  const Snapshot* snap = snapshot();
  if (label_id >= snap->label_names.size()) return kEmptyString;
  return snap->label_names[label_id];
}

std::uint32_t LabelTable::application_of(
    std::uint32_t label_id) const noexcept {
  const Snapshot* snap = snapshot();
  if (label_id >= snap->label_app.size()) return kNoLabelId;
  return snap->label_app[label_id];
}

const std::string& LabelTable::application_name(
    std::uint32_t app_id) const noexcept {
  const Snapshot* snap = snapshot();
  if (app_id >= snap->app_names.size()) return kEmptyString;
  return snap->app_names[app_id];
}

std::size_t LabelTable::label_count() const noexcept {
  return snapshot()->label_names.size();
}

std::size_t LabelTable::application_count() const noexcept {
  return snapshot()->app_names.size();
}

}  // namespace efd::core
