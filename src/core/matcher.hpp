#pragma once
/// \file matcher.hpp
/// \brief The testing phase: looks up an unlabeled execution's fingerprints
/// and votes — the paper's Figure 1 steps (2) and (3).

#include <map>
#include <span>
#include <string>
#include <vector>

#include "core/dictionary.hpp"
#include "core/dictionary_view.hpp"
#include "telemetry/dataset.hpp"

namespace efd::util {
class ThreadPool;
}

namespace efd::core {

class RecognitionScratch;
struct IdRecognitionResult;

/// Label returned for executions with no matching fingerprints — the
/// paper's in-built safeguard against unknown applications.
inline const std::string kUnknownApplication = "unknown";

/// Outcome of recognizing one execution.
struct RecognitionResult {
  /// True if at least one fingerprint matched a dictionary key.
  bool recognized = false;

  /// Application names with the maximum vote count, in dictionary
  /// first-seen order. Size > 1 means the EFD "cannot distinguish between
  /// them and will return an array of these application names" (the paper
  /// scores the first element).
  std::vector<std::string> applications;

  /// Votes per application name (one vote per matched node fingerprint
  /// containing that application).
  std::map<std::string, int> votes;

  /// Votes per full label ("sp_X"). Enables input-size identification on
  /// top of application recognition: executions have "two identifying
  /// dimensions: application name and input size" (Section 4).
  std::map<std::string, int> label_votes;

  /// Full labels ("sp_X") present in the matched entries, first-seen order.
  std::vector<std::string> matched_labels;

  std::size_t fingerprint_count = 0;  ///< fingerprints built for the execution
  std::size_t matched_count = 0;      ///< fingerprints found in the dictionary

  /// The label the evaluation scores: first tied application, or
  /// kUnknownApplication when nothing matched. Defensive: a recognized
  /// result with an (invalid) empty tie array also reports unknown
  /// instead of dereferencing an empty vector.
  const std::string& prediction() const {
    return recognized && !applications.empty() ? applications.front()
                                               : kUnknownApplication;
  }

  /// Most-voted full label ("sp_X") among labels of the winning
  /// application; kUnknownApplication when nothing matched. Ties resolve
  /// to the earliest matched label.
  std::string label_prediction() const;
};

/// Recognizes executions against a dictionary view (single-threaded
/// Dictionary or concurrent ShardedDictionary). Stateless; cheap to copy.
class Matcher {
 public:
  /// \param dictionary borrowed; must outlive the matcher.
  explicit Matcher(const DictionaryView& dictionary)
      : dictionary_(&dictionary) {}

  /// Builds the execution's fingerprints with the dictionary's own config
  /// (guaranteeing identical rounding) and tallies votes.
  RecognitionResult recognize(const telemetry::ExecutionRecord& record,
                              const telemetry::Dataset& dataset) const;

  /// Variant with pre-resolved metric slots (hot path for sweeps).
  RecognitionResult recognize(const telemetry::ExecutionRecord& record,
                              const std::vector<std::size_t>& metric_slots) const;

  /// Tallies votes over already-built fingerprints (online path).
  RecognitionResult recognize_keys(const std::vector<FingerprintKey>& keys) const;

  /// Allocation-free scoring into a worker-local scratch: votes are
  /// tallied in interned-id space (recognition_scratch.hpp) and read via
  /// scratch.result(), or rendered to a RecognitionResult with
  /// scratch.render_result(). Falls back to string-keyed scoring (same
  /// answers, with allocations) when the dictionary has no label table.
  void recognize_keys_into(std::span<const FingerprintKey> keys,
                           RecognitionScratch& scratch) const;

  /// Builds fingerprints into the scratch arena (SoA rounding lanes) and
  /// scores them — the zero-allocation form of recognize().
  void recognize_into(const telemetry::ExecutionRecord& record,
                      const std::vector<std::size_t>& metric_slots,
                      RecognitionScratch& scratch) const;

  /// Recognizes a batch of executions, fanning the records out across a
  /// thread pool (the global pool when \p pool is null). Results align
  /// with \p records and are identical to calling recognize() per record.
  /// Must be called from outside the pool's own workers.
  std::vector<RecognitionResult> recognize_batch(
      std::span<const telemetry::ExecutionRecord> records,
      const std::vector<std::size_t>& metric_slots,
      util::ThreadPool* pool = nullptr) const;

  /// Convenience batch over every record of a dataset.
  std::vector<RecognitionResult> recognize_batch(
      const telemetry::Dataset& dataset, util::ThreadPool* pool = nullptr) const;

 private:
  /// Slot index per configured metric, resolved against a dataset.
  std::vector<std::size_t> resolve_metric_slots(
      const telemetry::Dataset& dataset) const;

  /// String-keyed scoring shared by recognize_keys and the scratch
  /// fallback path.
  RecognitionResult recognize_key_span(
      std::span<const FingerprintKey> keys) const;

  const DictionaryView* dictionary_;
};

}  // namespace efd::core
