#pragma once
/// \file online_recognizer.hpp
/// \brief Streaming recognition during execution — the deployment mode the
/// paper motivates ("recognize known applications *during* execution")
/// but evaluates offline. Samples arrive one tick at a time from the
/// monitoring path; the verdict fires as soon as every fingerprint window
/// has closed (at t = 120 s in the paper's configuration), using bounded
/// per-stream state.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/dictionary_view.hpp"
#include "core/matcher.hpp"
#include "core/recognition_scratch.hpp"

namespace efd::core {

/// Sentinel slot for metrics the dictionary does not fingerprint.
inline constexpr std::uint32_t kNoMetricSlot = 0xFFFFFFFFu;

/// Incremental interval-mean accumulator for one (node, metric) stream.
/// This is the scalar reference form of the accumulation semantics; the
/// recognizer itself stores every window as SoA lanes (contiguous
/// sum/count/tick arrays fed through core/rounding_kernel's
/// accumulate_lanes) and test_hot_path asserts the lane kernel matches
/// this class bit for bit.
class WindowAccumulator {
 public:
  explicit WindowAccumulator(telemetry::Interval interval) : interval_(interval) {}

  /// Feeds the sample at integer second \p t (monotonically increasing).
  void push(int t, double value) noexcept;

  telemetry::Interval interval() const noexcept { return interval_; }
  bool complete() const noexcept;
  std::size_t count() const noexcept { return count_; }
  double sum() const noexcept { return sum_; }
  int last_t() const noexcept { return last_t_; }

  /// Mean over the samples received inside the window so far.
  double mean() const noexcept;

  /// Snapshot restore: overwrites the incremental state wholesale. The
  /// caller (OnlineRecognizer::import_state) owns consistency.
  void restore_state(double sum, std::size_t count, int last_t) noexcept {
    sum_ = sum;
    count_ = count;
    last_t_ = last_t;
  }

 private:
  telemetry::Interval interval_;
  double sum_ = 0.0;
  std::size_t count_ = 0;
  int last_t_ = -1;
};

/// Streaming recognizer over a trained dictionary view (single-threaded
/// Dictionary or concurrent ShardedDictionary). One instance watches one
/// job; it is not internally synchronized — RecognitionService wraps
/// each stream in its own lock to multiplex jobs across threads.
class OnlineRecognizer {
 public:
  /// \param dictionary trained dictionary (borrowed; must outlive).
  /// \param node_count nodes of the job being watched.
  OnlineRecognizer(const DictionaryView& dictionary, std::uint32_t node_count);

  /// Feeds one sample. Ignores metrics the dictionary does not fingerprint.
  void push(std::uint32_t node_id, std::string_view metric_name, int t,
            double value);

  /// Resolves a metric name to its dictionary slot once, so steady-state
  /// feeding can use push_slot() and skip the per-sample string compare.
  /// Returns kNoMetricSlot for metrics the dictionary does not
  /// fingerprint.
  std::uint32_t metric_slot(std::string_view metric_name) const noexcept;

  /// Name of a slot returned by metric_slot(); the empty string for
  /// kNoMetricSlot or out-of-range slots.
  const std::string& metric_name(std::uint32_t slot) const noexcept;

  /// Slot-addressed push — the allocation- and comparison-free form of
  /// push(). Out-of-range slots and nodes are ignored.
  void push_slot(std::uint32_t node_id, std::uint32_t slot, int t,
                 double value) noexcept;

  /// True once every (node, metric, interval) window has closed. O(1):
  /// maintained as a counter of completed windows.
  bool ready() const noexcept;

  /// Verdict; available (non-nullopt) once ready(). Computed lazily and
  /// cached. Identical to the offline Matcher result for the same data.
  std::optional<RecognitionResult> result() const;

  /// result() computed with a caller-owned scratch instead of the
  /// recognizer's internal one — the worker-pool form, where one scratch
  /// per worker thread serves every stream that worker drains. The
  /// rendered verdict is identical either way (the scratch is working
  /// memory, not state).
  std::optional<RecognitionResult> result(RecognitionScratch& scratch) const;

  /// Seconds still missing until the last window closes (0 when ready).
  int seconds_until_ready(int current_t) const noexcept;

  std::uint32_t node_count() const noexcept { return node_count_; }

  /// One accumulator's incremental state, as it travels through an
  /// EFD-SNAP-V1 service snapshot (see service_snapshot.hpp).
  struct AccumulatorState {
    double sum = 0.0;
    std::uint64_t count = 0;
    std::int32_t last_t = -1;
  };

  /// Flattens every accumulator's state in deterministic (node, metric,
  /// interval) order — the snapshot serialization order.
  std::vector<AccumulatorState> export_state() const;

  /// Inverse of export_state on a freshly constructed recognizer over
  /// the same config/node count. Throws std::invalid_argument when the
  /// state count does not match this recognizer's accumulator layout.
  void import_state(const std::vector<AccumulatorState>& states);

 private:
  std::optional<RecognitionResult> result_with(RecognitionScratch& scratch) const;

  /// Flat lane index of window (node, metric slot, interval).
  std::size_t lane_index(std::uint32_t node, std::size_t slot,
                         std::size_t interval) const noexcept {
    return (static_cast<std::size_t>(node) * metric_count_ + slot) *
               interval_count_ +
           interval;
  }
  double lane_mean(std::size_t w) const noexcept {
    return counts_[w] > 0 ? sums_[w] / static_cast<double>(counts_[w]) : 0.0;
  }

  const DictionaryView* dictionary_;
  std::uint32_t node_count_;
  std::size_t metric_count_ = 0;
  std::size_t interval_count_ = 0;
  /// Window state in SoA form: one lane per (node, metric, interval)
  /// window at lane_index() — contiguous per (node, metric) block, so
  /// push_slot feeds a whole block through accumulate_lanes in one
  /// vectorizable pass instead of walking an AoS accumulator list.
  std::vector<double> sums_;
  std::vector<std::uint64_t> counts_;
  std::vector<std::int32_t> last_ts_;
  /// Per-interval window bounds, shared by every (node, metric) block
  /// (the dictionary config's interval list, in order).
  std::vector<std::int32_t> interval_begins_;
  std::vector<std::int32_t> interval_ends_;
  /// Windows completed so far out of windows_total_ — keeps ready() O(1)
  /// on the per-sample path (it used to walk every accumulator).
  std::size_t windows_complete_ = 0;
  std::size_t windows_total_ = 0;
  /// Reused fingerprint arena + vote arrays for result(); makes the
  /// verdict computation allocation-free after the first call.
  mutable RecognitionScratch scratch_;
  mutable std::optional<RecognitionResult> cached_;
};

}  // namespace efd::core
