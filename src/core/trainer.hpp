#pragma once
/// \file trainer.hpp
/// \brief The learning phase: builds a Dictionary from labeled executions.

#include "core/dictionary.hpp"
#include "core/sharded_dictionary.hpp"
#include "telemetry/dataset.hpp"

namespace efd::util {
class ThreadPool;
}

namespace efd::core {

/// Builds a dictionary from the given executions of \p dataset.
///
/// For every training execution, fingerprints are constructed under
/// \p config and inserted with the execution's full label ("ft_X") as the
/// value — the paper's Figure 1 step (1).
///
/// \param indices records to learn from; empty means all records.
Dictionary train_dictionary(const telemetry::Dataset& dataset,
                            const FingerprintConfig& config,
                            const std::vector<std::size_t>& indices = {});

/// Sharded learning: partitions the training records across the global
/// thread pool, builds one dictionary per shard, and merges them — the
/// ingest layout of a production deployment where every ingest daemon
/// learns its own shard of job history. The result is identical to the
/// sequential trainer up to per-entry label first-seen order within a
/// key (vote semantics are unaffected; tie order follows shard merge
/// order, which is deterministic).
Dictionary train_dictionary_parallel(const telemetry::Dataset& dataset,
                                     const FingerprintConfig& config,
                                     const std::vector<std::size_t>& indices = {},
                                     std::size_t shards = 0);

/// Deterministic parallel batch training of the concurrent engine.
///
/// Three phases: (1) fingerprints of every training record are built in
/// parallel across the pool (the expensive part); (2) the application
/// tie-break epoch is fixed by a sequential scan in record order, exactly
/// matching what sequential insertion would have produced; (3) one worker
/// per shard replays the records in order, inserting only the keys that
/// hash to its shard. Because each key lives in exactly one shard and
/// each shard is filled by one worker in record order, the result is
/// byte-identical to train_dictionary() — same entries, same per-entry
/// label first-seen order, same serialization — for any shard/thread
/// count.
///
/// Must be called from outside the pool's own workers (it blocks on the
/// pool). \p pool null means the global pool.
ShardedDictionary train_dictionary_sharded(
    const telemetry::Dataset& dataset, const FingerprintConfig& config,
    const std::vector<std::size_t>& indices = {}, std::size_t shard_count = 0,
    util::ThreadPool* pool = nullptr);

}  // namespace efd::core
