#pragma once
/// \file trainer.hpp
/// \brief The learning phase: builds a Dictionary from labeled executions.

#include "core/dictionary.hpp"
#include "telemetry/dataset.hpp"

namespace efd::core {

/// Builds a dictionary from the given executions of \p dataset.
///
/// For every training execution, fingerprints are constructed under
/// \p config and inserted with the execution's full label ("ft_X") as the
/// value — the paper's Figure 1 step (1).
///
/// \param indices records to learn from; empty means all records.
Dictionary train_dictionary(const telemetry::Dataset& dataset,
                            const FingerprintConfig& config,
                            const std::vector<std::size_t>& indices = {});

/// Sharded learning: partitions the training records across the global
/// thread pool, builds one dictionary per shard, and merges them — the
/// ingest layout of a production deployment where every ingest daemon
/// learns its own shard of job history. The result is identical to the
/// sequential trainer up to per-entry label first-seen order within a
/// key (vote semantics are unaffected; tie order follows shard merge
/// order, which is deterministic).
Dictionary train_dictionary_parallel(const telemetry::Dataset& dataset,
                                     const FingerprintConfig& config,
                                     const std::vector<std::size_t>& indices = {},
                                     std::size_t shards = 0);

}  // namespace efd::core
