#include "core/dictionary.hpp"

#include <algorithm>
#include <fstream>
#include <numeric>
#include <ostream>
#include <set>
#include <sstream>
#include <stdexcept>

#include "telemetry/execution_record.hpp"
#include "util/string_utils.hpp"

namespace efd::core {

void DictionaryEntry::observe(const std::string& label, std::uint32_t count) {
  if (count == 0) return;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] == label) {
      counts[i] += count;
      return;
    }
  }
  labels.push_back(label);
  counts.push_back(count);
}

bool DictionaryEntry::contains(const std::string& label) const {
  return std::find(labels.begin(), labels.end(), label) != labels.end();
}

std::uint64_t DictionaryEntry::total_count() const noexcept {
  return std::accumulate(counts.begin(), counts.end(), std::uint64_t{0});
}

void Dictionary::insert(const FingerprintKey& key, const std::string& label,
                        std::uint32_t count) {
  if (count == 0) return;
  const std::uint32_t label_id = labels_->intern(label);
  DictionaryEntry& entry = entries_[key];
  entry.observe(label, count);
  // observe() appends at most this one label at the end, so the id lists
  // stay aligned by appending exactly when labels grew.
  if (entry.label_ids.size() < entry.labels.size()) {
    entry.label_ids.push_back(label_id);
  }
  const std::string application = telemetry::parse_label(label).application;
  application_first_seen_.emplace(application, application_first_seen_.size());
}

const DictionaryEntry* Dictionary::lookup(const FingerprintKey& key) const {
  const auto it = entries_.find(key);
  return it != entries_.end() ? &it->second : nullptr;
}

bool Dictionary::lookup_entry(const FingerprintKey& key,
                              DictionaryEntry& out) const {
  out.labels.clear();
  out.counts.clear();
  out.label_ids.clear();
  const auto it = entries_.find(key);
  if (it == entries_.end()) return false;
  out = it->second;
  return true;
}

std::size_t Dictionary::application_order(const std::string& application) const {
  const auto it = application_first_seen_.find(application);
  return it != application_first_seen_.end()
             ? it->second
             : application_first_seen_.size();  // unknowns sort last
}

void Dictionary::register_application(const std::string& application) {
  application_first_seen_.emplace(application, application_first_seen_.size());
}

std::vector<std::string> Dictionary::applications_in_order() const {
  std::vector<std::string> ordered(application_first_seen_.size());
  for (const auto& [application, rank] : application_first_seen_) {
    ordered[rank] = application;
  }
  return ordered;
}

std::size_t Dictionary::prune_rare(std::uint32_t min_observations) {
  std::size_t removed = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.total_count() < min_observations) {
      it = entries_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

void Dictionary::merge(const Dictionary& other) {
  const auto same_config = [&] {
    const FingerprintConfig& a = config_;
    const FingerprintConfig& b = other.config_;
    return a.metrics == b.metrics && a.intervals == b.intervals &&
           a.rounding_depth == b.rounding_depth &&
           a.combine_metrics == b.combine_metrics;
  };
  if (!same_config()) {
    throw std::invalid_argument("cannot merge dictionaries with different configs");
  }
  // Adopt the source's application epoch order first so tie-breaking
  // stays deterministic regardless of entry iteration order below.
  for (const std::string& application : other.applications_in_order()) {
    register_application(application);
  }
  for (const auto& [key, entry] : other.entries_) {
    for (std::size_t i = 0; i < entry.labels.size(); ++i) {
      insert(key, entry.labels[i], entry.counts[i]);
    }
  }
}

DictionaryStats Dictionary::stats() const {
  DictionaryStats stats;
  stats.key_count = entries_.size();
  std::size_t label_total = 0;
  for (const auto& [key, entry] : entries_) {
    std::set<std::string> applications;
    for (const auto& label : entry.labels) {
      applications.insert(telemetry::parse_label(label).application);
    }
    if (applications.size() <= 1) ++stats.exclusive_keys;
    else ++stats.colliding_keys;
    label_total += entry.labels.size();
    stats.total_observations += entry.total_count();
  }
  stats.mean_labels_per_key =
      entries_.empty() ? 0.0
                       : static_cast<double>(label_total) /
                             static_cast<double>(entries_.size());
  return stats;
}

namespace detail {

bool fingerprint_key_before(const FingerprintKey& a, const FingerprintKey& b) {
  if (a.metric != b.metric) return a.metric < b.metric;
  if (a.interval.begin_seconds != b.interval.begin_seconds) {
    return a.interval.begin_seconds < b.interval.begin_seconds;
  }
  if (a.rounded_means != b.rounded_means) {
    return a.rounded_means < b.rounded_means;
  }
  return a.node_id < b.node_id;
}

}  // namespace detail

std::vector<std::pair<FingerprintKey, DictionaryEntry>>
Dictionary::sorted_entries() const {
  std::vector<std::pair<FingerprintKey, DictionaryEntry>> sorted(
      entries_.begin(), entries_.end());
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    return detail::fingerprint_key_before(a.first, b.first);
  });
  return sorted;
}

std::vector<FingerprintKey> Dictionary::keys_for_label(
    const std::string& label) const {
  std::vector<FingerprintKey> keys;
  for (const auto& [key, entry] : sorted_entries()) {
    if (entry.contains(label)) keys.push_back(key);
  }
  return keys;
}

namespace {
constexpr char kFormatTag[] = "EFD-DICT-V1";
}

namespace detail {

void save_dictionary_text(
    std::ostream& out, const FingerprintConfig& config,
    const std::vector<std::pair<FingerprintKey, DictionaryEntry>>&
        sorted_entries) {
  out << kFormatTag << '\n';
  out << "metrics " << util::join(config.metrics, ",") << '\n';
  out << "intervals";
  for (const auto& interval : config.intervals) {
    out << ' ' << interval.begin_seconds << ':' << interval.end_seconds;
  }
  out << '\n';
  out << "depth " << config.rounding_depth << '\n';
  out << "combine " << (config.combine_metrics ? 1 : 0) << '\n';
  out << "keys " << sorted_entries.size() << '\n';
  for (const auto& [key, entry] : sorted_entries) {
    out << key.metric << '|' << key.node_id << '|' << key.interval.begin_seconds
        << ':' << key.interval.end_seconds << '|';
    for (std::size_t i = 0; i < key.rounded_means.size(); ++i) {
      if (i != 0) out << ',';
      out << util::format_mean(key.rounded_means[i]);
    }
    out << '|';
    for (std::size_t i = 0; i < entry.labels.size(); ++i) {
      if (i != 0) out << ',';
      out << entry.labels[i] << '=' << entry.counts[i];
    }
    out << '\n';
  }
}

}  // namespace detail

void Dictionary::save(std::ostream& out) const {
  detail::save_dictionary_text(out, config_, sorted_entries());
}

void Dictionary::save_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  save(out);
  if (!out) throw std::runtime_error("write failed: " + path);
}

Dictionary Dictionary::load(std::istream& in) {
  std::string line;
  auto fail = [](const std::string& why) -> Dictionary {
    throw std::runtime_error("malformed dictionary: " + why);
  };

  if (!std::getline(in, line) || line != kFormatTag) return fail("bad header");

  FingerprintConfig config;
  config.intervals.clear();

  if (!std::getline(in, line) || !util::starts_with(line, "metrics "))
    return fail("missing metrics");
  const std::string metric_csv = line.substr(8);
  if (!metric_csv.empty()) config.metrics = util::split(metric_csv, ',');

  if (!std::getline(in, line) || !util::starts_with(line, "intervals"))
    return fail("missing intervals");
  for (const std::string& token : util::split(line, ' ')) {
    if (token == "intervals" || token.empty()) continue;
    const auto parts = util::split(token, ':');
    if (parts.size() != 2) return fail("bad interval token");
    const auto begin = util::parse_int(parts[0]);
    const auto end = util::parse_int(parts[1]);
    if (!begin || !end) return fail("bad interval numbers");
    config.intervals.push_back(
        {static_cast<int>(*begin), static_cast<int>(*end)});
  }

  if (!std::getline(in, line) || !util::starts_with(line, "depth "))
    return fail("missing depth");
  const auto depth = util::parse_int(line.substr(6));
  if (!depth) return fail("bad depth");
  config.rounding_depth = static_cast<int>(*depth);

  if (!std::getline(in, line) || !util::starts_with(line, "combine "))
    return fail("missing combine flag");
  config.combine_metrics = line.substr(8) == "1";

  if (!std::getline(in, line) || !util::starts_with(line, "keys "))
    return fail("missing key count");
  const auto key_count = util::parse_int(line.substr(5));
  if (!key_count || *key_count < 0) return fail("bad key count");

  Dictionary dictionary(config);
  for (long long k = 0; k < *key_count; ++k) {
    if (!std::getline(in, line)) return fail("truncated key list");
    const auto fields = util::split(line, '|');
    if (fields.size() != 5) return fail("bad key row");
    FingerprintKey key;
    key.metric = fields[0];
    const auto node = util::parse_int(fields[1]);
    if (!node) return fail("bad node id");
    key.node_id = static_cast<std::uint32_t>(*node);
    const auto interval_parts = util::split(fields[2], ':');
    if (interval_parts.size() != 2) return fail("bad key interval");
    const auto ib = util::parse_int(interval_parts[0]);
    const auto ie = util::parse_int(interval_parts[1]);
    if (!ib || !ie) return fail("bad key interval numbers");
    key.interval = {static_cast<int>(*ib), static_cast<int>(*ie)};
    for (const std::string& mean_text : util::split(fields[3], ',')) {
      const auto mean = util::parse_double(mean_text);
      if (!mean) return fail("bad mean");
      key.rounded_means.push_back(*mean);
    }
    for (const std::string& label_token : util::split(fields[4], ',')) {
      const auto eq = label_token.rfind('=');
      if (eq == std::string::npos) return fail("bad label token");
      const auto count = util::parse_int(label_token.substr(eq + 1));
      if (!count || *count < 1) return fail("bad label count");
      const std::string label = label_token.substr(0, eq);
      dictionary.insert(key, label, static_cast<std::uint32_t>(*count));
    }
  }
  return dictionary;
}

Dictionary Dictionary::load_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open dictionary: " + path);
  return load(in);
}

}  // namespace efd::core
