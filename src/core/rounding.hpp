#pragma once
/// \file rounding.hpp
/// \brief The paper's "pruning" mechanism: significant-digit rounding.
///
/// Computing interval means produces precise floating point values that
/// are unlikely to repeat under system noise. Instead of comparing with a
/// distance measure, the EFD rounds means so that similar-but-distinct
/// measurements collapse into the same dictionary key — Shazam-style
/// exact matching.
///
/// *Rounding depth* "defines the position of a non-zero digit, counting
/// from the left, to which we will round" (paper, Table 1):
///
///     value    depth=1   depth=2   depth=3   depth=4
///     1358.0    1000.0    1400.0    1360.0    1358.0
///        5.28      5.0       5.3       5.28      -
///        0.038     0.04      0.038     -         -
///
/// Crucially, a measurement's rounding is decided *before* seeing other
/// measurements (no data-dependent quantile grids), so train-time and
/// test-time keys agree by construction.

#include <string>

namespace efd::core {

/// Rounds \p value to its \p depth-th significant digit (counted from the
/// leftmost non-zero digit). depth < 1 is clamped to 1. Zero, infinities
/// and NaN are returned unchanged. Negative values round by magnitude.
double round_to_depth(double value, int depth) noexcept;

/// Width of the rounding bucket \p value falls into at \p depth — i.e.
/// one unit in the digit position being rounded to (1000 for 1358.0 at
/// depth 1, 0.01 for 5.28 at depth 3). Returns 0 for zero/non-finite input.
double bucket_width(double value, int depth) noexcept;

/// Number of significant digits needed to represent the value exactly at
/// the given depth — used when printing fingerprints the way the paper
/// does ("6000.0", "5.3", "0.04").
std::string format_rounded(double rounded_value);

/// Inclusive range of depths the dictionary tuner searches. The dataset's
/// metrics carry at most ~7 meaningful digits, so deeper settings only
/// reproduce the raw mean.
inline constexpr int kMinRoundingDepth = 1;
inline constexpr int kMaxRoundingDepth = 6;

}  // namespace efd::core
