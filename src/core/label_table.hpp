#pragma once
/// \file label_table.hpp
/// \brief Lock-free-read interner of full labels ("ft_X") and their
/// applications to dense u32 ids — the id space the allocation-free
/// recognition hot path votes in.
///
/// The string-keyed scoring loop pays for itself many times per matched
/// entry: a parse_label per label, a std::set per entry to dedup
/// applications, and a std::map node per vote. Interning every label the
/// dictionary has ever observed to a dense id turns all of that into
/// flat-array arithmetic (see recognition_scratch.hpp); names reappear
/// only when a verdict is rendered for a human or the wire.
///
/// Concurrency model is the ApplicationRegistry's (app_registry.hpp),
/// copied deliberately:
///  - Readers (id_of / label_name / application_of / counts) do one
///    acquire-load of an immutable snapshot and an array/hash lookup —
///    no lock, no refcount. Ids are stable forever once assigned.
///  - Writers (intern) serialize on a mutex, copy the snapshot, append,
///    and publish with a release store. A label is interned once per
///    dictionary lifetime, so the copy is training-time cost, not
///    serve-time.
///  - Superseded snapshots are retired into a list freed on destruction
///    (one per distinct label ever interned — O(labels²) strings, a few
///    hundred KB at paper scale), so readers never synchronize with
///    reclamation.
///
/// Note the table's application ids are its own dense space for vote
/// arrays; the tie-break epoch order remains the dictionary's
/// ApplicationRegistry — ranks are queried by name at verdict time.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace efd::core {

/// "No id": returned for strings never interned; never a valid id.
inline constexpr std::uint32_t kNoLabelId = 0xFFFFFFFFu;

class LabelTable {
 public:
  LabelTable();
  ~LabelTable();

  LabelTable(LabelTable&& other) noexcept;
  LabelTable& operator=(LabelTable&& other) noexcept;
  LabelTable(const LabelTable&) = delete;
  LabelTable& operator=(const LabelTable&) = delete;

  /// Dense id of \p label, interning it (and its application) on first
  /// sight. Lock-free when already interned — the dictionary-insert path.
  std::uint32_t intern(const std::string& label);

  /// Id of an already-interned label; kNoLabelId if never seen. Lock-free.
  std::uint32_t id_of(const std::string& label) const noexcept;

  /// Full label name for an id (stable reference: snapshots are retained
  /// for the table's lifetime). Empty string for out-of-range ids.
  const std::string& label_name(std::uint32_t label_id) const noexcept;

  /// Application id of a label id; kNoLabelId for out-of-range ids.
  std::uint32_t application_of(std::uint32_t label_id) const noexcept;

  /// Application name for an application id; empty for out-of-range.
  const std::string& application_name(std::uint32_t app_id) const noexcept;

  /// Distinct labels / applications interned so far. Lock-free.
  std::size_t label_count() const noexcept;
  std::size_t application_count() const noexcept;

 private:
  struct Snapshot {
    std::unordered_map<std::string, std::uint32_t> label_ids;
    std::vector<std::string> label_names;      ///< index == label id
    std::vector<std::uint32_t> label_app;      ///< label id -> app id
    std::unordered_map<std::string, std::uint32_t> app_ids;
    std::vector<std::string> app_names;        ///< index == app id
  };

  /// Shared immutable empty snapshot (fresh and moved-from tables point
  /// here; never owned, never freed).
  static const Snapshot* empty_snapshot();

  const Snapshot* snapshot() const noexcept {
    return current_.load(std::memory_order_acquire);
  }

  std::atomic<const Snapshot*> current_;
  std::mutex writer_mutex_;
  /// Owns every snapshot ever published (current included); guarded by
  /// writer_mutex_, freed only on destruction/move.
  std::vector<std::unique_ptr<const Snapshot>> snapshots_;
};

}  // namespace efd::core
