#include "core/fingerprint.hpp"

#include <sstream>
#include <stdexcept>

#include "core/recognition_scratch.hpp"
#include "core/rounding.hpp"
#include "core/rounding_kernel.hpp"
#include "util/rng.hpp"
#include "util/string_utils.hpp"

namespace efd::core {

std::string FingerprintKey::to_string() const {
  std::ostringstream out;
  out << '[' << metric << ", " << node_id << ", [" << interval.begin_seconds
      << ':' << interval.end_seconds << "], ";
  for (std::size_t i = 0; i < rounded_means.size(); ++i) {
    if (i != 0) out << " + ";
    out << util::format_mean(rounded_means[i]);
  }
  out << ']';
  return out.str();
}

std::size_t FingerprintKeyHash::operator()(const FingerprintKey& key) const noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix64 = [&h](std::uint64_t word) {
    h ^= word;
    h *= 0x100000001b3ULL;
    h ^= h >> 29;
  };
  for (char c : key.metric) {
    h = (h ^ static_cast<unsigned char>(c)) * 0x100000001b3ULL;
  }
  mix64(key.node_id);
  mix64(static_cast<std::uint64_t>(
      static_cast<std::uint32_t>(key.interval.begin_seconds)));
  mix64(static_cast<std::uint64_t>(
      static_cast<std::uint32_t>(key.interval.end_seconds)));
  for (double mean : key.rounded_means) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(mean));
    __builtin_memcpy(&bits, &mean, sizeof(bits));
    mix64(bits);
  }
  return static_cast<std::size_t>(h);
}

std::vector<FingerprintKey> build_fingerprints(
    const telemetry::ExecutionRecord& record, const FingerprintConfig& config,
    const std::vector<std::size_t>& metric_slots) {
  if (metric_slots.size() != config.metrics.size()) {
    throw std::invalid_argument("metric_slots must align with config.metrics");
  }
  std::vector<FingerprintKey> keys;

  for (const telemetry::Interval& interval : config.intervals) {
    if (!interval.valid()) {
      throw std::invalid_argument("invalid fingerprint interval");
    }
    for (std::size_t node = 0; node < record.node_count(); ++node) {
      if (config.combine_metrics) {
        // One combinatorial key carrying every metric's rounded mean.
        FingerprintKey key;
        key.metric = util::join(config.metrics, "+");
        key.node_id = record.node(node).node_id;
        key.interval = interval;
        bool covered = true;
        for (std::size_t m = 0; m < metric_slots.size(); ++m) {
          const telemetry::TimeSeries& series = record.series(node, metric_slots[m]);
          if (!series.covers(interval)) {
            covered = false;
            break;
          }
          key.rounded_means.push_back(
              round_to_depth(series.mean_over(interval), config.rounding_depth));
        }
        if (covered) keys.push_back(std::move(key));
      } else {
        for (std::size_t m = 0; m < metric_slots.size(); ++m) {
          const telemetry::TimeSeries& series = record.series(node, metric_slots[m]);
          if (!series.covers(interval)) continue;
          FingerprintKey key;
          key.metric = config.metrics[m];
          key.node_id = record.node(node).node_id;
          key.interval = interval;
          key.rounded_means.push_back(
              round_to_depth(series.mean_over(interval), config.rounding_depth));
          keys.push_back(std::move(key));
        }
      }
    }
  }
  return keys;
}

std::vector<FingerprintKey> build_fingerprints(
    const telemetry::ExecutionRecord& record, const FingerprintConfig& config,
    const telemetry::Dataset& dataset) {
  std::vector<std::size_t> slots;
  slots.reserve(config.metrics.size());
  for (const std::string& name : config.metrics) {
    slots.push_back(dataset.metric_slot(name));
  }
  return build_fingerprints(record, config, slots);
}

void build_fingerprints_into(const telemetry::ExecutionRecord& record,
                             const FingerprintConfig& config,
                             const std::vector<std::size_t>& metric_slots,
                             RecognitionScratch& scratch) {
  if (metric_slots.size() != config.metrics.size()) {
    throw std::invalid_argument("metric_slots must align with config.metrics");
  }
  for (const telemetry::Interval& interval : config.intervals) {
    if (!interval.valid()) {
      throw std::invalid_argument("invalid fingerprint interval");
    }
  }

  scratch.begin_keys();
  std::vector<double>& means = scratch.means_lane();
  std::vector<std::uint8_t>& covered = scratch.covered_lane();
  means.clear();
  covered.clear();

  // Pass 1 — gather every (interval, node, metric) window mean into one
  // contiguous lane (uncovered windows contribute a placeholder 0.0 so
  // the lane layout stays rectangular)...
  for (const telemetry::Interval& interval : config.intervals) {
    for (std::size_t node = 0; node < record.node_count(); ++node) {
      for (const std::size_t slot : metric_slots) {
        const telemetry::TimeSeries& series = record.series(node, slot);
        const bool covers = series.covers(interval);
        covered.push_back(covers ? 1 : 0);
        means.push_back(covers ? series.mean_over(interval) : 0.0);
      }
    }
  }

  // ...round the whole lane in one dispatched kernel pass...
  round_lanes(means, config.rounding_depth);

  // ...then emit keys in build_fingerprints' exact traversal order,
  // consuming the lane at the same stride.
  const std::size_t metric_count = metric_slots.size();
  std::string& combined_name = scratch.name_buffer();
  if (config.combine_metrics) {
    combined_name.clear();
    for (std::size_t m = 0; m < config.metrics.size(); ++m) {
      if (m != 0) combined_name += '+';
      combined_name += config.metrics[m];
    }
  }

  std::size_t lane = 0;
  for (const telemetry::Interval& interval : config.intervals) {
    for (std::size_t node = 0; node < record.node_count(); ++node, lane += metric_count) {
      if (config.combine_metrics) {
        bool all_covered = true;  // zero metrics: a key with no means, like build_fingerprints
        for (std::size_t m = 0; m < metric_count; ++m) {
          if (!covered[lane + m]) {
            all_covered = false;
            break;
          }
        }
        if (!all_covered) continue;
        FingerprintKey& key = scratch.next_key();
        key.metric.assign(combined_name);
        key.node_id = record.node(node).node_id;
        key.interval = interval;
        for (std::size_t m = 0; m < metric_count; ++m) {
          key.rounded_means.push_back(means[lane + m]);
        }
      } else {
        for (std::size_t m = 0; m < metric_count; ++m) {
          if (!covered[lane + m]) continue;
          FingerprintKey& key = scratch.next_key();
          key.metric.assign(config.metrics[m]);
          key.node_id = record.node(node).node_id;
          key.interval = interval;
          key.rounded_means.push_back(means[lane + m]);
        }
      }
    }
  }
}

}  // namespace efd::core
