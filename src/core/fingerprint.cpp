#include "core/fingerprint.hpp"

#include <sstream>
#include <stdexcept>

#include "core/rounding.hpp"
#include "util/rng.hpp"
#include "util/string_utils.hpp"

namespace efd::core {

std::string FingerprintKey::to_string() const {
  std::ostringstream out;
  out << '[' << metric << ", " << node_id << ", [" << interval.begin_seconds
      << ':' << interval.end_seconds << "], ";
  for (std::size_t i = 0; i < rounded_means.size(); ++i) {
    if (i != 0) out << " + ";
    out << util::format_mean(rounded_means[i]);
  }
  out << ']';
  return out.str();
}

std::size_t FingerprintKeyHash::operator()(const FingerprintKey& key) const noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix64 = [&h](std::uint64_t word) {
    h ^= word;
    h *= 0x100000001b3ULL;
    h ^= h >> 29;
  };
  for (char c : key.metric) {
    h = (h ^ static_cast<unsigned char>(c)) * 0x100000001b3ULL;
  }
  mix64(key.node_id);
  mix64(static_cast<std::uint64_t>(
      static_cast<std::uint32_t>(key.interval.begin_seconds)));
  mix64(static_cast<std::uint64_t>(
      static_cast<std::uint32_t>(key.interval.end_seconds)));
  for (double mean : key.rounded_means) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(mean));
    __builtin_memcpy(&bits, &mean, sizeof(bits));
    mix64(bits);
  }
  return static_cast<std::size_t>(h);
}

std::vector<FingerprintKey> build_fingerprints(
    const telemetry::ExecutionRecord& record, const FingerprintConfig& config,
    const std::vector<std::size_t>& metric_slots) {
  if (metric_slots.size() != config.metrics.size()) {
    throw std::invalid_argument("metric_slots must align with config.metrics");
  }
  std::vector<FingerprintKey> keys;

  for (const telemetry::Interval& interval : config.intervals) {
    if (!interval.valid()) {
      throw std::invalid_argument("invalid fingerprint interval");
    }
    for (std::size_t node = 0; node < record.node_count(); ++node) {
      if (config.combine_metrics) {
        // One combinatorial key carrying every metric's rounded mean.
        FingerprintKey key;
        key.metric = util::join(config.metrics, "+");
        key.node_id = record.node(node).node_id;
        key.interval = interval;
        bool covered = true;
        for (std::size_t m = 0; m < metric_slots.size(); ++m) {
          const telemetry::TimeSeries& series = record.series(node, metric_slots[m]);
          if (!series.covers(interval)) {
            covered = false;
            break;
          }
          key.rounded_means.push_back(
              round_to_depth(series.mean_over(interval), config.rounding_depth));
        }
        if (covered) keys.push_back(std::move(key));
      } else {
        for (std::size_t m = 0; m < metric_slots.size(); ++m) {
          const telemetry::TimeSeries& series = record.series(node, metric_slots[m]);
          if (!series.covers(interval)) continue;
          FingerprintKey key;
          key.metric = config.metrics[m];
          key.node_id = record.node(node).node_id;
          key.interval = interval;
          key.rounded_means.push_back(
              round_to_depth(series.mean_over(interval), config.rounding_depth));
          keys.push_back(std::move(key));
        }
      }
    }
  }
  return keys;
}

std::vector<FingerprintKey> build_fingerprints(
    const telemetry::ExecutionRecord& record, const FingerprintConfig& config,
    const telemetry::Dataset& dataset) {
  std::vector<std::size_t> slots;
  slots.reserve(config.metrics.size());
  for (const std::string& name : config.metrics) {
    slots.push_back(dataset.metric_slot(name));
  }
  return build_fingerprints(record, config, slots);
}

}  // namespace efd::core
