#include "core/app_registry.hpp"

#include <utility>

namespace efd::core {

const ApplicationRegistry::Snapshot* ApplicationRegistry::empty_snapshot() {
  // Shared immutable empty state: lets construction and the noexcept
  // moves avoid allocating (an allocating noexcept move would terminate
  // on bad_alloc). Never owned by any registry's snapshot list.
  static const Snapshot empty;
  return &empty;
}

ApplicationRegistry::ApplicationRegistry() {
  current_.store(empty_snapshot(), std::memory_order_release);
}

ApplicationRegistry::~ApplicationRegistry() = default;

ApplicationRegistry::ApplicationRegistry(ApplicationRegistry&& other) noexcept {
  std::lock_guard lock(other.writer_mutex_);
  snapshots_ = std::move(other.snapshots_);
  current_.store(other.current_.load(std::memory_order_acquire),
                 std::memory_order_release);
  // Leave the source valid and empty without allocating: it must not
  // dangle into the snapshots we now own.
  other.current_.store(empty_snapshot(), std::memory_order_release);
  other.snapshots_.clear();
}

ApplicationRegistry& ApplicationRegistry::operator=(
    ApplicationRegistry&& other) noexcept {
  if (this != &other) {
    std::scoped_lock lock(writer_mutex_, other.writer_mutex_);
    snapshots_ = std::move(other.snapshots_);
    current_.store(other.current_.load(std::memory_order_acquire),
                   std::memory_order_release);
    other.current_.store(empty_snapshot(), std::memory_order_release);
    other.snapshots_.clear();
  }
  return *this;
}

bool ApplicationRegistry::contains(
    const std::string& application) const noexcept {
  const Snapshot* snap = snapshot();
  return snap->rank.find(application) != snap->rank.end();
}

std::size_t ApplicationRegistry::order_of(
    const std::string& application) const noexcept {
  const Snapshot* snap = snapshot();
  const auto it = snap->rank.find(application);
  return it != snap->rank.end() ? it->second : snap->names.size();
}

std::size_t ApplicationRegistry::size() const noexcept {
  return snapshot()->names.size();
}

std::vector<std::string> ApplicationRegistry::in_order() const {
  return snapshot()->names;
}

void ApplicationRegistry::register_application(const std::string& application) {
  // Hot path: already registered — one acquire load + hash probe.
  if (contains(application)) return;

  std::lock_guard lock(writer_mutex_);
  const Snapshot* head = current_.load(std::memory_order_relaxed);
  if (head->rank.find(application) != head->rank.end()) return;  // lost race

  auto next = std::make_unique<Snapshot>();
  next->rank = head->rank;
  next->names = head->names;
  next->rank.emplace(application, next->names.size());
  next->names.push_back(application);
  current_.store(next.get(), std::memory_order_release);
  snapshots_.push_back(std::move(next));
}

}  // namespace efd::core
