#pragma once
/// \file dictionary.hpp
/// \brief The Execution Fingerprint Dictionary: a hash-based lookup table
/// from fingerprint keys to application information — the paper's core
/// data structure, analogous to Shazam's fingerprint index.
///
/// Keys are unique; each key's value is the ordered set of
/// "application_input" labels whose training executions produced that
/// fingerprint, plus per-label observation counts. Insertion order is
/// preserved because the paper resolves recognition ties by "the first
/// application name in the array" (Section 3) — e.g. SP before BT for
/// their shared depth-2 keys in Table 4.

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/dictionary_view.hpp"
#include "core/fingerprint.hpp"
#include "core/label_table.hpp"

namespace efd::core {

/// Value of one dictionary entry.
struct DictionaryEntry {
  /// Distinct full labels ("ft_X"), in first-observation order.
  std::vector<std::string> labels;
  /// How many training executions contributed each label (aligned with
  /// labels). Used for pruning statistics and the ablation benches.
  std::vector<std::uint32_t> counts;
  /// Interned id per label (aligned with labels) in the owning
  /// dictionary's LabelTable — the allocation-free scoring path votes on
  /// these instead of re-parsing label strings. Not serialized; id values
  /// depend on interning order, which sharded training makes
  /// nondeterministic, but labels/counts (the durable content) do not.
  std::vector<std::uint32_t> label_ids;

  /// Adds one observation of a label.
  void observe(const std::string& label) { observe(label, 1); }

  /// Adds \p count observations at once (bulk merge/load path).
  void observe(const std::string& label, std::uint32_t count);

  /// True if the entry contains the label.
  bool contains(const std::string& label) const;

  /// Total observations across labels.
  std::uint64_t total_count() const noexcept;
};

/// Exclusiveness/pruning statistics (Section 5 discussion).
struct DictionaryStats {
  std::size_t key_count = 0;          ///< unique fingerprints
  std::size_t exclusive_keys = 0;     ///< keys with exactly 1 application
  std::size_t colliding_keys = 0;     ///< keys shared by >= 2 applications
  double mean_labels_per_key = 0.0;
  std::uint64_t total_observations = 0;
};

/// The dictionary proper. Single-threaded: for concurrent training and
/// lookup use ShardedDictionary (sharded_dictionary.hpp), which exposes
/// the same interface behind per-shard locks.
class Dictionary : public DictionaryView {
 public:
  Dictionary() = default;

  /// Construction-time config; stored so lookups are guaranteed to use the
  /// same fingerprinting settings as training (the paper's "same rounding
  /// depth as in the learning phase").
  explicit Dictionary(FingerprintConfig config) : config_(std::move(config)) {}

  const FingerprintConfig& config() const noexcept override { return config_; }

  /// The label interner entries' label_ids index into. Shared (not
  /// deep-copied) between copies of a dictionary: the table is
  /// append-only, so a copy's ids stay valid against the shared table.
  const LabelTable* label_table() const noexcept override {
    return labels_.get();
  }

  /// Number of unique keys.
  std::size_t size() const noexcept { return entries_.size(); }
  bool empty() const noexcept { return entries_.empty(); }

  /// Adds one (key, label) observation. Creates the key if absent.
  void insert(const FingerprintKey& key, const std::string& label) {
    insert(key, label, 1);
  }

  /// Adds \p count observations of (key, label) at once.
  void insert(const FingerprintKey& key, const std::string& label,
              std::uint32_t count);

  /// Entry for a key, or nullptr if absent. O(1) expected.
  const DictionaryEntry* lookup(const FingerprintKey& key) const;

  /// DictionaryView copy-out lookup (see dictionary_view.hpp).
  bool lookup_entry(const FingerprintKey& key,
                    DictionaryEntry& out) const override;

  /// Application-name first-seen order (for deterministic tie arrays).
  /// Applications are indexed in the order their first key was inserted.
  std::size_t application_order(const std::string& application) const override;

  /// Application names in first-seen order (the global tie-break epoch
  /// order). Used to transplant the order into a ShardedDictionary.
  std::vector<std::string> applications_in_order() const;

  /// Pre-registers an application in the first-seen order without
  /// inserting a key (idempotent). Lets conversions from sharded
  /// dictionaries reproduce the tie-break epoch exactly.
  void register_application(const std::string& application);

  /// Removes all keys whose total observation count is below
  /// \p min_observations; returns the number of keys removed. Models
  /// eviction of one-off noise fingerprints.
  std::size_t prune_rare(std::uint32_t min_observations);

  /// Merges another dictionary built with the same config (distributed
  /// learning across ingest shards). Throws std::invalid_argument on
  /// config mismatch.
  void merge(const Dictionary& other);

  /// Aggregate statistics over keys.
  DictionaryStats stats() const;

  /// All entries, sorted lexicographically by key string rendering — the
  /// order used for the Table 4 dump and for serialization determinism.
  std::vector<std::pair<FingerprintKey, DictionaryEntry>> sorted_entries() const;

  /// Reverse lookup (Section 6: "using the dictionary in reverse"): every
  /// key observed for a full label, e.g. to predict a known application's
  /// expected resource usage.
  std::vector<FingerprintKey> keys_for_label(const std::string& label) const;

  /// Serializes to a line-oriented text format.
  void save(std::ostream& out) const;
  void save_file(const std::string& path) const;

  /// Deserializes; throws std::runtime_error on malformed input.
  static Dictionary load(std::istream& in);
  static Dictionary load_file(const std::string& path);

  /// Iteration support (unordered).
  auto begin() const { return entries_.begin(); }
  auto end() const { return entries_.end(); }

 private:
  FingerprintConfig config_;
  std::unordered_map<FingerprintKey, DictionaryEntry, FingerprintKeyHash> entries_;
  std::unordered_map<std::string, std::size_t> application_first_seen_;
  std::shared_ptr<LabelTable> labels_ = std::make_shared<LabelTable>();
};

namespace detail {

/// Table-4 key ordering shared by Dictionary and ShardedDictionary
/// sorted_entries/serialization (metric, interval begin, means, node).
bool fingerprint_key_before(const FingerprintKey& a, const FingerprintKey& b);

/// Writes the EFD-DICT-V1 text rendering of (config, sorted entries) —
/// the single source of truth for the on-disk format.
void save_dictionary_text(
    std::ostream& out, const FingerprintConfig& config,
    const std::vector<std::pair<FingerprintKey, DictionaryEntry>>& sorted_entries);

}  // namespace detail

}  // namespace efd::core
