#pragma once
/// \file depth_selector.hpp
/// \brief Selection of the EFD's only tunable parameter, the rounding
/// depth, "through cross-fold validation within the training set"
/// (paper, Section 3).

#include <cstdint>
#include <map>
#include <vector>

#include "core/fingerprint.hpp"
#include "telemetry/dataset.hpp"

namespace efd::core {

struct DepthSelectionConfig {
  int min_depth = 1;
  int max_depth = 6;
  std::size_t folds = 5;       ///< inner CV folds
  std::uint64_t seed = 17;
  bool parallel = true;        ///< evaluate depths across the thread pool
};

struct DepthSelectionResult {
  int best_depth = 2;
  /// Mean inner-CV macro F-score per candidate depth.
  std::map<int, double> f_score_by_depth;
};

/// Evaluates every candidate depth with stratified inner cross-validation
/// on the *training* records only (no test leakage) and returns the depth
/// maximizing mean macro F-score over application names. Ties prefer the
/// shallower (coarser, more noise-robust) depth.
///
/// \param base config whose rounding_depth field is ignored/overwritten.
/// \param train_indices records available for learning (empty = all).
DepthSelectionResult select_rounding_depth(
    const telemetry::Dataset& dataset, const FingerprintConfig& base,
    const std::vector<std::size_t>& train_indices = {},
    const DepthSelectionConfig& selection = {});

}  // namespace efd::core
