#pragma once
/// \file service_snapshot.hpp
/// \brief EFD-SNAP-V1: the durable service-state format behind
/// RecognitionService::snapshot() / restore().
///
/// A `serve` restart must not lose in-flight jobs: the snapshot captures
/// everything a fresh process needs to carry on — the active dictionary
/// epoch, every open stream's window accumulators and queued samples,
/// verdicts that completed but were not yet drained, and the lifetime
/// counters (so monitoring stays continuous across the restart).
///
/// File layout (all integers little-endian, same primitive vocabulary as
/// EFD-WIRE-V1 via util/binary_io.hpp):
///
///   file     := magic "EFDSNAP1" | section*
///   section  := u32 payload_len | u32 crc32(payload) | payload
///   payload  := u8 section_type | body
///
///   Meta       body := u64 replay_cursor
///                      [ | u32 n_sources | n_sources *
///                          (u16 name_len | name | u64 cursor) ]
///                      (OPTIONAL tail: one named resume cursor per
///                      registered ingest source — multi-source
///                      pipelines. Legacy 8-byte bodies still restore,
///                      with an empty source list.)
///   Dictionary body := u64 epoch_version | u64 swap_count
///                      | dictionary bytes (EFD-DICT-V1, to body end)
///   Stream     body := u64 job_id | u32 node_count
///                      | u16 sig_len | sig (the pinned epoch's
///                        metric/interval layout signature; a mismatch
///                        with the embedded dictionary restores the
///                        stream with fresh windows instead of failing)
///                      | u32 acc_count   | acc_count * accumulator
///                      | u32 queue_len   | queue_len * sample
///     accumulator    := f64 sum | u64 count | i32 last_t
///     sample         := u32 node_id | i32 t | f64 value
///                       | u16 metric_len | metric bytes
///   Verdicts   body := u32 count | count * verdict
///     verdict        := u64 job_id | u8 recognized
///                       | u64 fingerprints | u64 matched
///                       | u32 n_apps        | n_apps * string
///                       | u32 n_votes       | n_votes * (string | i32)
///                       | u32 n_label_votes | n_label_votes * (string | i32)
///                       | u32 n_labels      | n_labels * string
///   Stats      body := 10 * u64 (jobs_opened, jobs_completed,
///                      jobs_evicted, samples_pushed, samples_dropped,
///                      samples_late, samples_overflowed,
///                      samples_rejected, pushes_blocked,
///                      dictionary_swaps_noop)
///                      (decoders accept the legacy 9-counter body:
///                      snapshots written before the no-op-swap counter
///                      restore with dictionary_swaps_noop = 0)
///   Retrain    body := opaque bytes (OPTIONAL; at most one). The
///                      closed-loop retraining subsystem's durable state
///                      (EFD-RETRAIN-V1, see retrain/retrain_controller
///                      .hpp). The service treats it as an uninterpreted
///                      blob: snapshot() writes whatever extension bytes
///                      the caller hands it, restore() hands them back in
///                      ServiceRestoreInfo::retrain_state — so a crash
///                      mid-retrain-cycle restores the attempt lineage
///                      without core depending on the retrain layer.
///   End        body := (empty; REQUIRED terminator)
///
/// Sections appear in exactly this order: Meta, Dictionary, Stream*,
/// Verdicts, Stats, [Retrain,] End. The decoder is defensive by
/// construction — it
/// is fed files that may have been truncated by a crashing writer or
/// corrupted at rest, and must never crash, read out of bounds, or
/// over-allocate: every section is CRC-checked before parsing, hostile
/// length fields are rejected from the 8-byte section header alone,
/// element counts are validated against the bytes that actually arrived
/// before any allocation, a missing End section (truncation at a section
/// boundary) is an error, and everything fails by throwing SnapshotError
/// with the service untouched.

#include <cstddef>
#include <cstdint>
#include <stdexcept>

namespace efd::core {

inline constexpr std::size_t kSnapshotMagicBytes = 8;
inline constexpr char kSnapshotMagic[kSnapshotMagicBytes + 1] = "EFDSNAP1";

/// Decode guard: a section whose length prefix exceeds this fails the
/// restore before anything is allocated. The dictionary section is the
/// only one that grows with deployment size; 256 MB of EFD-DICT-V1 text
/// is orders of magnitude past the paper's largest dictionaries.
inline constexpr std::size_t kMaxSnapshotSectionBytes = 1u << 28;

enum class SnapshotSection : std::uint8_t {
  kMeta = 1,
  kDictionary = 2,
  kStream = 3,
  kVerdicts = 4,
  kStats = 5,
  kEnd = 6,
  kRetrain = 7,  ///< optional opaque retrain-subsystem state
};

/// Any EFD-SNAP-V1 violation: bad magic, truncation, CRC mismatch,
/// hostile lengths, out-of-order or unknown sections, or stream state
/// inconsistent with the embedded dictionary. restore() guarantees the
/// service is untouched when this is thrown.
class SnapshotError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

}  // namespace efd::core
