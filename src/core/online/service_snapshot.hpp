#pragma once
/// \file service_snapshot.hpp
/// \brief EFD-SNAP-V1 (full snapshots) and EFD-SNAP-V2 (incremental
/// base+delta capture chains) — the durable service-state formats behind
/// RecognitionService::snapshot() / restore() / snapshot_capture() /
/// restore_chain().
///
/// A `serve` restart must not lose in-flight jobs: the snapshot captures
/// everything a fresh process needs to carry on — the active dictionary
/// epoch, every open stream's window accumulators and queued samples,
/// verdicts that completed but were not yet drained, and the lifetime
/// counters (so monitoring stays continuous across the restart).
///
/// File layout (all integers little-endian, same primitive vocabulary as
/// EFD-WIRE-V1 via util/binary_io.hpp):
///
///   file     := magic "EFDSNAP1" | section*
///   section  := u32 payload_len | u32 crc32(payload) | payload
///   payload  := u8 section_type | body
///
///   Meta       body := u64 replay_cursor
///                      [ | u32 n_sources | n_sources *
///                          (u16 name_len | name | u64 cursor) ]
///                      (OPTIONAL tail: one named resume cursor per
///                      registered ingest source — multi-source
///                      pipelines. Legacy 8-byte bodies still restore,
///                      with an empty source list.)
///   Dictionary body := u64 epoch_version | u64 swap_count
///                      | dictionary bytes (EFD-DICT-V1, to body end)
///   Stream     body := u64 job_id | u32 node_count
///                      | u16 sig_len | sig (the pinned epoch's
///                        metric/interval layout signature; a mismatch
///                        with the embedded dictionary restores the
///                        stream with fresh windows instead of failing)
///                      | u32 acc_count   | acc_count * accumulator
///                      | u32 queue_len   | queue_len * sample
///     accumulator    := f64 sum | u64 count | i32 last_t
///     sample         := u32 node_id | i32 t | f64 value
///                       | u16 metric_len | metric bytes
///   Verdicts   body := u32 count | count * verdict
///     verdict        := u64 job_id | u8 recognized
///                       | u64 fingerprints | u64 matched
///                       | u32 n_apps        | n_apps * string
///                       | u32 n_votes       | n_votes * (string | i32)
///                       | u32 n_label_votes | n_label_votes * (string | i32)
///                       | u32 n_labels      | n_labels * string
///   Stats      body := 10 * u64 (jobs_opened, jobs_completed,
///                      jobs_evicted, samples_pushed, samples_dropped,
///                      samples_late, samples_overflowed,
///                      samples_rejected, pushes_blocked,
///                      dictionary_swaps_noop)
///                      (decoders accept the legacy 9-counter body:
///                      snapshots written before the no-op-swap counter
///                      restore with dictionary_swaps_noop = 0)
///   Retrain    body := opaque bytes (OPTIONAL; at most one). The
///                      closed-loop retraining subsystem's durable state
///                      (EFD-RETRAIN-V1, see retrain/retrain_controller
///                      .hpp). The service treats it as an uninterpreted
///                      blob: snapshot() writes whatever extension bytes
///                      the caller hands it, restore() hands them back in
///                      ServiceRestoreInfo::retrain_state — so a crash
///                      mid-retrain-cycle restores the attempt lineage
///                      without core depending on the retrain layer.
///   End        body := (empty; REQUIRED terminator)
///
/// Sections appear in exactly this order: Meta, Dictionary, Stream*,
/// Verdicts, Stats, [Retrain,] End.
///
/// EFD-SNAP-V2 — incremental capture chains. A V2 *capture* reuses the
/// V1 section vocabulary behind a chain envelope:
///
///   capture  := magic "EFDSNAP2" | u8 kind | u64 capture_id
///               | u64 parent_id | section*
///   kind     := 1 (base) | 2 (delta)
///
/// A BASE capture (parent_id = 0) carries the exact V1 section stream —
/// Dictionary included — and is a complete snapshot on its own. A DELTA
/// carries only what changed since its parent capture: Meta (always —
/// the cursor moved), Stream sections only for streams whose serialized
/// state differs from the parent capture (tracked by CRC+length
/// digests in SnapshotChainState), a ClosedJobs section naming streams
/// that disappeared since the parent, then fresh Verdicts/Stats
/// [/Retrain] (small; latest capture wins on replay):
///
///   delta sections := Meta, Stream*, ClosedJobs, Verdicts, Stats,
///                     [Retrain,] End
///   ClosedJobs body := u32 count | count * u64 job_id
///
/// restore_chain() replays base → deltas all-or-nothing: every link's
/// parent_id must equal the previous capture_id, every section is
/// CRC-checked, and any violation throws SnapshotError with the service
/// untouched (callers fall back to the last complete base, loudly).
/// The decoder is defensive by
/// construction — it
/// is fed files that may have been truncated by a crashing writer or
/// corrupted at rest, and must never crash, read out of bounds, or
/// over-allocate: every section is CRC-checked before parsing, hostile
/// length fields are rejected from the 8-byte section header alone,
/// element counts are validated against the bytes that actually arrived
/// before any allocation, a missing End section (truncation at a section
/// boundary) is an error, and everything fails by throwing SnapshotError
/// with the service untouched.

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <unordered_map>

namespace efd::core {

inline constexpr std::size_t kSnapshotMagicBytes = 8;
inline constexpr char kSnapshotMagic[kSnapshotMagicBytes + 1] = "EFDSNAP1";
inline constexpr char kSnapshotMagicV2[kSnapshotMagicBytes + 1] = "EFDSNAP2";

/// Decode guard: a section whose length prefix exceeds this fails the
/// restore before anything is allocated. The dictionary section is the
/// only one that grows with deployment size; 256 MB of EFD-DICT-V1 text
/// is orders of magnitude past the paper's largest dictionaries.
inline constexpr std::size_t kMaxSnapshotSectionBytes = 1u << 28;

enum class SnapshotSection : std::uint8_t {
  kMeta = 1,
  kDictionary = 2,
  kStream = 3,
  kVerdicts = 4,
  kStats = 5,
  kEnd = 6,
  kRetrain = 7,     ///< optional opaque retrain-subsystem state
  kClosedJobs = 8,  ///< V2 deltas only: streams gone since the parent
};

/// V2 capture kinds (the envelope's `kind` byte).
enum class CaptureKind : std::uint8_t {
  kBase = 1,   ///< complete snapshot (Dictionary section included)
  kDelta = 2,  ///< changes since the parent capture only
};

/// Any EFD-SNAP violation: bad magic, truncation, CRC mismatch,
/// hostile lengths, out-of-order or unknown sections, a broken chain
/// link, or stream state inconsistent with the embedded dictionary.
/// restore() / restore_chain() guarantee the service is untouched when
/// this is thrown.
class SnapshotError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// CRC + length digest of one stream's serialized section payload — how
/// the delta encoder decides a stream is unchanged without keeping the
/// parent capture's bytes around.
struct StreamDigest {
  std::uint32_t crc = 0;
  std::uint32_t bytes = 0;

  bool operator==(const StreamDigest&) const = default;
};

/// Caller-owned chain bookkeeping across snapshot_capture() calls: the
/// id counter, the chain head, the base's dictionary identity (an epoch
/// or swap-count change forces the next capture to be a base), and the
/// per-stream digests of the last capture. Start from a
/// default-constructed state for a fresh chain; the first capture is
/// always a base.
struct SnapshotChainState {
  std::uint64_t next_capture_id = 1;
  std::uint64_t last_capture_id = 0;  ///< 0 = no capture yet
  std::uint64_t base_capture_id = 0;
  std::uint64_t base_epoch = 0;
  std::uint64_t base_swap_count = 0;
  std::size_t deltas_since_base = 0;
  /// job id → digest of its stream payload as of the last capture.
  std::unordered_map<std::uint64_t, StreamDigest> streams;
};

/// What one snapshot_capture() call wrote.
struct SnapshotCaptureInfo {
  std::uint64_t capture_id = 0;
  std::uint64_t parent_id = 0;  ///< 0 for a base
  bool base = false;
  std::size_t bytes = 0;             ///< capture size on the wire/disk
  std::size_t streams_written = 0;   ///< stream sections in this capture
  std::size_t streams_unchanged = 0; ///< skipped by digest match (delta)
  std::size_t jobs_closed = 0;       ///< ClosedJobs entries (delta)
};

}  // namespace efd::core
