#include "core/online/recognition_service.hpp"

#include <algorithm>
#include <iterator>
#include <sstream>
#include <utility>

#include "obs/metrics.hpp"
#include "util/thread_pool.hpp"

namespace efd::core {

thread_local RecognitionService::Worker* RecognitionService::tl_worker_ =
    nullptr;

const char* backpressure_policy_name(BackpressurePolicy policy) {
  switch (policy) {
    case BackpressurePolicy::kBlock: return "block";
    case BackpressurePolicy::kDropOldest: return "drop-oldest";
    case BackpressurePolicy::kReject: return "reject";
  }
  return "unknown";
}

std::optional<BackpressurePolicy> parse_backpressure_policy(
    std::string_view name) {
  if (name == "block") return BackpressurePolicy::kBlock;
  if (name == "drop-oldest") return BackpressurePolicy::kDropOldest;
  if (name == "reject") return BackpressurePolicy::kReject;
  return std::nullopt;
}

RecognitionService::RecognitionService(ShardedDictionary dictionary,
                                       RecognitionServiceConfig config)
    : handle_(std::move(dictionary)), config_(config) {
  if (config_.job_queue_capacity == 0) config_.job_queue_capacity = 1;
  if (config_.worker_count > 0) {
    // Workers ARE the drain side: a push that scored inline would race
    // the owning worker for the recognizer, so worker mode is always
    // deferred.
    config_.deferred = true;
    start_workers(config_.worker_count);
  }
}

RecognitionService::~RecognitionService() { stop_workers(); }

void RecognitionService::start_workers(std::size_t count) {
  constexpr std::size_t kRingCapacity = 4096;  // power of two
  workers_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    auto worker = std::make_unique<Worker>(kRingCapacity);
    worker->owner = this;
    workers_.push_back(std::move(worker));
  }
  // Threads start only after workers_ is final (worker_loop and
  // schedule_stream index into it).
  for (auto& worker : workers_) {
    worker->thread = std::thread([this, w = worker.get()] { worker_loop(*w); });
  }
}

void RecognitionService::stop_workers() {
  if (workers_.empty()) return;
  stop_workers_.store(true, std::memory_order_release);
  {
    // Unpark anyone at the quiesce barrier (a snapshot racing teardown).
    std::lock_guard lock(pause_mutex_);
    paused_.store(false, std::memory_order_relaxed);
  }
  pause_cv_.notify_all();
  for (auto& worker : workers_) {
    // Empty critical section: a worker between its predicate check and
    // its wait would otherwise miss this notify and sleep forever.
    { std::lock_guard lock(worker->producer_mutex); }
    worker->work_cv.notify_all();
  }
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
}

std::uint32_t RecognitionService::assign_worker(
    std::uint64_t job_id) const noexcept {
  if (workers_.empty()) return 0;
  // splitmix64 finalizer: job ids are often sequential, and a plain
  // modulo would put every id on worker id%N forever — fine — but also
  // correlate with any id-structured load. The mix spreads them evenly.
  std::uint64_t x = job_id + 0x9E3779B97F4A7C15ull;
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  return static_cast<std::uint32_t>(x % workers_.size());
}

void RecognitionService::schedule_stream(
    const std::shared_ptr<JobStream>& stream) {
  if (workers_.empty()) return;
  // Dedup: one ring slot per dirty stream, however many pushes landed.
  // The worker clears the flag before draining, so a push that arrives
  // mid-drain re-rings and is never lost.
  if (stream->scheduled.exchange(true, std::memory_order_acq_rel)) return;
  Worker& worker = *workers_[stream->worker_index];
  {
    std::lock_guard lock(worker.producer_mutex);
    const std::uint64_t tail = worker.tail.load(std::memory_order_relaxed);
    if (tail - worker.head.load(std::memory_order_acquire) <
        worker.ring.size()) {
      worker.ring[tail & worker.mask] = stream;
      worker.tail.store(tail + 1, std::memory_order_release);
    } else {
      // Degenerate: more scheduled streams than ring slots. Spill
      // rather than block — callers hold stream mutexes.
      worker.overflow.push_back(stream);
    }
  }
  worker.work_cv.notify_one();
}

std::shared_ptr<RecognitionService::JobStream> RecognitionService::try_pop(
    Worker& worker) {
  const std::uint64_t head = worker.head.load(std::memory_order_relaxed);
  if (head != worker.tail.load(std::memory_order_acquire)) {
    std::shared_ptr<JobStream> stream =
        std::move(worker.ring[head & worker.mask]);
    worker.head.store(head + 1, std::memory_order_release);
    return stream;
  }
  std::lock_guard lock(worker.producer_mutex);
  if (worker.overflow.empty()) return nullptr;
  std::shared_ptr<JobStream> stream = std::move(worker.overflow.front());
  worker.overflow.erase(worker.overflow.begin());
  return stream;
}

void RecognitionService::worker_loop(Worker& worker) {
  tl_worker_ = &worker;
  while (!stop_workers_.load(std::memory_order_acquire)) {
    if (paused_.load(std::memory_order_acquire)) {
      // Quiesce barrier: park between drains until the guard releases.
      std::unique_lock lock(pause_mutex_);
      ++quiesced_;
      pause_cv_.notify_all();
      pause_cv_.wait(lock, [&] {
        return !paused_.load(std::memory_order_relaxed) ||
               stop_workers_.load(std::memory_order_relaxed);
      });
      --quiesced_;
      continue;
    }
    std::shared_ptr<JobStream> stream = try_pop(worker);
    if (stream == nullptr) {
      std::unique_lock lock(worker.producer_mutex);
      worker.work_cv.wait(lock, [&] {
        return worker.head.load(std::memory_order_relaxed) !=
                   worker.tail.load(std::memory_order_relaxed) ||
               !worker.overflow.empty() ||
               stop_workers_.load(std::memory_order_relaxed) ||
               paused_.load(std::memory_order_relaxed);
      });
      continue;
    }
    // Clear BEFORE draining: a producer enqueueing after this point
    // re-rings the stream, so its samples are picked up next round.
    stream->scheduled.store(false, std::memory_order_release);
    std::unique_lock lock(stream->mutex);
    drain_stream(*stream, lock);
  }
  tl_worker_ = nullptr;
}

RecognitionService::WorkerQuiesceGuard::WorkerQuiesceGuard(
    const RecognitionService& service)
    : service_(service) {
  if (service_.workers_.empty()) return;
  service_.quiesce_mutex_.lock();  // one quiescer at a time
  {
    std::lock_guard lock(service_.pause_mutex_);
    service_.paused_.store(true, std::memory_order_release);
  }
  for (const auto& worker : service_.workers_) {
    { std::lock_guard lock(worker->producer_mutex); }
    worker->work_cv.notify_all();
  }
  std::unique_lock lock(service_.pause_mutex_);
  service_.pause_cv_.wait(lock, [&] {
    return service_.quiesced_ == service_.workers_.size();
  });
}

RecognitionService::WorkerQuiesceGuard::~WorkerQuiesceGuard() {
  if (service_.workers_.empty()) return;
  {
    std::lock_guard lock(service_.pause_mutex_);
    service_.paused_.store(false, std::memory_order_release);
  }
  service_.pause_cv_.notify_all();
  service_.quiesce_mutex_.unlock();
}

const ShardedDictionary& RecognitionService::dictionary() const {
  // The handle's current_ reference keeps this epoch alive after the
  // acquire() temporary drops, so the borrow is valid until the next
  // swap publishes a successor.
  return handle_.acquire()->dictionary;
}

RecognitionService::SwapOutcome RecognitionService::swap_dictionary(
    ShardedDictionary next) {
  // Already-active guard: EFD-DICT-V1 serialization is deterministic
  // (sorted entries, config included), so byte equality is content AND
  // layout identity. Swaps are a retrain cadence, not a hot path — two
  // serializations per attempt is fine, and comparing fresh bytes (not a
  // publication-time hash) stays correct after learn() inserted into the
  // active epoch.
  {
    const auto active = handle_.acquire();
    std::ostringstream active_bytes, candidate_bytes;
    active->dictionary.save(active_bytes);
    next.save(candidate_bytes);
    if (std::move(active_bytes).str() == std::move(candidate_bytes).str()) {
      swaps_noop_.fetch_add(1, std::memory_order_relaxed);
      return {active->version, true};
    }
  }
  return {handle_.swap(std::move(next)), false};
}

std::int64_t RecognitionService::now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void RecognitionService::learn(const FingerprintKey& key,
                               const std::string& label) {
  handle_.acquire()->dictionary.insert(key, label);
}

RecognitionService::SourceIngress* RecognitionService::ingress_for(
    std::uint32_t source_tag) {
  std::lock_guard lock(sources_mutex_);
  auto& slot = source_ingress_[source_tag];
  if (slot == nullptr) {
    slot = std::make_unique<SourceIngress>();
    slot->source = source_tag;
  }
  return slot.get();
}

bool RecognitionService::open_job(std::uint64_t job_id,
                                  std::uint32_t node_count,
                                  std::uint32_t source_tag) {
  auto stream =
      std::make_shared<JobStream>(handle_.acquire(), job_id, node_count);
  stream->last_activity_ns.store(now_ns(), std::memory_order_relaxed);
  stream->worker_index = assign_worker(job_id);
  SourceIngress* ingress = ingress_for(source_tag);
  stream->ingress = ingress;
  {
    std::unique_lock lock(jobs_mutex_);
    if (!jobs_.emplace(job_id, std::move(stream)).second) return false;
  }
  jobs_opened_.fetch_add(1, std::memory_order_relaxed);
  ingress->jobs_opened.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool RecognitionService::has_job(std::uint64_t job_id) const {
  std::shared_lock lock(jobs_mutex_);
  const auto it = jobs_.find(job_id);
  return it != jobs_.end() && !it->second->done.load(std::memory_order_acquire);
}

std::shared_ptr<RecognitionService::JobStream> RecognitionService::find_stream(
    std::uint64_t job_id) const {
  std::shared_lock lock(jobs_mutex_);
  const auto it = jobs_.find(job_id);
  return it != jobs_.end() ? it->second : nullptr;
}

bool RecognitionService::enqueue_locked(
    const std::shared_ptr<JobStream>& stream_ptr,
    std::unique_lock<std::mutex>& lock, const SamplePush& sample,
    std::int64_t enqueue_ns) {
  JobStream& stream = *stream_ptr;
  if (stream.done.load(std::memory_order_relaxed)) {
    // The verdict already fired; the stream lingers until the next
    // drain. Counted separately from drops — a job streaming past its
    // window end is healthy, not a routing failure.
    samples_late_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  if (stream.queue.size() >= config_.job_queue_capacity) {
    if (!config_.deferred && !stream.draining) {
      // Inline mode with no competing drainer: the pushing thread IS
      // the consumer, so recognize the backlog instead of shedding it —
      // a push_batch larger than the queue must stay lossless exactly
      // like PR 1's per-sample inline path.
      drain_stream(stream, lock);
      if (stream.done.load(std::memory_order_relaxed)) {
        samples_late_.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
    } else {
      switch (config_.policy) {
      case BackpressurePolicy::kReject:
        samples_rejected_.fetch_add(1, std::memory_order_relaxed);
        return false;
      case BackpressurePolicy::kDropOldest:
        // O(queue) memmove of PODs — acceptable on this degraded lossy
        // path; the lossless policies never reach it.
        stream.queue.erase(stream.queue.begin());
        stream.queued.fetch_sub(1, std::memory_order_relaxed);
        samples_overflowed_.fetch_add(1, std::memory_order_relaxed);
        break;
      case BackpressurePolicy::kBlock:
        if (!workers_.empty()) {
          // Worker mode: never self-drain — the owning worker is the
          // sole scorer. Ring it (idempotent), then wait for space; the
          // cv wait releases the stream mutex, so the worker drains
          // independently and the wait terminates.
          schedule_stream(stream_ptr);
          pushes_blocked_.fetch_add(1, std::memory_order_relaxed);
          stream.space.wait(lock, [&] {
            return stream.queue.size() < config_.job_queue_capacity ||
                   stream.done.load(std::memory_order_relaxed);
          });
          if (stream.done.load(std::memory_order_relaxed)) {
            samples_late_.fetch_add(1, std::memory_order_relaxed);
            return false;
          }
        } else if (!stream.draining) {
          // No active drainer to wait on: make progress ourselves (even
          // in deferred mode). Waiting here would deadlock a pipeline
          // that is both the sole producer and the process_pending
          // caller; draining inline keeps kBlock lossless AND bounded.
          drain_stream(stream, lock);
          if (stream.done.load(std::memory_order_relaxed)) {
            samples_late_.fetch_add(1, std::memory_order_relaxed);
            return false;
          }
        } else {
          // Real back-pressure: an active drainer exists, so waiting
          // terminates. The stalled producer (a network reader,
          // typically) leaves TCP bytes unread and pushes the stall
          // back to the remote sender.
          pushes_blocked_.fetch_add(1, std::memory_order_relaxed);
          stream.space.wait(lock, [&] {
            return stream.queue.size() < config_.job_queue_capacity ||
                   stream.done.load(std::memory_order_relaxed);
          });
          if (stream.done.load(std::memory_order_relaxed)) {
            samples_late_.fetch_add(1, std::memory_order_relaxed);
            return false;
          }
        }
        break;
      }
    }
  }

  // Resolve the metric to its dictionary slot here, once: metric_slot only
  // reads the pinned epoch's immutable config, so it is safe while a
  // drainer owns the recognizer's mutable state.
  stream.queue.push_back(Sample{sample.node_id, sample.t, sample.value,
                                stream.recognizer.metric_slot(sample.metric),
                                enqueue_ns});
  stream.queued.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool RecognitionService::push(std::uint64_t job_id, std::uint32_t node_id,
                              std::string_view metric_name, int t,
                              double value) {
  const SamplePush sample{node_id, t, value, metric_name};
  return push_batch(job_id, std::span(&sample, 1)) == 1;
}

std::size_t RecognitionService::push_batch(
    std::uint64_t job_id, std::span<const SamplePush> samples) {
  if (samples.empty()) return 0;
  const std::shared_ptr<JobStream> stream = find_stream(job_id);
  if (stream == nullptr) {
    samples_dropped_.fetch_add(samples.size(), std::memory_order_relaxed);
    return 0;
  }

  std::size_t accepted = 0;
  // One clock read serves the whole batch: every accepted sample shares
  // this admission stamp (the e2e latency origin) and it doubles as the
  // stream's activity time, so latency stamping adds no steady-state
  // clock calls.
  const std::int64_t batch_ns = now_ns();
  auto& hot = obs::hot_path();
  const bool timed = hot.sample_now();
  std::unique_lock lock(stream->mutex);
  for (const SamplePush& sample : samples) {
    if (enqueue_locked(stream, lock, sample, batch_ns)) ++accepted;
  }
  if (timed) hot.enqueue_ns.observe(now_ns() - batch_ns);
  if (accepted > 0) {
    stream->last_activity_ns.store(batch_ns, std::memory_order_relaxed);
    if (!config_.deferred) {
      drain_stream(*stream, lock);
    } else if (!workers_.empty()) {
      // Ring the owning worker; dedup makes repeat notifies one slot.
      schedule_stream(stream);
    }
  }
  return accepted;
}

std::size_t RecognitionService::drain_stream(
    JobStream& stream, std::unique_lock<std::mutex>& lock) {
  if (stream.draining) return 0;  // the token holder will consume our samples
  stream.draining = true;

  auto& hot = obs::hot_path();
  const bool timed = hot.sample_now();
  std::size_t fed_total = 0;
  // Swap the whole queue out into the stream-owned drain buffer: both
  // vectors reach the stream's high-water capacity and then recycle it,
  // so steady-state draining allocates nothing.
  std::vector<Sample>& batch = stream.drain_batch;
  while (!stream.queue.empty() &&
         !stream.done.load(std::memory_order_relaxed)) {
    batch.clear();
    std::swap(batch, stream.queue);
    stream.queued.store(0, std::memory_order_relaxed);
    lock.unlock();
    stream.space.notify_all();  // freed a full batch of capacity

    // The drain token makes the recognizer ours outside the mutex, so
    // producers keep enqueueing while this batch is recognized.
    const std::int64_t score_start = timed ? now_ns() : 0;
    std::size_t fed = 0;
    bool fired = false;
    std::int64_t fired_enqueue_ns = 0;
    RecognitionResult verdict;
    for (const Sample& sample : batch) {
      if (sample.metric_slot != kNoMetricSlot) {
        stream.recognizer.push_slot(sample.node_id, sample.metric_slot,
                                    sample.t, sample.value);
      }
      ++fed;  // unknown-metric samples still count as fed, as before
      if (stream.recognizer.ready()) {
        // On a worker thread, score with the worker's own scratch (one
        // arena serves every stream it drains); the verdict is the same
        // either way — scratch is working memory, not state.
        RecognitionScratch* scratch =
            (tl_worker_ != nullptr && tl_worker_->owner == this)
                ? &tl_worker_->scratch
                : nullptr;
        auto result = scratch != nullptr ? stream.recognizer.result(*scratch)
                                         : stream.recognizer.result();
        if (result) verdict = *result;
        fired = true;
        fired_enqueue_ns = sample.enqueue_ns;
        break;
      }
    }
    if (timed) hot.score_ns.observe(now_ns() - score_start);
    fed_total += fed;
    samples_pushed_.fetch_add(fed, std::memory_order_relaxed);
    if (stream.ingress != nullptr) {
      stream.ingress->samples_pushed.fetch_add(fed,
                                               std::memory_order_relaxed);
    }
    if (fed < batch.size()) {
      // Samples behind the one that closed the last window: late.
      samples_late_.fetch_add(batch.size() - fed, std::memory_order_relaxed);
    }

    lock.lock();
    if (fired) {
      // done cannot have been set meanwhile: close/evict wait for the
      // drain token before finishing a stream. Queue the verdict before
      // publishing done (the reap treats done==true as "verdict queued").
      queue_verdict(stream.job_id, std::move(verdict),
                    stream.ingress != nullptr ? stream.ingress->source : 0,
                    fired_enqueue_ns);
      if (stream.ingress != nullptr) {
        stream.ingress->jobs_completed.fetch_add(1,
                                                 std::memory_order_relaxed);
      }
      stream.done.store(true, std::memory_order_release);
    }
  }
  if (stream.done.load(std::memory_order_relaxed) && !stream.queue.empty()) {
    // Arrived while the verdict fired; free the memory now, not at reap.
    samples_late_.fetch_add(stream.queue.size(), std::memory_order_relaxed);
    stream.queue.clear();
    stream.queued.store(0, std::memory_order_relaxed);
  }
  stream.draining = false;
  stream.drained.notify_all();
  stream.space.notify_all();
  return fed_total;
}

std::size_t RecognitionService::process_pending(util::ThreadPool* pool) {
  std::vector<std::shared_ptr<JobStream>> streams;
  {
    std::shared_lock lock(jobs_mutex_);
    streams.reserve(jobs_.size());
    for (const auto& [job_id, stream] : jobs_) {
      if (!stream->done.load(std::memory_order_acquire) &&
          stream->queued.load(std::memory_order_relaxed) > 0) {
        streams.push_back(stream);
      }
    }
  }
  if (streams.empty()) return 0;

  if (!workers_.empty()) {
    // Worker mode: scoring belongs to the owning workers. This is only
    // a catch-up sweep — pushes already ring on arrival — so nudge any
    // dirty stream and let the pool drain asynchronously.
    for (const auto& stream : streams) schedule_stream(stream);
    return 0;
  }

  std::atomic<std::size_t> fed{0};
  const auto drain_one = [&](std::size_t i) {
    JobStream& stream = *streams[i];
    std::unique_lock lock(stream.mutex);
    fed.fetch_add(drain_stream(stream, lock), std::memory_order_relaxed);
  };
  if (pool != nullptr && streams.size() > 1) {
    util::parallel_for(*pool, 0, streams.size(), drain_one);
  } else {
    for (std::size_t i = 0; i < streams.size(); ++i) drain_one(i);
  }
  return fed.load(std::memory_order_relaxed);
}

void RecognitionService::finish_stream(JobStream& stream) {
  // Caller holds the stream mutex with the drain token free, so the
  // recognizer is exclusively ours. Flush accepted-but-unprocessed
  // samples first — they arrived before the close decision.
  std::size_t consumed = 0;
  while (consumed < stream.queue.size() && !stream.recognizer.ready()) {
    const Sample& sample = stream.queue[consumed++];
    if (sample.metric_slot != kNoMetricSlot) {
      stream.recognizer.push_slot(sample.node_id, sample.metric_slot,
                                  sample.t, sample.value);
    }
  }
  if (consumed > 0) {
    samples_pushed_.fetch_add(consumed, std::memory_order_relaxed);
    if (stream.ingress != nullptr) {
      stream.ingress->samples_pushed.fetch_add(consumed,
                                               std::memory_order_relaxed);
    }
  }
  if (consumed < stream.queue.size()) {
    samples_late_.fetch_add(stream.queue.size() - consumed,
                            std::memory_order_relaxed);
  }
  stream.queue.clear();
  stream.queued.store(0, std::memory_order_relaxed);

  // An unready stream yields a default (unrecognized) verdict — the
  // paper's unknown-application safeguard for truncated executions.
  // Queued before done is published, as in drain_stream().
  RecognitionResult verdict;
  if (auto result = stream.recognizer.result()) verdict = *result;
  // Force-closed verdicts carry no enqueue stamp: their latency is
  // dominated by the close/evict decision, not the scoring path.
  queue_verdict(stream.job_id, std::move(verdict),
                stream.ingress != nullptr ? stream.ingress->source : 0, 0);
  if (stream.ingress != nullptr) {
    stream.ingress->jobs_completed.fetch_add(1, std::memory_order_relaxed);
  }
  stream.done.store(true, std::memory_order_release);
  stream.space.notify_all();  // blocked producers observe done -> late
}

bool RecognitionService::close_job(std::uint64_t job_id) {
  const std::shared_ptr<JobStream> stream = find_stream(job_id);
  if (stream == nullptr) return false;

  std::unique_lock lock(stream->mutex);
  stream->drained.wait(lock, [&] { return !stream->draining; });
  if (stream->done.load(std::memory_order_relaxed)) return false;
  finish_stream(*stream);
  return true;
}

std::size_t RecognitionService::sweep_stale_jobs(
    std::chrono::steady_clock::duration ttl) {
  const std::int64_t cutoff =
      now_ns() -
      std::chrono::duration_cast<std::chrono::nanoseconds>(ttl).count();
  std::vector<std::shared_ptr<JobStream>> stale;
  {
    std::shared_lock lock(jobs_mutex_);
    for (const auto& [job_id, stream] : jobs_) {
      if (!stream->done.load(std::memory_order_acquire) &&
          stream->last_activity_ns.load(std::memory_order_relaxed) <= cutoff) {
        stale.push_back(stream);
      }
    }
  }

  std::size_t evicted = 0;
  for (const auto& stream : stale) {
    std::unique_lock lock(stream->mutex);
    stream->drained.wait(lock, [&] { return !stream->draining; });
    if (stream->done.load(std::memory_order_relaxed)) continue;
    if (stream->last_activity_ns.load(std::memory_order_relaxed) > cutoff) {
      continue;  // revived between the scan and the lock
    }
    finish_stream(*stream);
    ++evicted;
  }
  if (evicted > 0) jobs_evicted_.fetch_add(evicted, std::memory_order_relaxed);
  return evicted;
}

std::vector<JobVerdict> RecognitionService::drain_verdicts() {
  {
    // Reap finished streams; their ids become reusable from here on.
    std::unique_lock lock(jobs_mutex_);
    for (auto it = jobs_.begin(); it != jobs_.end();) {
      if (it->second->done.load(std::memory_order_acquire)) {
        it = jobs_.erase(it);
      } else {
        ++it;
      }
    }
  }
  std::vector<PendingVerdict> merged;
  {
    std::lock_guard lock(verdicts_mutex_);
    merged.swap(verdicts_);
  }
  for (const auto& worker : workers_) {
    std::lock_guard lock(worker->staging_mutex);
    merged.insert(merged.end(),
                  std::make_move_iterator(worker->staging.begin()),
                  std::make_move_iterator(worker->staging.end()));
    worker->staging.clear();
  }
  // Merge staged + shared back into the single global completion order
  // (the order single-threaded mode yields natively).
  std::sort(merged.begin(), merged.end(),
            [](const PendingVerdict& a, const PendingVerdict& b) {
              return a.seq < b.seq;
            });
  std::vector<JobVerdict> drained;
  drained.reserve(merged.size());
  for (PendingVerdict& pending : merged) {
    drained.push_back(std::move(pending.verdict));
  }
  return drained;
}

RecognitionServiceStats RecognitionService::stats() const {
  RecognitionServiceStats stats;
  stats.dictionary_epoch = handle_.version();
  stats.dictionary_swaps = handle_.swap_count();
  {
    const std::shared_ptr<DictionaryHandle::Epoch> epoch = handle_.acquire();
    stats.index_build_seconds = epoch->dictionary.index_build_seconds();
    stats.index_bytes = epoch->dictionary.index_resident_bytes();
  }
  {
    std::shared_lock lock(jobs_mutex_);
    for (const auto& [job_id, stream] : jobs_) {
      if (!stream->done.load(std::memory_order_acquire)) {
        ++stats.active_jobs;
        if (stream->epoch->version != stats.dictionary_epoch) {
          ++stats.jobs_on_stale_epoch;
        }
      }
      stats.queued_samples +=
          stream->queued.load(std::memory_order_relaxed);
    }
  }
  stats.pending_verdicts = pending_verdict_count();
  stats.jobs_opened = jobs_opened_.load(std::memory_order_relaxed);
  stats.jobs_completed = jobs_completed_.load(std::memory_order_relaxed);
  stats.jobs_evicted = jobs_evicted_.load(std::memory_order_relaxed);
  stats.samples_pushed = samples_pushed_.load(std::memory_order_relaxed);
  stats.samples_dropped = samples_dropped_.load(std::memory_order_relaxed);
  stats.samples_late = samples_late_.load(std::memory_order_relaxed);
  stats.samples_overflowed =
      samples_overflowed_.load(std::memory_order_relaxed);
  stats.samples_rejected = samples_rejected_.load(std::memory_order_relaxed);
  stats.pushes_blocked = pushes_blocked_.load(std::memory_order_relaxed);
  stats.dictionary_swaps_noop = swaps_noop_.load(std::memory_order_relaxed);
  {
    std::lock_guard lock(sources_mutex_);
    // A lone untagged source (the legacy single-transport mode) keeps
    // by_source empty — the aggregate counters already ARE its view.
    const bool tagged = source_ingress_.size() > 1 ||
                        (!source_ingress_.empty() &&
                         source_ingress_.begin()->first != 0);
    if (tagged) {
      stats.by_source.reserve(source_ingress_.size());
      for (const auto& [tag, ingress] : source_ingress_) {
        SourceIngressStats row;
        row.source = tag;
        row.jobs_opened = ingress->jobs_opened.load(std::memory_order_relaxed);
        row.jobs_completed =
            ingress->jobs_completed.load(std::memory_order_relaxed);
        row.samples_pushed =
            ingress->samples_pushed.load(std::memory_order_relaxed);
        stats.by_source.push_back(row);
      }
    }
  }
  return stats;
}

std::vector<std::uint64_t> RecognitionService::open_job_ids() const {
  std::vector<std::uint64_t> ids;
  {
    std::shared_lock lock(jobs_mutex_);
    ids.reserve(jobs_.size());
    for (const auto& [job_id, stream] : jobs_) {
      if (!stream->done.load(std::memory_order_acquire)) {
        ids.push_back(job_id);
      }
    }
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

void RecognitionService::queue_verdict(std::uint64_t job_id,
                                       RecognitionResult result,
                                       std::uint32_t source,
                                       std::int64_t enqueue_ns) {
  // The seq stamp (taken under the firing stream's mutex) is the global
  // completion order; drain_verdicts sorts by it, so the drained stream
  // is identical whether verdicts staged per-worker or centrally.
  const std::uint64_t seq =
      verdict_seq_.fetch_add(1, std::memory_order_relaxed);
  const std::int64_t verdict_ns = now_ns();
  if (enqueue_ns > 0) {
    auto& hot = obs::hot_path();
    if (hot.enabled.load(std::memory_order_relaxed)) {
      hot.verdict_e2e_ns.observe(verdict_ns - enqueue_ns);
    }
  }
  PendingVerdict pending{
      seq, {job_id, std::move(result), source, enqueue_ns, verdict_ns}};
  if (tl_worker_ != nullptr && tl_worker_->owner == this) {
    // Worker fast path: stage locally; no cross-worker lock traffic on
    // the scoring path.
    std::lock_guard lock(tl_worker_->staging_mutex);
    tl_worker_->staging.push_back(std::move(pending));
  } else {
    std::lock_guard lock(verdicts_mutex_);
    verdicts_.push_back(std::move(pending));
  }
  jobs_completed_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<RecognitionService::PendingVerdict>
RecognitionService::collect_pending_verdicts() const {
  std::vector<PendingVerdict> merged;
  {
    std::lock_guard lock(verdicts_mutex_);
    merged = verdicts_;
  }
  for (const auto& worker : workers_) {
    std::lock_guard lock(worker->staging_mutex);
    merged.insert(merged.end(), worker->staging.begin(),
                  worker->staging.end());
  }
  std::sort(merged.begin(), merged.end(),
            [](const PendingVerdict& a, const PendingVerdict& b) {
              return a.seq < b.seq;
            });
  return merged;
}

std::size_t RecognitionService::pending_verdict_count() const {
  std::size_t count = 0;
  {
    std::lock_guard lock(verdicts_mutex_);
    count = verdicts_.size();
  }
  for (const auto& worker : workers_) {
    std::lock_guard lock(worker->staging_mutex);
    count += worker->staging.size();
  }
  return count;
}

}  // namespace efd::core
