#include "core/online/recognition_service.hpp"

#include <utility>

namespace efd::core {

RecognitionService::RecognitionService(ShardedDictionary dictionary)
    : dictionary_(std::move(dictionary)) {}

void RecognitionService::learn(const FingerprintKey& key,
                               const std::string& label) {
  dictionary_.insert(key, label);
}

bool RecognitionService::open_job(std::uint64_t job_id,
                                  std::uint32_t node_count) {
  auto stream = std::make_shared<JobStream>(dictionary_, node_count);
  {
    std::unique_lock lock(jobs_mutex_);
    if (!jobs_.emplace(job_id, std::move(stream)).second) return false;
  }
  jobs_opened_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool RecognitionService::has_job(std::uint64_t job_id) const {
  std::shared_lock lock(jobs_mutex_);
  const auto it = jobs_.find(job_id);
  return it != jobs_.end() && !it->second->done.load(std::memory_order_acquire);
}

bool RecognitionService::push(std::uint64_t job_id, std::uint32_t node_id,
                              std::string_view metric_name, int t,
                              double value) {
  std::shared_ptr<JobStream> stream;
  {
    std::shared_lock lock(jobs_mutex_);
    const auto it = jobs_.find(job_id);
    if (it != jobs_.end()) stream = it->second;
  }
  if (stream == nullptr) {
    samples_dropped_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  {
    std::lock_guard lock(stream->mutex);
    if (stream->done.load(std::memory_order_relaxed)) {
      // The verdict already fired; the stream lingers until the next
      // drain. Counted separately from drops — a job streaming past its
      // window end is healthy, not a routing failure.
      samples_late_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    stream->recognizer.push(node_id, metric_name, t, value);
    samples_pushed_.fetch_add(1, std::memory_order_relaxed);
    if (stream->recognizer.ready()) {
      // The verdict must be queued before done is published: the drain
      // reap takes done==true as proof the verdict is already in the
      // queue (otherwise a reaped-then-reused job id could receive this
      // stale verdict). verdicts_mutex_ is a leaf lock, so taking it
      // under the stream mutex cannot cycle.
      queue_verdict(job_id, *stream->recognizer.result());
      stream->done.store(true, std::memory_order_release);
    }
  }
  return true;
}

bool RecognitionService::close_job(std::uint64_t job_id) {
  std::shared_ptr<JobStream> stream;
  {
    std::shared_lock lock(jobs_mutex_);
    const auto it = jobs_.find(job_id);
    if (it != jobs_.end()) stream = it->second;
  }
  if (stream == nullptr) return false;

  bool completed = false;
  {
    std::lock_guard lock(stream->mutex);
    if (!stream->done.load(std::memory_order_relaxed)) {
      // An unready stream yields a default (unrecognized) verdict — the
      // paper's unknown-application safeguard for truncated executions.
      // Queued before done is published, as in push().
      RecognitionResult verdict;
      if (auto result = stream->recognizer.result()) verdict = *result;
      queue_verdict(job_id, std::move(verdict));
      stream->done.store(true, std::memory_order_release);
      completed = true;
    }
  }
  return completed;
}

std::vector<JobVerdict> RecognitionService::drain_verdicts() {
  {
    // Reap finished streams; their ids become reusable from here on.
    std::unique_lock lock(jobs_mutex_);
    for (auto it = jobs_.begin(); it != jobs_.end();) {
      if (it->second->done.load(std::memory_order_acquire)) {
        it = jobs_.erase(it);
      } else {
        ++it;
      }
    }
  }
  std::vector<JobVerdict> drained;
  std::lock_guard lock(verdicts_mutex_);
  drained.swap(verdicts_);
  return drained;
}

RecognitionServiceStats RecognitionService::stats() const {
  RecognitionServiceStats stats;
  {
    std::shared_lock lock(jobs_mutex_);
    for (const auto& [job_id, stream] : jobs_) {
      if (!stream->done.load(std::memory_order_acquire)) ++stats.active_jobs;
    }
  }
  {
    std::lock_guard lock(verdicts_mutex_);
    stats.pending_verdicts = verdicts_.size();
  }
  stats.jobs_opened = jobs_opened_.load(std::memory_order_relaxed);
  stats.jobs_completed = jobs_completed_.load(std::memory_order_relaxed);
  stats.samples_pushed = samples_pushed_.load(std::memory_order_relaxed);
  stats.samples_dropped = samples_dropped_.load(std::memory_order_relaxed);
  stats.samples_late = samples_late_.load(std::memory_order_relaxed);
  return stats;
}

void RecognitionService::queue_verdict(std::uint64_t job_id,
                                       RecognitionResult result) {
  {
    std::lock_guard lock(verdicts_mutex_);
    verdicts_.push_back({job_id, std::move(result)});
  }
  jobs_completed_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace efd::core
