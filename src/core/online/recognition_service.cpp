#include "core/online/recognition_service.hpp"

#include <iterator>
#include <sstream>
#include <utility>

#include "util/thread_pool.hpp"

namespace efd::core {

const char* backpressure_policy_name(BackpressurePolicy policy) {
  switch (policy) {
    case BackpressurePolicy::kBlock: return "block";
    case BackpressurePolicy::kDropOldest: return "drop-oldest";
    case BackpressurePolicy::kReject: return "reject";
  }
  return "unknown";
}

std::optional<BackpressurePolicy> parse_backpressure_policy(
    std::string_view name) {
  if (name == "block") return BackpressurePolicy::kBlock;
  if (name == "drop-oldest") return BackpressurePolicy::kDropOldest;
  if (name == "reject") return BackpressurePolicy::kReject;
  return std::nullopt;
}

RecognitionService::RecognitionService(ShardedDictionary dictionary,
                                       RecognitionServiceConfig config)
    : handle_(std::move(dictionary)), config_(config) {
  if (config_.job_queue_capacity == 0) config_.job_queue_capacity = 1;
}

const ShardedDictionary& RecognitionService::dictionary() const {
  // The handle's current_ reference keeps this epoch alive after the
  // acquire() temporary drops, so the borrow is valid until the next
  // swap publishes a successor.
  return handle_.acquire()->dictionary;
}

RecognitionService::SwapOutcome RecognitionService::swap_dictionary(
    ShardedDictionary next) {
  // Already-active guard: EFD-DICT-V1 serialization is deterministic
  // (sorted entries, config included), so byte equality is content AND
  // layout identity. Swaps are a retrain cadence, not a hot path — two
  // serializations per attempt is fine, and comparing fresh bytes (not a
  // publication-time hash) stays correct after learn() inserted into the
  // active epoch.
  {
    const auto active = handle_.acquire();
    std::ostringstream active_bytes, candidate_bytes;
    active->dictionary.save(active_bytes);
    next.save(candidate_bytes);
    if (std::move(active_bytes).str() == std::move(candidate_bytes).str()) {
      swaps_noop_.fetch_add(1, std::memory_order_relaxed);
      return {active->version, true};
    }
  }
  return {handle_.swap(std::move(next)), false};
}

std::int64_t RecognitionService::now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void RecognitionService::learn(const FingerprintKey& key,
                               const std::string& label) {
  handle_.acquire()->dictionary.insert(key, label);
}

RecognitionService::SourceIngress* RecognitionService::ingress_for(
    std::uint32_t source_tag) {
  std::lock_guard lock(sources_mutex_);
  auto& slot = source_ingress_[source_tag];
  if (slot == nullptr) {
    slot = std::make_unique<SourceIngress>();
    slot->source = source_tag;
  }
  return slot.get();
}

bool RecognitionService::open_job(std::uint64_t job_id,
                                  std::uint32_t node_count,
                                  std::uint32_t source_tag) {
  auto stream =
      std::make_shared<JobStream>(handle_.acquire(), job_id, node_count);
  stream->last_activity_ns.store(now_ns(), std::memory_order_relaxed);
  SourceIngress* ingress = ingress_for(source_tag);
  stream->ingress = ingress;
  {
    std::unique_lock lock(jobs_mutex_);
    if (!jobs_.emplace(job_id, std::move(stream)).second) return false;
  }
  jobs_opened_.fetch_add(1, std::memory_order_relaxed);
  ingress->jobs_opened.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool RecognitionService::has_job(std::uint64_t job_id) const {
  std::shared_lock lock(jobs_mutex_);
  const auto it = jobs_.find(job_id);
  return it != jobs_.end() && !it->second->done.load(std::memory_order_acquire);
}

std::shared_ptr<RecognitionService::JobStream> RecognitionService::find_stream(
    std::uint64_t job_id) const {
  std::shared_lock lock(jobs_mutex_);
  const auto it = jobs_.find(job_id);
  return it != jobs_.end() ? it->second : nullptr;
}

bool RecognitionService::enqueue_locked(JobStream& stream,
                                        std::unique_lock<std::mutex>& lock,
                                        const SamplePush& sample) {
  if (stream.done.load(std::memory_order_relaxed)) {
    // The verdict already fired; the stream lingers until the next
    // drain. Counted separately from drops — a job streaming past its
    // window end is healthy, not a routing failure.
    samples_late_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  if (stream.queue.size() >= config_.job_queue_capacity) {
    if (!config_.deferred && !stream.draining) {
      // Inline mode with no competing drainer: the pushing thread IS
      // the consumer, so recognize the backlog instead of shedding it —
      // a push_batch larger than the queue must stay lossless exactly
      // like PR 1's per-sample inline path.
      drain_stream(stream, lock);
      if (stream.done.load(std::memory_order_relaxed)) {
        samples_late_.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
    } else {
      switch (config_.policy) {
      case BackpressurePolicy::kReject:
        samples_rejected_.fetch_add(1, std::memory_order_relaxed);
        return false;
      case BackpressurePolicy::kDropOldest:
        // O(queue) memmove of PODs — acceptable on this degraded lossy
        // path; the lossless policies never reach it.
        stream.queue.erase(stream.queue.begin());
        stream.queued.fetch_sub(1, std::memory_order_relaxed);
        samples_overflowed_.fetch_add(1, std::memory_order_relaxed);
        break;
      case BackpressurePolicy::kBlock:
        if (!stream.draining) {
          // No active drainer to wait on: make progress ourselves (even
          // in deferred mode). Waiting here would deadlock a pipeline
          // that is both the sole producer and the process_pending
          // caller; draining inline keeps kBlock lossless AND bounded.
          drain_stream(stream, lock);
          if (stream.done.load(std::memory_order_relaxed)) {
            samples_late_.fetch_add(1, std::memory_order_relaxed);
            return false;
          }
        } else {
          // Real back-pressure: an active drainer exists, so waiting
          // terminates. The stalled producer (a network reader,
          // typically) leaves TCP bytes unread and pushes the stall
          // back to the remote sender.
          pushes_blocked_.fetch_add(1, std::memory_order_relaxed);
          stream.space.wait(lock, [&] {
            return stream.queue.size() < config_.job_queue_capacity ||
                   stream.done.load(std::memory_order_relaxed);
          });
          if (stream.done.load(std::memory_order_relaxed)) {
            samples_late_.fetch_add(1, std::memory_order_relaxed);
            return false;
          }
        }
        break;
      }
    }
  }

  // Resolve the metric to its dictionary slot here, once: metric_slot only
  // reads the pinned epoch's immutable config, so it is safe while a
  // drainer owns the recognizer's mutable state.
  stream.queue.push_back(Sample{sample.node_id, sample.t, sample.value,
                                stream.recognizer.metric_slot(sample.metric)});
  stream.queued.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool RecognitionService::push(std::uint64_t job_id, std::uint32_t node_id,
                              std::string_view metric_name, int t,
                              double value) {
  const SamplePush sample{node_id, t, value, metric_name};
  return push_batch(job_id, std::span(&sample, 1)) == 1;
}

std::size_t RecognitionService::push_batch(
    std::uint64_t job_id, std::span<const SamplePush> samples) {
  if (samples.empty()) return 0;
  const std::shared_ptr<JobStream> stream = find_stream(job_id);
  if (stream == nullptr) {
    samples_dropped_.fetch_add(samples.size(), std::memory_order_relaxed);
    return 0;
  }

  std::size_t accepted = 0;
  std::unique_lock lock(stream->mutex);
  for (const SamplePush& sample : samples) {
    if (enqueue_locked(*stream, lock, sample)) ++accepted;
  }
  if (accepted > 0) {
    stream->last_activity_ns.store(now_ns(), std::memory_order_relaxed);
    if (!config_.deferred) drain_stream(*stream, lock);
  }
  return accepted;
}

std::size_t RecognitionService::drain_stream(
    JobStream& stream, std::unique_lock<std::mutex>& lock) {
  if (stream.draining) return 0;  // the token holder will consume our samples
  stream.draining = true;

  std::size_t fed_total = 0;
  // Swap the whole queue out into the stream-owned drain buffer: both
  // vectors reach the stream's high-water capacity and then recycle it,
  // so steady-state draining allocates nothing.
  std::vector<Sample>& batch = stream.drain_batch;
  while (!stream.queue.empty() &&
         !stream.done.load(std::memory_order_relaxed)) {
    batch.clear();
    std::swap(batch, stream.queue);
    stream.queued.store(0, std::memory_order_relaxed);
    lock.unlock();
    stream.space.notify_all();  // freed a full batch of capacity

    // The drain token makes the recognizer ours outside the mutex, so
    // producers keep enqueueing while this batch is recognized.
    std::size_t fed = 0;
    bool fired = false;
    RecognitionResult verdict;
    for (const Sample& sample : batch) {
      if (sample.metric_slot != kNoMetricSlot) {
        stream.recognizer.push_slot(sample.node_id, sample.metric_slot,
                                    sample.t, sample.value);
      }
      ++fed;  // unknown-metric samples still count as fed, as before
      if (stream.recognizer.ready()) {
        if (auto result = stream.recognizer.result()) verdict = *result;
        fired = true;
        break;
      }
    }
    fed_total += fed;
    samples_pushed_.fetch_add(fed, std::memory_order_relaxed);
    if (stream.ingress != nullptr) {
      stream.ingress->samples_pushed.fetch_add(fed,
                                               std::memory_order_relaxed);
    }
    if (fed < batch.size()) {
      // Samples behind the one that closed the last window: late.
      samples_late_.fetch_add(batch.size() - fed, std::memory_order_relaxed);
    }

    lock.lock();
    if (fired) {
      // done cannot have been set meanwhile: close/evict wait for the
      // drain token before finishing a stream. Queue the verdict before
      // publishing done (the reap treats done==true as "verdict queued").
      queue_verdict(stream.job_id, std::move(verdict));
      if (stream.ingress != nullptr) {
        stream.ingress->jobs_completed.fetch_add(1,
                                                 std::memory_order_relaxed);
      }
      stream.done.store(true, std::memory_order_release);
    }
  }
  if (stream.done.load(std::memory_order_relaxed) && !stream.queue.empty()) {
    // Arrived while the verdict fired; free the memory now, not at reap.
    samples_late_.fetch_add(stream.queue.size(), std::memory_order_relaxed);
    stream.queue.clear();
    stream.queued.store(0, std::memory_order_relaxed);
  }
  stream.draining = false;
  stream.drained.notify_all();
  stream.space.notify_all();
  return fed_total;
}

std::size_t RecognitionService::process_pending(util::ThreadPool* pool) {
  std::vector<std::shared_ptr<JobStream>> streams;
  {
    std::shared_lock lock(jobs_mutex_);
    streams.reserve(jobs_.size());
    for (const auto& [job_id, stream] : jobs_) {
      if (!stream->done.load(std::memory_order_acquire) &&
          stream->queued.load(std::memory_order_relaxed) > 0) {
        streams.push_back(stream);
      }
    }
  }
  if (streams.empty()) return 0;

  std::atomic<std::size_t> fed{0};
  const auto drain_one = [&](std::size_t i) {
    JobStream& stream = *streams[i];
    std::unique_lock lock(stream.mutex);
    fed.fetch_add(drain_stream(stream, lock), std::memory_order_relaxed);
  };
  if (pool != nullptr && streams.size() > 1) {
    util::parallel_for(*pool, 0, streams.size(), drain_one);
  } else {
    for (std::size_t i = 0; i < streams.size(); ++i) drain_one(i);
  }
  return fed.load(std::memory_order_relaxed);
}

void RecognitionService::finish_stream(JobStream& stream) {
  // Caller holds the stream mutex with the drain token free, so the
  // recognizer is exclusively ours. Flush accepted-but-unprocessed
  // samples first — they arrived before the close decision.
  std::size_t consumed = 0;
  while (consumed < stream.queue.size() && !stream.recognizer.ready()) {
    const Sample& sample = stream.queue[consumed++];
    if (sample.metric_slot != kNoMetricSlot) {
      stream.recognizer.push_slot(sample.node_id, sample.metric_slot,
                                  sample.t, sample.value);
    }
  }
  if (consumed > 0) {
    samples_pushed_.fetch_add(consumed, std::memory_order_relaxed);
    if (stream.ingress != nullptr) {
      stream.ingress->samples_pushed.fetch_add(consumed,
                                               std::memory_order_relaxed);
    }
  }
  if (consumed < stream.queue.size()) {
    samples_late_.fetch_add(stream.queue.size() - consumed,
                            std::memory_order_relaxed);
  }
  stream.queue.clear();
  stream.queued.store(0, std::memory_order_relaxed);

  // An unready stream yields a default (unrecognized) verdict — the
  // paper's unknown-application safeguard for truncated executions.
  // Queued before done is published, as in drain_stream().
  RecognitionResult verdict;
  if (auto result = stream.recognizer.result()) verdict = *result;
  queue_verdict(stream.job_id, std::move(verdict));
  if (stream.ingress != nullptr) {
    stream.ingress->jobs_completed.fetch_add(1, std::memory_order_relaxed);
  }
  stream.done.store(true, std::memory_order_release);
  stream.space.notify_all();  // blocked producers observe done -> late
}

bool RecognitionService::close_job(std::uint64_t job_id) {
  const std::shared_ptr<JobStream> stream = find_stream(job_id);
  if (stream == nullptr) return false;

  std::unique_lock lock(stream->mutex);
  stream->drained.wait(lock, [&] { return !stream->draining; });
  if (stream->done.load(std::memory_order_relaxed)) return false;
  finish_stream(*stream);
  return true;
}

std::size_t RecognitionService::sweep_stale_jobs(
    std::chrono::steady_clock::duration ttl) {
  const std::int64_t cutoff =
      now_ns() -
      std::chrono::duration_cast<std::chrono::nanoseconds>(ttl).count();
  std::vector<std::shared_ptr<JobStream>> stale;
  {
    std::shared_lock lock(jobs_mutex_);
    for (const auto& [job_id, stream] : jobs_) {
      if (!stream->done.load(std::memory_order_acquire) &&
          stream->last_activity_ns.load(std::memory_order_relaxed) <= cutoff) {
        stale.push_back(stream);
      }
    }
  }

  std::size_t evicted = 0;
  for (const auto& stream : stale) {
    std::unique_lock lock(stream->mutex);
    stream->drained.wait(lock, [&] { return !stream->draining; });
    if (stream->done.load(std::memory_order_relaxed)) continue;
    if (stream->last_activity_ns.load(std::memory_order_relaxed) > cutoff) {
      continue;  // revived between the scan and the lock
    }
    finish_stream(*stream);
    ++evicted;
  }
  if (evicted > 0) jobs_evicted_.fetch_add(evicted, std::memory_order_relaxed);
  return evicted;
}

std::vector<JobVerdict> RecognitionService::drain_verdicts() {
  {
    // Reap finished streams; their ids become reusable from here on.
    std::unique_lock lock(jobs_mutex_);
    for (auto it = jobs_.begin(); it != jobs_.end();) {
      if (it->second->done.load(std::memory_order_acquire)) {
        it = jobs_.erase(it);
      } else {
        ++it;
      }
    }
  }
  std::vector<JobVerdict> drained;
  std::lock_guard lock(verdicts_mutex_);
  drained.swap(verdicts_);
  return drained;
}

RecognitionServiceStats RecognitionService::stats() const {
  RecognitionServiceStats stats;
  stats.dictionary_epoch = handle_.version();
  stats.dictionary_swaps = handle_.swap_count();
  {
    std::shared_lock lock(jobs_mutex_);
    for (const auto& [job_id, stream] : jobs_) {
      if (!stream->done.load(std::memory_order_acquire)) {
        ++stats.active_jobs;
        if (stream->epoch->version != stats.dictionary_epoch) {
          ++stats.jobs_on_stale_epoch;
        }
      }
      stats.queued_samples +=
          stream->queued.load(std::memory_order_relaxed);
    }
  }
  {
    std::lock_guard lock(verdicts_mutex_);
    stats.pending_verdicts = verdicts_.size();
  }
  stats.jobs_opened = jobs_opened_.load(std::memory_order_relaxed);
  stats.jobs_completed = jobs_completed_.load(std::memory_order_relaxed);
  stats.jobs_evicted = jobs_evicted_.load(std::memory_order_relaxed);
  stats.samples_pushed = samples_pushed_.load(std::memory_order_relaxed);
  stats.samples_dropped = samples_dropped_.load(std::memory_order_relaxed);
  stats.samples_late = samples_late_.load(std::memory_order_relaxed);
  stats.samples_overflowed =
      samples_overflowed_.load(std::memory_order_relaxed);
  stats.samples_rejected = samples_rejected_.load(std::memory_order_relaxed);
  stats.pushes_blocked = pushes_blocked_.load(std::memory_order_relaxed);
  stats.dictionary_swaps_noop = swaps_noop_.load(std::memory_order_relaxed);
  {
    std::lock_guard lock(sources_mutex_);
    // A lone untagged source (the legacy single-transport mode) keeps
    // by_source empty — the aggregate counters already ARE its view.
    const bool tagged = source_ingress_.size() > 1 ||
                        (!source_ingress_.empty() &&
                         source_ingress_.begin()->first != 0);
    if (tagged) {
      stats.by_source.reserve(source_ingress_.size());
      for (const auto& [tag, ingress] : source_ingress_) {
        SourceIngressStats row;
        row.source = tag;
        row.jobs_opened = ingress->jobs_opened.load(std::memory_order_relaxed);
        row.jobs_completed =
            ingress->jobs_completed.load(std::memory_order_relaxed);
        row.samples_pushed =
            ingress->samples_pushed.load(std::memory_order_relaxed);
        stats.by_source.push_back(row);
      }
    }
  }
  return stats;
}

void RecognitionService::queue_verdict(std::uint64_t job_id,
                                       RecognitionResult result) {
  {
    std::lock_guard lock(verdicts_mutex_);
    verdicts_.push_back({job_id, std::move(result)});
  }
  jobs_completed_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace efd::core
