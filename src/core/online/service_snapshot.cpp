/// \file service_snapshot.cpp
/// \brief RecognitionService::snapshot() / restore() — the EFD-SNAP-V1
/// encoder and its defensive decoder — plus the EFD-SNAP-V2 base+delta
/// capture chain (snapshot_capture() / restore_chain()). Formats:
/// service_snapshot.hpp. Both encoders share one section writer and
/// both decoders share one staged all-or-nothing section reader, so V1
/// output stays byte-identical while deltas reuse every defensive
/// check.

#include "core/online/service_snapshot.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <shared_mutex>
#include <sstream>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/online/recognition_service.hpp"
#include "util/binary_io.hpp"

namespace efd::core {

namespace {

using util::ByteReader;
using util::put_f64;
using util::put_string;
using util::put_u32;
using util::put_u64;
using util::put_u8;

/// Minimum encoded sizes, used to validate element counts against the
/// bytes that actually arrived BEFORE any allocation.
constexpr std::size_t kAccumulatorBytes = 8 + 8 + 4;
constexpr std::size_t kMinSampleBytes = 4 + 4 + 8 + 2;
constexpr std::size_t kMinStringBytes = 2;
constexpr std::size_t kMinVoteBytes = 2 + 4;
constexpr std::size_t kMinVerdictBytes = 8 + 1 + 8 + 8 + 4 * 4;
constexpr std::size_t kMinSourceCursorBytes = 2 + 8;  // name prefix + u64
constexpr std::size_t kClosedJobBytes = 8;
/// Stats body sizes: current (10 counters) and the legacy 9-counter body
/// written before dictionary_swaps_noop existed — both restore.
constexpr std::size_t kStatsCounters = 10;
constexpr std::size_t kStatsBytes = kStatsCounters * 8;
constexpr std::size_t kLegacyStatsBytes = 9 * 8;
/// V2 chain envelope after the magic: u8 kind | u64 id | u64 parent.
constexpr std::size_t kCaptureEnvelopeBytes = 1 + 8 + 8;

std::size_t write_section(std::ostream& out,
                          const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> header;
  put_u32(header, static_cast<std::uint32_t>(payload.size()));
  put_u32(header, util::crc32(payload));
  out.write(reinterpret_cast<const char*>(header.data()),
            static_cast<std::streamsize>(header.size()));
  out.write(reinterpret_cast<const char*>(payload.data()),
            static_cast<std::streamsize>(payload.size()));
  return header.size() + payload.size();
}

void put_result(std::vector<std::uint8_t>& out, std::uint64_t job_id,
                const RecognitionResult& result) {
  put_u64(out, job_id);
  put_u8(out, result.recognized ? 1 : 0);
  put_u64(out, static_cast<std::uint64_t>(result.fingerprint_count));
  put_u64(out, static_cast<std::uint64_t>(result.matched_count));
  put_u32(out, static_cast<std::uint32_t>(result.applications.size()));
  for (const std::string& application : result.applications) {
    put_string(out, application);
  }
  put_u32(out, static_cast<std::uint32_t>(result.votes.size()));
  for (const auto& [name, votes] : result.votes) {
    put_string(out, name);
    put_u32(out, static_cast<std::uint32_t>(votes));
  }
  put_u32(out, static_cast<std::uint32_t>(result.label_votes.size()));
  for (const auto& [name, votes] : result.label_votes) {
    put_string(out, name);
    put_u32(out, static_cast<std::uint32_t>(votes));
  }
  put_u32(out, static_cast<std::uint32_t>(result.matched_labels.size()));
  for (const std::string& label : result.matched_labels) {
    put_string(out, label);
  }
}

/// Throws SnapshotError(reason) — the decoder's single failure path.
[[noreturn]] void fail(const std::string& reason) {
  throw SnapshotError("EFD-SNAP-V1: " + reason);
}

/// Identity of the accumulator layout a stream's window state was
/// exported under: the fingerprinted metrics (names and order) and the
/// intervals. A stream pinned to an epoch whose layout differs from the
/// snapshot's active dictionary (a crash inside a hot-swap window)
/// cannot transfer its sums — restore() gives such streams fresh
/// windows instead of misattributing state or refusing to boot.
/// Rounding depth and metric combination are deliberately excluded:
/// they shape keys, not accumulators, so state transfers across them.
std::string config_signature(const FingerprintConfig& config) {
  std::string signature;
  for (const std::string& metric : config.metrics) {
    signature += metric;
    signature += '\x1F';
  }
  signature += '|';
  for (const telemetry::Interval& interval : config.intervals) {
    signature += std::to_string(interval.begin_seconds);
    signature += ':';
    signature += std::to_string(interval.end_seconds);
    signature += ',';
  }
  return signature;
}

bool read_count(ByteReader& reader, std::size_t min_item_bytes,
                std::uint32_t& out) {
  if (!reader.read_u32(out)) return false;
  // Never trust a count for allocation: the body that actually arrived
  // bounds how many items can exist.
  return static_cast<std::size_t>(out) * min_item_bytes <= reader.remaining();
}

bool read_result(ByteReader& reader, std::uint64_t& job_id,
                 RecognitionResult& result) {
  std::uint8_t recognized = 0;
  std::uint64_t fingerprints = 0, matched = 0;
  if (reader.remaining() < kMinVerdictBytes || !reader.read_u64(job_id) ||
      !reader.read_u8(recognized) || !reader.read_u64(fingerprints) ||
      !reader.read_u64(matched)) {
    return false;
  }
  result.recognized = recognized != 0;
  result.fingerprint_count = static_cast<std::size_t>(fingerprints);
  result.matched_count = static_cast<std::size_t>(matched);

  std::uint32_t count = 0;
  if (!read_count(reader, kMinStringBytes, count)) return false;
  result.applications.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    std::string name;
    if (!reader.read_string(name)) return false;
    result.applications.push_back(std::move(name));
  }
  for (auto* votes : {&result.votes, &result.label_votes}) {
    if (!read_count(reader, kMinVoteBytes, count)) return false;
    for (std::uint32_t i = 0; i < count; ++i) {
      std::string name;
      std::uint32_t value = 0;
      if (!reader.read_string(name) || !reader.read_u32(value)) return false;
      (*votes)[std::move(name)] = static_cast<int>(value);
    }
  }
  if (!read_count(reader, kMinStringBytes, count)) return false;
  result.matched_labels.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    std::string label;
    if (!reader.read_string(label)) return false;
    result.matched_labels.push_back(std::move(label));
  }
  return true;
}

std::vector<std::uint8_t> read_exact(std::istream& in, std::size_t size,
                                     const char* what) {
  std::vector<std::uint8_t> bytes(size);
  in.read(reinterpret_cast<char*>(bytes.data()),
          static_cast<std::streamsize>(size));
  if (static_cast<std::size_t>(in.gcount()) != size) {
    fail(std::string("truncated ") + what);
  }
  return bytes;
}

}  // namespace

/// Everything a decode stages before commit_staging() mutates the
/// service. Chain replay feeds multiple captures into one staging:
/// latest capture wins for cursor/verdicts/stats/retrain, stream
/// sections add/replace by job id, ClosedJobs removes.
struct RecognitionService::RestoreStaging {
  std::uint64_t replay_cursor = 0;
  std::uint64_t epoch_version = 0;
  std::uint64_t swap_count = 0;
  std::shared_ptr<DictionaryHandle::Epoch> epoch;
  std::unordered_map<std::uint64_t, std::shared_ptr<JobStream>> jobs;
  std::vector<JobVerdict> verdicts;
  /// Job ids restored with fresh windows (layout-signature mismatch);
  /// a later capture replacing or closing the stream updates the set,
  /// so streams_reset counts live streams only.
  std::unordered_set<std::uint64_t> reset_jobs;
  std::uint64_t counters[kStatsCounters] = {};
  std::vector<std::uint8_t> retrain;
  std::vector<SourceCursor> source_cursors;
};

std::size_t RecognitionService::write_snapshot_sections(
    std::ostream& out,
    const std::shared_ptr<DictionaryHandle::Epoch>& dict_epoch,
    std::uint64_t dict_swap_count, SnapshotChainState* chain, bool delta,
    SnapshotCaptureInfo* info, std::uint64_t replay_cursor,
    std::span<const std::uint8_t> retrain_state,
    std::span<const SourceCursor> source_cursors) const {
  std::size_t bytes = 0;
  std::vector<std::uint8_t> payload;
  payload.reserve(64);

  // Meta. The per-source cursor list is an optional tail: a snapshot
  // without one is byte-identical to the pre-multi-source format, and
  // both bodies restore.
  put_u8(payload, static_cast<std::uint8_t>(SnapshotSection::kMeta));
  put_u64(payload, replay_cursor);
  if (!source_cursors.empty()) {
    put_u32(payload, static_cast<std::uint32_t>(source_cursors.size()));
    for (const SourceCursor& source : source_cursors) {
      put_string(payload, source.name);
      put_u64(payload, source.cursor);
    }
  }
  bytes += write_section(out, payload);

  // Dictionary: the ACTIVE epoch — full captures only; a delta's whole
  // point is not rewriting it. Streams pinned to older epochs are
  // re-pinned to this one on restore (documented at-least-once shift: a
  // crash inside a swap window may re-evaluate those windows against the
  // newer dictionary).
  if (!delta) {
    payload.clear();
    put_u8(payload, static_cast<std::uint8_t>(SnapshotSection::kDictionary));
    put_u64(payload, dict_epoch->version);
    put_u64(payload, dict_swap_count);
    {
      std::ostringstream dictionary_bytes;
      dict_epoch->dictionary.save(dictionary_bytes);
      const std::string text = std::move(dictionary_bytes).str();
      payload.insert(payload.end(), text.begin(), text.end());
    }
    bytes += write_section(out, payload);
  }

  // Open streams. Collect first (shared lock), then capture each at a
  // consistent point: the stream mutex with any active drainer waited
  // out, so the recognizer is exclusively ours for the export. Streams
  // whose verdict already fired are skipped — their verdict travels in
  // the Verdicts section (which is written AFTER the streams, so a job
  // completing mid-snapshot appears at least once, never zero times).
  // Chain mode digests each stream's serialized payload; a delta skips
  // streams whose digest matches the previous capture.
  std::vector<std::shared_ptr<JobStream>> streams;
  {
    std::shared_lock lock(jobs_mutex_);
    streams.reserve(jobs_.size());
    for (const auto& [job_id, stream] : jobs_) streams.push_back(stream);
  }
  std::unordered_map<std::uint64_t, StreamDigest> new_digests;
  for (const auto& stream : streams) {
    std::unique_lock lock(stream->mutex);
    stream->drained.wait(lock, [&] { return !stream->draining; });
    if (stream->done.load(std::memory_order_acquire)) continue;

    payload.clear();
    put_u8(payload, static_cast<std::uint8_t>(SnapshotSection::kStream));
    put_u64(payload, stream->job_id);
    put_u32(payload, stream->recognizer.node_count());
    put_string(payload, config_signature(stream->epoch->dictionary.config()));
    const auto states = stream->recognizer.export_state();
    put_u32(payload, static_cast<std::uint32_t>(states.size()));
    for (const auto& state : states) {
      put_f64(payload, state.sum);
      put_u64(payload, state.count);
      put_u32(payload, static_cast<std::uint32_t>(state.last_t));
    }
    put_u32(payload, static_cast<std::uint32_t>(stream->queue.size()));
    for (const Sample& sample : stream->queue) {
      put_u32(payload, sample.node_id);
      put_u32(payload, static_cast<std::uint32_t>(sample.t));
      put_f64(payload, sample.value);
      // The wire keeps the metric NAME (EFD-SNAP-V1 is slot-free); samples
      // carrying kNoMetricSlot encode as "" and restore as unknown.
      put_string(payload, stream->recognizer.metric_name(sample.metric_slot));
    }
    lock.unlock();

    bool write = true;
    if (chain != nullptr) {
      const StreamDigest digest{util::crc32(payload),
                                static_cast<std::uint32_t>(payload.size())};
      if (delta) {
        const auto it = chain->streams.find(stream->job_id);
        if (it != chain->streams.end() && it->second == digest) {
          write = false;
          if (info != nullptr) ++info->streams_unchanged;
        }
      }
      new_digests.emplace(stream->job_id, digest);
    }
    if (write) {
      bytes += write_section(out, payload);
      if (info != nullptr) ++info->streams_written;
    }
  }

  // Deltas name the streams that vanished since the parent capture so
  // replay reaps them (their last verdict rides the Verdicts section).
  if (delta) {
    std::vector<std::uint64_t> closed;
    for (const auto& [job_id, digest] : chain->streams) {
      if (new_digests.find(job_id) == new_digests.end()) {
        closed.push_back(job_id);
      }
    }
    std::sort(closed.begin(), closed.end());
    payload.clear();
    put_u8(payload, static_cast<std::uint8_t>(SnapshotSection::kClosedJobs));
    put_u32(payload, static_cast<std::uint32_t>(closed.size()));
    for (const std::uint64_t job_id : closed) put_u64(payload, job_id);
    bytes += write_section(out, payload);
    if (info != nullptr) info->jobs_closed = closed.size();
  }

  // Pending (undrained) verdicts — non-destructive copy, merged across
  // the shared queue and every worker's staging area in completion
  // order, so worker-mode and single-threaded snapshots serialize the
  // same verdict stream.
  payload.clear();
  put_u8(payload, static_cast<std::uint8_t>(SnapshotSection::kVerdicts));
  {
    const std::vector<PendingVerdict> pending = collect_pending_verdicts();
    put_u32(payload, static_cast<std::uint32_t>(pending.size()));
    for (const PendingVerdict& entry : pending) {
      put_result(payload, entry.verdict.job_id, entry.verdict.result);
    }
  }
  bytes += write_section(out, payload);

  // Lifetime counters (monitoring continuity across the restart).
  payload.clear();
  put_u8(payload, static_cast<std::uint8_t>(SnapshotSection::kStats));
  put_u64(payload, jobs_opened_.load(std::memory_order_relaxed));
  put_u64(payload, jobs_completed_.load(std::memory_order_relaxed));
  put_u64(payload, jobs_evicted_.load(std::memory_order_relaxed));
  put_u64(payload, samples_pushed_.load(std::memory_order_relaxed));
  put_u64(payload, samples_dropped_.load(std::memory_order_relaxed));
  put_u64(payload, samples_late_.load(std::memory_order_relaxed));
  put_u64(payload, samples_overflowed_.load(std::memory_order_relaxed));
  put_u64(payload, samples_rejected_.load(std::memory_order_relaxed));
  put_u64(payload, pushes_blocked_.load(std::memory_order_relaxed));
  put_u64(payload, swaps_noop_.load(std::memory_order_relaxed));
  bytes += write_section(out, payload);

  // Optional opaque retrain-subsystem state (trigger/train/gate/promote
  // lineage) — the service transports it, the retrain layer decodes it.
  if (!retrain_state.empty()) {
    payload.clear();
    put_u8(payload, static_cast<std::uint8_t>(SnapshotSection::kRetrain));
    payload.insert(payload.end(), retrain_state.begin(), retrain_state.end());
    bytes += write_section(out, payload);
  }

  // Terminator: its presence is how restore() distinguishes a complete
  // snapshot from one truncated at a section boundary.
  payload.clear();
  put_u8(payload, static_cast<std::uint8_t>(SnapshotSection::kEnd));
  bytes += write_section(out, payload);

  if (!out) fail("snapshot write failed");

  // Commit the digest bookkeeping only once every byte landed: a failed
  // capture must leave the chain state describing the last GOOD capture.
  if (chain != nullptr) chain->streams = std::move(new_digests);
  return bytes;
}

void RecognitionService::snapshot(
    std::ostream& out, std::uint64_t replay_cursor,
    std::span<const std::uint8_t> retrain_state,
    std::span<const SourceCursor> source_cursors) const {
  // Park the worker pool (no-op when single-threaded) so every stream
  // is between drains for the whole capture — the same consistency the
  // per-stream drained-wait below provides against ad-hoc drainers.
  WorkerQuiesceGuard quiesce(*this);

  out.write(kSnapshotMagic, kSnapshotMagicBytes);
  const auto epoch = handle_.acquire();
  write_snapshot_sections(out, epoch, handle_.swap_count(),
                          /*chain=*/nullptr, /*delta=*/false, /*info=*/nullptr,
                          replay_cursor, retrain_state, source_cursors);
}

SnapshotCaptureInfo RecognitionService::snapshot_capture(
    std::ostream& out, SnapshotChainState& chain, bool force_base,
    std::uint64_t replay_cursor, std::span<const std::uint8_t> retrain_state,
    std::span<const SourceCursor> source_cursors) const {
  WorkerQuiesceGuard quiesce(*this);

  // One epoch acquisition feeds both the base/delta decision and the
  // Dictionary section, so a concurrent swap can't split them: the
  // written capture always matches the recorded chain identity.
  const auto epoch = handle_.acquire();
  const std::uint64_t swap_count = handle_.swap_count();
  const bool base = force_base || chain.last_capture_id == 0 ||
                    epoch->version != chain.base_epoch ||
                    swap_count != chain.base_swap_count;

  SnapshotCaptureInfo info;
  info.capture_id = chain.next_capture_id;
  info.parent_id = base ? 0 : chain.last_capture_id;
  info.base = base;

  out.write(kSnapshotMagicV2, kSnapshotMagicBytes);
  std::vector<std::uint8_t> envelope;
  envelope.reserve(kCaptureEnvelopeBytes);
  put_u8(envelope, static_cast<std::uint8_t>(base ? CaptureKind::kBase
                                                  : CaptureKind::kDelta));
  put_u64(envelope, info.capture_id);
  put_u64(envelope, info.parent_id);
  out.write(reinterpret_cast<const char*>(envelope.data()),
            static_cast<std::streamsize>(envelope.size()));

  info.bytes =
      kSnapshotMagicBytes + envelope.size() +
      write_snapshot_sections(out, epoch, swap_count, &chain, !base, &info,
                              replay_cursor, retrain_state, source_cursors);

  // Chain bookkeeping commits only on success (write failures threw).
  chain.last_capture_id = info.capture_id;
  chain.next_capture_id = info.capture_id + 1;
  if (base) {
    chain.base_capture_id = info.capture_id;
    chain.base_epoch = epoch->version;
    chain.base_swap_count = swap_count;
    chain.deltas_since_base = 0;
  } else {
    ++chain.deltas_since_base;
  }
  return info;
}

void RecognitionService::require_fresh_for_restore() const {
  // restore is a startup operation: refuse on a service that has
  // already seen traffic (open streams or undrained verdicts).
  {
    std::shared_lock lock(jobs_mutex_);
    if (!jobs_.empty()) {
      fail("restore requires a service with no open jobs");
    }
  }
  if (pending_verdict_count() != 0) {
    fail("restore requires a service with no pending verdicts");
  }
}

void RecognitionService::decode_snapshot_sections(std::istream& in,
                                                  RestoreStaging& staging,
                                                  bool delta) const {
  bool saw_verdicts = false;
  bool saw_stats = false;
  bool saw_retrain = false;
  bool saw_end = false;
  // Stream ids seen in THIS capture: a duplicate within one capture is
  // hostile, while re-serializing a job across chain captures replaces.
  std::unordered_set<std::uint64_t> streams_this_capture;

  // Strict section order. Full capture: Meta, Dictionary, Stream*,
  // Verdicts, Stats, [Retrain,] End. Delta: Meta, Stream*, ClosedJobs,
  // Verdicts, Stats, [Retrain,] End.
  SnapshotSection expected = SnapshotSection::kMeta;
  while (!saw_end) {
    const auto header = read_exact(in, 8, "section header");
    ByteReader header_reader(header.data(), header.size());
    std::uint32_t payload_len = 0, stored_crc = 0;
    header_reader.read_u32(payload_len);
    header_reader.read_u32(stored_crc);
    if (payload_len < 1) fail("section shorter than its type byte");
    if (payload_len > kMaxSnapshotSectionBytes) {
      fail("section exceeds size limit");
    }
    const auto payload = read_exact(in, payload_len, "section payload");
    if (util::crc32(payload) != stored_crc) fail("section CRC mismatch");

    ByteReader reader(payload.data(), payload.size());
    std::uint8_t type_byte = 0;
    reader.read_u8(type_byte);
    const auto type = static_cast<SnapshotSection>(type_byte);

    switch (type) {
      case SnapshotSection::kMeta: {
        if (expected != SnapshotSection::kMeta) fail("unexpected meta section");
        if (reader.remaining() < 8 || !reader.read_u64(staging.replay_cursor)) {
          fail("malformed meta section");
        }
        staging.source_cursors.clear();
        if (reader.remaining() > 0) {
          // Extended body: named per-source cursors (multi-source
          // pipelines). A legacy 8-byte body skips this block.
          std::uint32_t count = 0;
          if (!read_count(reader, kMinSourceCursorBytes, count)) {
            fail("source cursor count inconsistent with section length");
          }
          staging.source_cursors.reserve(count);
          for (std::uint32_t i = 0; i < count; ++i) {
            SourceCursor cursor;
            if (!reader.read_string(cursor.name) ||
                !reader.read_u64(cursor.cursor)) {
              fail("truncated source cursor");
            }
            staging.source_cursors.push_back(std::move(cursor));
          }
        }
        expected = delta ? SnapshotSection::kStream
                         : SnapshotSection::kDictionary;
        break;
      }

      case SnapshotSection::kDictionary: {
        if (delta || expected != SnapshotSection::kDictionary) {
          fail("unexpected dictionary section");
        }
        if (!reader.read_u64(staging.epoch_version) ||
            !reader.read_u64(staging.swap_count)) {
          fail("malformed dictionary section");
        }
        const std::string text(
            reinterpret_cast<const char*>(payload.data() +
                                          (payload.size() - reader.remaining())),
            reader.remaining());
        try {
          std::istringstream dictionary_bytes(text);
          staging.epoch = std::make_shared<DictionaryHandle::Epoch>(
              staging.epoch_version,
              ShardedDictionary::load(dictionary_bytes,
                                      dictionary().shard_count()));
        } catch (const std::exception& error) {
          fail(std::string("embedded dictionary rejected: ") + error.what());
        }
        expected = SnapshotSection::kStream;
        break;
      }

      case SnapshotSection::kStream: {
        if (expected != SnapshotSection::kStream) {
          fail("unexpected stream section");
        }
        if (staging.epoch == nullptr) fail("stream section before dictionary");
        std::uint64_t job_id = 0;
        std::uint32_t node_count = 0;
        std::string signature;
        if (!reader.read_u64(job_id) || !reader.read_u32(node_count) ||
            !reader.read_string(signature)) {
          fail("malformed stream header");
        }
        std::uint32_t acc_count = 0;
        if (!read_count(reader, kAccumulatorBytes, acc_count)) {
          fail("accumulator count inconsistent with section length");
        }
        std::vector<OnlineRecognizer::AccumulatorState> states;
        states.reserve(acc_count);
        for (std::uint32_t i = 0; i < acc_count; ++i) {
          OnlineRecognizer::AccumulatorState state;
          std::uint32_t last_t = 0;
          if (!reader.read_f64(state.sum) || !reader.read_u64(state.count) ||
              !reader.read_u32(last_t)) {
            fail("truncated accumulator state");
          }
          state.last_t = static_cast<std::int32_t>(last_t);
          states.push_back(state);
        }
        auto stream =
            std::make_shared<JobStream>(staging.epoch, job_id, node_count);
        // Shard assignment is a pure function of the job id and THIS
        // process's worker count — never persisted, so a snapshot taken
        // under --workers 4 restores cleanly under --workers 2 (or 0).
        stream->worker_index = assign_worker(job_id);
        staging.reset_jobs.erase(job_id);
        if (signature == config_signature(staging.epoch->dictionary.config())) {
          try {
            stream->recognizer.import_state(states);
          } catch (const std::invalid_argument& error) {
            fail(std::string("stream state rejected: ") + error.what());
          }
        } else {
          // Pinned to an epoch whose accumulator layout differs from the
          // snapshot's active dictionary: window sums cannot transfer.
          // The stream restores OPEN with fresh windows (its queue still
          // replays) rather than misattributing state or failing the
          // whole boot — an unfinishable stream ends in the stale sweep's
          // unknown-application safeguard, the paper's semantics.
          staging.reset_jobs.insert(job_id);
        }
        std::uint32_t queue_len = 0;
        if (!read_count(reader, kMinSampleBytes, queue_len)) {
          fail("queued-sample count inconsistent with section length");
        }
        std::string metric;
        for (std::uint32_t i = 0; i < queue_len; ++i) {
          Sample sample;
          std::uint32_t t_bits = 0;
          if (!reader.read_u32(sample.node_id) || !reader.read_u32(t_bits) ||
              !reader.read_f64(sample.value) || !reader.read_string(metric)) {
            fail("truncated queued sample");
          }
          sample.t = static_cast<int>(static_cast<std::int32_t>(t_bits));
          sample.metric_slot = stream->recognizer.metric_slot(metric);
          stream->queue.push_back(sample);
        }
        stream->queued.store(stream->queue.size(), std::memory_order_relaxed);
        stream->last_activity_ns.store(now_ns(), std::memory_order_relaxed);
        if (!streams_this_capture.insert(job_id).second) {
          fail("duplicate stream job id");
        }
        // Across chain captures the newest serialization wins.
        staging.jobs[job_id] = std::move(stream);
        break;
      }

      case SnapshotSection::kClosedJobs: {
        // Delta-only, exactly once, directly after the stream sections.
        if (!delta || expected != SnapshotSection::kStream) {
          fail("unexpected closed-jobs section");
        }
        std::uint32_t count = 0;
        if (!read_count(reader, kClosedJobBytes, count)) {
          fail("closed-job count inconsistent with section length");
        }
        for (std::uint32_t i = 0; i < count; ++i) {
          std::uint64_t job_id = 0;
          if (!reader.read_u64(job_id)) fail("truncated closed-job id");
          if (staging.jobs.erase(job_id) == 0) {
            fail("closed job unknown to the chain");
          }
          staging.reset_jobs.erase(job_id);
        }
        expected = SnapshotSection::kVerdicts;
        break;
      }

      case SnapshotSection::kVerdicts: {
        // In a full capture streams are optional, so Verdicts is
        // accepted from the post-dictionary state directly; in a delta
        // the mandatory ClosedJobs section must have passed first.
        if (expected !=
            (delta ? SnapshotSection::kVerdicts : SnapshotSection::kStream)) {
          fail("unexpected verdicts section");
        }
        std::uint32_t count = 0;
        if (!read_count(reader, kMinVerdictBytes, count)) {
          fail("verdict count inconsistent with section length");
        }
        staging.verdicts.clear();
        staging.verdicts.reserve(count);
        for (std::uint32_t i = 0; i < count; ++i) {
          JobVerdict verdict;
          if (!read_result(reader, verdict.job_id, verdict.result)) {
            fail("truncated verdict");
          }
          staging.verdicts.push_back(std::move(verdict));
        }
        saw_verdicts = true;
        expected = SnapshotSection::kStats;
        break;
      }

      case SnapshotSection::kStats: {
        if (expected != SnapshotSection::kStats) {
          fail("unexpected stats section");
        }
        if (reader.remaining() != kStatsBytes &&
            reader.remaining() != kLegacyStatsBytes) {
          fail("malformed stats section");
        }
        const std::size_t present = reader.remaining() / 8;
        for (std::size_t i = 0; i < present; ++i) {
          reader.read_u64(staging.counters[i]);
        }
        saw_stats = true;
        expected = SnapshotSection::kEnd;
        break;
      }

      case SnapshotSection::kRetrain:
        // Optional, at most once, only between Stats and End. Opaque:
        // validated (CRC, bounds) but not interpreted here. A capture
        // that carries it replaces the staged state; one without leaves
        // the previous capture's state in place.
        if (expected != SnapshotSection::kEnd || saw_retrain) {
          fail("unexpected retrain section");
        }
        staging.retrain.assign(payload.begin() + 1, payload.end());
        saw_retrain = true;
        break;

      case SnapshotSection::kEnd:
        if (expected != SnapshotSection::kEnd) fail("unexpected end section");
        saw_end = true;
        break;

      default:
        fail("unknown section type");
    }
    // The dictionary and retrain bodies legitimately run to the section
    // end (their bytes are consumed wholesale above); every other section
    // must account for every byte it carried.
    if (type != SnapshotSection::kEnd && type != SnapshotSection::kDictionary &&
        type != SnapshotSection::kRetrain && reader.remaining() != 0) {
      fail("trailing bytes in section");
    }
  }
  if (!saw_verdicts || !saw_stats || (!delta && staging.epoch == nullptr)) {
    fail("incomplete snapshot");  // unreachable via order machine; belt
  }
}

ServiceRestoreInfo RecognitionService::commit_staging(
    RestoreStaging&& staging) {
  if (staging.epoch == nullptr) fail("incomplete snapshot");

  const std::size_t jobs_restored = staging.jobs.size();
  const std::size_t verdicts_restored = staging.verdicts.size();
  const std::size_t streams_reset = staging.reset_jobs.size();
  handle_.reset(staging.epoch, staging.swap_count);
  {
    std::unique_lock lock(jobs_mutex_);
    jobs_ = std::move(staging.jobs);
  }
  {
    std::lock_guard lock(verdicts_mutex_);
    verdicts_.clear();
    verdicts_.reserve(staging.verdicts.size());
    for (JobVerdict& verdict : staging.verdicts) {
      // Fresh seq stamps in serialized order: the snapshot's verdict
      // section IS the completion order, so re-stamping preserves it.
      verdicts_.push_back({verdict_seq_.fetch_add(1, std::memory_order_relaxed),
                           std::move(verdict)});
    }
  }
  jobs_opened_.store(staging.counters[0], std::memory_order_relaxed);
  jobs_completed_.store(staging.counters[1], std::memory_order_relaxed);
  jobs_evicted_.store(staging.counters[2], std::memory_order_relaxed);
  samples_pushed_.store(staging.counters[3], std::memory_order_relaxed);
  samples_dropped_.store(staging.counters[4], std::memory_order_relaxed);
  samples_late_.store(staging.counters[5], std::memory_order_relaxed);
  samples_overflowed_.store(staging.counters[6], std::memory_order_relaxed);
  samples_rejected_.store(staging.counters[7], std::memory_order_relaxed);
  pushes_blocked_.store(staging.counters[8], std::memory_order_relaxed);
  swaps_noop_.store(staging.counters[9], std::memory_order_relaxed);

  // Restored streams with queued samples would otherwise sit dirty
  // until their next push: hand them to their owning workers now.
  if (!workers_.empty()) {
    std::shared_lock lock(jobs_mutex_);
    for (const auto& [job_id, stream] : jobs_) {
      if (stream->queued.load(std::memory_order_relaxed) > 0) {
        schedule_stream(stream);
      }
    }
  }

  ServiceRestoreInfo info;
  info.replay_cursor = staging.replay_cursor;
  info.dictionary_epoch = staging.epoch_version;
  info.jobs_restored = jobs_restored;
  info.verdicts_restored = verdicts_restored;
  info.streams_reset = streams_reset;
  info.retrain_state = std::move(staging.retrain);
  info.source_cursors = std::move(staging.source_cursors);
  return info;
}

ServiceRestoreInfo RecognitionService::restore(std::istream& in) {
  require_fresh_for_restore();

  {
    const auto magic = read_exact(in, kSnapshotMagicBytes, "magic");
    if (!std::equal(magic.begin(), magic.end(), kSnapshotMagic)) {
      fail("bad magic");
    }
  }

  RestoreStaging staging;
  decode_snapshot_sections(in, staging, /*delta=*/false);
  if (in.peek() != std::istream::traits_type::eof()) {
    fail("trailing bytes after end section");
  }
  return commit_staging(std::move(staging));
}

ServiceRestoreInfo RecognitionService::restore_chain(
    std::span<std::istream* const> parts) {
  require_fresh_for_restore();
  if (parts.empty()) fail("empty capture chain");

  RestoreStaging staging;
  std::uint64_t previous_id = 0;
  bool first = true;
  for (std::istream* part : parts) {
    if (part == nullptr) fail("null capture stream");
    {
      const auto magic = read_exact(*part, kSnapshotMagicBytes, "magic");
      if (!std::equal(magic.begin(), magic.end(), kSnapshotMagicV2)) {
        fail("bad capture magic");
      }
    }
    const auto envelope =
        read_exact(*part, kCaptureEnvelopeBytes, "capture envelope");
    ByteReader reader(envelope.data(), envelope.size());
    std::uint8_t kind_byte = 0;
    std::uint64_t capture_id = 0, parent_id = 0;
    reader.read_u8(kind_byte);
    reader.read_u64(capture_id);
    reader.read_u64(parent_id);
    const auto kind = static_cast<CaptureKind>(kind_byte);
    if (kind != CaptureKind::kBase && kind != CaptureKind::kDelta) {
      fail("unknown capture kind");
    }
    if (capture_id == 0) fail("capture id must be nonzero");
    if (first) {
      if (kind != CaptureKind::kBase) {
        fail("chain must start with a base capture");
      }
      if (parent_id != 0) fail("base capture with nonzero parent");
    } else {
      if (kind != CaptureKind::kDelta) {
        fail("unexpected base capture mid-chain");
      }
      if (parent_id != previous_id) {
        fail("broken chain link: delta parent does not match the previous "
             "capture");
      }
    }
    decode_snapshot_sections(*part, staging, kind == CaptureKind::kDelta);
    if (part->peek() != std::istream::traits_type::eof()) {
      fail("trailing bytes after end section");
    }
    previous_id = capture_id;
    first = false;
  }
  return commit_staging(std::move(staging));
}

}  // namespace efd::core
