/// \file service_snapshot.cpp
/// \brief RecognitionService::snapshot() / restore() — the EFD-SNAP-V1
/// encoder and its defensive decoder (format: service_snapshot.hpp).

#include "core/online/service_snapshot.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <shared_mutex>
#include <sstream>
#include <utility>
#include <vector>

#include "core/online/recognition_service.hpp"
#include "util/binary_io.hpp"

namespace efd::core {

namespace {

using util::ByteReader;
using util::put_f64;
using util::put_string;
using util::put_u32;
using util::put_u64;
using util::put_u8;

/// Minimum encoded sizes, used to validate element counts against the
/// bytes that actually arrived BEFORE any allocation.
constexpr std::size_t kAccumulatorBytes = 8 + 8 + 4;
constexpr std::size_t kMinSampleBytes = 4 + 4 + 8 + 2;
constexpr std::size_t kMinStringBytes = 2;
constexpr std::size_t kMinVoteBytes = 2 + 4;
constexpr std::size_t kMinVerdictBytes = 8 + 1 + 8 + 8 + 4 * 4;
constexpr std::size_t kMinSourceCursorBytes = 2 + 8;  // name prefix + u64
/// Stats body sizes: current (10 counters) and the legacy 9-counter body
/// written before dictionary_swaps_noop existed — both restore.
constexpr std::size_t kStatsCounters = 10;
constexpr std::size_t kStatsBytes = kStatsCounters * 8;
constexpr std::size_t kLegacyStatsBytes = 9 * 8;

void write_section(std::ostream& out, const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> header;
  put_u32(header, static_cast<std::uint32_t>(payload.size()));
  put_u32(header, util::crc32(payload));
  out.write(reinterpret_cast<const char*>(header.data()),
            static_cast<std::streamsize>(header.size()));
  out.write(reinterpret_cast<const char*>(payload.data()),
            static_cast<std::streamsize>(payload.size()));
}

void put_result(std::vector<std::uint8_t>& out, std::uint64_t job_id,
                const RecognitionResult& result) {
  put_u64(out, job_id);
  put_u8(out, result.recognized ? 1 : 0);
  put_u64(out, static_cast<std::uint64_t>(result.fingerprint_count));
  put_u64(out, static_cast<std::uint64_t>(result.matched_count));
  put_u32(out, static_cast<std::uint32_t>(result.applications.size()));
  for (const std::string& application : result.applications) {
    put_string(out, application);
  }
  put_u32(out, static_cast<std::uint32_t>(result.votes.size()));
  for (const auto& [name, votes] : result.votes) {
    put_string(out, name);
    put_u32(out, static_cast<std::uint32_t>(votes));
  }
  put_u32(out, static_cast<std::uint32_t>(result.label_votes.size()));
  for (const auto& [name, votes] : result.label_votes) {
    put_string(out, name);
    put_u32(out, static_cast<std::uint32_t>(votes));
  }
  put_u32(out, static_cast<std::uint32_t>(result.matched_labels.size()));
  for (const std::string& label : result.matched_labels) {
    put_string(out, label);
  }
}

/// Throws SnapshotError(reason) — the decoder's single failure path.
[[noreturn]] void fail(const std::string& reason) {
  throw SnapshotError("EFD-SNAP-V1: " + reason);
}

/// Identity of the accumulator layout a stream's window state was
/// exported under: the fingerprinted metrics (names and order) and the
/// intervals. A stream pinned to an epoch whose layout differs from the
/// snapshot's active dictionary (a crash inside a hot-swap window)
/// cannot transfer its sums — restore() gives such streams fresh
/// windows instead of misattributing state or refusing to boot.
/// Rounding depth and metric combination are deliberately excluded:
/// they shape keys, not accumulators, so state transfers across them.
std::string config_signature(const FingerprintConfig& config) {
  std::string signature;
  for (const std::string& metric : config.metrics) {
    signature += metric;
    signature += '\x1F';
  }
  signature += '|';
  for (const telemetry::Interval& interval : config.intervals) {
    signature += std::to_string(interval.begin_seconds);
    signature += ':';
    signature += std::to_string(interval.end_seconds);
    signature += ',';
  }
  return signature;
}

bool read_count(ByteReader& reader, std::size_t min_item_bytes,
                std::uint32_t& out) {
  if (!reader.read_u32(out)) return false;
  // Never trust a count for allocation: the body that actually arrived
  // bounds how many items can exist.
  return static_cast<std::size_t>(out) * min_item_bytes <= reader.remaining();
}

bool read_result(ByteReader& reader, std::uint64_t& job_id,
                 RecognitionResult& result) {
  std::uint8_t recognized = 0;
  std::uint64_t fingerprints = 0, matched = 0;
  if (reader.remaining() < kMinVerdictBytes || !reader.read_u64(job_id) ||
      !reader.read_u8(recognized) || !reader.read_u64(fingerprints) ||
      !reader.read_u64(matched)) {
    return false;
  }
  result.recognized = recognized != 0;
  result.fingerprint_count = static_cast<std::size_t>(fingerprints);
  result.matched_count = static_cast<std::size_t>(matched);

  std::uint32_t count = 0;
  if (!read_count(reader, kMinStringBytes, count)) return false;
  result.applications.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    std::string name;
    if (!reader.read_string(name)) return false;
    result.applications.push_back(std::move(name));
  }
  for (auto* votes : {&result.votes, &result.label_votes}) {
    if (!read_count(reader, kMinVoteBytes, count)) return false;
    for (std::uint32_t i = 0; i < count; ++i) {
      std::string name;
      std::uint32_t value = 0;
      if (!reader.read_string(name) || !reader.read_u32(value)) return false;
      (*votes)[std::move(name)] = static_cast<int>(value);
    }
  }
  if (!read_count(reader, kMinStringBytes, count)) return false;
  result.matched_labels.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    std::string label;
    if (!reader.read_string(label)) return false;
    result.matched_labels.push_back(std::move(label));
  }
  return true;
}

}  // namespace

void RecognitionService::snapshot(
    std::ostream& out, std::uint64_t replay_cursor,
    std::span<const std::uint8_t> retrain_state,
    std::span<const SourceCursor> source_cursors) const {
  // Park the worker pool (no-op when single-threaded) so every stream
  // is between drains for the whole capture — the same consistency the
  // per-stream drained-wait below provides against ad-hoc drainers.
  WorkerQuiesceGuard quiesce(*this);

  out.write(kSnapshotMagic, kSnapshotMagicBytes);

  std::vector<std::uint8_t> payload;
  payload.reserve(64);

  // Meta. The per-source cursor list is an optional tail: a snapshot
  // without one is byte-identical to the pre-multi-source format, and
  // both bodies restore.
  put_u8(payload, static_cast<std::uint8_t>(SnapshotSection::kMeta));
  put_u64(payload, replay_cursor);
  if (!source_cursors.empty()) {
    put_u32(payload, static_cast<std::uint32_t>(source_cursors.size()));
    for (const SourceCursor& source : source_cursors) {
      put_string(payload, source.name);
      put_u64(payload, source.cursor);
    }
  }
  write_section(out, payload);

  // Dictionary: the ACTIVE epoch. Streams pinned to older epochs are
  // re-pinned to this one on restore (documented at-least-once shift: a
  // crash inside a swap window may re-evaluate those windows against the
  // newer dictionary).
  const auto epoch = handle_.acquire();
  payload.clear();
  put_u8(payload, static_cast<std::uint8_t>(SnapshotSection::kDictionary));
  put_u64(payload, epoch->version);
  put_u64(payload, handle_.swap_count());
  {
    std::ostringstream dictionary_bytes;
    epoch->dictionary.save(dictionary_bytes);
    const std::string text = std::move(dictionary_bytes).str();
    payload.insert(payload.end(), text.begin(), text.end());
  }
  write_section(out, payload);

  // Open streams. Collect first (shared lock), then capture each at a
  // consistent point: the stream mutex with any active drainer waited
  // out, so the recognizer is exclusively ours for the export. Streams
  // whose verdict already fired are skipped — their verdict travels in
  // the Verdicts section (which is written AFTER the streams, so a job
  // completing mid-snapshot appears at least once, never zero times).
  std::vector<std::shared_ptr<JobStream>> streams;
  {
    std::shared_lock lock(jobs_mutex_);
    streams.reserve(jobs_.size());
    for (const auto& [job_id, stream] : jobs_) streams.push_back(stream);
  }
  for (const auto& stream : streams) {
    std::unique_lock lock(stream->mutex);
    stream->drained.wait(lock, [&] { return !stream->draining; });
    if (stream->done.load(std::memory_order_acquire)) continue;

    payload.clear();
    put_u8(payload, static_cast<std::uint8_t>(SnapshotSection::kStream));
    put_u64(payload, stream->job_id);
    put_u32(payload, stream->recognizer.node_count());
    put_string(payload, config_signature(stream->epoch->dictionary.config()));
    const auto states = stream->recognizer.export_state();
    put_u32(payload, static_cast<std::uint32_t>(states.size()));
    for (const auto& state : states) {
      put_f64(payload, state.sum);
      put_u64(payload, state.count);
      put_u32(payload, static_cast<std::uint32_t>(state.last_t));
    }
    put_u32(payload, static_cast<std::uint32_t>(stream->queue.size()));
    for (const Sample& sample : stream->queue) {
      put_u32(payload, sample.node_id);
      put_u32(payload, static_cast<std::uint32_t>(sample.t));
      put_f64(payload, sample.value);
      // The wire keeps the metric NAME (EFD-SNAP-V1 is slot-free); samples
      // carrying kNoMetricSlot encode as "" and restore as unknown.
      put_string(payload, stream->recognizer.metric_name(sample.metric_slot));
    }
    lock.unlock();
    write_section(out, payload);
  }

  // Pending (undrained) verdicts — non-destructive copy, merged across
  // the shared queue and every worker's staging area in completion
  // order, so worker-mode and single-threaded snapshots serialize the
  // same verdict stream.
  payload.clear();
  put_u8(payload, static_cast<std::uint8_t>(SnapshotSection::kVerdicts));
  {
    const std::vector<PendingVerdict> pending = collect_pending_verdicts();
    put_u32(payload, static_cast<std::uint32_t>(pending.size()));
    for (const PendingVerdict& entry : pending) {
      put_result(payload, entry.verdict.job_id, entry.verdict.result);
    }
  }
  write_section(out, payload);

  // Lifetime counters (monitoring continuity across the restart).
  payload.clear();
  put_u8(payload, static_cast<std::uint8_t>(SnapshotSection::kStats));
  put_u64(payload, jobs_opened_.load(std::memory_order_relaxed));
  put_u64(payload, jobs_completed_.load(std::memory_order_relaxed));
  put_u64(payload, jobs_evicted_.load(std::memory_order_relaxed));
  put_u64(payload, samples_pushed_.load(std::memory_order_relaxed));
  put_u64(payload, samples_dropped_.load(std::memory_order_relaxed));
  put_u64(payload, samples_late_.load(std::memory_order_relaxed));
  put_u64(payload, samples_overflowed_.load(std::memory_order_relaxed));
  put_u64(payload, samples_rejected_.load(std::memory_order_relaxed));
  put_u64(payload, pushes_blocked_.load(std::memory_order_relaxed));
  put_u64(payload, swaps_noop_.load(std::memory_order_relaxed));
  write_section(out, payload);

  // Optional opaque retrain-subsystem state (trigger/train/gate/promote
  // lineage) — the service transports it, the retrain layer decodes it.
  if (!retrain_state.empty()) {
    payload.clear();
    put_u8(payload, static_cast<std::uint8_t>(SnapshotSection::kRetrain));
    payload.insert(payload.end(), retrain_state.begin(), retrain_state.end());
    write_section(out, payload);
  }

  // Terminator: its presence is how restore() distinguishes a complete
  // snapshot from one truncated at a section boundary.
  payload.clear();
  put_u8(payload, static_cast<std::uint8_t>(SnapshotSection::kEnd));
  write_section(out, payload);

  if (!out) fail("snapshot write failed");
}

ServiceRestoreInfo RecognitionService::restore(std::istream& in) {
  // restore() is a startup operation: refuse on a service that has
  // already seen traffic (open streams or undrained verdicts).
  {
    std::shared_lock lock(jobs_mutex_);
    if (!jobs_.empty()) {
      fail("restore requires a service with no open jobs");
    }
  }
  if (pending_verdict_count() != 0) {
    fail("restore requires a service with no pending verdicts");
  }

  const auto read_exact = [&in](std::size_t size, const char* what) {
    std::vector<std::uint8_t> bytes(size);
    in.read(reinterpret_cast<char*>(bytes.data()),
            static_cast<std::streamsize>(size));
    if (static_cast<std::size_t>(in.gcount()) != size) {
      fail(std::string("truncated ") + what);
    }
    return bytes;
  };

  {
    const auto magic = read_exact(kSnapshotMagicBytes, "magic");
    if (!std::equal(magic.begin(), magic.end(), kSnapshotMagic)) {
      fail("bad magic");
    }
  }

  // Stage everything; the service is mutated only after the final
  // section validated (all-or-nothing).
  std::uint64_t replay_cursor = 0;
  std::uint64_t epoch_version = 0;
  std::uint64_t swap_count = 0;
  std::shared_ptr<DictionaryHandle::Epoch> staged_epoch;
  std::unordered_map<std::uint64_t, std::shared_ptr<JobStream>> staged_jobs;
  std::vector<JobVerdict> staged_verdicts;
  std::size_t streams_reset = 0;
  std::uint64_t counters[kStatsCounters] = {};
  std::vector<std::uint8_t> staged_retrain;
  std::vector<SourceCursor> staged_source_cursors;
  bool saw_verdicts = false;
  bool saw_stats = false;
  bool saw_retrain = false;
  bool saw_end = false;

  // Strict section order: Meta, Dictionary, Stream*, Verdicts, Stats, End.
  SnapshotSection expected = SnapshotSection::kMeta;
  while (!saw_end) {
    const auto header = read_exact(8, "section header");
    ByteReader header_reader(header.data(), header.size());
    std::uint32_t payload_len = 0, stored_crc = 0;
    header_reader.read_u32(payload_len);
    header_reader.read_u32(stored_crc);
    if (payload_len < 1) fail("section shorter than its type byte");
    if (payload_len > kMaxSnapshotSectionBytes) {
      fail("section exceeds size limit");
    }
    const auto payload = read_exact(payload_len, "section payload");
    if (util::crc32(payload) != stored_crc) fail("section CRC mismatch");

    ByteReader reader(payload.data(), payload.size());
    std::uint8_t type_byte = 0;
    reader.read_u8(type_byte);
    const auto type = static_cast<SnapshotSection>(type_byte);

    switch (type) {
      case SnapshotSection::kMeta: {
        if (expected != SnapshotSection::kMeta) fail("unexpected meta section");
        if (reader.remaining() < 8 || !reader.read_u64(replay_cursor)) {
          fail("malformed meta section");
        }
        if (reader.remaining() > 0) {
          // Extended body: named per-source cursors (multi-source
          // pipelines). A legacy 8-byte body skips this block.
          std::uint32_t count = 0;
          if (!read_count(reader, kMinSourceCursorBytes, count)) {
            fail("source cursor count inconsistent with section length");
          }
          staged_source_cursors.reserve(count);
          for (std::uint32_t i = 0; i < count; ++i) {
            SourceCursor cursor;
            if (!reader.read_string(cursor.name) ||
                !reader.read_u64(cursor.cursor)) {
              fail("truncated source cursor");
            }
            staged_source_cursors.push_back(std::move(cursor));
          }
        }
        expected = SnapshotSection::kDictionary;
        break;
      }

      case SnapshotSection::kDictionary: {
        if (expected != SnapshotSection::kDictionary) {
          fail("unexpected dictionary section");
        }
        if (!reader.read_u64(epoch_version) || !reader.read_u64(swap_count)) {
          fail("malformed dictionary section");
        }
        const std::string text(
            reinterpret_cast<const char*>(payload.data() +
                                          (payload.size() - reader.remaining())),
            reader.remaining());
        try {
          std::istringstream dictionary_bytes(text);
          staged_epoch = std::make_shared<DictionaryHandle::Epoch>(
              epoch_version,
              ShardedDictionary::load(dictionary_bytes,
                                      dictionary().shard_count()));
        } catch (const std::exception& error) {
          fail(std::string("embedded dictionary rejected: ") + error.what());
        }
        expected = SnapshotSection::kStream;
        break;
      }

      case SnapshotSection::kStream: {
        if (expected != SnapshotSection::kStream) {
          fail("unexpected stream section");
        }
        std::uint64_t job_id = 0;
        std::uint32_t node_count = 0;
        std::string signature;
        if (!reader.read_u64(job_id) || !reader.read_u32(node_count) ||
            !reader.read_string(signature)) {
          fail("malformed stream header");
        }
        std::uint32_t acc_count = 0;
        if (!read_count(reader, kAccumulatorBytes, acc_count)) {
          fail("accumulator count inconsistent with section length");
        }
        std::vector<OnlineRecognizer::AccumulatorState> states;
        states.reserve(acc_count);
        for (std::uint32_t i = 0; i < acc_count; ++i) {
          OnlineRecognizer::AccumulatorState state;
          std::uint32_t last_t = 0;
          if (!reader.read_f64(state.sum) || !reader.read_u64(state.count) ||
              !reader.read_u32(last_t)) {
            fail("truncated accumulator state");
          }
          state.last_t = static_cast<std::int32_t>(last_t);
          states.push_back(state);
        }
        auto stream =
            std::make_shared<JobStream>(staged_epoch, job_id, node_count);
        // Shard assignment is a pure function of the job id and THIS
        // process's worker count — never persisted, so a snapshot taken
        // under --workers 4 restores cleanly under --workers 2 (or 0).
        stream->worker_index = assign_worker(job_id);
        if (signature ==
            config_signature(staged_epoch->dictionary.config())) {
          try {
            stream->recognizer.import_state(states);
          } catch (const std::invalid_argument& error) {
            fail(std::string("stream state rejected: ") + error.what());
          }
        } else {
          // Pinned to an epoch whose accumulator layout differs from the
          // snapshot's active dictionary: window sums cannot transfer.
          // The stream restores OPEN with fresh windows (its queue still
          // replays) rather than misattributing state or failing the
          // whole boot — an unfinishable stream ends in the stale sweep's
          // unknown-application safeguard, the paper's semantics.
          ++streams_reset;
        }
        std::uint32_t queue_len = 0;
        if (!read_count(reader, kMinSampleBytes, queue_len)) {
          fail("queued-sample count inconsistent with section length");
        }
        std::string metric;
        for (std::uint32_t i = 0; i < queue_len; ++i) {
          Sample sample;
          std::uint32_t t_bits = 0;
          if (!reader.read_u32(sample.node_id) || !reader.read_u32(t_bits) ||
              !reader.read_f64(sample.value) || !reader.read_string(metric)) {
            fail("truncated queued sample");
          }
          sample.t = static_cast<int>(static_cast<std::int32_t>(t_bits));
          sample.metric_slot = stream->recognizer.metric_slot(metric);
          stream->queue.push_back(sample);
        }
        stream->queued.store(stream->queue.size(), std::memory_order_relaxed);
        stream->last_activity_ns.store(now_ns(), std::memory_order_relaxed);
        if (!staged_jobs.emplace(job_id, std::move(stream)).second) {
          fail("duplicate stream job id");
        }
        break;
      }

      case SnapshotSection::kVerdicts: {
        // Streams are optional, so Verdicts is accepted from the
        // post-dictionary state directly.
        if (expected != SnapshotSection::kStream) {
          fail("unexpected verdicts section");
        }
        std::uint32_t count = 0;
        if (!read_count(reader, kMinVerdictBytes, count)) {
          fail("verdict count inconsistent with section length");
        }
        staged_verdicts.reserve(count);
        for (std::uint32_t i = 0; i < count; ++i) {
          JobVerdict verdict;
          if (!read_result(reader, verdict.job_id, verdict.result)) {
            fail("truncated verdict");
          }
          staged_verdicts.push_back(std::move(verdict));
        }
        saw_verdicts = true;
        expected = SnapshotSection::kStats;
        break;
      }

      case SnapshotSection::kStats: {
        if (expected != SnapshotSection::kStats) {
          fail("unexpected stats section");
        }
        if (reader.remaining() != kStatsBytes &&
            reader.remaining() != kLegacyStatsBytes) {
          fail("malformed stats section");
        }
        const std::size_t present = reader.remaining() / 8;
        for (std::size_t i = 0; i < present; ++i) reader.read_u64(counters[i]);
        saw_stats = true;
        expected = SnapshotSection::kEnd;
        break;
      }

      case SnapshotSection::kRetrain:
        // Optional, at most once, only between Stats and End. Opaque:
        // validated (CRC, bounds) but not interpreted here.
        if (expected != SnapshotSection::kEnd || saw_retrain) {
          fail("unexpected retrain section");
        }
        staged_retrain.assign(payload.begin() + 1, payload.end());
        saw_retrain = true;
        break;

      case SnapshotSection::kEnd:
        if (expected != SnapshotSection::kEnd) fail("unexpected end section");
        saw_end = true;
        break;

      default:
        fail("unknown section type");
    }
    // The dictionary and retrain bodies legitimately run to the section
    // end (their bytes are consumed wholesale above); every other section
    // must account for every byte it carried.
    if (type != SnapshotSection::kEnd && type != SnapshotSection::kDictionary &&
        type != SnapshotSection::kRetrain && reader.remaining() != 0) {
      fail("trailing bytes in section");
    }
  }
  if (!saw_verdicts || !saw_stats || staged_epoch == nullptr) {
    fail("incomplete snapshot");  // unreachable via order machine; belt
  }
  if (in.peek() != std::istream::traits_type::eof()) {
    fail("trailing bytes after end section");
  }

  // Commit.
  const std::size_t jobs_restored = staged_jobs.size();
  const std::size_t verdicts_restored = staged_verdicts.size();
  handle_.reset(staged_epoch, swap_count);
  {
    std::unique_lock lock(jobs_mutex_);
    jobs_ = std::move(staged_jobs);
  }
  {
    std::lock_guard lock(verdicts_mutex_);
    verdicts_.clear();
    verdicts_.reserve(staged_verdicts.size());
    for (JobVerdict& verdict : staged_verdicts) {
      // Fresh seq stamps in serialized order: the snapshot's verdict
      // section IS the completion order, so re-stamping preserves it.
      verdicts_.push_back({verdict_seq_.fetch_add(1, std::memory_order_relaxed),
                           std::move(verdict)});
    }
  }
  jobs_opened_.store(counters[0], std::memory_order_relaxed);
  jobs_completed_.store(counters[1], std::memory_order_relaxed);
  jobs_evicted_.store(counters[2], std::memory_order_relaxed);
  samples_pushed_.store(counters[3], std::memory_order_relaxed);
  samples_dropped_.store(counters[4], std::memory_order_relaxed);
  samples_late_.store(counters[5], std::memory_order_relaxed);
  samples_overflowed_.store(counters[6], std::memory_order_relaxed);
  samples_rejected_.store(counters[7], std::memory_order_relaxed);
  pushes_blocked_.store(counters[8], std::memory_order_relaxed);
  swaps_noop_.store(counters[9], std::memory_order_relaxed);

  // Restored streams with queued samples would otherwise sit dirty
  // until their next push: hand them to their owning workers now.
  if (!workers_.empty()) {
    std::shared_lock lock(jobs_mutex_);
    for (const auto& [job_id, stream] : jobs_) {
      if (stream->queued.load(std::memory_order_relaxed) > 0) {
        schedule_stream(stream);
      }
    }
  }

  ServiceRestoreInfo info;
  info.replay_cursor = replay_cursor;
  info.dictionary_epoch = epoch_version;
  info.jobs_restored = jobs_restored;
  info.verdicts_restored = verdicts_restored;
  info.streams_reset = streams_reset;
  info.retrain_state = std::move(staged_retrain);
  info.source_cursors = std::move(staged_source_cursors);
  return info;
}

}  // namespace efd::core
