#pragma once
/// \file recognition_service.hpp
/// \brief Multi-job streaming recognition service with bounded per-job
/// queues, back-pressure, and stale-stream eviction.
///
/// A production cluster runs many jobs at once; each node's monitoring
/// daemon pushes samples as they are taken. RecognitionService owns the
/// trained concurrent dictionary (ShardedDictionary) and multiplexes one
/// OnlineRecognizer stream per job id, so pushes for different jobs
/// proceed in parallel and a verdict fires the moment a job's last
/// fingerprint window closes (t = 120 s in the paper's configuration).
///
/// Production ingestion concerns (the scaling items PR 1 left open):
///  - Every job stream buffers samples in a *bounded* queue. When the
///    queue is full a BackpressurePolicy decides: block the producer
///    until the drainer catches up, drop the oldest queued sample, or
///    reject the new one. All three outcomes are observable in
///    RecognitionServiceStats.
///  - In the default (inline) mode the pushing thread drains the queue
///    itself, so verdicts still fire inside push() — the simulator path.
///    With config.deferred = true, push() only enqueues (cheap enough
///    for a network reader thread) and process_pending() — typically
///    called by the ingest pipeline, fanned across a thread pool —
///    consumes the queues and fires verdicts.
///  - With config.worker_count = N > 0 the service runs N persistent
///    worker threads instead: every job is sharded to one worker (hash
///    of job id), pushes enqueue and notify the owning worker's SPSC
///    ring, and that worker alone scores the stream with its own
///    RecognitionScratch — ingest never contends with scoring. Verdicts
///    are sequence-stamped and drained in completion order, so the
///    drained verdict stream is byte-identical to single-threaded mode.
///  - Jobs that never complete (crashed daemons, killed executions)
///    stop consuming memory: sweep_stale_jobs() force-closes every
///    stream idle past the configured TTL, producing the paper's
///    unknown-application safeguard verdict.
///
/// Thread-safety / locking discipline:
///  - jobs map:      std::shared_mutex; push/has_job/stats/process/sweep
///    take it shared, open_job and the drain-time reap take it exclusive.
///  - per-job state: its own std::mutex guarding the sample queue and the
///    drain token (`draining`), only ever taken while holding no other
///    lock. The recognizer itself is owned by whichever thread holds the
///    drain token and is fed *outside* the stream mutex, so producers
///    keep enqueueing while a batch is recognized. close/evict wait on
///    `drained` for the token holder to finish before computing their
///    verdict under the mutex.
///  - verdict queue: its own std::mutex, leaf lock (acquired under a
///    stream mutex when a verdict fires, never the other way round).
///    Verdicts are queued BEFORE a stream's done flag is published, so
///    the drain-time reap can treat done==true as "verdict queued".
///  - dictionary:    the active dictionary lives behind a versioned
///    DictionaryHandle (RCU snapshot). Each stream pins the epoch that
///    was active when it opened and recognizes against it for its whole
///    life; swap_dictionary() atomically publishes a retrained successor
///    for new streams without touching in-flight ones. learn() inserts
///    into the active epoch (ShardedDictionary is internally
///    synchronized) and may run concurrently with every recognition path.
///
/// Durability: snapshot() serializes the whole service — active
/// dictionary epoch, every open stream's accumulators and queue, pending
/// verdicts, lifetime counters — into the EFD-SNAP-V1 format, and
/// restore() rebuilds a fresh service from it, so a serve restart does
/// not lose in-flight jobs (see core/online/service_snapshot.hpp).

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <span>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/dictionary_handle.hpp"
#include "core/online_recognizer.hpp"
#include "core/online/service_snapshot.hpp"
#include "core/sharded_dictionary.hpp"

namespace efd::util {
class ThreadPool;
}

namespace efd::core {

/// A finished job's recognition outcome. The latency stamps are
/// steady_clock nanoseconds (now_ns() epoch): `enqueue_ns` is when the
/// sample that completed the job was admitted, `verdict_ns` when the
/// verdict was computed — their difference is the end-to-end
/// enqueue → verdict latency the observability plane histograms. Both
/// are 0 when unknown (force-closed, evicted, or snapshot-restored
/// verdicts). `source` is the ingest source tag the job arrived on.
struct JobVerdict {
  std::uint64_t job_id = 0;
  RecognitionResult result;
  std::uint32_t source = 0;
  std::int64_t enqueue_ns = 0;
  std::int64_t verdict_ns = 0;
};

/// What happens to a push when a job's sample queue is full.
enum class BackpressurePolicy : std::uint8_t {
  /// Lossless: if another thread is draining, wait for space (true
  /// back-pressure); with no active drainer, the pusher drains inline
  /// itself — so kBlock can never deadlock a lone producer, even in
  /// deferred mode. With the worker pool active the pusher instead
  /// rings the owning worker and waits for it to make space (waiting
  /// releases the stream mutex, so the worker drains independently).
  kBlock,
  kDropOldest, ///< evict the oldest queued sample (bounded, freshest-wins)
  kReject,     ///< refuse the new sample (bounded, caller sees false)
};

const char* backpressure_policy_name(BackpressurePolicy policy);

/// Inverse of backpressure_policy_name ("block" / "drop-oldest" /
/// "reject"); nullopt for anything else. Shared by every flag parser so
/// a typo is rejected instead of silently running kBlock.
std::optional<BackpressurePolicy> parse_backpressure_policy(
    std::string_view name);

/// Service tuning knobs; the defaults reproduce PR 1's inline behavior.
struct RecognitionServiceConfig {
  /// Maximum samples buffered per job before the policy applies.
  std::size_t job_queue_capacity = 4096;
  BackpressurePolicy policy = BackpressurePolicy::kBlock;
  /// Idle time after which sweep_stale_jobs() force-closes a stream.
  std::chrono::steady_clock::duration stale_ttl = std::chrono::minutes(10);
  /// When true, push() only enqueues; process_pending() consumes. When
  /// false, the pushing thread drains inline (verdicts fire in push()).
  bool deferred = false;
  /// Persistent recognition workers (serve --workers N). 0 keeps the
  /// single-threaded shape: the pusher (inline mode) or the
  /// process_pending() caller scores. N > 0 starts N dedicated worker
  /// threads, each owning a disjoint shard of jobs (hash of job id):
  /// pushes only enqueue + notify the owning worker's ring, so the
  /// ingest thread never scores a sample. Implies deferred = true.
  std::size_t worker_count = 0;
};

/// Ingress counters of one source tag — the service-side view of a
/// multi-source ingest topology (tags are the mux's SourceIds; 0 is the
/// untagged/legacy default). Not persisted by snapshots: tags are a
/// property of the serving process's transport wiring, so they restart
/// at zero while the mux's own per-source cursors stay continuous.
struct SourceIngressStats {
  std::uint32_t source = 0;
  std::uint64_t jobs_opened = 0;
  std::uint64_t jobs_completed = 0;
  std::uint64_t samples_pushed = 0;
};

/// Aggregate service counters (monitoring endpoint material).
struct RecognitionServiceStats {
  std::size_t active_jobs = 0;      ///< streams currently open
  std::size_t pending_verdicts = 0; ///< completed but not yet drained
  std::size_t queued_samples = 0;   ///< buffered, not yet recognized
  std::uint64_t jobs_opened = 0;    ///< lifetime total
  std::uint64_t jobs_completed = 0; ///< lifetime total (incl. force-closed)
  std::uint64_t jobs_evicted = 0;   ///< force-closed by the stale sweep
  std::uint64_t samples_pushed = 0; ///< accepted and recognized
  std::uint64_t samples_dropped = 0;///< pushes for unknown job ids
  std::uint64_t samples_late = 0;   ///< pushes after a job's verdict fired
  std::uint64_t samples_overflowed = 0; ///< evicted by kDropOldest
  std::uint64_t samples_rejected = 0;   ///< refused by kReject
  std::uint64_t pushes_blocked = 0;     ///< kBlock waits (back-pressure)
  std::uint64_t dictionary_epoch = 0;   ///< active dictionary version
  std::uint64_t dictionary_swaps = 0;   ///< swaps that published a new epoch
  /// swap_dictionary calls rejected because the candidate was
  /// byte-identical to the active dictionary (already-active): a no-op
  /// swap must not burn an epoch — it would reset nothing yet make every
  /// in-flight stream look stale and defeat retrain double-promotion
  /// protection.
  std::uint64_t dictionary_swaps_noop = 0;
  /// Open streams still pinned to a superseded dictionary epoch (they
  /// finish against it; drops to 0 once pre-swap streams drain).
  std::size_t jobs_on_stale_epoch = 0;
  /// Flat probe index (dictionary_index.hpp) of the active epoch: compile
  /// wall-clock cost and resident footprint. Both 0 when no index was
  /// compiled (EFD_FLAT_INDEX=off or unusable content); the build cost is
  /// reported even after online learning staled the index, so the
  /// swap-time cost stays visible on the scrape.
  double index_build_seconds = 0.0;
  std::uint64_t index_bytes = 0;
  /// Per-source ingress, ordered by tag. Populated only once a tagged
  /// open_job arrived (a single untagged source keeps this empty, so the
  /// legacy scrape is unchanged).
  std::vector<SourceIngressStats> by_source;
};                                  ///< (healthy: jobs outlive their window)

/// One ingest source's resume point inside EFD-SNAP-V1 (opaque to the
/// service, like replay_cursor): keyed by the mux registration name so
/// it survives restarts where transport ids could be re-assigned.
struct SourceCursor {
  std::string name;
  std::uint64_t cursor = 0;

  bool operator==(const SourceCursor&) const = default;
};

/// What RecognitionService::restore() rebuilt from a snapshot.
struct ServiceRestoreInfo {
  std::uint64_t replay_cursor = 0;    ///< caller-defined resume point
  std::uint64_t dictionary_epoch = 0; ///< restored active epoch version
  std::size_t jobs_restored = 0;      ///< open streams rebuilt
  std::size_t verdicts_restored = 0;  ///< pending (undrained) verdicts
  /// Streams restored OPEN but with fresh windows: they were pinned to
  /// an epoch whose accumulator layout (metrics/intervals) differs from
  /// the snapshot's active dictionary, so their sums could not transfer.
  std::size_t streams_reset = 0;
  /// Opaque Retrain-section bytes carried by the snapshot (empty when the
  /// snapshot had none). The retrain subsystem decodes these; the service
  /// only transports them.
  std::vector<std::uint8_t> retrain_state;
  /// Per-source resume points (empty for legacy single-cursor
  /// snapshots). Like replay_cursor, opaque: the ingest layer seeds its
  /// mux counters from them.
  std::vector<SourceCursor> source_cursors;
};

/// Concurrent multi-job streaming recognizer. Non-copyable, non-movable
/// (open streams hold pointers into the owned dictionary).
class RecognitionService {
 public:
  /// Takes ownership of a trained concurrent dictionary. When
  /// config.worker_count > 0 the worker pool starts here (and deferred
  /// mode is forced on — workers ARE the drain side).
  explicit RecognitionService(ShardedDictionary dictionary,
                              RecognitionServiceConfig config = {});

  /// Stops and joins the worker pool (no-op when worker_count == 0).
  ~RecognitionService();

  RecognitionService(const RecognitionService&) = delete;
  RecognitionService& operator=(const RecognitionService&) = delete;

  /// Number of persistent recognition workers (0 = single-threaded).
  std::size_t worker_count() const noexcept { return workers_.size(); }
  bool workers_active() const noexcept { return !workers_.empty(); }

  /// The ACTIVE dictionary. Borrowed reference: valid until the next
  /// swap_dictionary()/restore() publishes a successor epoch — callers
  /// that must survive swaps should pin via dictionary_handle().acquire().
  const ShardedDictionary& dictionary() const;
  const DictionaryHandle& dictionary_handle() const noexcept { return handle_; }
  const RecognitionServiceConfig& config() const noexcept { return config_; }

  /// Online learning passthrough: thread-safe against all recognition
  /// paths ("learning new applications is as simple as adding new keys").
  /// Inserts into the ACTIVE epoch; streams pinned to older epochs do
  /// not see the new key.
  void learn(const FingerprintKey& key, const std::string& label);

  /// What swap_dictionary did with a candidate.
  struct SwapOutcome {
    std::uint64_t epoch = 0;    ///< active epoch after the call
    bool already_active = false;///< candidate identical to the active dict

    /// Legacy call sites compare the outcome against an epoch number.
    bool operator==(std::uint64_t version) const { return epoch == version; }
  };

  /// Atomically publishes a retrained dictionary as the new active
  /// epoch, mid-traffic. In-flight streams finish against the epoch they
  /// opened under; streams opened after this call recognize against
  /// \p next. A candidate whose serialized form is byte-identical to the
  /// active dictionary (config AND content) is rejected as
  /// already-active: the epoch does not advance, the outcome reports the
  /// current version, and the attempt is counted in
  /// ServiceStats::dictionary_swaps_noop. The identity check is advisory
  /// under races (a concurrent learn() or competing swap between the
  /// comparison and the publication can let a now-identical candidate
  /// through); every committed swap is still a fully consistent epoch.
  /// Thread-safe against every other method (including concurrent swaps,
  /// which serialize).
  SwapOutcome swap_dictionary(ShardedDictionary next);

  /// Serializes the complete service state (active dictionary epoch,
  /// open streams, pending verdicts, lifetime counters) as EFD-SNAP-V1.
  /// Safe against live traffic: each stream is captured at a consistent
  /// point (waiting out an active drainer), and a job completing
  /// mid-snapshot is captured at-least-once (as a stream, a pending
  /// verdict, or both) — never lost. \p replay_cursor is an opaque
  /// caller-defined resume point stored verbatim (e.g. "messages
  /// applied"); restore() hands it back. \p retrain_state, when
  /// non-empty, travels as the optional Retrain section (opaque to the
  /// service) and comes back in ServiceRestoreInfo::retrain_state.
  /// \p source_cursors, when non-empty, extends the Meta section with
  /// one named resume point per ingest source (multi-source pipelines);
  /// decoders accept both the legacy single-cursor and extended bodies.
  void snapshot(std::ostream& out, std::uint64_t replay_cursor = 0,
                std::span<const std::uint8_t> retrain_state = {},
                std::span<const SourceCursor> source_cursors = {}) const;

  /// Rebuilds service state from an EFD-SNAP-V1 stream produced by
  /// snapshot(). Only valid on a service with no open jobs and no
  /// pending verdicts (a fresh restart); throws SnapshotError (see
  /// service_snapshot.hpp) on format/CRC violations — all-or-nothing:
  /// a failed restore leaves the service untouched. The restored
  /// dictionary replaces the constructor's (keeping its shard count);
  /// restored streams' TTL clocks restart at "now".
  ServiceRestoreInfo restore(std::istream& in);

  /// Writes one EFD-SNAP-V2 capture — a BASE (complete snapshot,
  /// Dictionary included) or a DELTA (only streams whose serialized
  /// state changed since \p chain's last capture, plus closed jobs and
  /// fresh Meta/Verdicts/Stats[/Retrain]). A base is written when the
  /// chain is empty, when the active dictionary epoch or swap count
  /// differs from the chain's base, or when \p force_base is set
  /// (callers cap chain length with it); otherwise a delta chained to
  /// the previous capture by id. \p chain is caller-owned bookkeeping,
  /// updated on success. Same live-traffic safety as snapshot().
  SnapshotCaptureInfo snapshot_capture(
      std::ostream& out, SnapshotChainState& chain, bool force_base = false,
      std::uint64_t replay_cursor = 0,
      std::span<const std::uint8_t> retrain_state = {},
      std::span<const SourceCursor> source_cursors = {}) const;

  /// Rebuilds service state from an EFD-SNAP-V2 capture chain: the
  /// first stream must be a base, each subsequent one a delta whose
  /// parent_id equals the previous capture_id. Replay is all-or-nothing
  /// across the WHOLE chain — any broken link, CRC mismatch, or format
  /// violation throws SnapshotError with the service untouched (the
  /// caller decides whether to retry with a shorter chain). Latest
  /// capture wins for Meta/Verdicts/Stats/Retrain; stream sections
  /// add/replace by job id and ClosedJobs removes. Same preconditions
  /// as restore().
  ServiceRestoreInfo restore_chain(std::span<std::istream* const> parts);

  /// Declares an ingest source tag up front so its (possibly all-zero)
  /// counters appear in stats().by_source immediately. A multi-source
  /// pipeline registers every source at start; without this, a
  /// deployment whose traffic happened to arrive only on tag 0 would be
  /// indistinguishable from the legacy single-source mode and its
  /// per-source rows would be suppressed.
  void register_source_tag(std::uint32_t source_tag) {
    ingress_for(source_tag);
  }

  /// Opens a stream for a job. Returns false (and changes nothing) if the
  /// job id is already present (open, or completed but not yet drained —
  /// ids become reusable after drain_verdicts()). \p source_tag labels
  /// the ingest source the job arrived on (the mux's SourceId; 0 =
  /// untagged): the stream's opens/pushes/completions accumulate into
  /// RecognitionServiceStats::by_source under that tag.
  bool open_job(std::uint64_t job_id, std::uint32_t node_count,
                std::uint32_t source_tag = 0);

  /// True while the job's stream is open (completed streams awaiting
  /// reaping do not count).
  bool has_job(std::uint64_t job_id) const;

  /// Feeds one monitoring sample. Returns false if no such job is open
  /// (counted as dropped), if the verdict already fired (late), or if
  /// the queue was full under kReject (rejected). In inline mode the
  /// sample is recognized here and the verdict may fire before this
  /// returns; in deferred mode it waits for process_pending().
  bool push(std::uint64_t job_id, std::uint32_t node_id,
            std::string_view metric_name, int t, double value);

  /// One sample of a push_batch call (views borrow the caller's memory
  /// for the duration of the call only).
  struct SamplePush {
    std::uint32_t node_id = 0;
    int t = 0;
    double value = 0.0;
    std::string_view metric;
  };

  /// Batched push for samples sharing one job (the ingest pipeline's
  /// hot path): resolves the stream and takes its lock once for the
  /// whole batch instead of per sample. Per-sample semantics (policy,
  /// counters, verdict firing) are identical to push(). Returns the
  /// number of samples accepted.
  std::size_t push_batch(std::uint64_t job_id,
                         std::span<const SamplePush> samples);

  /// Drains every job's queued samples (deferred mode's consumer); fans
  /// the jobs out across \p pool when non-null. Safe to call from any
  /// thread and in any mode. Must be called from outside the pool's own
  /// workers. Returns the number of samples recognized. With the worker
  /// pool active this only nudges dirty streams onto their owning
  /// workers (a catch-up sweep; pushes already notify) and returns 0 —
  /// the workers score asynchronously.
  std::size_t process_pending(util::ThreadPool* pool = nullptr);

  /// Force-closes a job, producing a verdict from whatever windows have
  /// closed (unrecognized if the stream never became ready). Queued
  /// samples are recognized first — they were accepted. Returns false
  /// if no such job is open.
  bool close_job(std::uint64_t job_id);

  /// Force-closes every stream idle (no accepted push) for at least
  /// \p ttl, bounding service memory when jobs die without closing.
  /// Evicted jobs yield a verdict like close_job(). Returns the number
  /// of evicted streams.
  std::size_t sweep_stale_jobs(std::chrono::steady_clock::duration ttl);

  /// sweep_stale_jobs with the configured TTL.
  std::size_t sweep_stale_jobs() { return sweep_stale_jobs(config_.stale_ttl); }

  /// Moves out all queued verdicts (order: completion order) and reaps
  /// completed streams from the jobs map (their ids become reusable).
  std::vector<JobVerdict> drain_verdicts();

  RecognitionServiceStats stats() const;

  /// Ids of every currently open job, ascending (observability /index
  /// material; takes the jobs map shared).
  std::vector<std::uint64_t> open_job_ids() const;

 private:
  struct SourceIngress;

  /// One queued monitoring sample. POD: the metric travels as the
  /// recognizer's slot index (resolved once at enqueue, since the push
  /// caller's string_view does not outlive the call), so queue churn
  /// copies plain bytes instead of constructing strings. kNoMetricSlot
  /// marks metrics the dictionary does not fingerprint — still queued,
  /// because the legacy path counted them as fed. `enqueue_ns` is the
  /// admission stamp (one now_ns() per accepted batch, shared by its
  /// samples) that the verdict latency histogram measures from; 0 for
  /// snapshot-restored samples.
  struct Sample {
    std::uint32_t node_id = 0;
    int t = 0;
    double value = 0.0;
    std::uint32_t metric_slot = kNoMetricSlot;
    std::int64_t enqueue_ns = 0;
  };

  struct JobStream {
    JobStream(std::shared_ptr<DictionaryHandle::Epoch> epoch,
              std::uint64_t job_id, std::uint32_t node_count)
        : job_id(job_id),
          epoch(std::move(epoch)),
          recognizer(this->epoch->dictionary, node_count) {}

    const std::uint64_t job_id;
    /// The dictionary epoch pinned at open: the recognizer reads this
    /// epoch's dictionary for the stream's whole life, across any number
    /// of swaps. Immutable after construction (safe to read lock-free).
    const std::shared_ptr<DictionaryHandle::Epoch> epoch;
    std::mutex mutex;              ///< guards queue + draining (+ recognizer
                                   ///< when draining == false)
    std::condition_variable space; ///< kBlock producers wait here
    std::condition_variable drained; ///< close/evict wait for the drainer
    std::vector<Sample> queue;
    /// Drain-side twin of queue: the drainer swaps the full queue out
    /// under the mutex and consumes it unlocked. Both vectors reach the
    /// queue-capacity high-water mark and then recycle their storage —
    /// the deque this replaces allocated a block every ~hundred samples
    /// forever. Owned by the drain-token holder.
    std::vector<Sample> drain_batch;
    bool draining = false;         ///< drain token: holder owns recognizer
    OnlineRecognizer recognizer;
    /// The source tag's ingress counters (shared with the service's
    /// registry; never null once open_job assigns it). The pointer is
    /// immutable after open, so hot-path increments are lock-free.
    SourceIngress* ingress = nullptr;
    /// Set (under mutex) when the verdict is queued; readable without
    /// the mutex. Done streams linger until drain_verdicts reaps them,
    /// so post-verdict pushes classify as "late" rather than "dropped".
    std::atomic<bool> done{false};
    std::atomic<std::size_t> queued{0}; ///< == queue.size(), for stats
    std::atomic<std::int64_t> last_activity_ns{0}; ///< steady_clock epoch
    /// Owning worker (hash of job id % worker count), assigned at
    /// open/restore and never persisted — restoring under a different
    /// --workers N just re-shards. Meaningless when the pool is off.
    std::uint32_t worker_index = 0;
    /// True while a reference to this stream sits in its worker's ring.
    /// Producers exchange it to true before ringing (so N pushes cost
    /// one ring slot); the worker clears it BEFORE draining, so a push
    /// landing mid-drain re-rings and is never lost.
    std::atomic<bool> scheduled{false};
  };

  /// Lock-free-increment ingress counters of one source tag (by_source
  /// material). Entries live for the service's lifetime.
  struct SourceIngress {
    std::uint32_t source = 0;
    std::atomic<std::uint64_t> jobs_opened{0};
    std::atomic<std::uint64_t> jobs_completed{0};
    std::atomic<std::uint64_t> samples_pushed{0};
  };

  /// A verdict plus its global completion-order stamp. Workers stage
  /// verdicts locally (no shared lock on the scoring path); drain time
  /// merges every staging area with the shared queue and sorts by seq,
  /// recovering the exact completion order single-threaded mode yields.
  struct PendingVerdict {
    std::uint64_t seq = 0;
    JobVerdict verdict;
  };

  /// One persistent recognition worker: a dedicated thread fed by a
  /// notification ring of streams with work. The consumer's ring pop is
  /// lock-free; producer_mutex serializes multiple producers and backs
  /// the ring-empty sleep. Producers NEVER block on the ring: when it
  /// is full (more scheduled streams than slots — degenerate) the entry
  /// spills to `overflow`, so scheduling is safe while holding a stream
  /// mutex (a blocking ring would deadlock against a worker stuck on
  /// that same stream's mutex).
  struct Worker {
    explicit Worker(std::size_t capacity)
        : mask(capacity - 1), ring(capacity) {}

    RecognitionService* owner = nullptr;
    const std::size_t mask;                      ///< capacity - 1 (pow2)
    std::vector<std::shared_ptr<JobStream>> ring;
    std::atomic<std::uint64_t> head{0};          ///< consumer cursor
    std::atomic<std::uint64_t> tail{0};          ///< producer cursor
    std::mutex producer_mutex;
    std::condition_variable work_cv;             ///< worker: ring empty
    /// Ring-full spill (guarded by producer_mutex); drained when the
    /// ring empties.
    std::vector<std::shared_ptr<JobStream>> overflow;
    std::mutex staging_mutex;
    std::vector<PendingVerdict> staging;         ///< verdicts scored here
    RecognitionScratch scratch;                  ///< reused across streams
    std::thread thread;
  };

  /// Quiesces the worker pool for the lifetime of the guard: every
  /// worker parks at the pause barrier (between drains, so no stream is
  /// mid-score) until destruction. No-op when the pool is off. Snapshot
  /// uses this to capture worker-mode state at a consistent point.
  class WorkerQuiesceGuard {
   public:
    explicit WorkerQuiesceGuard(const RecognitionService& service);
    ~WorkerQuiesceGuard();
    WorkerQuiesceGuard(const WorkerQuiesceGuard&) = delete;
    WorkerQuiesceGuard& operator=(const WorkerQuiesceGuard&) = delete;

   private:
    const RecognitionService& service_;
  };

  /// Get-or-create the counters of \p source_tag (any thread).
  SourceIngress* ingress_for(std::uint32_t source_tag);

  std::shared_ptr<JobStream> find_stream(std::uint64_t job_id) const;
  /// Applies the back-pressure policy and enqueues one sample; \p lock
  /// holds stream->mutex (may be dropped and re-taken by a kBlock
  /// self-drain). Returns false when the sample was not enqueued.
  bool enqueue_locked(const std::shared_ptr<JobStream>& stream,
                      std::unique_lock<std::mutex>& lock,
                      const SamplePush& sample, std::int64_t enqueue_ns);
  /// Drains the stream's queue with the drain token held; \p lock must
  /// hold stream->mutex on entry and holds it again on return. Returns
  /// samples recognized.
  std::size_t drain_stream(JobStream& stream, std::unique_lock<std::mutex>& lock);
  /// Computes and queues a force-close verdict; caller holds the mutex
  /// and has waited out any drainer. Flushes queued samples first.
  void finish_stream(JobStream& stream);
  /// \p enqueue_ns is the admission stamp of the sample that completed
  /// the job (0 = unknown); the verdict's verdict_ns is stamped here.
  void queue_verdict(std::uint64_t job_id, RecognitionResult result,
                     std::uint32_t source, std::int64_t enqueue_ns);
  static std::int64_t now_ns();

  /// Worker pool plumbing (all no-ops / unused when worker_count == 0).
  void start_workers(std::size_t count);
  void stop_workers();
  void worker_loop(Worker& worker);
  /// Consumer-side pop; nullptr when the ring is empty.
  std::shared_ptr<JobStream> try_pop(Worker& worker);
  /// Rings the stream's owning worker if it is not already scheduled.
  /// Safe to call while holding stream->mutex (never blocks on it).
  void schedule_stream(const std::shared_ptr<JobStream>& stream);
  /// Shard assignment: splitmix64(job_id) % worker count.
  std::uint32_t assign_worker(std::uint64_t job_id) const noexcept;
  /// Shared + per-worker staged verdicts, merged in completion (seq)
  /// order. Read-only; snapshot's verdict section uses it.
  std::vector<PendingVerdict> collect_pending_verdicts() const;
  /// Total undrained verdicts across the shared queue and every
  /// worker's staging area.
  std::size_t pending_verdict_count() const;

  /// Snapshot/restore internals (service_snapshot.cpp): the section
  /// writer shared by the V1 full snapshot and the V2 base/delta
  /// capture encoders, and the staged all-or-nothing decoder shared by
  /// restore() and restore_chain().
  struct RestoreStaging;
  std::size_t write_snapshot_sections(
      std::ostream& out,
      const std::shared_ptr<DictionaryHandle::Epoch>& dict_epoch,
      std::uint64_t dict_swap_count, SnapshotChainState* chain, bool delta,
      SnapshotCaptureInfo* info, std::uint64_t replay_cursor,
      std::span<const std::uint8_t> retrain_state,
      std::span<const SourceCursor> source_cursors) const;
  void decode_snapshot_sections(std::istream& in, RestoreStaging& staging,
                                bool delta) const;
  ServiceRestoreInfo commit_staging(RestoreStaging&& staging);
  void require_fresh_for_restore() const;

  /// The worker this thread runs (nullptr on every non-worker thread).
  /// Scratch/staging are borrowed only after an owner check, so a
  /// worker of service A pushing into service B stays correct.
  static thread_local Worker* tl_worker_;

  DictionaryHandle handle_;
  RecognitionServiceConfig config_;

  mutable std::shared_mutex jobs_mutex_;
  std::unordered_map<std::uint64_t, std::shared_ptr<JobStream>> jobs_;

  mutable std::mutex verdicts_mutex_;
  std::vector<PendingVerdict> verdicts_;
  /// Global completion-order stamp shared by every verdict producer.
  std::atomic<std::uint64_t> verdict_seq_{0};

  /// The pool (empty when worker_count == 0). unique_ptr: Worker holds
  /// mutexes/cvs/a thread, so it must not move once started. Mutable
  /// pause machinery lets const snapshot() quiesce the pool.
  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<bool> stop_workers_{false};
  mutable std::atomic<bool> paused_{false};
  mutable std::mutex pause_mutex_;
  mutable std::condition_variable pause_cv_;
  mutable std::size_t quiesced_ = 0;  ///< workers parked at the barrier
  /// Serializes WorkerQuiesceGuard holders (snapshot vs snapshot).
  mutable std::mutex quiesce_mutex_;

  /// Source-tag → ingress counters. Touched once per open_job (and by
  /// stats()); the hot push path goes through JobStream::ingress.
  mutable std::mutex sources_mutex_;
  std::map<std::uint32_t, std::unique_ptr<SourceIngress>> source_ingress_;

  std::atomic<std::uint64_t> jobs_opened_{0};
  std::atomic<std::uint64_t> jobs_completed_{0};
  std::atomic<std::uint64_t> jobs_evicted_{0};
  std::atomic<std::uint64_t> samples_pushed_{0};
  std::atomic<std::uint64_t> samples_dropped_{0};
  std::atomic<std::uint64_t> samples_late_{0};
  std::atomic<std::uint64_t> samples_overflowed_{0};
  std::atomic<std::uint64_t> samples_rejected_{0};
  std::atomic<std::uint64_t> pushes_blocked_{0};
  std::atomic<std::uint64_t> swaps_noop_{0};
};

}  // namespace efd::core
