#pragma once
/// \file recognition_service.hpp
/// \brief Multi-job streaming recognition service.
///
/// A production cluster runs many jobs at once; each node's monitoring
/// daemon pushes samples as they are taken. RecognitionService owns the
/// trained concurrent dictionary (ShardedDictionary) and multiplexes one
/// OnlineRecognizer stream per job id behind per-job locks, so pushes
/// for different jobs proceed in parallel and a verdict fires the moment
/// a job's last fingerprint window closes (t = 120 s in the paper's
/// configuration).
///
/// Thread-safety / locking discipline:
///  - jobs map:      std::shared_mutex; push/has_job/stats take it
///    shared, open_job and the drain-time reap take it exclusive.
///  - per-job state: its own std::mutex, only ever taken while holding
///    no other lock (push/close copy the stream's shared_ptr out under
///    the shared map lock, release it, then lock the stream); exclusive
///    map holders read only the stream's atomic done flag. No lock-order
///    cycles are possible.
///  - verdict queue: its own std::mutex, leaf lock (acquired under a
///    stream mutex when a verdict fires, never the other way round;
///    nothing is acquired while holding it). Verdicts are queued BEFORE
///    a stream's done flag is published, so the drain-time reap can
///    treat done==true as "verdict already queued".
///  - dictionary:    ShardedDictionary is internally synchronized; learn()
///    may run concurrently with every recognition path.
///
/// A completed job's verdict moves to an internal queue; callers harvest
/// with drain_verdicts(). Jobs whose streams never complete (short or
/// killed executions) can be force-closed; a stream that is not ready
/// (any window still open) yields an unrecognized verdict — the paper's
/// unknown-application safeguard. There is no partial-window evaluation.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/online_recognizer.hpp"
#include "core/sharded_dictionary.hpp"

namespace efd::core {

/// A finished job's recognition outcome.
struct JobVerdict {
  std::uint64_t job_id = 0;
  RecognitionResult result;
};

/// Aggregate service counters (monitoring endpoint material).
struct RecognitionServiceStats {
  std::size_t active_jobs = 0;      ///< streams currently open
  std::size_t pending_verdicts = 0; ///< completed but not yet drained
  std::uint64_t jobs_opened = 0;    ///< lifetime total
  std::uint64_t jobs_completed = 0; ///< lifetime total (incl. force-closed)
  std::uint64_t samples_pushed = 0; ///< lifetime accepted samples
  std::uint64_t samples_dropped = 0;///< pushes for unknown job ids
  std::uint64_t samples_late = 0;   ///< pushes after a job's verdict fired
};                                  ///< (healthy: jobs outlive their window)

/// Concurrent multi-job streaming recognizer. Non-copyable, non-movable
/// (open streams hold pointers into the owned dictionary).
class RecognitionService {
 public:
  /// Takes ownership of a trained concurrent dictionary.
  explicit RecognitionService(ShardedDictionary dictionary);

  RecognitionService(const RecognitionService&) = delete;
  RecognitionService& operator=(const RecognitionService&) = delete;

  const ShardedDictionary& dictionary() const noexcept { return dictionary_; }

  /// Online learning passthrough: thread-safe against all recognition
  /// paths ("learning new applications is as simple as adding new keys").
  void learn(const FingerprintKey& key, const std::string& label);

  /// Opens a stream for a job. Returns false (and changes nothing) if the
  /// job id is already present (open, or completed but not yet drained —
  /// ids become reusable after drain_verdicts()).
  bool open_job(std::uint64_t job_id, std::uint32_t node_count);

  /// True while the job's stream is open (completed streams awaiting
  /// reaping do not count).
  bool has_job(std::uint64_t job_id) const;

  /// Feeds one monitoring sample. Returns false if no such job is open
  /// (the sample is counted as dropped). When the sample completes the
  /// job's last window, the verdict is computed here and queued, and the
  /// stream closes.
  bool push(std::uint64_t job_id, std::uint32_t node_id,
            std::string_view metric_name, int t, double value);

  /// Force-closes a job, producing a verdict from whatever windows have
  /// closed (unrecognized if the stream never became ready). Returns
  /// false if no such job is open.
  bool close_job(std::uint64_t job_id);

  /// Moves out all queued verdicts (order: completion order) and reaps
  /// completed streams from the jobs map (their ids become reusable).
  std::vector<JobVerdict> drain_verdicts();

  RecognitionServiceStats stats() const;

 private:
  struct JobStream {
    explicit JobStream(const DictionaryView& dictionary,
                       std::uint32_t node_count)
        : recognizer(dictionary, node_count) {}
    std::mutex mutex;
    OnlineRecognizer recognizer;
    /// Set (under mutex) when the verdict is queued; readable without
    /// the mutex. Done streams linger until drain_verdicts reaps them,
    /// so post-verdict pushes classify as "late" rather than "dropped".
    std::atomic<bool> done{false};
  };

  void queue_verdict(std::uint64_t job_id, RecognitionResult result);

  ShardedDictionary dictionary_;

  mutable std::shared_mutex jobs_mutex_;
  std::unordered_map<std::uint64_t, std::shared_ptr<JobStream>> jobs_;

  mutable std::mutex verdicts_mutex_;
  std::vector<JobVerdict> verdicts_;

  std::atomic<std::uint64_t> jobs_opened_{0};
  std::atomic<std::uint64_t> jobs_completed_{0};
  std::atomic<std::uint64_t> samples_pushed_{0};
  std::atomic<std::uint64_t> samples_dropped_{0};
  std::atomic<std::uint64_t> samples_late_{0};
};

}  // namespace efd::core
