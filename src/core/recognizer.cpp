#include "core/recognizer.hpp"

#include <stdexcept>

#include "util/logging.hpp"

namespace efd::core {

Recognizer::Recognizer(RecognizerConfig config)
    : config_(std::move(config)), selected_depth_(config_.rounding_depth) {}

FingerprintConfig Recognizer::fingerprint_config() const {
  FingerprintConfig fp;
  fp.metrics = config_.metrics;
  fp.intervals = config_.intervals;
  fp.rounding_depth = selected_depth_;
  fp.combine_metrics = config_.combine_metrics;
  return fp;
}

void Recognizer::train(const telemetry::Dataset& dataset,
                       const std::vector<std::size_t>& train_indices) {
  select_depth(dataset, train_indices);
  dictionary_ = train_dictionary(dataset, fingerprint_config(), train_indices);
}

void Recognizer::train_parallel(const telemetry::Dataset& dataset,
                                const std::vector<std::size_t>& train_indices,
                                std::size_t shard_count,
                                util::ThreadPool* pool) {
  select_depth(dataset, train_indices);
  dictionary_ = train_dictionary_sharded(dataset, fingerprint_config(),
                                         train_indices, shard_count, pool)
                    .to_dictionary();
}

void Recognizer::select_depth(const telemetry::Dataset& dataset,
                              const std::vector<std::size_t>& train_indices) {
  selected_depth_ = config_.rounding_depth;
  depth_scores_.clear();

  if (config_.auto_depth) {
    const std::size_t train_count =
        train_indices.empty() ? dataset.size() : train_indices.size();
    if (train_count >= config_.depth_selection.folds * 2) {
      FingerprintConfig base = fingerprint_config();
      const DepthSelectionResult selection = select_rounding_depth(
          dataset, base, train_indices, config_.depth_selection);
      selected_depth_ = selection.best_depth;
      depth_scores_ = selection.f_score_by_depth;
    } else {
      EFD_LOG(kWarn, "recognizer")
          << "too few executions for depth selection; using fixed depth "
          << selected_depth_;
    }
  }
}

RecognitionResult Recognizer::recognize(
    const telemetry::Dataset& dataset,
    const telemetry::ExecutionRecord& record) const {
  if (!dictionary_) throw std::logic_error("Recognizer not trained");
  return Matcher(*dictionary_).recognize(record, dataset);
}

void Recognizer::learn_execution(const telemetry::Dataset& dataset,
                                 const telemetry::ExecutionRecord& record) {
  if (!dictionary_) throw std::logic_error("Recognizer not trained");
  const std::string label = record.label().full();
  for (const FingerprintKey& key :
       build_fingerprints(record, dictionary_->config(), dataset)) {
    dictionary_->insert(key, label);
  }
}

std::vector<RecognitionResult> Recognizer::recognize_batch(
    const telemetry::Dataset& dataset, util::ThreadPool* pool) const {
  if (!dictionary_) throw std::logic_error("Recognizer not trained");
  return Matcher(*dictionary_).recognize_batch(dataset, pool);
}

ShardedDictionary Recognizer::make_sharded(std::size_t shard_count) const {
  if (!dictionary_) throw std::logic_error("Recognizer not trained");
  return ShardedDictionary::from_dictionary(*dictionary_, shard_count);
}

const Dictionary& Recognizer::dictionary() const {
  if (!dictionary_) throw std::logic_error("Recognizer not trained");
  return *dictionary_;
}

int Recognizer::rounding_depth() const { return selected_depth_; }

void Recognizer::save(const std::string& path) const {
  if (!dictionary_) throw std::logic_error("Recognizer not trained");
  dictionary_->save_file(path);
}

Recognizer Recognizer::load(const std::string& path) {
  Dictionary dictionary = Dictionary::load_file(path);
  RecognizerConfig config;
  config.metrics = dictionary.config().metrics;
  config.intervals = dictionary.config().intervals;
  config.rounding_depth = dictionary.config().rounding_depth;
  config.auto_depth = false;  // depth is baked into the loaded dictionary
  config.combine_metrics = dictionary.config().combine_metrics;

  Recognizer recognizer(config);
  recognizer.selected_depth_ = config.rounding_depth;
  recognizer.dictionary_ = std::move(dictionary);
  return recognizer;
}

}  // namespace efd::core
