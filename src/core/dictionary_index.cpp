#include "core/dictionary_index.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <unordered_map>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

#include "core/label_table.hpp"

namespace efd::core {

namespace index_detail {

void tag_scan_scalar(const std::uint8_t* tags, std::uint8_t tag,
                     std::uint32_t* match, std::uint32_t* empty) noexcept {
  std::uint32_t match_bits = 0;
  std::uint32_t empty_bits = 0;
  for (std::size_t i = 0; i < kTagScanWindow; ++i) {
    match_bits |= static_cast<std::uint32_t>(tags[i] == tag) << i;
    empty_bits |= static_cast<std::uint32_t>(tags[i] == 0) << i;
  }
  *match = match_bits;
  *empty = empty_bits;
}

#if defined(__x86_64__) || defined(__i386__)
__attribute__((target("avx2"))) void tag_scan_avx2(
    const std::uint8_t* tags, std::uint8_t tag, std::uint32_t* match,
    std::uint32_t* empty) noexcept {
  // One unaligned 32-byte load (the mirror tail makes every window
  // in-bounds), two byte-compares, two movemasks. Bit i corresponds to
  // tags[i] exactly as in the scalar build, so the masks are identical.
  const __m256i window =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(tags));
  const __m256i needle = _mm256_set1_epi8(static_cast<char>(tag));
  *match = static_cast<std::uint32_t>(
      _mm256_movemask_epi8(_mm256_cmpeq_epi8(window, needle)));
  *empty = static_cast<std::uint32_t>(
      _mm256_movemask_epi8(_mm256_cmpeq_epi8(window, _mm256_setzero_si256())));
}
#else
void tag_scan_avx2(const std::uint8_t* tags, std::uint8_t tag,
                   std::uint32_t* match, std::uint32_t* empty) noexcept {
  tag_scan_scalar(tags, tag, match, empty);
}
#endif

}  // namespace index_detail

namespace {

using ScanFn = void (*)(const std::uint8_t*, std::uint8_t, std::uint32_t*,
                        std::uint32_t*) noexcept;

// Same env contract as rounding_kernel.cpp: EFD_SIMD=off|OFF|0|scalar
// forces the scalar tag scan.
bool simd_disabled_by_env() {
  const char* env = std::getenv("EFD_SIMD");
  if (env == nullptr) return false;
  const std::string value(env);
  return value == "off" || value == "OFF" || value == "0" ||
         value == "scalar";
}

ScanFn pick_scan(const char** name) {
#if defined(__x86_64__) || defined(__i386__)
  if (!simd_disabled_by_env() && __builtin_cpu_supports("avx2")) {
    *name = "avx2";
    return &index_detail::tag_scan_avx2;
  }
#else
  (void)simd_disabled_by_env;
#endif
  *name = "scalar";
  return &index_detail::tag_scan_scalar;
}

struct ScanDispatch {
  const char* name = "scalar";
  ScanFn fn = &index_detail::tag_scan_scalar;
  ScanDispatch() { fn = pick_scan(&name); }
};

const ScanDispatch& scan_dispatch() {
  static const ScanDispatch chosen;
  return chosen;
}

std::uint8_t tag_of(std::uint64_t hash) noexcept {
  // Top 7 hash bits OR'd with 0x80: never 0 (the empty marker), and
  // independent of the low bits that pick the slot.
  return static_cast<std::uint8_t>(0x80u | (hash >> 57));
}

}  // namespace

const char* index_kernel_name() noexcept { return scan_dispatch().name; }

bool flat_index_enabled() noexcept {
  const char* env = std::getenv("EFD_FLAT_INDEX");
  if (env == nullptr) return true;
  return !(std::strcmp(env, "off") == 0 || std::strcmp(env, "OFF") == 0 ||
           std::strcmp(env, "0") == 0 || std::strcmp(env, "false") == 0);
}

std::uint64_t DictionaryIndex::hash_key(const FingerprintKey& key) noexcept {
  std::uint64_t h = static_cast<std::uint64_t>(FingerprintKeyHash{}(key));
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return h;
}

bool DictionaryIndex::key_matches(const Entry& entry,
                                  const FingerprintKey& key) const noexcept {
  if (entry.node_id != key.node_id) return false;
  if (entry.begin_seconds != key.interval.begin_seconds ||
      entry.end_seconds != key.interval.end_seconds) {
    return false;
  }
  if (entry.means_count != key.rounded_means.size()) return false;
  const double* means = means_.data() + entry.means_begin;
  for (std::uint32_t i = 0; i < entry.means_count; ++i) {
    if (!(means[i] == key.rounded_means[i])) return false;
  }
  return metric_names_[entry.metric_id] == key.metric;
}

const DictionaryIndex::Entry* DictionaryIndex::find_hashed(
    const FingerprintKey& key, std::uint64_t hash) const noexcept {
  if (slots_ == 0) return nullptr;
  const std::uint8_t tag = tag_of(hash);
  const ScanFn scan = scan_dispatch().fn;
  std::size_t pos = static_cast<std::size_t>(hash) & mask_;
  // Load factor <= 0.5 guarantees an empty slot terminates every probe;
  // the window cap is a defensive bound, never reached.
  for (std::size_t probed = 0; probed <= slots_; probed += kTagScanWindow) {
    std::uint32_t match = 0;
    std::uint32_t empty = 0;
    scan(tags_.data() + pos, tag, &match, &empty);
    // Candidates past the first empty slot were placed by *later*
    // probe chains; linear probing never skips an empty, so mask them.
    const std::uint32_t limit =
        empty != 0 ? (1u << std::countr_zero(empty)) - 1u : 0xFFFFFFFFu;
    for (std::uint32_t m = match & limit; m != 0; m &= m - 1) {
      const std::size_t slot =
          (pos + static_cast<std::size_t>(std::countr_zero(m))) & mask_;
      const Entry& entry = entries_[slot_entry_[slot]];
      if (key_matches(entry, key)) return &entry;
    }
    if (empty != 0) return nullptr;
    pos = (pos + kTagScanWindow) & mask_;
  }
  return nullptr;
}

std::shared_ptr<const DictionaryIndex> DictionaryIndex::compile(
    const std::vector<std::pair<FingerprintKey, DictionaryEntry>>& entries) {
  const auto start = std::chrono::steady_clock::now();
  std::size_t means_total = 0;
  std::size_t labels_total = 0;
  for (const auto& [key, entry] : entries) {
    // The id-based payload must be trustworthy for every entry: content
    // populated outside insert() (misaligned or unassigned ids) keeps the
    // whole dictionary on the sharded path, which scores it string-keyed.
    if (entry.label_ids.size() != entry.labels.size()) return nullptr;
    for (const std::uint32_t id : entry.label_ids) {
      if (id == kNoLabelId) return nullptr;
    }
    means_total += key.rounded_means.size();
    labels_total += entry.label_ids.size();
  }

  std::shared_ptr<DictionaryIndex> index(new DictionaryIndex());
  index->entries_.reserve(entries.size());
  index->means_.reserve(means_total);
  index->label_ids_.reserve(labels_total);
  std::unordered_map<std::string, std::uint32_t> metric_ids;
  for (const auto& [key, dict_entry] : entries) {
    Entry entry;
    entry.node_id = key.node_id;
    entry.begin_seconds = key.interval.begin_seconds;
    entry.end_seconds = key.interval.end_seconds;
    const auto [it, inserted] = metric_ids.try_emplace(
        key.metric, static_cast<std::uint32_t>(index->metric_names_.size()));
    if (inserted) index->metric_names_.push_back(key.metric);
    entry.metric_id = it->second;
    entry.means_begin = static_cast<std::uint32_t>(index->means_.size());
    entry.means_count = static_cast<std::uint32_t>(key.rounded_means.size());
    index->means_.insert(index->means_.end(), key.rounded_means.begin(),
                         key.rounded_means.end());
    entry.labels_begin = static_cast<std::uint32_t>(index->label_ids_.size());
    entry.labels_count =
        static_cast<std::uint32_t>(dict_entry.label_ids.size());
    index->label_ids_.insert(index->label_ids_.end(),
                             dict_entry.label_ids.begin(),
                             dict_entry.label_ids.end());
    index->entries_.push_back(entry);
  }

  if (!entries.empty()) {
    // Power-of-two slots at load factor <= 0.5: probe chains stay short
    // and the tag bytes cost 1/16th of what they save in entry touches.
    std::size_t slots = kTagScanWindow;
    while (slots < 2 * entries.size()) slots <<= 1;
    index->slots_ = slots;
    index->mask_ = slots - 1;
    index->tags_.assign(slots + kTagScanWindow, 0);
    index->slot_entry_.assign(slots, 0);
    for (std::uint32_t e = 0; e < index->entries_.size(); ++e) {
      const std::uint64_t hash = hash_key(entries[e].first);
      std::size_t pos = static_cast<std::size_t>(hash) & index->mask_;
      while (index->tags_[pos] != 0) pos = (pos + 1) & index->mask_;
      index->tags_[pos] = tag_of(hash);
      index->slot_entry_[pos] = e;
    }
    // Mirror tail: a window starting at the last slot reads the first
    // kTagScanWindow-1 tags again instead of branching on wraparound.
    std::copy_n(index->tags_.begin(), kTagScanWindow,
                index->tags_.begin() + static_cast<std::ptrdiff_t>(slots));
  }

  std::uint64_t bytes = index->tags_.size();
  bytes += index->slot_entry_.size() * sizeof(std::uint32_t);
  bytes += index->entries_.size() * sizeof(Entry);
  bytes += index->means_.size() * sizeof(double);
  bytes += index->label_ids_.size() * sizeof(std::uint32_t);
  for (const std::string& name : index->metric_names_) bytes += name.size();
  index->resident_bytes_ = bytes;
  index->build_seconds_ =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return index;
}

}  // namespace efd::core
