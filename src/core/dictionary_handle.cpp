#include "core/dictionary_handle.hpp"

#include <utility>

namespace efd::core {

DictionaryHandle::DictionaryHandle(ShardedDictionary initial)
    : current_(std::make_shared<Epoch>(1, std::move(initial))), version_(1) {}

std::uint64_t DictionaryHandle::swap(ShardedDictionary next) {
  // Writers serialize (swaps are rare — a retrain cadence, not a hot
  // path) so versions are dense and monotone; the successor is published
  // with a release store so any reader that sees the pointer sees the
  // fully built dictionary.
  std::lock_guard lock(writer_mutex_);
  const std::uint64_t version =
      current_.load(std::memory_order_relaxed)->version + 1;
  current_.store(std::make_shared<Epoch>(version, std::move(next)),
                 std::memory_order_release);
  version_.store(version, std::memory_order_release);
  swaps_.fetch_add(1, std::memory_order_relaxed);
  return version;
}

void DictionaryHandle::reset(std::shared_ptr<Epoch> epoch,
                             std::uint64_t swap_count) {
  std::lock_guard lock(writer_mutex_);
  const std::uint64_t version = epoch->version;
  current_.store(std::move(epoch), std::memory_order_release);
  version_.store(version, std::memory_order_release);
  swaps_.store(swap_count, std::memory_order_relaxed);
}

}  // namespace efd::core
