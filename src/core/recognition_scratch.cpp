#include "core/recognition_scratch.hpp"

#include <algorithm>

namespace efd::core {

FingerprintKey& RecognitionScratch::next_key() {
  if (key_count_ == keys_.size()) keys_.emplace_back();
  FingerprintKey& key = keys_[key_count_++];
  key.rounded_means.clear();  // metric keeps its capacity for assign()
  return key;
}

void RecognitionScratch::begin(const LabelTable& table) {
  table_ = &table;
  fell_back_ = false;

  const std::size_t labels = table.label_count();
  const std::size_t apps = table.application_count();
  // Grow-only: a scratch reused against a smaller dictionary keeps its
  // larger arrays; stale high indices are never read because entries only
  // carry ids valid for their own table.
  if (label_votes_.size() < labels) {
    label_votes_.resize(labels, 0);
    label_stamp_.resize(labels, 0);
  }
  if (app_votes_.size() < apps) {
    app_votes_.resize(apps, 0);
    app_stamp_.resize(apps, 0);
    app_entry_stamp_.resize(apps, 0);
  }

  ++generation_;
  touched_labels_.clear();
  touched_apps_.clear();

  result_.recognized = false;
  result_.fingerprint_count = 0;
  result_.matched_count = 0;
  result_.applications.clear();
  result_.matched_apps.clear();
  result_.app_votes.clear();
  result_.matched_labels.clear();
  result_.label_votes.clear();
}

bool RecognitionScratch::score_entry_ids(
    std::span<const std::uint32_t> label_ids) {
  ++result_.matched_count;
  ++entry_serial_;

  for (const std::uint32_t label_id : label_ids) {
    // Concurrent interning can publish ids past the counts begin() saw;
    // grow to cover them (rare, training-time only).
    if (label_id >= label_votes_.size()) {
      if (label_id == kNoLabelId) return false;
      label_votes_.resize(label_id + 1, 0);
      label_stamp_.resize(label_id + 1, 0);
    }
    if (label_stamp_[label_id] != generation_) {
      label_stamp_[label_id] = generation_;
      label_votes_[label_id] = 0;
      touched_labels_.push_back(label_id);
    }
    ++label_votes_[label_id];

    const std::uint32_t app = table_->application_of(label_id);
    if (app >= app_votes_.size()) {
      if (app == kNoLabelId) return false;
      app_votes_.resize(app + 1, 0);
      app_stamp_.resize(app + 1, 0);
      app_entry_stamp_.resize(app + 1, 0);
    }
    // entry_serial_ never repeats (monotone across generations), so this
    // exactly reproduces the legacy per-entry application dedup set: one
    // application vote per entry however many of its labels matched.
    if (app_entry_stamp_[app] != entry_serial_) {
      app_entry_stamp_[app] = entry_serial_;
      if (app_stamp_[app] != generation_) {
        app_stamp_[app] = generation_;
        app_votes_[app] = 0;
        touched_apps_.push_back(app);
      }
      ++app_votes_[app];
    }
  }
  return true;
}

void RecognitionScratch::finish(const DictionaryView& dictionary,
                                std::size_t fingerprint_count) {
  result_.fingerprint_count = fingerprint_count;
  if (result_.matched_count == 0) return;  // recognized stays false

  for (const std::uint32_t label_id : touched_labels_) {
    result_.matched_labels.push_back(label_id);
    result_.label_votes.push_back(label_votes_[label_id]);
  }

  int best_votes = 0;
  for (const std::uint32_t app : touched_apps_) {
    result_.matched_apps.push_back(app);
    result_.app_votes.push_back(app_votes_[app]);
    best_votes = std::max(best_votes, app_votes_[app]);
  }
  for (const std::uint32_t app : touched_apps_) {
    if (app_votes_[app] == best_votes) result_.applications.push_back(app);
  }
  // Tie array ordered by the dictionary's first-seen epoch, exactly like
  // the legacy path (ranks are distinct for every registered app, so the
  // initial touch order never shows through).
  std::sort(result_.applications.begin(), result_.applications.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              return dictionary.application_order(table_->application_name(a)) <
                     dictionary.application_order(table_->application_name(b));
            });
  result_.recognized = true;
}

void RecognitionScratch::set_legacy(RecognitionResult&& result) {
  legacy_result_ = std::move(result);
  fell_back_ = true;
}

void RecognitionScratch::render_result(RecognitionResult& out) const {
  if (fell_back_) {
    out = legacy_result_;
    return;
  }
  if (table_ == nullptr) {  // render before any scoring pass
    out = RecognitionResult{};
    return;
  }
  out.recognized = result_.recognized;
  out.fingerprint_count = result_.fingerprint_count;
  out.matched_count = result_.matched_count;
  out.applications.clear();
  out.votes.clear();
  out.label_votes.clear();
  out.matched_labels.clear();

  for (std::size_t i = 0; i < result_.matched_labels.size(); ++i) {
    const std::string& label = table_->label_name(result_.matched_labels[i]);
    out.matched_labels.push_back(label);
    out.label_votes.emplace(label, result_.label_votes[i]);
  }
  for (std::size_t i = 0; i < result_.matched_apps.size(); ++i) {
    out.votes.emplace(table_->application_name(result_.matched_apps[i]),
                      result_.app_votes[i]);
  }
  for (const std::uint32_t app : result_.applications) {
    out.applications.push_back(table_->application_name(app));
  }
}

}  // namespace efd::core
