#include "core/trainer.hpp"

#include <algorithm>
#include <numeric>

#include "util/logging.hpp"
#include "util/thread_pool.hpp"

namespace efd::core {

Dictionary train_dictionary(const telemetry::Dataset& dataset,
                            const FingerprintConfig& config,
                            const std::vector<std::size_t>& indices) {
  std::vector<std::size_t> slots;
  slots.reserve(config.metrics.size());
  for (const std::string& name : config.metrics) {
    slots.push_back(dataset.metric_slot(name));
  }

  Dictionary dictionary(config);
  auto learn_one = [&](const telemetry::ExecutionRecord& record) {
    const std::string label = record.label().full();
    for (const FingerprintKey& key : build_fingerprints(record, config, slots)) {
      dictionary.insert(key, label);
    }
  };

  if (indices.empty()) {
    for (const auto& record : dataset.records()) learn_one(record);
  } else {
    for (std::size_t index : indices) learn_one(dataset.record(index));
  }

  EFD_LOG(kDebug, "trainer") << "dictionary built: " << dictionary.size()
                             << " keys at depth " << config.rounding_depth;
  return dictionary;
}

ShardedDictionary train_dictionary_sharded(const telemetry::Dataset& dataset,
                                           const FingerprintConfig& config,
                                           const std::vector<std::size_t>& indices,
                                           std::size_t shard_count,
                                           util::ThreadPool* pool) {
  std::vector<std::size_t> slots;
  slots.reserve(config.metrics.size());
  for (const std::string& name : config.metrics) {
    slots.push_back(dataset.metric_slot(name));
  }

  std::vector<std::size_t> all = indices;
  if (all.empty()) {
    all.resize(dataset.size());
    std::iota(all.begin(), all.end(), std::size_t{0});
  }

  util::ThreadPool& workers = pool != nullptr ? *pool : util::global_pool();

  // Phase 1: fingerprint construction (the hot part) in parallel.
  std::vector<std::vector<FingerprintKey>> keys(all.size());
  std::vector<std::string> labels(all.size());
  util::parallel_for(workers, 0, all.size(), [&](std::size_t i) {
    const telemetry::ExecutionRecord& record = dataset.record(all[i]);
    keys[i] = build_fingerprints(record, config, slots);
    labels[i] = record.label().full();
  });

  ShardedDictionary dictionary(config, shard_count);

  // Phase 2: fix the application epoch in record order. Records that
  // produced no fingerprints register nothing — exactly like sequential
  // insertion, which only learns an application at its first real key.
  // The same scan buckets each key by shard (hashing it once), in record
  // order, so shard workers replay only their own keys below.
  std::vector<std::vector<std::pair<std::uint32_t, std::uint32_t>>> buckets(
      dictionary.shard_count());  // (record index, key index) per shard
  for (std::size_t i = 0; i < all.size(); ++i) {
    if (!keys[i].empty()) {
      dictionary.register_application(
          telemetry::parse_label(labels[i]).application);
    }
    for (std::size_t k = 0; k < keys[i].size(); ++k) {
      buckets[dictionary.shard_of(keys[i][k])].emplace_back(
          static_cast<std::uint32_t>(i), static_cast<std::uint32_t>(k));
    }
  }

  // Phase 3: one worker per shard replays its bucket, which preserves
  // record order, so per-entry label order matches sequential training
  // regardless of scheduling.
  util::parallel_for(
      workers, 0, dictionary.shard_count(),
      [&](std::size_t s) {
        for (const auto& [i, k] : buckets[s]) {
          dictionary.insert(keys[i][k], labels[i]);
        }
      },
      /*min_chunk=*/1);

  EFD_LOG(kDebug, "trainer") << "concurrent dictionary built: "
                             << dictionary.size() << " keys across "
                             << dictionary.shard_count() << " shards";
  return dictionary;
}

Dictionary train_dictionary_parallel(const telemetry::Dataset& dataset,
                                     const FingerprintConfig& config,
                                     const std::vector<std::size_t>& indices,
                                     std::size_t shards) {
  std::vector<std::size_t> all = indices;
  if (all.empty()) {
    all.resize(dataset.size());
    std::iota(all.begin(), all.end(), std::size_t{0});
  }
  if (shards == 0) shards = util::global_pool().size();
  shards = std::max<std::size_t>(1, std::min(shards, all.size()));

  // Contiguous shard ranges keep record order inside each shard, making
  // the merged result deterministic for a given shard count.
  std::vector<Dictionary> partial(shards, Dictionary(config));
  util::parallel_for(0, shards, [&](std::size_t s) {
    const std::size_t begin = s * all.size() / shards;
    const std::size_t end = (s + 1) * all.size() / shards;
    partial[s] = train_dictionary(
        dataset, config,
        std::vector<std::size_t>(all.begin() + static_cast<std::ptrdiff_t>(begin),
                                 all.begin() + static_cast<std::ptrdiff_t>(end)));
  });

  Dictionary merged(config);
  for (const Dictionary& shard : partial) merged.merge(shard);
  EFD_LOG(kDebug, "trainer") << "sharded dictionary built: " << merged.size()
                             << " keys from " << shards << " shards";
  return merged;
}

}  // namespace efd::core
