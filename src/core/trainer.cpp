#include "core/trainer.hpp"

#include <algorithm>
#include <numeric>

#include "util/logging.hpp"
#include "util/thread_pool.hpp"

namespace efd::core {

Dictionary train_dictionary(const telemetry::Dataset& dataset,
                            const FingerprintConfig& config,
                            const std::vector<std::size_t>& indices) {
  std::vector<std::size_t> slots;
  slots.reserve(config.metrics.size());
  for (const std::string& name : config.metrics) {
    slots.push_back(dataset.metric_slot(name));
  }

  Dictionary dictionary(config);
  auto learn_one = [&](const telemetry::ExecutionRecord& record) {
    const std::string label = record.label().full();
    for (const FingerprintKey& key : build_fingerprints(record, config, slots)) {
      dictionary.insert(key, label);
    }
  };

  if (indices.empty()) {
    for (const auto& record : dataset.records()) learn_one(record);
  } else {
    for (std::size_t index : indices) learn_one(dataset.record(index));
  }

  EFD_LOG(kDebug, "trainer") << "dictionary built: " << dictionary.size()
                             << " keys at depth " << config.rounding_depth;
  return dictionary;
}

Dictionary train_dictionary_parallel(const telemetry::Dataset& dataset,
                                     const FingerprintConfig& config,
                                     const std::vector<std::size_t>& indices,
                                     std::size_t shards) {
  std::vector<std::size_t> all = indices;
  if (all.empty()) {
    all.resize(dataset.size());
    std::iota(all.begin(), all.end(), std::size_t{0});
  }
  if (shards == 0) shards = util::global_pool().size();
  shards = std::max<std::size_t>(1, std::min(shards, all.size()));

  // Contiguous shard ranges keep record order inside each shard, making
  // the merged result deterministic for a given shard count.
  std::vector<Dictionary> partial(shards, Dictionary(config));
  util::parallel_for(0, shards, [&](std::size_t s) {
    const std::size_t begin = s * all.size() / shards;
    const std::size_t end = (s + 1) * all.size() / shards;
    partial[s] = train_dictionary(
        dataset, config,
        std::vector<std::size_t>(all.begin() + static_cast<std::ptrdiff_t>(begin),
                                 all.begin() + static_cast<std::ptrdiff_t>(end)));
  });

  Dictionary merged(config);
  for (const Dictionary& shard : partial) merged.merge(shard);
  EFD_LOG(kDebug, "trainer") << "sharded dictionary built: " << merged.size()
                             << " keys from " << shards << " shards";
  return merged;
}

}  // namespace efd::core
