#include "obs/http_server.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "ingest/tcp_transport.hpp"  // TransportError

namespace efd::obs {

namespace {

constexpr std::size_t kMaxRequestBytes = 8192;

const char* status_text(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 503:
      return "Service Unavailable";
    default:
      return "Internal Server Error";
  }
}

bool write_all(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    const ssize_t written = ::send(fd, data, size, MSG_NOSIGNAL);
    if (written < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += written;
    size -= static_cast<std::size_t>(written);
  }
  return true;
}

}  // namespace

HttpServer::HttpServer(std::uint16_t port, Handler handler)
    : handler_(std::move(handler)) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw ingest::TransportError(std::string("http socket: ") +
                                 std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listen_fd_, 16) < 0) {
    const std::string error = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw ingest::TransportError("http bind 127.0.0.1:" +
                                 std::to_string(port) + ": " + error);
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    &addr_len) == 0) {
    port_ = ntohs(addr.sin_port);
  } else {
    port_ = port;
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
}

HttpServer::~HttpServer() { stop(); }

void HttpServer::stop() {
  stopping_.store(true, std::memory_order_release);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

HttpServer::Stats HttpServer::stats() const noexcept {
  return Stats{requests_.load(std::memory_order_relaxed),
               bad_requests_.load(std::memory_order_relaxed)};
}

void HttpServer::accept_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 100);
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    serve_connection(fd);
    ::close(fd);
  }
}

void HttpServer::serve_connection(int fd) {
  // Bound how long one client can hold the accept loop: slow or silent
  // peers hit the receive timeout and get dropped.
  timeval timeout{2, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));

  std::string request;
  char chunk[1024];
  while (request.find("\r\n\r\n") == std::string::npos &&
         request.size() < kMaxRequestBytes) {
    const ssize_t got = ::recv(fd, chunk, sizeof(chunk), 0);
    if (got <= 0) {
      if (got < 0 && errno == EINTR) continue;
      break;
    }
    request.append(chunk, static_cast<std::size_t>(got));
  }

  HttpResponse response;
  const std::size_t line_end = request.find("\r\n");
  std::size_t method_end = std::string::npos;
  std::size_t target_end = std::string::npos;
  if (line_end != std::string::npos) {
    method_end = request.find(' ');
    if (method_end != std::string::npos && method_end < line_end) {
      target_end = request.find(' ', method_end + 1);
    }
  }
  if (target_end == std::string::npos || target_end > line_end) {
    bad_requests_.fetch_add(1, std::memory_order_relaxed);
    response.status = 400;
    response.body = "bad request\n";
  } else {
    HttpRequest parsed;
    parsed.method = request.substr(0, method_end);
    parsed.target =
        request.substr(method_end + 1, target_end - method_end - 1);
    const std::size_t query = parsed.target.find('?');
    if (query != std::string::npos) parsed.target.resize(query);
    requests_.fetch_add(1, std::memory_order_relaxed);
    if (parsed.method != "GET" && parsed.method != "HEAD") {
      response.status = 405;
      response.body = "method not allowed\n";
    } else {
      response = handler_(parsed);
      if (parsed.method == "HEAD") response.body.clear();
    }
  }

  std::string reply = "HTTP/1.1 " + std::to_string(response.status) + " " +
                      status_text(response.status) +
                      "\r\nContent-Type: " + response.content_type +
                      "\r\nContent-Length: " +
                      std::to_string(response.body.size()) +
                      "\r\nConnection: close\r\n\r\n";
  reply += response.body;
  write_all(fd, reply.data(), reply.size());
}

}  // namespace efd::obs
