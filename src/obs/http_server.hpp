#pragma once

// Minimal HTTP/1.1 listener backing the observability plane (`serve
// --http PORT`).  Scope is deliberately tiny: GET requests, one response
// per connection (`Connection: close`), handler dispatch by target path.
// Scrapes and LB probes are low-rate, so connections are serviced serially
// on the accept thread with a receive timeout bounding any one client.

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

namespace efd::obs {

struct HttpRequest {
  std::string method;
  std::string target;  // path only, query string stripped
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  struct Stats {
    std::uint64_t requests = 0;
    std::uint64_t bad_requests = 0;
  };

  /// Binds and listens on 127.0.0.1:<port> (0 = ephemeral) and starts the
  /// accept thread.  Throws ingest::TransportError on bind failure.
  HttpServer(std::uint16_t port, Handler handler);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// The bound port (resolves an ephemeral request).
  std::uint16_t port() const noexcept { return port_; }

  Stats stats() const noexcept;

  /// Stops accepting and joins the accept thread.  Idempotent.
  void stop();

 private:
  void accept_loop();
  void serve_connection(int fd);

  Handler handler_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> bad_requests_{0};
  std::thread accept_thread_;
};

}  // namespace efd::obs
