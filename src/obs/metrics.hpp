#pragma once

// Lock-free metrics registry: monotonic counters, gauges, and fixed-bucket
// log2-scale latency histograms.  Registration (naming a series) takes a
// mutex once; every subsequent update is a relaxed atomic op, so the
// recognition hot path can publish per-stage timings without locks or
// allocation.  `render()` emits Prometheus text exposition with families
// sorted by name and series sorted by label set, so scrapes are
// byte-deterministic.

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace efd::obs {

class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

// Log2-bucket histogram over non-negative integer observations (latencies
// in nanoseconds).  Bucket i counts observations v with bit_width(v) == i,
// i.e. 2^(i-1) <= v < 2^i (bucket 0 holds v == 0), so p50/p90/p99/p999 are
// derivable from the cumulative bucket counts to within a factor of two.
// observe() is two relaxed fetch_adds — wait-free and allocation-free.
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void observe(std::int64_t v) noexcept {
    const std::uint64_t u = v > 0 ? static_cast<std::uint64_t>(v) : 0;
    int idx = std::bit_width(u);
    if (idx >= kBuckets) idx = kBuckets - 1;
    buckets_[static_cast<std::size_t>(idx)].fetch_add(
        1, std::memory_order_relaxed);
    sum_.fetch_add(u, std::memory_order_relaxed);
  }

  std::uint64_t bucket(int i) const noexcept {
    return buckets_[static_cast<std::size_t>(i)].load(
        std::memory_order_relaxed);
  }
  std::uint64_t count() const noexcept;
  std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }

  // Upper-bound estimate for quantile q in [0, 1]: the nominal upper edge
  // (2^i) of the first bucket whose cumulative count reaches q * total.
  // Returns 0 when the histogram is empty.
  double quantile(double q) const noexcept;

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> sum_{0};
};

// Registry of named series.  counter()/gauge()/histogram() return a stable
// reference for the (family, labels) pair — calling again with the same
// pair returns the same object.  `labels` is the raw label body without
// braces (e.g. `stage="decode"`); label values must already be escaped
// (see obs::escape_label_value).
class MetricsRegistry {
 public:
  Counter& counter(const std::string& family, const std::string& help,
                   const std::string& labels = {});
  Gauge& gauge(const std::string& family, const std::string& help,
               const std::string& labels = {});
  Histogram& histogram(const std::string& family, const std::string& help,
                       const std::string& labels = {});

  // Prometheus text exposition of every registered series, families sorted
  // by name, series within a family sorted by label set.
  std::string render() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Series {
    std::string labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Family {
    std::string name;
    std::string help;
    Kind kind = Kind::kCounter;
    std::vector<Series> series;
  };

  Family& family_locked(const std::string& name, const std::string& help,
                        Kind kind);
  Series& series_locked(Family& family, const std::string& labels);

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Family>> families_;
};

// Process-wide registry backing the HTTP /metrics endpoint.
MetricsRegistry& global_metrics();

// Per-stage hot-path timers plus the end-to-end enqueue -> verdict
// histogram.  All series live in global_metrics(); `enabled` gates the
// steady-state clock reads so the overhead can be benchmarked on/off
// (bench_hot_path stage "obs_overhead").
struct HotPathMetrics {
  // The per-batch stages (enqueue, score) run in ~a microsecond, where
  // two clock reads are a measurable tax — they time 1 batch in
  // kSampleEvery instead.  Duration histograms stay representative;
  // only their _count undercounts (by design).  The e2e verdict latency
  // is NOT sampled: it reuses the admission stamp every batch already
  // takes, so it stays exact per verdict.
  static constexpr std::uint64_t kSampleEvery = 8;  // power of two

  std::atomic<bool> enabled{true};
  std::atomic<std::uint64_t> tick{0};
  Histogram& decode_ns;    // wire bytes -> Message (FrameDecoder::next)
  Histogram& enqueue_ns;   // sample batch admission (push_batch)
  Histogram& score_ns;     // drained batch scoring (drain_stream)
  Histogram& flush_ns;     // verdict flush pass (flush_verdicts)
  Histogram& verdict_e2e_ns;  // sample enqueue stamp -> verdict creation

  // True when this batch should carry stage timers: enabled, and its
  // turn in the 1-in-kSampleEvery rotation (the first batch always
  // samples, so the series exist as soon as traffic flows).
  bool sample_now() noexcept {
    return enabled.load(std::memory_order_relaxed) &&
           (tick.fetch_add(1, std::memory_order_relaxed) &
            (kSampleEvery - 1)) == 0;
  }
};

HotPathMetrics& hot_path();

// Build metadata for efd_build_info / the flat scrape.
const char* build_version() noexcept;
const char* build_sha() noexcept;

}  // namespace efd::obs
