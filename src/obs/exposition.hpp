#pragma once

// Prometheus text exposition shared by `efd_cli stats --prometheus` and the
// HTTP `/metrics` endpoint.  Renders the flat `name value` stats scrape into
// labeled families and appends the native registry families (latency
// histograms, build info, uptime), so `/metrics` is a byte-compatible
// superset of the CLI output.

#include <string>
#include <string_view>

namespace efd::obs {

class MetricsRegistry;

/// Escapes a raw string for use inside a Prometheus label value per the
/// text-format spec: backslash, double-quote, and newline become \\, \",
/// and \n.
std::string escape_label_value(std::string_view raw);

/// True for scrape rows that describe a current level rather than a
/// lifetime total — they render as `gauge`, everything else as `counter`.
bool is_gauge_metric(const std::string& name);

/// Renders the flat `name value` scrape as Prometheus text exposition:
/// dots become underscores under an `efd_` prefix, every metric family gets
/// a single `# TYPE` line, per-source rows (`source.<id>.*`,
/// `service.source.<tag>.*`) and per-subscriber rows (`subscriber.<id>.*`)
/// fold into labeled series, and rows within a family are emitted sorted so
/// scrape diffs are deterministic.  `build.*` rows fold into one
/// `efd_build_info` gauge and `uptime.seconds` renders as
/// `efd_uptime_seconds`.
std::string prometheus_exposition(const std::string& flat);

/// Full `/metrics` payload: the flat-derived exposition plus every family
/// registered in `registry` (histograms, build info, uptime).
std::string render_metrics(const std::string& flat,
                           const MetricsRegistry& registry);

}  // namespace efd::obs
