#include "obs/metrics.hpp"

#include <algorithm>
#include <sstream>

#ifndef EFD_VERSION
#define EFD_VERSION "0.9.0"
#endif
#ifndef EFD_GIT_SHA
#define EFD_GIT_SHA "unknown"
#endif

namespace efd::obs {
namespace {

// Rendered bucket range: 2^10 ns (~1 us) through 2^36 ns (~69 s).
// Observations outside the range are folded into the edge buckets, so the
// +Inf cumulative count always equals the true observation count.
constexpr int kFirstRenderedBucket = 10;
constexpr int kLastRenderedBucket = 36;

void render_histogram(std::ostringstream& out, const std::string& name,
                      const std::string& labels, const Histogram& histogram) {
  const auto series = [&labels](const char* extra) {
    std::string body = labels;
    if (!body.empty() && extra[0] != '\0') body += ",";
    body += extra;
    return body.empty() ? std::string() : "{" + body + "}";
  };
  std::uint64_t cumulative = 0;
  int bucket = 0;
  for (int rendered = kFirstRenderedBucket; rendered <= kLastRenderedBucket;
       ++rendered) {
    for (; bucket <= rendered; ++bucket) {
      cumulative += histogram.bucket(bucket);
    }
    out << name << "_bucket"
        << series(("le=\"" + std::to_string(1ULL << rendered) + "\"").c_str())
        << " " << cumulative << "\n";
  }
  for (; bucket < Histogram::kBuckets; ++bucket) {
    cumulative += histogram.bucket(bucket);
  }
  out << name << "_bucket" << series("le=\"+Inf\"") << " " << cumulative
      << "\n";
  out << name << "_sum" << series("") << " " << histogram.sum() << "\n";
  out << name << "_count" << series("") << " " << cumulative << "\n";
}

}  // namespace

std::uint64_t Histogram::count() const noexcept {
  std::uint64_t total = 0;
  for (int i = 0; i < kBuckets; ++i) total += bucket(i);
  return total;
}

double Histogram::quantile(double q) const noexcept {
  std::array<std::uint64_t, kBuckets> snap{};
  std::uint64_t total = 0;
  for (int i = 0; i < kBuckets; ++i) {
    snap[static_cast<std::size_t>(i)] = bucket(i);
    total += snap[static_cast<std::size_t>(i)];
  }
  if (total == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double target = q * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (int i = 0; i < kBuckets; ++i) {
    cumulative += snap[static_cast<std::size_t>(i)];
    if (static_cast<double>(cumulative) >= target) {
      return i == 0 ? 0.0 : static_cast<double>(1ULL << i);
    }
  }
  return static_cast<double>(1ULL << (kBuckets - 1));
}

MetricsRegistry::Family& MetricsRegistry::family_locked(
    const std::string& name, const std::string& help, Kind kind) {
  for (auto& family : families_) {
    if (family->name == name) return *family;
  }
  auto family = std::make_unique<Family>();
  family->name = name;
  family->help = help;
  family->kind = kind;
  families_.push_back(std::move(family));
  return *families_.back();
}

MetricsRegistry::Series& MetricsRegistry::series_locked(
    Family& family, const std::string& labels) {
  for (auto& series : family.series) {
    if (series.labels == labels) return series;
  }
  family.series.push_back(Series{labels, nullptr, nullptr, nullptr});
  return family.series.back();
}

Counter& MetricsRegistry::counter(const std::string& family,
                                  const std::string& help,
                                  const std::string& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  Series& series =
      series_locked(family_locked(family, help, Kind::kCounter), labels);
  if (!series.counter) series.counter = std::make_unique<Counter>();
  return *series.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& family,
                              const std::string& help,
                              const std::string& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  Series& series =
      series_locked(family_locked(family, help, Kind::kGauge), labels);
  if (!series.gauge) series.gauge = std::make_unique<Gauge>();
  return *series.gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& family,
                                      const std::string& help,
                                      const std::string& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  Series& series =
      series_locked(family_locked(family, help, Kind::kHistogram), labels);
  if (!series.histogram) series.histogram = std::make_unique<Histogram>();
  return *series.histogram;
}

std::string MetricsRegistry::render() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<const Family*> ordered;
  ordered.reserve(families_.size());
  for (const auto& family : families_) ordered.push_back(family.get());
  std::sort(ordered.begin(), ordered.end(),
            [](const Family* a, const Family* b) { return a->name < b->name; });

  std::ostringstream out;
  for (const Family* family : ordered) {
    std::vector<const Series*> series;
    series.reserve(family->series.size());
    for (const auto& s : family->series) series.push_back(&s);
    std::sort(series.begin(), series.end(),
              [](const Series* a, const Series* b) {
                return a->labels < b->labels;
              });

    if (!family->help.empty()) {
      out << "# HELP " << family->name << " " << family->help << "\n";
    }
    const char* type = family->kind == Kind::kCounter    ? "counter"
                       : family->kind == Kind::kGauge    ? "gauge"
                                                         : "histogram";
    out << "# TYPE " << family->name << " " << type << "\n";
    for (const Series* s : series) {
      const std::string suffix =
          s->labels.empty() ? std::string() : "{" + s->labels + "}";
      switch (family->kind) {
        case Kind::kCounter:
          out << family->name << suffix << " " << s->counter->value() << "\n";
          break;
        case Kind::kGauge:
          out << family->name << suffix << " " << s->gauge->value() << "\n";
          break;
        case Kind::kHistogram:
          render_histogram(out, family->name, s->labels, *s->histogram);
          break;
      }
    }
  }
  return out.str();
}

MetricsRegistry& global_metrics() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

HotPathMetrics& hot_path() {
  static HotPathMetrics* metrics = [] {
    auto& registry = global_metrics();
    const std::string help =
        "Hot-path stage duration in nanoseconds (log2 buckets)";
    return new HotPathMetrics{
        .decode_ns = registry.histogram("efd_stage_duration_ns", help,
                                        "stage=\"decode\""),
        .enqueue_ns = registry.histogram("efd_stage_duration_ns", help,
                                         "stage=\"enqueue\""),
        .score_ns = registry.histogram("efd_stage_duration_ns", help,
                                       "stage=\"score\""),
        .flush_ns = registry.histogram("efd_stage_duration_ns", help,
                                       "stage=\"verdict_flush\""),
        .verdict_e2e_ns = registry.histogram(
            "efd_verdict_latency_ns",
            "End-to-end sample-enqueue to verdict latency in nanoseconds "
            "(log2 buckets)"),
    };
  }();
  return *metrics;
}

const char* build_version() noexcept { return EFD_VERSION; }
const char* build_sha() noexcept { return EFD_GIT_SHA; }

}  // namespace efd::obs
