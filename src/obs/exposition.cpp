#include "obs/exposition.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace efd::obs {

std::string escape_label_value(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
        break;
    }
  }
  return out;
}

bool is_gauge_metric(const std::string& name) {
  static const char* kGaugeSuffixes[] = {
      "active_jobs", "pending_verdicts", "queued_samples",
      "jobs_on_stale_epoch", "dictionary_epoch", "window_jobs",
      "window_samples", "window_applications", "exhausted",
      "restored_cursor", "last_cycle", "last_promoted_epoch",
      "last_candidate_score", "last_incumbent_score", ".queued",
      "index_build_seconds", "index_bytes"};
  for (const char* suffix : kGaugeSuffixes) {
    const std::string_view view(suffix);
    if (name.size() >= view.size() &&
        name.compare(name.size() - view.size(), view.size(), view) == 0) {
      return true;
    }
  }
  return false;
}

std::string prometheus_exposition(const std::string& flat) {
  // Pass 1: split rows, learn the source id -> registration-name labels,
  // and pull out the rows that fold into special series (snapshot error,
  // build info, uptime).
  std::map<std::string, std::string> source_names;
  std::vector<std::pair<std::string, std::string>> rows;
  std::string snapshot_error;
  std::string build_version;
  std::string build_sha;
  std::string build_kernel;
  std::string uptime_seconds;
  std::istringstream in(flat);
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t space = line.find(' ');
    if (space == std::string::npos || space == 0) continue;
    std::string name = line.substr(0, space);
    std::string value = line.substr(space + 1);
    if (name.rfind("source.", 0) == 0) {
      const std::size_t dot = name.find('.', 7);
      if (dot != std::string::npos && name.substr(dot + 1) == "name") {
        source_names[name.substr(7, dot - 7)] = value;
        continue;  // becomes a label, not a series
      }
    }
    if (name == "ingest.snapshot_last_error") {
      // Text, not a number: folded into an info-style labeled gauge
      // below ("none" = healthy, no series at all).
      if (value != "none") snapshot_error = value;
      continue;
    }
    if (name == "build.version") {
      build_version = value;
      continue;
    }
    if (name == "build.sha") {
      build_sha = value;
      continue;
    }
    if (name == "build.kernel") {
      build_kernel = value;
      continue;
    }
    if (name == "uptime.seconds") {
      uptime_seconds = value;
      continue;
    }
    rows.emplace_back(std::move(name), std::move(value));
  }

  // Pass 2: emit, grouping every row of one metric family under a
  // single # TYPE header (Prometheus rejects duplicate TYPE lines).
  // Sample lines within a family are sorted so the scrape is
  // byte-deterministic regardless of producer iteration order.
  std::ostringstream out;
  std::map<std::string, std::vector<std::string>> families;  // name -> lines
  std::vector<std::string> family_order;
  const auto add = [&](const std::string& family, std::string sample,
                       const std::string& type_hint) {
    auto it = families.find(family);
    if (it == families.end()) {
      family_order.push_back(family);
      it = families.emplace(family, std::vector<std::string>{}).first;
      it->second.push_back("# TYPE " + family + " " + type_hint);
    }
    it->second.push_back(std::move(sample));
  };
  for (const auto& [name, value] : rows) {
    const std::string type_hint = is_gauge_metric(name) ? "gauge" : "counter";
    if (name.rfind("source.", 0) == 0) {
      const std::size_t dot = name.find('.', 7);
      if (dot != std::string::npos) {
        const std::string id = name.substr(7, dot - 7);
        const std::string family = "efd_source_" + name.substr(dot + 1);
        std::string labels = "source=\"" + escape_label_value(id) + "\"";
        const auto label = source_names.find(id);
        if (label != source_names.end()) {
          labels += ",name=\"" + escape_label_value(label->second) + "\"";
        }
        add(family, family + "{" + labels + "} " + value, type_hint);
        continue;
      }
    }
    if (name.rfind("service.source.", 0) == 0) {
      const std::size_t dot = name.find('.', 15);
      if (dot != std::string::npos) {
        const std::string family =
            "efd_service_source_" + name.substr(dot + 1);
        add(family,
            family + "{source=\"" +
                escape_label_value(name.substr(15, dot - 15)) + "\"} " + value,
            type_hint);
        continue;
      }
    }
    if (name.rfind("subscriber.", 0) == 0) {
      const std::size_t dot = name.find('.', 11);
      if (dot != std::string::npos) {
        const std::string family = "efd_subscriber_" + name.substr(dot + 1);
        add(family,
            family + "{subscriber=\"" +
                escape_label_value(name.substr(11, dot - 11)) + "\"} " + value,
            type_hint);
        continue;
      }
    }
    std::string family = "efd_" + name;
    std::replace(family.begin(), family.end(), '.', '_');
    add(family, family + " " + value, type_hint);
  }
  for (const std::string& family : family_order) {
    std::vector<std::string>& lines = families[family];
    std::sort(lines.begin() + 1, lines.end());
    for (const std::string& emitted : lines) out << emitted << "\n";
  }
  if (!snapshot_error.empty()) {
    out << "# TYPE efd_ingest_snapshot_last_error_info gauge\n"
        << "efd_ingest_snapshot_last_error_info{reason=\""
        << escape_label_value(snapshot_error) << "\"} 1\n";
  }
  if (!build_version.empty() || !build_sha.empty() || !build_kernel.empty()) {
    out << "# TYPE efd_build_info gauge\n"
        << "efd_build_info{version=\"" << escape_label_value(build_version)
        << "\",sha=\"" << escape_label_value(build_sha) << "\",kernel=\""
        << escape_label_value(build_kernel) << "\"} 1\n";
  }
  if (!uptime_seconds.empty()) {
    out << "# TYPE efd_uptime_seconds gauge\n"
        << "efd_uptime_seconds " << uptime_seconds << "\n";
  }
  return std::move(out).str();
}

std::string render_metrics(const std::string& flat,
                           const MetricsRegistry& registry) {
  std::string out = prometheus_exposition(flat);
  out += registry.render();
  return out;
}

}  // namespace efd::obs
