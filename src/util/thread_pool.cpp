#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

namespace efd::util {

ThreadPool::ThreadPool(std::size_t thread_count) {
  if (thread_count == 0) {
    thread_count = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(thread_count);
  for (std::size_t i = 0; i < thread_count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  condition_.notify_all();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      condition_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_condition_.notify_all();
    }
  }
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_condition_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

ThreadPool& global_pool() {
  static ThreadPool pool;
  return pool;
}

void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t min_chunk) {
  if (begin >= end) return;
  const std::size_t total = end - begin;
  // Aim for ~4 chunks per worker to balance load without excess overhead.
  const std::size_t target_chunks = std::max<std::size_t>(1, pool.size() * 4);
  const std::size_t chunk =
      std::max(min_chunk, (total + target_chunks - 1) / target_chunks);

  std::mutex error_mutex;
  std::exception_ptr first_error;
  std::vector<std::future<void>> futures;
  for (std::size_t chunk_begin = begin; chunk_begin < end; chunk_begin += chunk) {
    const std::size_t chunk_end = std::min(end, chunk_begin + chunk);
    futures.push_back(pool.submit([&, chunk_begin, chunk_end] {
      try {
        for (std::size_t i = chunk_begin; i < chunk_end; ++i) body(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }));
  }
  for (auto& future : futures) future.wait();
  if (first_error) std::rethrow_exception(first_error);
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t min_chunk) {
  parallel_for(global_pool(), begin, end, body, min_chunk);
}

}  // namespace efd::util
