#pragma once
/// \file string_utils.hpp
/// \brief Small string helpers used across modules (parsing metric names,
/// application labels, CSV fields, CLI arguments).

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace efd::util {

/// Splits on a single character delimiter; empty fields are preserved.
std::vector<std::string> split(std::string_view text, char delimiter);

/// Joins with a delimiter string.
std::string join(const std::vector<std::string>& parts, std::string_view delimiter);

/// Removes leading/trailing ASCII whitespace.
std::string_view trim(std::string_view text) noexcept;

/// Lower-cases ASCII.
std::string to_lower(std::string_view text);

/// True if \p text starts with \p prefix.
bool starts_with(std::string_view text, std::string_view prefix) noexcept;

/// True if \p text ends with \p suffix.
bool ends_with(std::string_view text, std::string_view suffix) noexcept;

/// Strict double parse; nullopt on any trailing garbage.
std::optional<double> parse_double(std::string_view text) noexcept;

/// Strict integer parse; nullopt on any trailing garbage or overflow.
std::optional<long long> parse_int(std::string_view text) noexcept;

/// Formats a double the way the paper prints fingerprint means:
/// trailing zeros trimmed but at least one decimal ("6000.0", "5.3", "0.04").
std::string format_mean(double value);

/// Formats with fixed decimals.
std::string format_fixed(double value, int decimals);

/// Replaces every occurrence of \p from with \p to.
std::string replace_all(std::string text, std::string_view from, std::string_view to);

}  // namespace efd::util
