#include "util/rng.hpp"

#include <cmath>

namespace efd::util {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

std::uint64_t mix_seed(std::initializer_list<std::uint64_t> tokens) noexcept {
  std::uint64_t state = 0x2545f4914f6cdd1dULL;
  std::uint64_t acc = 0;
  for (std::uint64_t token : tokens) {
    state ^= token + 0x9e3779b97f4a7c15ULL + (state << 6) + (state >> 2);
    acc ^= splitmix64(state);
  }
  // One extra scramble so short lists are well mixed.
  return splitmix64(acc);
}

void Rng::reseed(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
  has_spare_ = false;
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) noexcept {
  if (n == 0) return 0;
  const std::uint64_t threshold = (0 - n) % n;  // 2^64 mod n
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) return r % n;
  }
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  if (hi <= lo) return lo;
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_index(span));
}

double Rng::normal() noexcept {
  if (has_spare_) {
    has_spare_ = false;
    return spare_normal_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  has_spare_ = true;
  return u * factor;
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) noexcept { return uniform() < p; }

double Rng::exponential(double lambda) noexcept {
  // Avoid log(0) by clamping away from 0.
  double u = uniform();
  if (u <= 0.0) u = 0x1.0p-53;
  return -std::log(u) / lambda;
}

std::uint64_t Rng::poisson(double lambda) noexcept {
  if (lambda <= 0.0) return 0;
  if (lambda > 60.0) {
    // Normal approximation with continuity correction.
    const double sample = normal(lambda, std::sqrt(lambda));
    return sample <= 0.0 ? 0 : static_cast<std::uint64_t>(sample + 0.5);
  }
  const double limit = std::exp(-lambda);
  std::uint64_t count = 0;
  double product = uniform();
  while (product > limit) {
    ++count;
    product *= uniform();
  }
  return count;
}

double Rng::lognormal(double mu, double sigma) noexcept {
  return std::exp(normal(mu, sigma));
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> indices(n);
  for (std::size_t i = 0; i < n; ++i) indices[i] = i;
  shuffle(indices);
  return indices;
}

Rng Rng::fork(std::uint64_t stream_token) noexcept {
  // Consume two words of our own stream and mix with the token so forks of
  // forks remain independent.
  const std::uint64_t a = (*this)();
  const std::uint64_t b = (*this)();
  return Rng(mix_seed({a, b, stream_token}));
}

}  // namespace efd::util
