#include "util/string_utils.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace efd::util {

std::vector<std::string> split(std::string_view text, char delimiter) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(delimiter, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(text.substr(start));
      break;
    }
    parts.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

std::string join(const std::vector<std::string>& parts, std::string_view delimiter) {
  std::string result;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) result += delimiter;
    result += parts[i];
  }
  return result;
}

std::string_view trim(std::string_view text) noexcept {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return text.substr(begin, end - begin);
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) noexcept {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) noexcept {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::optional<double> parse_double(std::string_view text) noexcept {
  text = trim(text);
  if (text.empty()) return std::nullopt;
  double value = 0.0;
  const char* begin = text.data();
  const char* end = begin + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end) return std::nullopt;
  return value;
}

std::optional<long long> parse_int(std::string_view text) noexcept {
  text = trim(text);
  if (text.empty()) return std::nullopt;
  long long value = 0;
  const char* begin = text.data();
  const char* end = begin + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end) return std::nullopt;
  return value;
}

std::string format_mean(double value) {
  if (!std::isfinite(value)) return "nan";
  char buffer[64];
  // %.10g removes noise digits; then ensure a decimal point remains.
  std::snprintf(buffer, sizeof(buffer), "%.10g", value);
  std::string text(buffer);
  if (text.find('.') == std::string::npos &&
      text.find('e') == std::string::npos &&
      text.find("inf") == std::string::npos) {
    text += ".0";
  }
  return text;
}

std::string format_fixed(double value, int decimals) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", decimals, value);
  return buffer;
}

std::string replace_all(std::string text, std::string_view from, std::string_view to) {
  if (from.empty()) return text;
  std::size_t pos = 0;
  while ((pos = text.find(from, pos)) != std::string::npos) {
    text.replace(pos, from.size(), to);
    pos += to.size();
  }
  return text;
}

}  // namespace efd::util
