#pragma once
/// \file stats.hpp
/// \brief Numerically stable statistics kernels shared by the fingerprint
/// builder (interval means), the feature extractor (Taxonomist baseline),
/// and the evaluation harness (score aggregation).

#include <cstddef>
#include <span>
#include <vector>

namespace efd::util {

/// Streaming mean/variance/skewness/kurtosis accumulator (Welford / Pébay).
/// Single pass, numerically stable, mergeable.
class RunningMoments {
 public:
  /// Adds one observation.
  void add(double x) noexcept;

  /// Merges another accumulator (parallel reduction support).
  void merge(const RunningMoments& other) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ > 0 ? mean_ : 0.0; }

  /// Population variance (divides by n). Zero for n < 1.
  double variance() const noexcept;

  /// Sample variance (divides by n-1). Zero for n < 2.
  double sample_variance() const noexcept;

  double stddev() const noexcept;

  /// Skewness (g1); zero when variance is ~0 or n < 3.
  double skewness() const noexcept;

  /// Excess kurtosis (g2); zero when variance is ~0 or n < 4.
  double kurtosis() const noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double m3_ = 0.0;
  double m4_ = 0.0;
};

/// Arithmetic mean; 0 for empty input.
double mean(std::span<const double> values) noexcept;

/// Population variance; 0 for fewer than 2 values.
double variance(std::span<const double> values) noexcept;

/// Population standard deviation.
double stddev(std::span<const double> values) noexcept;

/// Minimum; 0 for empty input.
double min_value(std::span<const double> values) noexcept;

/// Maximum; 0 for empty input.
double max_value(std::span<const double> values) noexcept;

/// Linear-interpolated percentile, q in [0, 100]; matches numpy's default
/// ("linear") method. 0 for empty input. Input need not be sorted.
double percentile(std::span<const double> values, double q);

/// Percentile on an already-sorted span (no copy).
double percentile_sorted(std::span<const double> sorted, double q) noexcept;

/// Median (50th percentile).
double median(std::span<const double> values);

/// Sum with Kahan compensation.
double kahan_sum(std::span<const double> values) noexcept;

/// Pearson correlation of two equal-length spans; 0 if degenerate.
double pearson(std::span<const double> x, std::span<const double> y) noexcept;

/// Harmonic mean of two non-negative numbers; 0 if both are 0.
/// This is exactly the F-score combination rule used in the paper.
double harmonic_mean(double a, double b) noexcept;

/// Simple linear regression slope of y over x = 0..n-1 (trend of a series).
double slope(std::span<const double> values) noexcept;

/// Autocorrelation at a given lag (biased estimator); 0 if degenerate.
double autocorrelation(std::span<const double> values, std::size_t lag) noexcept;

}  // namespace efd::util
