#pragma once
/// \file binary_io.hpp
/// \brief Shared little-endian byte codec primitives.
///
/// Every durable byte format in the project — the EFD-WIRE-V1 network
/// codec (ingest/wire_format.hpp) and the EFD-SNAP-V1 service snapshot
/// (core/online/service_snapshot.hpp) — speaks the same primitive
/// vocabulary: little-endian fixed-width integers, bit-cast doubles,
/// u16-length-prefixed strings, and a bounds-checked reader that never
/// trusts a length field further than the bytes that actually arrived.
/// This header is that vocabulary, factored out so a new format cannot
/// re-implement (and subtly diverge from) the decoding discipline the
/// wire codec's fuzz tests established.
///
/// ByteReader is defensive by construction: every read_* checks
/// remaining() before touching memory and returns false on underrun;
/// read_string checks the decoded length BEFORE allocating. Callers turn
/// a false return into their own format-level error.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace efd::util {

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t value);
void put_u16(std::vector<std::uint8_t>& out, std::uint16_t value);
void put_u32(std::vector<std::uint8_t>& out, std::uint32_t value);
void put_u64(std::vector<std::uint8_t>& out, std::uint64_t value);
void put_f64(std::vector<std::uint8_t>& out, double value);

/// u16 length prefix + raw bytes. Throws std::invalid_argument when the
/// string exceeds the u16 range — an emitter bug, not a data condition.
void put_string(std::vector<std::uint8_t>& out, const std::string& text);

/// Bounds-checked little-endian reader over one contiguous buffer.
class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::size_t remaining() const noexcept { return size_ - pos_; }

  bool read_u8(std::uint8_t& out) noexcept;
  bool read_u16(std::uint16_t& out) noexcept;
  bool read_u32(std::uint32_t& out) noexcept;
  bool read_u64(std::uint64_t& out) noexcept;
  bool read_f64(double& out) noexcept;

  /// u16 length prefix + bytes; the length is validated against
  /// remaining() BEFORE the string allocates.
  bool read_string(std::string& out);

  /// Bulk copy of exactly \p count raw bytes (no length prefix); the
  /// count is validated BEFORE the vector allocates.
  bool read_bytes(std::vector<std::uint8_t>& out, std::size_t count);

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

/// CRC-32 (IEEE 802.3, reflected, init/final 0xFFFFFFFF) — the snapshot
/// format's per-section integrity check. Chainable: pass a previous
/// result as \p seed to extend it over discontiguous buffers.
std::uint32_t crc32(const std::uint8_t* data, std::size_t size,
                    std::uint32_t seed = 0);

inline std::uint32_t crc32(const std::vector<std::uint8_t>& data,
                           std::uint32_t seed = 0) {
  return crc32(data.data(), data.size(), seed);
}

}  // namespace efd::util
