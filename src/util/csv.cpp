#include "util/csv.hpp"

#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace efd::util {

CsvRow parse_csv_line(std::string_view line) {
  CsvRow fields;
  std::string current;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current += c;
      }
    } else {
      if (c == '"') {
        in_quotes = true;
      } else if (c == ',') {
        fields.push_back(std::move(current));
        current.clear();
      } else if (c == '\r') {
        // Swallow CR from CRLF line endings.
      } else {
        current += c;
      }
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

std::string escape_csv_field(std::string_view field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) return std::string(field);
  std::string escaped = "\"";
  for (char c : field) {
    if (c == '"') escaped += "\"\"";
    else escaped += c;
  }
  escaped += '"';
  return escaped;
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i != 0) out_ << ',';
    out_ << escape_csv_field(fields[i]);
  }
  out_ << '\n';
}

void CsvWriter::write_row(std::initializer_list<std::string_view> fields) {
  bool first = true;
  for (std::string_view field : fields) {
    if (!first) out_ << ',';
    first = false;
    out_ << escape_csv_field(field);
  }
  out_ << '\n';
}

std::vector<CsvRow> CsvReader::read_all(std::istream& in, bool require_rectangular) {
  std::vector<CsvRow> rows;
  std::string line;
  std::size_t width = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    CsvRow row = parse_csv_line(line);
    if (require_rectangular) {
      if (width == 0) {
        width = row.size();
      } else if (row.size() != width) {
        std::ostringstream message;
        message << "ragged CSV: row " << rows.size() + 1 << " has "
                << row.size() << " fields, expected " << width;
        throw std::runtime_error(message.str());
      }
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

std::vector<CsvRow> CsvReader::read_file(const std::string& path,
                                         bool require_rectangular) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open CSV file: " + path);
  return read_all(in, require_rectangular);
}

}  // namespace efd::util
