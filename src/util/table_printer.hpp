#pragma once
/// \file table_printer.hpp
/// \brief ASCII table and bar-chart rendering for the bench binaries that
/// regenerate the paper's tables (1-4) and Figure 2.

#include <iosfwd>
#include <string>
#include <vector>

namespace efd::util {

/// Column alignment for TablePrinter.
enum class Align { kLeft, kRight };

/// Renders a column-aligned ASCII table with a header row and separator,
/// similar to how the paper's camera-ready tables read.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Sets per-column alignment; defaults to left for all columns.
  void set_alignments(std::vector<Align> alignments);

  /// Adds one row. Rows shorter than the header are padded with "".
  void add_row(std::vector<std::string> row);

  /// Inserts a horizontal separator after the last added row.
  void add_separator();

  /// Renders to a stream with box-drawing via '-', '|' and '+'.
  void print(std::ostream& out) const;

  /// Renders to a string.
  std::string to_string() const;

  std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator = false;
  };
  std::vector<std::string> headers_;
  std::vector<Align> alignments_;
  std::vector<Row> rows_;
};

/// Renders a horizontal bar chart, one labeled bar per entry, scaled so the
/// maximum value fills \p width characters. Used for Figure 2.
class BarChart {
 public:
  BarChart(std::string title, double max_value, int width = 50);

  /// Adds a bar. \p group is printed before the label (e.g. "EFD" vs
  /// "Taxonomist" series in Figure 2).
  void add_bar(const std::string& group, const std::string& label, double value);

  /// Adds an annotation-only row (e.g. "not reported in the paper").
  void add_note(const std::string& group, const std::string& label,
                const std::string& note);

  void print(std::ostream& out) const;
  std::string to_string() const;

 private:
  struct Bar {
    std::string group;
    std::string label;
    double value = 0.0;
    bool is_note = false;
    std::string note;
  };
  std::string title_;
  double max_value_;
  int width_;
  std::vector<Bar> bars_;
};

}  // namespace efd::util
