#pragma once
/// \file arg_parser.hpp
/// \brief Tiny command-line argument parser for the example and bench
/// executables. Supports --flag, --key=value and --key value forms.

#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace efd::util {

/// Parsed command line. Unknown options are collected, not rejected, so
/// google-benchmark flags pass through harmlessly.
class ArgParser {
 public:
  ArgParser(int argc, const char* const* argv);

  /// Program name (argv[0]).
  const std::string& program() const noexcept { return program_; }

  /// True if --name was present (with or without a value).
  bool has(const std::string& name) const;

  /// String value of --name, or fallback. With repeats, the LAST wins.
  std::string get(const std::string& name, const std::string& fallback = "") const;

  /// Every value a repeated --name was given, in command-line order
  /// (empty when absent) — e.g. `serve --listen tcp:0 --listen udp:0`.
  std::vector<std::string> get_all(const std::string& name) const;

  /// Integer value of --name, or fallback on absence/parse failure.
  long long get_int(const std::string& name, long long fallback) const;

  /// Double value of --name, or fallback on absence/parse failure.
  double get_double(const std::string& name, double fallback) const;

  /// Positional (non --option) arguments in order.
  const std::vector<std::string>& positional() const noexcept { return positional_; }

 private:
  std::string program_;
  std::map<std::string, std::string> options_;
  /// (key, value) in command-line order, for get_all on repeated flags.
  std::vector<std::pair<std::string, std::string>> ordered_;
  std::vector<std::string> positional_;
};

}  // namespace efd::util
