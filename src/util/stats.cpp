#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace efd::util {

namespace {
constexpr double kTinyVariance = 1e-24;
}

void RunningMoments::add(double x) noexcept {
  const double n1 = static_cast<double>(n_);
  ++n_;
  const double n = static_cast<double>(n_);
  const double delta = x - mean_;
  const double delta_n = delta / n;
  const double delta_n2 = delta_n * delta_n;
  const double term1 = delta * delta_n * n1;
  mean_ += delta_n;
  m4_ += term1 * delta_n2 * (n * n - 3.0 * n + 3.0) + 6.0 * delta_n2 * m2_ -
         4.0 * delta_n * m3_;
  m3_ += term1 * delta_n * (n - 2.0) - 3.0 * delta_n * m2_;
  m2_ += term1;
}

void RunningMoments::merge(const RunningMoments& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double n = na + nb;
  const double delta = other.mean_ - mean_;
  const double delta2 = delta * delta;
  const double delta3 = delta2 * delta;
  const double delta4 = delta2 * delta2;

  const double m2 = m2_ + other.m2_ + delta2 * na * nb / n;
  const double m3 = m3_ + other.m3_ + delta3 * na * nb * (na - nb) / (n * n) +
                    3.0 * delta * (na * other.m2_ - nb * m2_) / n;
  const double m4 =
      m4_ + other.m4_ +
      delta4 * na * nb * (na * na - na * nb + nb * nb) / (n * n * n) +
      6.0 * delta2 * (na * na * other.m2_ + nb * nb * m2_) / (n * n) +
      4.0 * delta * (na * other.m3_ - nb * m3_) / n;

  mean_ = (na * mean_ + nb * other.mean_) / n;
  m2_ = m2;
  m3_ = m3;
  m4_ = m4;
  n_ += other.n_;
}

double RunningMoments::variance() const noexcept {
  return n_ > 0 ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningMoments::sample_variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningMoments::stddev() const noexcept { return std::sqrt(variance()); }

double RunningMoments::skewness() const noexcept {
  if (n_ < 3 || m2_ < kTinyVariance) return 0.0;
  const double n = static_cast<double>(n_);
  return std::sqrt(n) * m3_ / std::pow(m2_, 1.5);
}

double RunningMoments::kurtosis() const noexcept {
  if (n_ < 4 || m2_ < kTinyVariance) return 0.0;
  const double n = static_cast<double>(n_);
  return n * m4_ / (m2_ * m2_) - 3.0;
}

double mean(std::span<const double> values) noexcept {
  if (values.empty()) return 0.0;
  return kahan_sum(values) / static_cast<double>(values.size());
}

double variance(std::span<const double> values) noexcept {
  if (values.size() < 2) return 0.0;
  RunningMoments moments;
  for (double v : values) moments.add(v);
  return moments.variance();
}

double stddev(std::span<const double> values) noexcept {
  return std::sqrt(variance(values));
}

double min_value(std::span<const double> values) noexcept {
  if (values.empty()) return 0.0;
  return *std::min_element(values.begin(), values.end());
}

double max_value(std::span<const double> values) noexcept {
  if (values.empty()) return 0.0;
  return *std::max_element(values.begin(), values.end());
}

double percentile_sorted(std::span<const double> sorted, double q) noexcept {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted[0];
  q = std::clamp(q, 0.0, 100.0);
  const double rank = q / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double percentile(std::span<const double> values, double q) {
  if (values.empty()) return 0.0;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  return percentile_sorted(sorted, q);
}

double median(std::span<const double> values) { return percentile(values, 50.0); }

double kahan_sum(std::span<const double> values) noexcept {
  double sum = 0.0;
  double compensation = 0.0;
  for (double v : values) {
    const double y = v - compensation;
    const double t = sum + y;
    compensation = (t - sum) - y;
    sum = t;
  }
  return sum;
}

double pearson(std::span<const double> x, std::span<const double> y) noexcept {
  const std::size_t n = std::min(x.size(), y.size());
  if (n < 2) return 0.0;
  const double mx = mean(x.subspan(0, n));
  const double my = mean(y.subspan(0, n));
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  const double denom = std::sqrt(sxx * syy);
  if (denom < kTinyVariance) return 0.0;
  return sxy / denom;
}

double harmonic_mean(double a, double b) noexcept {
  if (a + b <= 0.0) return 0.0;
  return 2.0 * a * b / (a + b);
}

double slope(std::span<const double> values) noexcept {
  const std::size_t n = values.size();
  if (n < 2) return 0.0;
  // x = 0..n-1, closed form least squares.
  const double nf = static_cast<double>(n);
  const double mean_x = (nf - 1.0) / 2.0;
  const double mean_y = mean(values);
  double sxy = 0.0, sxx = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = static_cast<double>(i) - mean_x;
    sxy += dx * (values[i] - mean_y);
    sxx += dx * dx;
  }
  return sxx > 0.0 ? sxy / sxx : 0.0;
}

double autocorrelation(std::span<const double> values, std::size_t lag) noexcept {
  const std::size_t n = values.size();
  if (lag >= n || n < 2) return 0.0;
  const double m = mean(values);
  double num = 0.0, denom = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = values[i] - m;
    denom += d * d;
  }
  if (denom < kTinyVariance) return 0.0;
  for (std::size_t i = 0; i + lag < n; ++i) {
    num += (values[i] - m) * (values[i + lag] - m);
  }
  return num / denom;
}

}  // namespace efd::util
