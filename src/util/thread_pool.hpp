#pragma once
/// \file thread_pool.hpp
/// \brief A fixed-size work-queue thread pool plus a parallel_for helper.
///
/// Used to parallelize the embarrassingly parallel parts of the pipeline:
/// dataset generation (one execution per task), random-forest training
/// (one tree per task), per-metric sweeps (Table 3), and cross-validation
/// folds. The pool is deliberately simple: a single mutex-protected deque
/// is more than fast enough for coarse-grained tasks that each run for
/// milliseconds or longer.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace efd::util {

/// Fixed-size thread pool. Tasks are std::function<void()>; exceptions
/// thrown by tasks propagate through the std::future returned by submit().
class ThreadPool {
 public:
  /// Creates \p thread_count workers (0 means hardware_concurrency, min 1).
  explicit ThreadPool(std::size_t thread_count = 0);

  /// Drains outstanding tasks, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues a task; returns a future for its result.
  template <typename F>
  auto submit(F&& task) -> std::future<std::invoke_result_t<F>> {
    using Result = std::invoke_result_t<F>;
    auto packaged =
        std::make_shared<std::packaged_task<Result()>>(std::forward<F>(task));
    std::future<Result> future = packaged->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.emplace_back([packaged] { (*packaged)(); });
    }
    condition_.notify_one();
    return future;
  }

  /// Blocks until the queue is empty and all in-flight tasks are done.
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable condition_;
  std::condition_variable idle_condition_;
  std::size_t active_ = 0;
  bool stopping_ = false;
};

/// Returns the process-wide shared pool (sized to hardware concurrency).
ThreadPool& global_pool();

/// Runs body(i) for i in [begin, end) across the pool, blocking until all
/// iterations complete. Iterations are chunked to limit task overhead. The
/// first exception thrown by any iteration is rethrown on the caller.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t min_chunk = 1);

/// Like parallel_for but with an explicit pool.
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t min_chunk = 1);

}  // namespace efd::util
