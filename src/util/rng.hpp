#pragma once
/// \file rng.hpp
/// \brief Deterministic, seedable random number generation.
///
/// All stochastic components of the library (workload simulator, noise
/// models, random forest bagging, k-fold shuffles) draw from this RNG so
/// that a single seed reproduces every table in the paper exactly.
///
/// The generator is xoshiro256** (Blackman & Vigna), seeded through
/// splitmix64. It is small, fast, and has no measurable bias in the tails
/// we care about; it is also trivially forkable, which the simulator uses
/// to give every (execution, node, metric) stream an independent,
/// order-independent substream.

#include <array>
#include <cstdint>
#include <limits>
#include <vector>

namespace efd::util {

/// splitmix64 single step; used for seeding and hashing seeds together.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Mixes an arbitrary list of 64-bit tokens into one seed. Used to derive
/// independent substreams, e.g. seed_for(execution_id, node_id, metric_id).
std::uint64_t mix_seed(std::initializer_list<std::uint64_t> tokens) noexcept;

/// xoshiro256** generator. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Constructs from a 64-bit seed (expanded via splitmix64).
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept { reseed(seed); }

  /// Re-seeds in place.
  void reseed(std::uint64_t seed) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Next raw 64 bits.
  result_type operator()() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, n). Requires n > 0. Uses rejection sampling to
  /// avoid modulo bias.
  std::uint64_t uniform_index(std::uint64_t n) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Standard normal via Marsaglia polar method (cached spare).
  double normal() noexcept;

  /// Normal with explicit mean/stddev.
  double normal(double mean, double stddev) noexcept;

  /// Bernoulli trial with probability p.
  bool bernoulli(double p) noexcept;

  /// Exponential with rate lambda (> 0).
  double exponential(double lambda) noexcept;

  /// Poisson-distributed count (Knuth for small lambda, normal approx above 60).
  std::uint64_t poisson(double lambda) noexcept;

  /// Log-normal with the given underlying normal parameters.
  double lognormal(double mu, double sigma) noexcept;

  /// Fisher-Yates shuffle of an index vector 0..n-1.
  std::vector<std::size_t> permutation(std::size_t n);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& values) {
    for (std::size_t i = values.size(); i > 1; --i) {
      std::size_t j = uniform_index(i);
      std::swap(values[i - 1], values[j]);
    }
  }

  /// Forks an independent generator whose stream does not overlap with
  /// this one for any practical draw count.
  Rng fork(std::uint64_t stream_token) noexcept;

 private:
  std::array<std::uint64_t, 4> state_{};
  double spare_normal_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace efd::util
