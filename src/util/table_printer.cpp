#include "util/table_printer.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>

#include "util/string_utils.hpp"

namespace efd::util {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)), alignments_(headers_.size(), Align::kLeft) {}

void TablePrinter::set_alignments(std::vector<Align> alignments) {
  alignments_ = std::move(alignments);
  alignments_.resize(headers_.size(), Align::kLeft);
}

void TablePrinter::add_row(std::vector<std::string> row) {
  row.resize(headers_.size());
  rows_.push_back(Row{std::move(row), false});
}

void TablePrinter::add_separator() {
  rows_.push_back(Row{{}, true});
}

void TablePrinter::print(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const Row& row : rows_) {
    if (row.separator) continue;
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }

  auto print_rule = [&] {
    out << '+';
    for (std::size_t width : widths) {
      for (std::size_t i = 0; i < width + 2; ++i) out << '-';
      out << '+';
    }
    out << '\n';
  };

  auto print_cells = [&](const std::vector<std::string>& cells) {
    out << '|';
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      const std::size_t pad = widths[c] - cell.size();
      out << ' ';
      if (alignments_[c] == Align::kRight) {
        for (std::size_t i = 0; i < pad; ++i) out << ' ';
        out << cell;
      } else {
        out << cell;
        for (std::size_t i = 0; i < pad; ++i) out << ' ';
      }
      out << " |";
    }
    out << '\n';
  };

  print_rule();
  print_cells(headers_);
  print_rule();
  for (const Row& row : rows_) {
    if (row.separator) {
      print_rule();
    } else {
      print_cells(row.cells);
    }
  }
  print_rule();
}

std::string TablePrinter::to_string() const {
  std::ostringstream out;
  print(out);
  return out.str();
}

BarChart::BarChart(std::string title, double max_value, int width)
    : title_(std::move(title)),
      max_value_(max_value > 0.0 ? max_value : 1.0),
      width_(std::max(width, 10)) {}

void BarChart::add_bar(const std::string& group, const std::string& label,
                       double value) {
  bars_.push_back(Bar{group, label, value, false, {}});
}

void BarChart::add_note(const std::string& group, const std::string& label,
                        const std::string& note) {
  bars_.push_back(Bar{group, label, 0.0, true, note});
}

void BarChart::print(std::ostream& out) const {
  out << title_ << '\n';
  std::size_t label_width = 0;
  for (const Bar& bar : bars_) {
    label_width = std::max(label_width, bar.group.size() + bar.label.size() + 3);
  }
  for (const Bar& bar : bars_) {
    std::string label = bar.group + " | " + bar.label;
    out << "  " << label;
    for (std::size_t i = label.size(); i < label_width; ++i) out << ' ';
    out << " ";
    if (bar.is_note) {
      out << "(" << bar.note << ")\n";
      continue;
    }
    const double clamped = std::clamp(bar.value, 0.0, max_value_);
    const int filled =
        static_cast<int>(std::lround(clamped / max_value_ * width_));
    out << '[';
    for (int i = 0; i < width_; ++i) out << (i < filled ? '#' : ' ');
    out << "] " << format_fixed(bar.value, 3) << '\n';
  }
}

std::string BarChart::to_string() const {
  std::ostringstream out;
  print(out);
  return out.str();
}

}  // namespace efd::util
