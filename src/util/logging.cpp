#include "util/logging.hpp"

#include <algorithm>
#include <cctype>
#include <iostream>

namespace efd::util {

std::string_view to_string(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "INFO";
}

LogLevel parse_log_level(std::string_view name) noexcept {
  std::string lower(name);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (lower == "trace") return LogLevel::kTrace;
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  if (lower == "off" || lower == "none") return LogLevel::kOff;
  return LogLevel::kInfo;
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

Logger::Logger() : level_(LogLevel::kWarn), stream_(&std::cerr) {
  if (const char* env = std::getenv("EFD_LOG_LEVEL")) {
    level_ = parse_log_level(env);
  }
}

void Logger::set_stream(std::ostream* stream) {
  std::lock_guard<std::mutex> lock(mutex_);
  stream_ = stream != nullptr ? stream : &std::cerr;
}

void Logger::log(LogLevel level, std::string_view component,
                 std::string_view message) {
  if (!enabled(level)) return;
  std::lock_guard<std::mutex> lock(mutex_);
  (*stream_) << '[' << to_string(level) << "] " << component << ": " << message
             << '\n';
}

}  // namespace efd::util
