#pragma once
/// \file csv.hpp
/// \brief RFC-4180-ish CSV reading and writing.
///
/// Used to persist generated datasets in the same tabular shape as the
/// Taxonomist figshare artifact (one row per (execution, node, metric,
/// second)) and to export evaluation tables.

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace efd::util {

/// One parsed CSV row.
using CsvRow = std::vector<std::string>;

/// Parses a single CSV line honoring double-quote escaping.
CsvRow parse_csv_line(std::string_view line);

/// Escapes a field if it contains a delimiter, quote, or newline.
std::string escape_csv_field(std::string_view field);

/// Streaming CSV writer.
class CsvWriter {
 public:
  /// Writes to the given stream; the stream must outlive the writer.
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  /// Writes one row (fields are escaped as needed).
  void write_row(const std::vector<std::string>& fields);

  /// Convenience for heterogeneous rows built in place.
  void write_row(std::initializer_list<std::string_view> fields);

 private:
  std::ostream& out_;
};

/// Whole-file CSV reader with an optional header row.
class CsvReader {
 public:
  /// Parses the entire stream. Throws std::runtime_error on ragged rows if
  /// \p require_rectangular is set.
  static std::vector<CsvRow> read_all(std::istream& in, bool require_rectangular = false);

  /// Reads a file from disk. Throws std::runtime_error if it cannot be opened.
  static std::vector<CsvRow> read_file(const std::string& path,
                                       bool require_rectangular = false);
};

}  // namespace efd::util
