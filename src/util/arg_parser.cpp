#include "util/arg_parser.hpp"

#include "util/string_utils.hpp"

namespace efd::util {

ArgParser::ArgParser(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (starts_with(arg, "--")) {
      std::string body = arg.substr(2);
      std::string key, value;
      const std::size_t eq = body.find('=');
      if (eq != std::string::npos) {
        key = body.substr(0, eq);
        value = body.substr(eq + 1);
      } else if (i + 1 < argc && !starts_with(argv[i + 1], "--")) {
        key = std::move(body);
        value = argv[++i];
      } else {
        key = std::move(body);
      }
      options_[key] = value;
      ordered_.emplace_back(std::move(key), std::move(value));
    } else {
      positional_.push_back(std::move(arg));
    }
  }
}

bool ArgParser::has(const std::string& name) const {
  return options_.count(name) > 0;
}

std::string ArgParser::get(const std::string& name, const std::string& fallback) const {
  const auto it = options_.find(name);
  return it != options_.end() ? it->second : fallback;
}

std::vector<std::string> ArgParser::get_all(const std::string& name) const {
  std::vector<std::string> values;
  for (const auto& [key, value] : ordered_) {
    if (key == name) values.push_back(value);
  }
  return values;
}

long long ArgParser::get_int(const std::string& name, long long fallback) const {
  const auto it = options_.find(name);
  if (it == options_.end()) return fallback;
  const auto parsed = parse_int(it->second);
  return parsed ? *parsed : fallback;
}

double ArgParser::get_double(const std::string& name, double fallback) const {
  const auto it = options_.find(name);
  if (it == options_.end()) return fallback;
  const auto parsed = parse_double(it->second);
  return parsed ? *parsed : fallback;
}

}  // namespace efd::util
