#include "util/binary_io.hpp"

#include <array>
#include <bit>
#include <limits>
#include <stdexcept>

namespace efd::util {

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t value) {
  out.push_back(value);
}

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t value) {
  out.push_back(static_cast<std::uint8_t>(value));
  out.push_back(static_cast<std::uint8_t>(value >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<std::uint8_t>(value >> shift));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<std::uint8_t>(value >> shift));
  }
}

void put_f64(std::vector<std::uint8_t>& out, double value) {
  put_u64(out, std::bit_cast<std::uint64_t>(value));
}

void put_string(std::vector<std::uint8_t>& out, const std::string& text) {
  if (text.size() > std::numeric_limits<std::uint16_t>::max()) {
    throw std::invalid_argument("encoded string exceeds u16 length");
  }
  put_u16(out, static_cast<std::uint16_t>(text.size()));
  out.insert(out.end(), text.begin(), text.end());
}

bool ByteReader::read_u8(std::uint8_t& out) noexcept {
  if (remaining() < 1) return false;
  out = data_[pos_++];
  return true;
}

bool ByteReader::read_u16(std::uint16_t& out) noexcept {
  if (remaining() < 2) return false;
  out = static_cast<std::uint16_t>(data_[pos_]) |
        static_cast<std::uint16_t>(data_[pos_ + 1]) << 8;
  pos_ += 2;
  return true;
}

bool ByteReader::read_u32(std::uint32_t& out) noexcept {
  if (remaining() < 4) return false;
  out = 0;
  for (int i = 0; i < 4; ++i) {
    out |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 4;
  return true;
}

bool ByteReader::read_u64(std::uint64_t& out) noexcept {
  if (remaining() < 8) return false;
  out = 0;
  for (int i = 0; i < 8; ++i) {
    out |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 8;
  return true;
}

bool ByteReader::read_f64(double& out) noexcept {
  std::uint64_t bits = 0;
  if (!read_u64(bits)) return false;
  out = std::bit_cast<double>(bits);
  return true;
}

bool ByteReader::read_string(std::string& out) {
  std::uint16_t length = 0;
  if (!read_u16(length)) return false;
  if (remaining() < length) return false;  // checked BEFORE allocating
  out.assign(reinterpret_cast<const char*>(data_ + pos_), length);
  pos_ += length;
  return true;
}

bool ByteReader::read_bytes(std::vector<std::uint8_t>& out, std::size_t count) {
  if (remaining() < count) return false;  // checked BEFORE allocating
  out.assign(data_ + pos_, data_ + pos_ + count);
  pos_ += count;
  return true;
}

namespace {

/// Table for the reflected IEEE 802.3 polynomial 0xEDB88320.
std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t value = i;
    for (int bit = 0; bit < 8; ++bit) {
      value = (value >> 1) ^ ((value & 1u) ? 0xEDB88320u : 0u);
    }
    table[i] = value;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(const std::uint8_t* data, std::size_t size,
                    std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> table = make_crc32_table();
  std::uint32_t crc = ~seed;
  for (std::size_t i = 0; i < size; ++i) {
    crc = (crc >> 8) ^ table[(crc ^ data[i]) & 0xFFu];
  }
  return ~crc;
}

}  // namespace efd::util
