#pragma once
/// \file logging.hpp
/// \brief Minimal, thread-safe, leveled logging for the EFD library.
///
/// The logger writes to stderr by default and can be redirected to any
/// std::ostream. Log calls are cheap when the level is disabled: the
/// message is only formatted after the level check passes.

#include <mutex>
#include <ostream>
#include <sstream>
#include <string>
#include <string_view>

namespace efd::util {

/// Severity levels in increasing order of importance.
enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

/// Returns the canonical upper-case name of a level ("INFO", ...).
std::string_view to_string(LogLevel level) noexcept;

/// Parses a level name (case-insensitive); returns kInfo on unknown input.
LogLevel parse_log_level(std::string_view name) noexcept;

/// Process-wide logger. All members are thread-safe.
class Logger {
 public:
  /// Returns the singleton instance.
  static Logger& instance();

  /// Sets the minimum level that will be emitted.
  void set_level(LogLevel level) noexcept { level_ = level; }
  LogLevel level() const noexcept { return level_; }

  /// Redirects output. The stream must outlive the logger's use of it.
  void set_stream(std::ostream* stream);

  /// True if a message at \p level would be emitted.
  bool enabled(LogLevel level) const noexcept {
    return static_cast<int>(level) >= static_cast<int>(level_);
  }

  /// Emits one formatted line: "[LEVEL] component: message".
  void log(LogLevel level, std::string_view component, std::string_view message);

 private:
  Logger();
  LogLevel level_;
  std::ostream* stream_;
  std::mutex mutex_;
};

/// Streaming helper used by the EFD_LOG macro; accumulates into a buffer
/// and emits on destruction.
class LogLine {
 public:
  LogLine(LogLevel level, std::string_view component)
      : level_(level), component_(component) {}
  ~LogLine() { Logger::instance().log(level_, component_, buffer_.str()); }

  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    buffer_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream buffer_;
};

}  // namespace efd::util

/// Logs a streamed message if the level is enabled, e.g.
///   EFD_LOG(kInfo, "trainer") << "built dictionary with " << n << " keys";
#define EFD_LOG(level_name, component)                                       \
  if (::efd::util::Logger::instance().enabled(                               \
          ::efd::util::LogLevel::level_name))                                \
  ::efd::util::LogLine(::efd::util::LogLevel::level_name, (component))
