#include "sim/dataset_generator.hpp"

#include <algorithm>
#include <memory>

#include "util/logging.hpp"
#include "util/thread_pool.hpp"

namespace efd::sim {

DatasetGenerator::DatasetGenerator(const telemetry::MetricRegistry& registry)
    : registry_(registry) {}

telemetry::Dataset DatasetGenerator::generate(const GeneratorConfig& config) const {
  const auto models = make_paper_applications();
  std::vector<const AppModel*> borrowed;
  borrowed.reserve(models.size());
  for (const auto& model : models) borrowed.push_back(model.get());
  return generate(config, borrowed);
}

telemetry::Dataset DatasetGenerator::generate(
    const GeneratorConfig& config, const std::vector<const AppModel*>& apps) const {
  std::vector<std::string> metric_names = config.metrics;
  if (metric_names.empty()) {
    for (telemetry::MetricId id : registry_.modeled_metrics()) {
      metric_names.push_back(registry_.name(id));
    }
  }
  ClusterSimulator simulator(registry_, metric_names, config.seed);

  // Build the full execution plan list first so ids (and therefore RNG
  // streams) are stable regardless of parallelism.
  std::vector<ExecutionPlan> plans;
  std::uint64_t next_id = 1;
  for (const AppModel* app : apps) {
    for (const std::string& input : app->supported_inputs()) {
      const bool is_large = input == "L";
      if (is_large && !config.include_large_input) continue;
      const std::size_t repetitions =
          is_large ? config.large_repetitions : config.small_repetitions;
      const std::uint32_t nodes =
          is_large ? config.large_node_count : config.small_node_count;
      for (std::size_t rep = 0; rep < repetitions; ++rep) {
        ExecutionPlan plan;
        plan.app = app;
        plan.input_size = input;
        plan.node_count = nodes;
        plan.duration_seconds = config.duration_seconds;
        plan.noise_scale = config.noise_scale;
        plan.execution_id = next_id++;
        plans.push_back(plan);
      }
    }
  }

  EFD_LOG(kInfo, "dataset-generator")
      << "generating " << plans.size() << " executions x "
      << metric_names.size() << " metrics";

  std::vector<telemetry::ExecutionRecord> records(plans.size());
  auto simulate_one = [&](std::size_t i) { records[i] = simulator.run(plans[i]); };
  if (config.parallel) {
    util::parallel_for(0, plans.size(), simulate_one);
  } else {
    for (std::size_t i = 0; i < plans.size(); ++i) simulate_one(i);
  }

  telemetry::Dataset dataset(metric_names);
  dataset.reserve(records.size());
  for (auto& record : records) dataset.add(std::move(record));
  return dataset;
}

telemetry::Dataset generate_paper_dataset(const GeneratorConfig& config) {
  static const telemetry::MetricRegistry registry =
      telemetry::MetricRegistry::standard_catalog();
  DatasetGenerator generator(registry);
  return generator.generate(config);
}

}  // namespace efd::sim
