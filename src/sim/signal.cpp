#include "sim/signal.hpp"

#include <cmath>
#include <numbers>

namespace efd::sim {

SignalGenerator::SignalGenerator(SignalSpec spec, util::Rng rng)
    : spec_(spec),
      rng_(rng),
      noise_(spec.noise, rng_.fork(0xA015EULL)),
      init_duration_(0.0),
      phase_offset_(0.0) {
  init_duration_ =
      spec_.init_duration_mean +
      rng_.uniform(-spec_.init_duration_jitter, spec_.init_duration_jitter);
  if (init_duration_ < 1.0) init_duration_ = 1.0;
  phase_offset_ = rng_.uniform(0.0, 2.0 * std::numbers::pi);
}

double SignalGenerator::sample(double t) noexcept {
  double clean;
  double extra_noise = 0.0;
  if (t < init_duration_) {
    // Ramp from init level toward the base over the init window with a
    // smoothstep profile; heavy extra jitter models allocator/wire-up churn.
    const double progress = t / init_duration_;
    const double smooth = progress * progress * (3.0 - 2.0 * progress);
    const double init_level = spec_.base * spec_.init_level_factor;
    clean = init_level + (spec_.base - init_level) * smooth;
    extra_noise = spec_.base * spec_.init_extra_noise * rng_.normal();
  } else {
    clean = spec_.base;
    if (spec_.period_seconds > 0.0 && spec_.periodic_amplitude != 0.0) {
      clean += spec_.base * spec_.periodic_amplitude *
               std::sin(2.0 * std::numbers::pi * t / spec_.period_seconds +
                        phase_offset_);
    }
  }

  double value = clean + spec_.base * noise_.next() + extra_noise;
  if (value < 0.0) value = 0.0;
  if (spec_.integer_valued) value = std::floor(value + 0.5);
  return value;
}

}  // namespace efd::sim
