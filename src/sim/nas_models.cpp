#include "sim/nas_models.hpp"

namespace efd::sim {

namespace {

/// Convenience: identical level for inputs X, Y, Z (input-invariant
/// metrics are the common case the paper exploits in the input
/// experiments).
MetricOverride flat_xyz(double level) {
  MetricOverride ov;
  ov.base_by_input = {{"X", level}, {"Y", level}, {"Z", level}};
  return ov;
}

/// Flat level with a distinct rank-0 level (node-role asymmetry). The
/// tightened noise keeps interval means within one depth-3 bucket (+/-10
/// pages), which is what lets depth 3 separate SP from BT while depth 2
/// still merges them (Section 5).
MetricOverride flat_xyz_rank0(double level, double rank0_level) {
  MetricOverride ov = flat_xyz(level);
  ov.rank0_by_input = {{"X", rank0_level}, {"Y", rank0_level}, {"Z", rank0_level}};
  ov.noise_rel = 0.0005;
  return ov;
}

}  // namespace

FtModel::FtModel()
    : AppModel("ft",
               AppCharacter{
                   .memory_footprint = 0.55,
                   .network_intensity = 0.90,  // all-to-all transposes
                   .cpu_intensity = 0.75,
                   .io_intensity = 0.05,
                   .iteration_period = 8.0,
                   .input_sensitivity = 0.20,
                   .node_asymmetry = 0.0,
                   .noise_factor = 1.0,
               },
               {"X", "Y", "Z"}) {
  override_metric("nr_mapped_vmstat", flat_xyz(6000.0));  // Table 4
}

MgModel::MgModel()
    : AppModel("mg",
               AppCharacter{
                   .memory_footprint = 0.50,
                   .network_intensity = 0.60,  // nearest-neighbour + coarse grids
                   .cpu_intensity = 0.65,
                   .io_intensity = 0.05,
                   .iteration_period = 6.0,
                   .input_sensitivity = 0.25,
                   .node_asymmetry = 0.0,
                   .noise_factor = 1.0,
               },
               {"X", "Y", "Z"}) {
  override_metric("nr_mapped_vmstat", flat_xyz(6100.0));  // Table 4
}

SpModel::SpModel()
    : AppModel("sp",
               AppCharacter{
                   .memory_footprint = 0.65,
                   .network_intensity = 0.70,
                   .cpu_intensity = 0.80,
                   .io_intensity = 0.05,
                   .iteration_period = 12.0,
                   .input_sensitivity = 0.20,
                   .node_asymmetry = 0.013,  // rank 0 runs heavier
                   .noise_factor = 1.0,
               },
               {"X", "Y", "Z"}) {
  // Table 4: sp keys 7600 (node 0) and 7500 (others). Depth 2 buckets are
  // 100 pages wide here, so BT's 7640/7530 lands in the same keys; depth 3
  // buckets are 10 pages wide and separate the two applications.
  override_metric("nr_mapped_vmstat", flat_xyz_rank0(7500.0, 7600.0));
}

LuModel::LuModel()
    : AppModel("lu",
               AppCharacter{
                   .memory_footprint = 0.75,
                   .network_intensity = 0.55,  // many small wavefront messages
                   .cpu_intensity = 0.85,
                   .io_intensity = 0.05,
                   .iteration_period = 5.0,
                   .input_sensitivity = 0.20,
                   .node_asymmetry = 0.012,
                   .noise_factor = 1.0,
               },
               {"X", "Y", "Z"}) {
  override_metric("nr_mapped_vmstat", flat_xyz_rank0(8300.0, 8400.0));  // Table 4
}

BtModel::BtModel()
    : AppModel("bt",
               AppCharacter{
                   .memory_footprint = 0.66,  // deliberately close to SP
                   .network_intensity = 0.68,
                   .cpu_intensity = 0.80,
                   .io_intensity = 0.05,
                   .iteration_period = 12.0,
                   .input_sensitivity = 0.20,
                   .node_asymmetry = 0.014,
                   .noise_factor = 1.0,
               },
               {"X", "Y", "Z"}) {
  // Collides with SP at rounding depth 2 (7530 -> 7500, 7640 -> 7600) and
  // separates at depth 3 (7530 vs 7500, 7640 vs 7600) — Section 5's
  // "Rounding depth 3 avoids this collision and also recognizes BT".
  override_metric("nr_mapped_vmstat", flat_xyz_rank0(7530.0, 7640.0));
}

CgModel::CgModel()
    : AppModel("cg",
               AppCharacter{
                   .memory_footprint = 0.58,
                   .network_intensity = 0.75,  // irregular point-to-point
                   .cpu_intensity = 0.60,      // latency-bound
                   .io_intensity = 0.05,
                   .iteration_period = 4.0,
                   .input_sensitivity = 0.20,
                   .node_asymmetry = 0.0,
                   .noise_factor = 1.0,
               },
               {"X", "Y", "Z"}) {
  override_metric("nr_mapped_vmstat", flat_xyz(6900.0));
}

}  // namespace efd::sim
