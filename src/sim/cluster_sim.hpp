#pragma once
/// \file cluster_sim.hpp
/// \brief Simulates one application execution on a set of nodes, producing
/// the per-(node, metric) 1 Hz telemetry an LDMS deployment would record.

#include <cstdint>
#include <string>
#include <vector>

#include "sim/app_model.hpp"
#include "telemetry/dataset.hpp"
#include "telemetry/execution_record.hpp"
#include "telemetry/metric_registry.hpp"

namespace efd::sim {

/// Parameters of one simulated execution.
struct ExecutionPlan {
  const AppModel* app = nullptr;      ///< application to run (not owned)
  std::string input_size = "X";
  std::uint32_t node_count = 4;
  double duration_seconds = 0.0;      ///< 0 => app->typical_duration(input)
  std::uint64_t execution_id = 0;     ///< stable id; also seeds the streams
  /// Multiplies every stream's noise magnitudes (robustness ablations);
  /// 1.0 reproduces the calibrated system noise.
  double noise_scale = 1.0;
};

/// Runs executions against a metric list. Every (execution, node, metric)
/// stream forks an independent RNG from (seed, execution_id, node, metric),
/// so the generated dataset is identical regardless of generation order or
/// thread count.
class ClusterSimulator {
 public:
  /// \param registry metric catalog (borrowed; must outlive the simulator).
  /// \param metric_names subset of the catalog to actually generate.
  /// \param seed master seed; one seed reproduces the whole dataset.
  ClusterSimulator(const telemetry::MetricRegistry& registry,
                   std::vector<std::string> metric_names, std::uint64_t seed);

  const std::vector<std::string>& metric_names() const noexcept {
    return metric_names_;
  }

  /// Simulates one execution into a fully populated record.
  telemetry::ExecutionRecord run(const ExecutionPlan& plan) const;

  /// Streaming variant used by the LDMS integration and the online
  /// recognition example: returns the sample value of one stream at second
  /// \p t without materializing the whole record. Stateless per call pair;
  /// prefer run() for bulk generation.
  double sample_stream(const ExecutionPlan& plan, std::uint32_t node_id,
                       std::string_view metric_name, double t) const;

 private:
  const telemetry::MetricRegistry& registry_;
  std::vector<std::string> metric_names_;
  std::vector<telemetry::MetricId> metric_ids_;
  std::uint64_t seed_;
};

}  // namespace efd::sim
