#include "sim/noise.hpp"

#include <cmath>

namespace efd::sim {

NoiseProcess::NoiseProcess(NoiseSpec spec, util::Rng rng)
    : spec_(spec), rng_(rng) {}

void NoiseProcess::reset() noexcept {
  ou_state_ = 0.0;
  elapsed_ = 0.0;
  spike_decay_ = 0.0;
}

double NoiseProcess::next() noexcept {
  constexpr double dt = 1.0;  // 1 Hz sampling

  // Exact discretization of the OU process with stationary stddev
  // spec_.ou_sigma: x' = x e^{-theta dt} + sigma sqrt(1 - e^{-2 theta dt}) N.
  const double decay = std::exp(-spec_.ou_theta * dt);
  const double diffusion =
      spec_.ou_sigma * std::sqrt(std::max(0.0, 1.0 - decay * decay));
  ou_state_ = ou_state_ * decay + diffusion * rng_.normal();

  // Spikes: exponential height, then exponential decay with ~2 s constant,
  // so a spike perturbs a handful of samples as real interference does.
  spike_decay_ *= std::exp(-dt / 2.0);
  if (spec_.spike_probability > 0.0 && rng_.bernoulli(spec_.spike_probability)) {
    spike_decay_ += spec_.spike_magnitude * rng_.exponential(1.0);
  }

  const double white = spec_.white_sigma * rng_.normal();
  const double drift = spec_.drift_per_second * elapsed_;
  elapsed_ += dt;
  return ou_state_ + white + spike_decay_ + drift;
}

}  // namespace efd::sim
