#pragma once
/// \file noise.hpp
/// \brief Stochastic perturbation models for simulated telemetry.
///
/// The paper's recognition mechanism hinges on real HPC telemetry being
/// noisy: "Computing the mean produces precise floating point values that
/// are unlikely to repeat due to system perturbations and noise." The
/// simulator therefore perturbs every metric stream with a combination of
///  * white measurement noise (sampling jitter in LDMS),
///  * an Ornstein-Uhlenbeck process (slowly wandering background load:
///    OS daemons, file-system caches warming, neighbouring jobs),
///  * rare spikes (cron jobs, kernel housekeeping, network bursts),
///  * optional linear drift (e.g. slowly growing page cache).
///
/// All state lives in the model instance; streams fork their own RNG so
/// results are independent of generation order.

#include "util/rng.hpp"

namespace efd::sim {

/// Parameters of the composite noise process. Magnitudes are *relative*
/// to the signal's base level, which keeps specs scale-free.
struct NoiseSpec {
  double white_sigma = 0.002;   ///< stddev of per-sample white noise
  double ou_sigma = 0.004;      ///< stationary stddev of the OU component
  double ou_theta = 0.05;       ///< OU mean-reversion rate (1/s)
  double spike_probability = 0.0;  ///< per-second probability of a spike
  double spike_magnitude = 0.1;    ///< spike height (relative, exp-distributed)
  double drift_per_second = 0.0;   ///< deterministic relative drift
};

/// Stateful generator for one stream. Not thread-safe; create one per
/// (execution, node, metric) stream.
class NoiseProcess {
 public:
  NoiseProcess(NoiseSpec spec, util::Rng rng);

  /// Relative perturbation at the next 1 Hz tick; multiply by the base
  /// level and add to the clean signal.
  double next() noexcept;

  /// Resets internal state (OU value, elapsed time) keeping the RNG.
  void reset() noexcept;

  const NoiseSpec& spec() const noexcept { return spec_; }

 private:
  NoiseSpec spec_;
  util::Rng rng_;
  double ou_state_ = 0.0;
  double elapsed_ = 0.0;
  double spike_decay_ = 0.0;  ///< spikes decay exponentially over a few seconds
};

}  // namespace efd::sim
