#pragma once
/// \file nas_models.hpp
/// \brief Behaviour models of the six NAS Parallel Benchmarks in the
/// paper's dataset (FT, MG, SP, LU, BT, CG).
///
/// The NAS Parallel Benchmarks (Bailey et al., 1991) are kernels distilled
/// from computational fluid dynamics codes. Their telemetry signatures on
/// the headline metric nr_mapped_vmstat reproduce the paper's Table 4
/// exactly (ft 6000, mg 6100, sp 7500/7600, lu 8300/8400) including the
/// SP/BT fingerprint collision at rounding depth 2 that depth 3 resolves.

#include "sim/app_model.hpp"

namespace efd::sim {

/// FT — 3D fast Fourier transform PDE solver. Dominated by global
/// all-to-all transposes; large contiguous buffers allocated once, so the
/// mapped-page count is flat and input-invariant in the steady phase.
class FtModel final : public AppModel {
 public:
  FtModel();
};

/// MG — V-cycle multigrid on a hierarchy of grids. Memory-bandwidth bound
/// with neighbour communication; footprint barely above FT's.
class MgModel final : public AppModel {
 public:
  MgModel();
};

/// SP — scalar pentadiagonal solver using a multi-partition scheme.
/// Rank 0 holds extra setup/IO state, so its mapped pages sit one depth-3
/// bucket above the other ranks (7600 vs 7500) — the node-role asymmetry
/// the paper discusses.
class SpModel final : public AppModel {
 public:
  SpModel();
};

/// LU — SSOR solver with fine-grained pipelined wavefront communication.
/// Highest mapped-page footprint of the NAS set (8300/8400).
class LuModel final : public AppModel {
 public:
  LuModel();
};

/// BT — block tridiagonal solver. Structurally similar to SP (same
/// multi-partition decomposition; the paper cites Ma et al. on their
/// similarity); its nr_mapped levels (7530/7640) collide with SP's in
/// depth-2 buckets and separate at depth 3.
class BtModel final : public AppModel {
 public:
  BtModel();
};

/// CG — conjugate gradient with irregular sparse matrix-vector products.
/// Latency-bound communication; moderate, input-invariant footprint.
class CgModel final : public AppModel {
 public:
  CgModel();
};

}  // namespace efd::sim
