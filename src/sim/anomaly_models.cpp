#include "sim/anomaly_models.hpp"

#include "sim/miniapp_models.hpp"
#include "sim/nas_models.hpp"

namespace efd::sim {

CryptoMinerModel::CryptoMinerModel()
    : AppModel("cryptominer",
               AppCharacter{
                   .memory_footprint = 0.08,   // scratchpad-only working set
                   .network_intensity = 0.02,  // occasional pool beacons
                   .cpu_intensity = 1.0,       // hash loops saturate cores
                   .io_intensity = 0.0,
                   .iteration_period = 0.0,    // no iteration structure
                   .input_sensitivity = 0.0,
                   .node_asymmetry = 0.0,
                   .noise_factor = 0.6,        // eerily steady load
               },
               {"X"}) {
  // Far below every dataset application's mapped footprint (Table 4 spans
  // 6000-11000), so no rounding depth maps it into a known bucket.
  MetricOverride ov;
  ov.base_by_input = {{"X", 900.0}};
  override_metric("nr_mapped_vmstat", std::move(ov));
}

DegradedAppModel::DegradedAppModel(const AppModel& healthy, double severity)
    : AppModel(healthy.name() + "_degraded",
               AppCharacter{
                   .memory_footprint =
                       healthy.character().memory_footprint * (1.0 + severity),
                   .network_intensity =
                       healthy.character().network_intensity * (1.0 - severity),
                   .cpu_intensity = healthy.character().cpu_intensity,
                   .io_intensity = healthy.character().io_intensity,
                   .iteration_period = healthy.character().iteration_period,
                   .input_sensitivity = healthy.character().input_sensitivity,
                   .node_asymmetry = healthy.character().node_asymmetry,
                   .noise_factor = healthy.character().noise_factor * 2.0,
               },
               healthy.supported_inputs()) {
  // Memory leak: the degraded run's mapped pages sit well above the
  // healthy fingerprint. A severity of 0.15 moves a 7900-page application
  // to ~9100 pages — several depth-3 buckets away. One override carries
  // every input's drifted level.
  const telemetry::MetricInfo nr_mapped{"nr_mapped_vmstat",
                                        telemetry::MetricGroup::kVmstat, 1e4,
                                        true};
  MetricOverride ov;
  for (const std::string& input : healthy.supported_inputs()) {
    // Anchor the drift on the healthy model's own signal.
    const SignalSpec healthy_spec = healthy.signal(nr_mapped, input, 1, 4);
    ov.base_by_input.emplace(input, healthy_spec.base * (1.0 + severity));
  }
  override_metric("nr_mapped_vmstat", std::move(ov));
}

std::vector<std::unique_ptr<AppModel>> make_paper_applications() {
  std::vector<std::unique_ptr<AppModel>> models;
  models.push_back(std::make_unique<FtModel>());
  models.push_back(std::make_unique<MgModel>());
  models.push_back(std::make_unique<SpModel>());
  models.push_back(std::make_unique<LuModel>());
  models.push_back(std::make_unique<BtModel>());
  models.push_back(std::make_unique<CgModel>());
  models.push_back(std::make_unique<CoMdModel>());
  models.push_back(std::make_unique<MiniGhostModel>());
  models.push_back(std::make_unique<MiniAmrModel>());
  models.push_back(std::make_unique<MiniMdModel>());
  models.push_back(std::make_unique<KripkeModel>());
  return models;
}

std::unique_ptr<AppModel> make_application(std::string_view name) {
  if (name == "ft") return std::make_unique<FtModel>();
  if (name == "mg") return std::make_unique<MgModel>();
  if (name == "sp") return std::make_unique<SpModel>();
  if (name == "lu") return std::make_unique<LuModel>();
  if (name == "bt") return std::make_unique<BtModel>();
  if (name == "cg") return std::make_unique<CgModel>();
  if (name == "CoMD") return std::make_unique<CoMdModel>();
  if (name == "miniGhost") return std::make_unique<MiniGhostModel>();
  if (name == "miniAMR") return std::make_unique<MiniAmrModel>();
  if (name == "miniMD") return std::make_unique<MiniMdModel>();
  if (name == "kripke") return std::make_unique<KripkeModel>();
  if (name == "cryptominer") return std::make_unique<CryptoMinerModel>();
  return nullptr;
}

const std::vector<std::string>& large_input_applications() {
  // The starred applications in Table 2: input L exists only for these.
  static const std::vector<std::string> names = {"miniGhost", "miniAMR",
                                                 "miniMD", "kripke"};
  return names;
}

}  // namespace efd::sim
