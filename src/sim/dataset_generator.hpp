#pragma once
/// \file dataset_generator.hpp
/// \brief Generates the full labeled dataset in the layout of Table 2:
/// every application executed repeatedly with inputs X/Y/Z on 4 nodes
/// (30 repetitions), and the starred subset additionally with input L on
/// 32 nodes (6 repetitions).

#include <cstdint>
#include <string>
#include <vector>

#include "sim/app_model.hpp"
#include "sim/cluster_sim.hpp"
#include "telemetry/dataset.hpp"
#include "telemetry/metric_registry.hpp"

namespace efd::sim {

/// Knobs for dataset generation. Defaults replicate Table 2.
struct GeneratorConfig {
  std::uint64_t seed = 42;

  /// Repetitions of each (application, input in {X,Y,Z}) pair.
  std::size_t small_repetitions = 30;
  /// Node count for X/Y/Z executions.
  std::uint32_t small_node_count = 4;

  /// Whether to include the starred subset's L executions.
  bool include_large_input = true;
  /// Repetitions of each (starred application, L) pair.
  std::size_t large_repetitions = 6;
  /// Node count for L executions.
  std::uint32_t large_node_count = 32;

  /// Execution length; 0 means each application's typical duration.
  double duration_seconds = 0.0;

  /// Scales all simulated noise (1.0 = calibrated system noise). Used by
  /// the robustness ablation bench.
  double noise_scale = 1.0;

  /// Metrics to generate. Empty means all *modeled* metrics in the
  /// catalog (generating all 562 including filler is supported but
  /// costs ~20x the memory for no extra signal).
  std::vector<std::string> metrics;

  /// Generate executions in parallel across the global thread pool.
  bool parallel = true;
};

/// Generates Table 2 replica datasets.
class DatasetGenerator {
 public:
  /// \param registry borrowed; must outlive the generator.
  explicit DatasetGenerator(const telemetry::MetricRegistry& registry);

  /// Generates a dataset for the paper's 11 applications.
  telemetry::Dataset generate(const GeneratorConfig& config) const;

  /// Generates for an explicit application set (used by tests and the
  /// anomaly examples). Models are borrowed for the duration of the call.
  telemetry::Dataset generate(const GeneratorConfig& config,
                              const std::vector<const AppModel*>& apps) const;

 private:
  const telemetry::MetricRegistry& registry_;
};

/// Convenience: standard catalog + default config in one call; the
/// entry point most examples and benches use.
telemetry::Dataset generate_paper_dataset(const GeneratorConfig& config = {});

}  // namespace efd::sim
