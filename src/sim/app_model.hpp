#pragma once
/// \file app_model.hpp
/// \brief Behavioural models of the 11 applications in the paper's dataset.
///
/// We do not port the applications' solvers; the paper never executes
/// application code in its pipeline — only the telemetry the applications
/// induce matters. Each model therefore describes, for every system metric
/// in the catalog, the *signal* the application produces on a node:
/// steady-state level as a function of input size and node role, iteration
/// periodicity, and noise susceptibility.
///
/// The models encode the phenomena the paper reports:
///  * distinct, repeatable levels per (application, input) on memory
///    metrics — the basis of recognition (Tables 3-4);
///  * input-size *invariance* of some application/metric pairs (Section 5,
///    "execution fingerprints repeat even for different application input
///    sizes") — but NOT for miniAMR, whose adaptive mesh refinement makes
///    the footprint strongly input-dependent;
///  * SP/BT near-collision on nr_mapped_vmstat: their fingerprints merge
///    at rounding depth 2 and separate at depth 3 (Table 4 discussion);
///  * node-role asymmetry: SP, BT and LU "use nodes in consistently
///    different ways" — rank 0 carries extra mapped memory;
///  * larger perturbation on NIC and CPU counters than on memory gauges,
///    which is why the NIC metrics trail in Table 3.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "sim/signal.hpp"
#include "telemetry/metric_registry.hpp"

namespace efd::sim {

/// Scale-free character of an application; the base model derives
/// plausible levels for every non-overridden metric from these knobs.
struct AppCharacter {
  double memory_footprint = 0.5;   ///< anon/mapped page pressure, 0..1
  double network_intensity = 0.5;  ///< NIC counter activity, 0..1
  double cpu_intensity = 0.7;      ///< user-time fraction, 0..1
  double io_intensity = 0.1;       ///< dirty/writeback activity, 0..1
  double iteration_period = 10.0;  ///< dominant solver period (s)
  double input_sensitivity = 0.0;  ///< how strongly inputs scale derived
                                   ///< levels (0 = input-invariant)
  double node_asymmetry = 0.0;     ///< extra relative level on rank 0
  double noise_factor = 1.0;       ///< multiplies catalog noise levels
};

/// Explicit per-metric override: exact base levels per input size and an
/// optional distinct rank-0 level. Used for the metrics the paper prints
/// (Table 4's nr_mapped_vmstat values are reproduced verbatim).
struct MetricOverride {
  /// input size -> steady base level (rank != 0).
  std::map<std::string, double, std::less<>> base_by_input;
  /// input size -> rank-0 level; falls back to base_by_input when absent.
  std::map<std::string, double, std::less<>> rank0_by_input;
  double noise_rel = -1.0;  ///< overrides derived noise when >= 0
};

/// Abstract application model.
class AppModel {
 public:
  virtual ~AppModel() = default;

  const std::string& name() const noexcept { return name_; }
  const AppCharacter& character() const noexcept { return character_; }

  /// Input sizes this application was executed with in the dataset
  /// (Table 2: all apps have X, Y, Z; the starred subset also has L).
  const std::vector<std::string>& supported_inputs() const noexcept {
    return inputs_;
  }

  /// Typical wall-clock duration for an input (seconds). The paper's
  /// fingerprint only needs [60, 120); durations here keep the simulated
  /// dataset small while still covering the window with margin.
  virtual double typical_duration(std::string_view input) const;

  /// Full signal description for one metric on one node.
  SignalSpec signal(const telemetry::MetricInfo& metric, std::string_view input,
                    std::uint32_t node_id, std::uint32_t node_count) const;

 protected:
  AppModel(std::string name, AppCharacter character, std::vector<std::string> inputs);

  /// Registers an explicit override for a metric.
  void override_metric(std::string name, MetricOverride override_spec);

 private:
  /// Derives a level for a non-overridden metric from the character and a
  /// stable per-(app, metric) hash, so distinct apps get distinct but
  /// repeatable levels.
  SignalSpec derived_signal(const telemetry::MetricInfo& metric,
                            std::string_view input, std::uint32_t node_id) const;

  std::string name_;
  AppCharacter character_;
  std::vector<std::string> inputs_;
  std::map<std::string, MetricOverride, std::less<>> overrides_;
};

/// Index of an input size in the canonical order X < Y < Z < L; used for
/// input scaling laws. Unknown inputs map to 0.
std::size_t input_rank(std::string_view input);

/// Factory: all 11 models of the paper's dataset, in Table 2 order
/// (ft, mg, sp, lu, bt, cg, CoMD, miniGhost, miniAMR, miniMD, kripke).
std::vector<std::unique_ptr<AppModel>> make_paper_applications();

/// Factory by name (case-sensitive); returns nullptr for unknown names.
std::unique_ptr<AppModel> make_application(std::string_view name);

/// Names of applications that also ran the large "L" input on 32 nodes
/// (the starred subset in Table 2).
const std::vector<std::string>& large_input_applications();

}  // namespace efd::sim
