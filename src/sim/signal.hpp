#pragma once
/// \file signal.hpp
/// \brief Clean signal shape of one metric stream plus the generator that
/// combines it with a NoiseProcess into 1 Hz samples.
///
/// Every application execution in the simulator goes through two phases,
/// mirroring what the paper observed on the real system:
///
///   1. an *initialization phase* (roughly the first 30-45 s: binary load,
///      MPI wire-up, mesh/setup allocation) whose levels differ from the
///      steady state and carry extra perturbation — this is exactly why
///      the paper fingerprints the [60, 120) window rather than [0, 60);
///   2. a *steady compute phase* where the level settles to an
///      application-and-input-characteristic base, optionally modulated by
///      a periodic iteration pattern (e.g. CG's solver sweeps show up as
///      oscillation on NIC counters).

#include "sim/noise.hpp"
#include "util/rng.hpp"

namespace efd::sim {

/// Complete description of one (application, input, node, metric) stream.
struct SignalSpec {
  // --- Steady state ---
  double base = 0.0;               ///< steady-state mean level
  double periodic_amplitude = 0.0; ///< relative amplitude of iteration pattern
  double period_seconds = 0.0;     ///< iteration period (0 => no oscillation)

  // --- Initialization phase ---
  double init_level_factor = 0.4;  ///< init level relative to base
  double init_duration_mean = 35.0;   ///< mean init length (s)
  double init_duration_jitter = 6.0;  ///< uniform +/- jitter (s)
  double init_extra_noise = 0.05;     ///< extra relative white noise in init

  // --- Perturbation ---
  NoiseSpec noise;

  /// Page/packet counters are integers; gauges in KB are also integer.
  bool integer_valued = true;
};

/// Generates the 1 Hz sample stream for one SignalSpec. Not thread-safe;
/// one instance per stream.
class SignalGenerator {
 public:
  /// \param rng forked, stream-private generator. Consumed for the init
  /// duration draw, the phase offset, and all noise.
  SignalGenerator(SignalSpec spec, util::Rng rng);

  /// Sample at integer second \p t (call with increasing t).
  double sample(double t) noexcept;

  /// The realized initialization duration for this stream (seconds).
  double init_duration() const noexcept { return init_duration_; }

  const SignalSpec& spec() const noexcept { return spec_; }

 private:
  SignalSpec spec_;
  util::Rng rng_;
  NoiseProcess noise_;
  double init_duration_;
  double phase_offset_;
};

}  // namespace efd::sim
