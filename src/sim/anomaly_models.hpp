#pragma once
/// \file anomaly_models.hpp
/// \brief Application models outside the paper's dataset, used by the
/// examples that exercise the paper's motivating scenarios: detecting
/// allocation-purpose deviation (cryptocurrency mining) and detecting
/// behavioural drift of a known application (errors/failures).

#include "sim/app_model.hpp"

namespace efd::sim {

/// A cryptocurrency miner masquerading as an HPC job (paper motivation
/// (b)/(c); cf. the 2020 European supercomputer mining incidents). Tiny
/// mapped footprint, saturated CPU, near-zero NIC traffic — a signature
/// unlike any of the dataset's applications, so a dictionary of known
/// workloads returns "unknown", and a dictionary of known-malicious
/// fingerprints recognizes it positively.
class CryptoMinerModel final : public AppModel {
 public:
  CryptoMinerModel();
};

/// A degraded variant of a known application: same code, but a failing
/// node inflates memory use and depresses network traffic. Used by the
/// anomaly-detection example to show fingerprint deviation from the
/// dictionary entry of the healthy run.
class DegradedAppModel final : public AppModel {
 public:
  /// Wraps the named healthy application; \p severity in (0, 1] scales
  /// how far the degraded levels drift from the healthy ones.
  DegradedAppModel(const AppModel& healthy, double severity);
};

}  // namespace efd::sim
