#include "sim/cluster_sim.hpp"

#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace efd::sim {

namespace {

util::Rng stream_rng(std::uint64_t seed, std::uint64_t execution_id,
                     std::uint32_t node_id, telemetry::MetricId metric_id) {
  return util::Rng(util::mix_seed(
      {seed, execution_id, static_cast<std::uint64_t>(node_id) + 1,
       static_cast<std::uint64_t>(metric_id) + 0x1000}));
}

SignalSpec scale_noise(SignalSpec spec, double noise_scale) {
  if (noise_scale == 1.0) return spec;
  spec.noise.white_sigma *= noise_scale;
  spec.noise.ou_sigma *= noise_scale;
  spec.noise.spike_magnitude *= noise_scale;
  spec.init_extra_noise *= noise_scale;
  return spec;
}

}  // namespace

ClusterSimulator::ClusterSimulator(const telemetry::MetricRegistry& registry,
                                   std::vector<std::string> metric_names,
                                   std::uint64_t seed)
    : registry_(registry), metric_names_(std::move(metric_names)), seed_(seed) {
  metric_ids_.reserve(metric_names_.size());
  for (const auto& name : metric_names_) {
    metric_ids_.push_back(registry_.require(name));
  }
}

telemetry::ExecutionRecord ClusterSimulator::run(const ExecutionPlan& plan) const {
  if (plan.app == nullptr) throw std::invalid_argument("ExecutionPlan.app is null");
  const double duration = plan.duration_seconds > 0.0
                              ? plan.duration_seconds
                              : plan.app->typical_duration(plan.input_size);
  const auto sample_count = static_cast<std::size_t>(std::floor(duration));

  telemetry::ExecutionRecord record(
      plan.execution_id,
      telemetry::ExecutionLabel{plan.app->name(), plan.input_size},
      plan.node_count, metric_names_.size());

  for (std::uint32_t node = 0; node < plan.node_count; ++node) {
    for (std::size_t m = 0; m < metric_ids_.size(); ++m) {
      const telemetry::MetricInfo& info = registry_.info(metric_ids_[m]);
      SignalGenerator generator(
          scale_noise(
              plan.app->signal(info, plan.input_size, node, plan.node_count),
              plan.noise_scale),
          stream_rng(seed_, plan.execution_id, node, metric_ids_[m]));
      telemetry::TimeSeries& series = record.series(node, m);
      series.reserve(sample_count);
      for (std::size_t t = 0; t < sample_count; ++t) {
        series.push_back(generator.sample(static_cast<double>(t)));
      }
    }
  }
  return record;
}

double ClusterSimulator::sample_stream(const ExecutionPlan& plan,
                                       std::uint32_t node_id,
                                       std::string_view metric_name,
                                       double t) const {
  if (plan.app == nullptr) throw std::invalid_argument("ExecutionPlan.app is null");
  const telemetry::MetricId id = registry_.require(metric_name);
  const telemetry::MetricInfo& info = registry_.info(id);
  SignalGenerator generator(
      scale_noise(plan.app->signal(info, plan.input_size, node_id, plan.node_count),
                  plan.noise_scale),
      stream_rng(seed_, plan.execution_id, node_id, id));
  // Re-play the stream up to t so stateful noise matches the bulk path.
  double value = 0.0;
  for (double tick = 0.0; tick <= t; tick += 1.0) {
    value = generator.sample(tick);
  }
  return value;
}

}  // namespace efd::sim
