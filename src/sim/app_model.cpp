#include "sim/app_model.hpp"

#include <cmath>
#include <functional>

#include "util/rng.hpp"

namespace efd::sim {

namespace {

/// Stable uniform in [0,1) from a set of string/int tokens. Used so that a
/// given (application, metric) pair always derives the same level, across
/// runs and platforms.
double stable_uniform(std::string_view a, std::string_view b, std::uint64_t salt) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](std::string_view s) {
    for (char c : s) {
      h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
      h *= 0x100000001b3ULL;
    }
    h ^= 0x9e3779b97f4a7c15ULL;
    h *= 0x100000001b3ULL;
  };
  mix(a);
  mix(b);
  std::uint64_t state = h ^ (salt * 0xda942042e4dd58b5ULL);
  return static_cast<double>(util::splitmix64(state) >> 11) * 0x1.0p-53;
}

/// Group-level noise floor: memory gauges are very stable, NIC counters
/// burstier, CPU jiffies noisiest. This ordering produces the Table 3
/// ranking (vmstat/meminfo ~1.0 > NIC ~0.95 > the long tail).
NoiseSpec group_noise(telemetry::MetricGroup group, double factor) {
  NoiseSpec noise;
  switch (group) {
    case telemetry::MetricGroup::kVmstat:
    case telemetry::MetricGroup::kMeminfo:
      noise.white_sigma = 0.0012 * factor;
      noise.ou_sigma = 0.0018 * factor;
      noise.spike_probability = 0.004;
      noise.spike_magnitude = 0.01 * factor;
      break;
    case telemetry::MetricGroup::kNic:
      noise.white_sigma = 0.006 * factor;
      noise.ou_sigma = 0.008 * factor;
      noise.spike_probability = 0.02;
      noise.spike_magnitude = 0.05 * factor;
      break;
    case telemetry::MetricGroup::kCpu:
      noise.white_sigma = 0.020 * factor;
      noise.ou_sigma = 0.025 * factor;
      noise.spike_probability = 0.03;
      noise.spike_magnitude = 0.12 * factor;
      break;
    case telemetry::MetricGroup::kOther:
      noise.white_sigma = 0.05 * factor;
      noise.ou_sigma = 0.08 * factor;
      noise.spike_probability = 0.05;
      noise.spike_magnitude = 0.2 * factor;
      break;
  }
  return noise;
}

}  // namespace

std::size_t input_rank(std::string_view input) {
  if (input == "X") return 0;
  if (input == "Y") return 1;
  if (input == "Z") return 2;
  if (input == "L") return 3;
  return 0;
}

AppModel::AppModel(std::string name, AppCharacter character,
                   std::vector<std::string> inputs)
    : name_(std::move(name)), character_(character), inputs_(std::move(inputs)) {}

void AppModel::override_metric(std::string metric_name, MetricOverride override_spec) {
  overrides_.insert_or_assign(std::move(metric_name), std::move(override_spec));
}

double AppModel::typical_duration(std::string_view input) const {
  // Larger inputs run longer; every run comfortably covers the paper's
  // [60, 120) fingerprint window.
  return 150.0 + 20.0 * static_cast<double>(input_rank(input));
}

SignalSpec AppModel::signal(const telemetry::MetricInfo& metric,
                            std::string_view input, std::uint32_t node_id,
                            std::uint32_t node_count) const {
  (void)node_count;
  const auto it = overrides_.find(metric.name);
  if (it != overrides_.end()) {
    const MetricOverride& ov = it->second;
    const auto base_it = ov.base_by_input.find(input);
    if (base_it != ov.base_by_input.end()) {
      SignalSpec spec;
      spec.base = base_it->second;
      if (node_id == 0) {
        const auto rank0_it = ov.rank0_by_input.find(input);
        if (rank0_it != ov.rank0_by_input.end()) spec.base = rank0_it->second;
      }
      spec.noise = group_noise(metric.group, character_.noise_factor);
      if (ov.noise_rel >= 0.0) {
        spec.noise.white_sigma = ov.noise_rel;
        spec.noise.ou_sigma = ov.noise_rel * 1.5;
      }
      spec.periodic_amplitude =
          metric.group == telemetry::MetricGroup::kNic ? 0.01 : 0.0;
      spec.period_seconds = character_.iteration_period;
      spec.integer_valued = true;
      return spec;
    }
    // Fall through to derived behaviour for inputs without explicit levels.
  }
  return derived_signal(metric, input, node_id);
}

SignalSpec AppModel::derived_signal(const telemetry::MetricInfo& metric,
                                    std::string_view input,
                                    std::uint32_t node_id) const {
  SignalSpec spec;

  if (!metric.modeled) {
    // Filler metrics: application-independent background. Their level
    // derives from the metric name only, so every application looks the
    // same on them — classifiers relying on filler metrics alone perform
    // at chance, populating the long tail of Table 3.
    const double u = stable_uniform(metric.name, "background", 11);
    spec.base = metric.typical_scale * (0.2 + 1.6 * u);
    spec.noise = group_noise(telemetry::MetricGroup::kOther, 1.0);
    spec.init_level_factor = 0.9;  // filler metrics barely react to app start
    spec.init_extra_noise = 0.01;
    return spec;
  }

  // Character-weighted intensity of this metric for this application.
  double intensity = 0.5;
  switch (metric.group) {
    case telemetry::MetricGroup::kVmstat:
    case telemetry::MetricGroup::kMeminfo:
      intensity = character_.memory_footprint;
      break;
    case telemetry::MetricGroup::kNic:
      intensity = character_.network_intensity;
      break;
    case telemetry::MetricGroup::kCpu:
      intensity = character_.cpu_intensity;
      break;
    case telemetry::MetricGroup::kOther:
      intensity = 0.3;
      break;
  }

  // Stable per-(app, metric) variation spreads applications apart so that
  // levels are distinct even for apps with similar characters.
  const double u_level = stable_uniform(name_, metric.name, 1);
  const double level_factor = 0.35 + 1.3 * u_level;

  // Input scaling: a hash decides whether this (app, metric) pair is
  // input-sensitive at all; the character scales how strongly. Roughly a
  // third of modeled pairs end up input-sensitive, mirroring the paper's
  // observation that fingerprints often — but not always — repeat across
  // input sizes.
  const double u_sensitive = stable_uniform(name_, metric.name, 2);
  double input_factor = 1.0;
  if (character_.input_sensitivity > 0.0 && u_sensitive < 0.45) {
    const double per_step = character_.input_sensitivity *
                            (0.5 + stable_uniform(name_, metric.name, 3));
    input_factor = 1.0 + per_step * static_cast<double>(input_rank(input));
  }

  // MemFree falls when footprint rises; invert its direction so the model
  // stays physically sensible.
  double directed_intensity = 0.3 + 0.9 * intensity;
  if (metric.name == "MemFree_meminfo" || metric.name == "idle_procstat") {
    directed_intensity = 1.5 - intensity;
    input_factor = 2.0 - input_factor;  // more footprint => less free memory
    if (input_factor < 0.2) input_factor = 0.2;
  }

  spec.base =
      metric.typical_scale * directed_intensity * level_factor * input_factor;

  // Rank-0 asymmetry on memory metrics (master rank IO buffers, setup).
  if (node_id == 0 && character_.node_asymmetry != 0.0 &&
      (metric.group == telemetry::MetricGroup::kVmstat ||
       metric.group == telemetry::MetricGroup::kMeminfo)) {
    spec.base *= 1.0 + character_.node_asymmetry;
  }

  spec.noise = group_noise(metric.group, character_.noise_factor);
  if (metric.group == telemetry::MetricGroup::kNic) {
    spec.periodic_amplitude = 0.02 + 0.05 * character_.network_intensity;
    spec.period_seconds = character_.iteration_period;
  }
  spec.integer_valued = true;
  return spec;
}

}  // namespace efd::sim
