#include "sim/miniapp_models.hpp"

namespace efd::sim {

namespace {

MetricOverride flat_inputs(std::initializer_list<std::string> inputs, double level) {
  MetricOverride ov;
  for (const std::string& input : inputs) ov.base_by_input.emplace(input, level);
  return ov;
}

}  // namespace

CoMdModel::CoMdModel()
    : AppModel("CoMD",
               AppCharacter{
                   .memory_footprint = 0.60,
                   .network_intensity = 0.40,  // halo exchange of atom lists
                   .cpu_intensity = 0.90,      // force kernels dominate
                   .io_intensity = 0.02,
                   .iteration_period = 3.0,
                   .input_sensitivity = 0.15,
                   .node_asymmetry = 0.0,
                   .noise_factor = 1.0,
               },
               {"X", "Y", "Z"}) {
  override_metric("nr_mapped_vmstat", flat_inputs({"X", "Y", "Z"}, 7200.0));
}

MiniGhostModel::MiniGhostModel()
    : AppModel("miniGhost",
               AppCharacter{
                   .memory_footprint = 0.68,
                   .network_intensity = 0.65,  // bulk-synchronous halos
                   .cpu_intensity = 0.70,
                   .io_intensity = 0.05,
                   .iteration_period = 7.0,
                   .input_sensitivity = 0.15,
                   .node_asymmetry = 0.0,
                   .noise_factor = 1.0,
               },
               {"X", "Y", "Z", "L"}) {
  // Table 4: miniGhost 7900 on every node, every input — the flat,
  // input-invariant profile that makes unknown-input recognition work.
  override_metric("nr_mapped_vmstat", flat_inputs({"X", "Y", "Z", "L"}, 7900.0));
}

MiniAmrModel::MiniAmrModel()
    : AppModel("miniAMR",
               AppCharacter{
                   .memory_footprint = 0.70,
                   .network_intensity = 0.55,
                   .cpu_intensity = 0.65,
                   .io_intensity = 0.08,
                   .iteration_period = 15.0,  // refinement epochs
                   .input_sensitivity = 0.80, // AMR: strongly input-dependent
                   .node_asymmetry = 0.0,
                   .noise_factor = 1.3,       // refinement adds variation
               },
               {"X", "Y", "Z", "L"}) {
  // Table 4: 7800 (X), 8000 (Y), ~11000 (Z). The Z level sits just above
  // a depth-2 bucket boundary (10500), so its per-execution means usually
  // round to 11000 but occasionally to 10000 — reproducing the
  // duplicate-fingerprint rows of Table 4 ("measurement variation and
  // system noise").
  MetricOverride ov;
  ov.base_by_input = {{"X", 7800.0}, {"Y", 8030.0}, {"Z", 10530.0}, {"L", 12400.0}};
  ov.noise_rel = 0.002;  // larger than the memory-metric default
  override_metric("nr_mapped_vmstat", std::move(ov));
}

MiniMdModel::MiniMdModel()
    : AppModel("miniMD",
               AppCharacter{
                   .memory_footprint = 0.45,
                   .network_intensity = 0.35,
                   .cpu_intensity = 0.92,
                   .io_intensity = 0.02,
                   .iteration_period = 2.5,
                   .input_sensitivity = 0.15,
                   .node_asymmetry = 0.0,
                   .noise_factor = 1.0,
               },
               {"X", "Y", "Z", "L"}) {
  override_metric("nr_mapped_vmstat",
                  flat_inputs({"X", "Y", "Z", "L"}, 6500.0));
}

KripkeModel::KripkeModel()
    : AppModel("kripke",
               AppCharacter{
                   .memory_footprint = 0.85,  // angular flux storage
                   .network_intensity = 0.60, // sweep pipeline
                   .cpu_intensity = 0.75,
                   .io_intensity = 0.05,
                   .iteration_period = 9.0,
                   .input_sensitivity = 0.25,
                   .node_asymmetry = 0.0,
                   .noise_factor = 1.0,
               },
               {"X", "Y", "Z", "L"}) {
  override_metric("nr_mapped_vmstat",
                  flat_inputs({"X", "Y", "Z", "L"}, 8800.0));
}

}  // namespace efd::sim
