#pragma once
/// \file miniapp_models.hpp
/// \brief Behaviour models of the five DOE proxy/mini-applications in the
/// paper's dataset (CoMD, miniGhost, miniAMR, miniMD, kripke).
///
/// miniGhost, miniAMR, miniMD, and kripke are the starred applications in
/// Table 2: they were additionally executed with the large input "L" on
/// 32 nodes (6 repetitions). miniAMR is the paper's canonical example of
/// an *input-sensitive* application — adaptive mesh refinement changes the
/// footprint with the input (7800 / 8000 / ~11000 pages for X / Y / Z in
/// Table 4, with Z producing more than one fingerprint per node due to
/// refinement-driven measurement variation).

#include "sim/app_model.hpp"

namespace efd::sim {

/// CoMD — classical molecular dynamics proxy (Cell-list Lennard-Jones /
/// EAM). Compact, input-invariant working set.
class CoMdModel final : public AppModel {
 public:
  CoMdModel();
};

/// miniGhost — 3D finite-difference stencil with halo exchange (the proxy
/// for CTH). Regular bulk-synchronous communication; footprint invariant
/// across inputs, including the 32-node L runs.
class MiniGhostModel final : public AppModel {
 public:
  MiniGhostModel();
};

/// miniAMR — adaptive mesh refinement proxy. The refinement history makes
/// memory metrics strongly input-dependent and adds within-input
/// variation: its Z input produces two distinct depth-2 fingerprints
/// (11000 and 10000) in Table 4.
class MiniAmrModel final : public AppModel {
 public:
  MiniAmrModel();
};

/// miniMD — molecular dynamics proxy from Mantevo (LAMMPS kernel).
class MiniMdModel final : public AppModel {
 public:
  MiniMdModel();
};

/// Kripke — 3D Sn deterministic particle transport proxy. Sweeps across
/// the domain give it the largest mapped footprint in the set.
class KripkeModel final : public AppModel {
 public:
  KripkeModel();
};

}  // namespace efd::sim
