#pragma once
/// \file pipeline.hpp
/// \brief The bounded ingestion pipeline: transport → service → verdicts.
///
/// IngestPipeline is the single consumer of a SourceMux — the
/// registered set of SampleSources (TCP, UDP, shared memory, in-process
/// rings) fanned into one polled stream (source_mux.hpp; a single bare
/// SampleSource is wrapped into a private mux for the legacy shape). It
/// polls decoded message envelopes, each stamped with the source it
/// arrived on, dispatches them into a RecognitionService (open/push/
/// close, tagged with the source), drives deferred recognition across a
/// thread pool, periodically sweeps stale streams, and routes finished
/// verdicts back to the (source, connection) each job arrived on — the
/// complete vertical slice from socket bytes to recognition verdict,
/// with per-source loss/throughput accounting the whole way down.
///
/// Every stage is bounded: the transport's queue (its capacity), the
/// service's per-job queues (RecognitionServiceConfig), and the sweep
/// (stale TTL) together guarantee that a misbehaving emitter — too fast,
/// or one that vanishes mid-job — cannot grow service memory without
/// limit. Back-pressure propagates producer-ward at each boundary.
///
/// Durability hooks: with snapshot_path configured, run() periodically
/// captures the service as an EFD-SNAP-V2 base + delta chain (see
/// service_snapshot.hpp and snapshot_chain.hpp): a full base — the
/// Dictionary included — only when the dictionary epoch moved or the
/// chain hit snapshot_chain_limit, an incremental delta otherwise.
/// Every file lands via fsync + atomic rename + parent-directory fsync
/// (write_file_durable), so the chain on disk survives power loss, not
/// just process death. restore_on_start replays base → deltas
/// all-or-nothing before the first poll (legacy V1 files restore too);
/// a broken delta link falls back to the last complete base, loudly.
/// With allow_followers set, kFollowRequest peers become warm standbys:
/// every capture that fits a wire frame is streamed to them as
/// kSnapBase/kSnapDelta and acked once durable on their disk
/// (replication.hpp runs the other end). Restored jobs have
/// no reply connection (their emitter's socket died with the old
/// process); the pipeline re-binds a job's reply channel to the first
/// connection that streams samples (or a close) for it, so a
/// reconnecting emitter gets its verdict on the new connection.
/// Verdicts that completed pre-crash but were never shipped are parked
/// at restore (after passing through on_verdict) and delivered to the
/// first connection that mentions their job — an emitter that re-runs
/// the job may therefore see the verdict twice (at-least-once).
///
/// Live reconfiguration: a kSwapDictionary control frame hot-swaps a
/// retrained dictionary behind the service (when the operator enabled
/// allow_dictionary_swap — it is unauthenticated wire input, like
/// kShutdown) and acks with the new dictionary epoch. A candidate
/// byte-identical to the active dictionary is refused as already-active
/// instead of burning an epoch.
///
/// Closed-loop retraining: with a retrain::RetrainController attached
/// (config.retrain), the pipeline taps its TrafficRecorder on every
/// dispatched open/batch/verdict (sample batches are MOVED in — zero
/// copy on the hot path), checks the retrain triggers at each poll
/// boundary, broadcasts a kRetrainReport frame for every finished cycle
/// to all connections it has seen, and carries the controller's durable
/// state (EFD-RETRAIN-V1) inside the service snapshot's Retrain section
/// so a crash mid-cycle restores the attempt lineage.
///
/// Monitoring scrape: any connection can send kStatsRequest and gets a
/// kStatsReply whose body is a flat "name value" text block covering
/// RecognitionServiceStats, IngestPipelineStats, and (when retraining is
/// attached) RetrainStats + TrafficRecorderStats.
///
/// Threading: run() occupies the calling thread until the source is
/// exhausted, a Shutdown message arrives (when configured), the verdict
/// quota is reached, or stop() is called. start()/join() wrap run() in
/// an internal thread. stats() is safe from any thread.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/online/recognition_service.hpp"
#include "ingest/source_mux.hpp"
#include "ingest/transport.hpp"

namespace efd::util {
class ThreadPool;
}
namespace efd::retrain {
class RetrainController;
}
namespace efd::obs {
class HttpServer;
}

namespace efd::ingest {

class SubscriptionHub;

struct IngestPipelineConfig {
  /// Max wait per poll; bounds stop() latency and sweep cadence jitter.
  std::chrono::milliseconds poll_timeout{50};
  /// Cadence of RecognitionService::sweep_stale_jobs().
  std::chrono::milliseconds sweep_interval{1000};
  /// Stop after delivering this many verdicts (0 = unlimited) — lets
  /// `efd_cli serve` exit deterministically under test harnesses.
  std::uint64_t max_verdicts = 0;
  /// Treat an inbound kShutdown message as a stop request.
  bool stop_on_shutdown_message = true;
  /// Force-close still-open jobs when the source is exhausted, so every
  /// opened job yields a verdict even if its emitter died.
  bool close_jobs_on_end = true;
  /// Observer invoked (on the run() thread) for every verdict, before it
  /// ships to the reply channel — operator logging, metrics export.
  std::function<void(const core::JobVerdict&)> on_verdict;

  /// Snapshot chain root (empty = durability disabled): the base
  /// capture lives here, deltas next to it as "<path>.delta.<id>".
  /// Every write is tmp + fsync + rename + dir fsync, so the file at
  /// any path is always complete or absent — even across power loss.
  std::string snapshot_path;
  /// Deltas per base before the writer forces a fresh full base
  /// (bounds restore replay length and stale-delta disk). 0 = every
  /// capture is a full base — the pre-chain behavior, V2 framing.
  std::uint64_t snapshot_chain_limit = 16;
  /// Wall-clock snapshot cadence (0 = none; checked at poll boundaries).
  std::chrono::milliseconds snapshot_interval{0};
  /// Snapshot after this many verdicts since the last snapshot (0 =
  /// none). Deterministic under test harnesses, unlike the wall clock.
  std::uint64_t snapshot_every_verdicts = 0;
  /// Restore from snapshot_path before the first poll when the file
  /// exists (a missing file is a normal first boot, not an error; a
  /// corrupt file throws SnapshotError out of run()).
  bool restore_on_start = false;
  /// Honor inbound kSwapDictionary control frames. Off by default for
  /// the same reason stop_on_shutdown_message is operator-gated.
  bool allow_dictionary_swap = false;
  /// Observer invoked (on the run() thread) after each snapshot is
  /// durably in place, with the lifetime snapshot count — fault
  /// harnesses script crash points on it.
  std::function<void(std::uint64_t count, const std::string& path)> on_snapshot;

  /// Honor inbound kFollowRequest frames: stream the capture chain to
  /// warm standbys. Unauthenticated wire input (any peer could siphon
  /// the full service state), so operator-gated like allow_*.
  bool allow_followers = false;
  /// External stop flag (the CLI's signal handler). Polled every loop
  /// iteration; when it flips, run() winds down exactly like stop() —
  /// jobs close, the final snapshot lands, run() returns.
  const std::atomic<bool>* external_stop = nullptr;

  /// Closed-loop retraining controller (borrowed; must outlive run()).
  /// Null disables capture, triggering, retrain reports, and the
  /// Retrain snapshot section.
  retrain::RetrainController* retrain = nullptr;

  /// HTTP observability plane (`serve --http PORT`): -1 disables it,
  /// 0 binds an ephemeral port (tests), otherwise the given port on
  /// 127.0.0.1. Serves GET /metrics (Prometheus text), /index (JSON
  /// inventory), and /healthz. The listener starts in the constructor —
  /// before run() — so probes see the endpoint as soon as the process
  /// is up; a bind failure throws out of the constructor.
  int http_port = -1;

  /// Per-subscriber outbound queue bound for verdict pub/sub
  /// (kSubscribe). Full queues drop-and-count; see subscription.hpp.
  std::size_t subscriber_queue_capacity = 1024;
};

struct IngestPipelineStats {
  std::uint64_t envelopes = 0;
  std::uint64_t samples = 0;          ///< samples dispatched into the service
  std::uint64_t jobs_opened = 0;
  std::uint64_t open_rejected = 0;    ///< duplicate job ids
  std::uint64_t jobs_closed = 0;
  std::uint64_t verdicts_delivered = 0;
  std::uint64_t unexpected_messages = 0;  ///< e.g. inbound verdicts
  std::uint64_t sweeps = 0;
  std::uint64_t evicted = 0;          ///< jobs closed by the stale sweep
  std::uint64_t snapshots_written = 0;
  std::uint64_t snapshot_failures = 0;    ///< write errors (serving continues)
  std::uint64_t snapshot_bases = 0;       ///< full base captures written
  std::uint64_t snapshot_deltas = 0;      ///< incremental delta captures
  /// Deltas found on disk at restore but discarded by the loud
  /// base-only fallback (broken link / corrupt delta).
  std::uint64_t restore_deltas_discarded = 0;
  std::uint64_t followers_accepted = 0;   ///< kFollowRequest handshakes served
  std::uint64_t follow_rejected = 0;      ///< gated off or reply-less peer
  std::uint64_t captures_replicated = 0;  ///< capture frames shipped out
  std::uint64_t captures_oversize = 0;    ///< too big for the wire path
  std::uint64_t snap_acks_ok = 0;         ///< follower: capture durable
  std::uint64_t snap_acks_failed = 0;     ///< follower rejected a capture
  /// Why the most recent snapshot write or chain restore failed
  /// (empty = never failed) — the `ingest.snapshot_last_error` scrape
  /// row, so silent durability rot is visible from monitoring.
  std::string snapshot_last_error;
  std::uint64_t jobs_restored = 0;    ///< open streams rebuilt on start
  std::uint64_t jobs_rebound = 0;     ///< restored jobs re-bound to a new peer
  std::uint64_t dictionary_swaps = 0; ///< accepted kSwapDictionary frames
  std::uint64_t swaps_rejected = 0;   ///< disabled, bad blob, or already-active
  std::uint64_t stats_requests = 0;   ///< kStatsRequest frames answered
  std::uint64_t retrain_reports = 0;  ///< kRetrainReport deliveries (fan-out)
  std::uint64_t subscribe_requests = 0;   ///< kSubscribe frames accepted
  std::uint64_t verdict_events = 0;   ///< kVerdictEvent publishes (pre-queue)
};

class IngestPipeline {
 public:
  /// \param service recognition service (borrowed; typically configured
  ///        with deferred = true so push() never blocks the poll loop on
  ///        recognition work).
  /// \param sources the registered source set to consume (borrowed;
  ///        must outlive run()). Register >= 1 source before run().
  /// \param pool workers for deferred recognition (null = inline).
  IngestPipeline(core::RecognitionService& service, SourceMux& sources,
                 IngestPipelineConfig config = {},
                 util::ThreadPool* pool = nullptr);

  /// Legacy single-source shape: wraps \p source in a private mux
  /// (registered as "source", id 0).
  IngestPipeline(core::RecognitionService& service, SampleSource& source,
                 IngestPipelineConfig config = {},
                 util::ThreadPool* pool = nullptr);
  ~IngestPipeline();

  IngestPipeline(const IngestPipeline&) = delete;
  IngestPipeline& operator=(const IngestPipeline&) = delete;

  /// Consumes the source on the calling thread until exhaustion or a
  /// stop condition. Returns the number of verdicts delivered.
  std::uint64_t run();

  /// run() on an internal thread.
  void start();
  /// Requests run() to wind down at the next poll boundary.
  void stop() { stop_.store(true, std::memory_order_release); }
  /// Joins the start() thread (no-op without start()).
  void join();

  IngestPipelineStats stats() const;

  /// The registered source set (per-source counters live here).
  const SourceMux& sources() const noexcept { return *sources_; }

  /// Flat "name value" text block (kStatsReply body / scrape source).
  /// Thread-safe: reads only thread-safe stats snapshots and atomics.
  std::string render_stats_text() const;

  /// JSON inventory for GET /index: live jobs, sources, dictionary
  /// epoch, snapshot-chain and follower state. Thread-safe.
  std::string render_index_json() const;

  /// The HTTP listener's bound port; 0 when config.http_port was -1.
  std::uint16_t http_port() const noexcept;

 private:
  /// Where a job's verdict goes back: the connection it arrived on plus
  /// the source that connection belongs to (per-source accounting).
  struct ReplyRoute {
    std::shared_ptr<VerdictSink> sink;
    SourceId source = 0;
  };

  void dispatch(Envelope& envelope);
  /// Drains service verdicts to their reply sinks; returns count.
  std::uint64_t flush_verdicts();
  /// Points a restored (reply-less) job's verdict at the (source,
  /// connection) now streaming it.
  void maybe_rebind_reply(std::uint64_t job_id,
                          const std::shared_ptr<VerdictSink>& reply,
                          SourceId source);
  /// Ships a parked (restored, completed-pre-crash) verdict to the first
  /// connection that mentions its job.
  void deliver_parked(std::uint64_t job_id,
                      const std::shared_ptr<VerdictSink>& reply,
                      SourceId source);
  /// Captures the service into the snapshot chain (base or delta,
  /// written durably) and streams the capture to live followers.
  void write_snapshot();
  /// Registers a follower and catches it up from its cursor.
  void handle_follow_request(Envelope& envelope);
  /// Records the most recent snapshot/restore failure for the scrape.
  void set_snapshot_error(std::string reason);
  /// Remembers a connection for retrain-report fan-out (run() thread).
  void observe_sink(const std::shared_ptr<VerdictSink>& reply);
  /// Ships finished retrain cycles to every live observed connection.
  void publish_retrain_reports();
  /// Registers a kSubscribe peer with the hub and acks (run() thread).
  void handle_subscribe(Envelope& envelope);
  /// Shared constructor tail: stamps the start time and starts the HTTP
  /// listener when configured (bind failure throws TransportError).
  void init_observability();

  core::RecognitionService& service_;
  /// Legacy single-source wrap (owned); sources_ points at it then.
  std::unique_ptr<SourceMux> owned_mux_;
  SourceMux* sources_;
  IngestPipelineConfig config_;
  util::ThreadPool* pool_;

  std::thread thread_;
  std::atomic<bool> stop_{false};

  /// Reply route per open job (single-consumer state: only touched by
  /// the run() thread).
  std::unordered_map<std::uint64_t, ReplyRoute> replies_;
  /// Restored pending verdicts awaiting their emitter's reconnect
  /// (run() thread only).
  std::unordered_map<std::uint64_t, Message> parked_verdicts_;
  /// Every distinct reply channel seen, for retrain-report broadcast
  /// (run() thread only; expired entries pruned on publish and by an
  /// amortized sweep when the map doubles past its post-sweep size).
  std::unordered_map<VerdictSink*, std::weak_ptr<VerdictSink>> observers_;
  std::size_t observers_sweep_at_ = 64;
  /// Reused per-batch view buffer for push_batch (run() thread only).
  std::vector<core::RecognitionService::SamplePush> scratch_;
  /// Reused per-flush staging for batched verdict delivery (run()
  /// thread only): messages and their routes, index-aligned, so runs of
  /// verdicts bound for the same connection collapse into one
  /// deliver_many() — one writev-style syscall instead of N.
  std::vector<Message> outbound_verdicts_;
  std::vector<ReplyRoute> outbound_routes_;

  /// Snapshot-chain bookkeeping (run() thread only): capture ids and
  /// per-stream digests the incremental writer diffs against.
  core::SnapshotChainState chain_;
  /// In-memory copy of the live chain (current base + its deltas) for
  /// follower catch-up; bytes == nullptr marks a capture too large for
  /// the wire path. Bounded by snapshot_chain_limit.
  struct ChainRecord {
    bool base = false;
    std::uint64_t capture_id = 0;
    std::uint64_t parent_id = 0;
    std::shared_ptr<const std::vector<std::uint8_t>> bytes;
  };
  std::vector<ChainRecord> chain_records_;
  /// Live follower reply channels (run() thread only; expired entries
  /// pruned on every capture broadcast).
  std::vector<std::weak_ptr<VerdictSink>> followers_;

  std::atomic<std::uint64_t> envelopes_{0};
  std::atomic<std::uint64_t> samples_{0};
  std::atomic<std::uint64_t> jobs_opened_{0};
  std::atomic<std::uint64_t> open_rejected_{0};
  std::atomic<std::uint64_t> jobs_closed_{0};
  std::atomic<std::uint64_t> verdicts_delivered_{0};
  std::atomic<std::uint64_t> unexpected_messages_{0};
  std::atomic<std::uint64_t> sweeps_{0};
  std::atomic<std::uint64_t> evicted_{0};
  std::atomic<std::uint64_t> snapshots_written_{0};
  std::atomic<std::uint64_t> snapshot_failures_{0};
  std::atomic<std::uint64_t> snapshot_bases_{0};
  std::atomic<std::uint64_t> snapshot_deltas_{0};
  std::atomic<std::uint64_t> restore_deltas_discarded_{0};
  std::atomic<std::uint64_t> followers_accepted_{0};
  std::atomic<std::uint64_t> follow_rejected_{0};
  std::atomic<std::uint64_t> captures_replicated_{0};
  std::atomic<std::uint64_t> captures_oversize_{0};
  std::atomic<std::uint64_t> snap_acks_ok_{0};
  std::atomic<std::uint64_t> snap_acks_failed_{0};
  /// Guards snapshot_last_error_ (written on the run() thread, read by
  /// stats() from anywhere).
  mutable std::mutex error_mutex_;
  std::string snapshot_last_error_;
  std::atomic<std::uint64_t> jobs_restored_{0};
  std::atomic<std::uint64_t> jobs_rebound_{0};
  std::atomic<std::uint64_t> dictionary_swaps_{0};
  std::atomic<std::uint64_t> swaps_rejected_{0};
  std::atomic<std::uint64_t> stats_requests_{0};
  std::atomic<std::uint64_t> retrain_reports_{0};
  std::atomic<std::uint64_t> subscribe_requests_{0};
  std::atomic<std::uint64_t> verdict_events_{0};
  /// Verdicts delivered when the last snapshot was taken (run() thread).
  std::uint64_t verdicts_at_last_snapshot_ = 0;

  /// Atomic mirrors of run()-thread-only chain/follower bookkeeping so
  /// the HTTP threads can report them without touching chain_records_.
  std::atomic<std::uint64_t> chain_length_{0};
  std::atomic<std::uint64_t> chain_last_capture_id_{0};
  std::atomic<std::uint64_t> followers_live_{0};

  /// Construction time (uptime.seconds scrape row).
  std::int64_t start_ns_ = 0;

  /// Verdict pub/sub hub (created lazily on the first kSubscribe; the
  /// pointer itself is published via atomic for stats readers).
  std::unique_ptr<SubscriptionHub> hub_;
  std::atomic<SubscriptionHub*> hub_ptr_{nullptr};

  /// HTTP observability listener (config.http_port >= 0). Declared last
  /// so it is destroyed first — its handler threads call back into the
  /// pipeline's render methods.
  std::unique_ptr<obs::HttpServer> http_;
};

/// Builds a kVerdict message from a finished job's result.
Message make_verdict_message(const core::JobVerdict& verdict);

}  // namespace efd::ingest
