/// \file replication.cpp
/// \brief Warm-standby follower loop (design: replication.hpp).

#include "ingest/replication.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <exception>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <thread>
#include <utility>

#include "core/online/service_snapshot.hpp"
#include "ingest/snapshot_chain.hpp"
#include "ingest/tcp_transport.hpp"

namespace efd::ingest {

namespace {

using Clock = std::chrono::steady_clock;

/// The EFD-SNAP-V2 envelope at the head of an in-memory capture blob —
/// the frame's ids must agree with it before anything touches disk.
std::optional<CaptureEnvelope> blob_envelope(
    const std::vector<std::uint8_t>& blob) {
  constexpr std::size_t kHead = core::kSnapshotMagicBytes + 1 + 8 + 8;
  if (blob.size() < kHead) return std::nullopt;
  if (!std::equal(core::kSnapshotMagicV2,
                  core::kSnapshotMagicV2 + core::kSnapshotMagicBytes,
                  blob.begin())) {
    return std::nullopt;
  }
  CaptureEnvelope out;
  out.kind = static_cast<core::CaptureKind>(blob[core::kSnapshotMagicBytes]);
  for (int i = 0; i < 8; ++i) {
    const std::size_t at = core::kSnapshotMagicBytes + 1;
    out.capture_id |= static_cast<std::uint64_t>(blob[at + i]) << (8 * i);
    out.parent_id |= static_cast<std::uint64_t>(blob[at + 8 + i]) << (8 * i);
  }
  return out;
}

}  // namespace

ReplicationFollower::ReplicationFollower(FollowerConfig config)
    : config_(std::move(config)) {
  // Resume from whatever is already durable locally: a restarted
  // follower re-handshakes from its newest capture instead of 0.
  if (const auto deltas = list_chain_deltas(config_.snapshot_path);
      !deltas.empty()) {
    stats_.last_capture_id = deltas.back().capture_id;
  } else if (const auto envelope =
                 peek_capture_envelope(config_.snapshot_path)) {
    stats_.last_capture_id = envelope->capture_id;
  }
}

bool ReplicationFollower::should_stop() const {
  return config_.external_stop != nullptr &&
         config_.external_stop->load(std::memory_order_relaxed);
}

bool ReplicationFollower::promotable() const {
  // A V1 base is promotable too — the chain restore dispatches on magic.
  if (peek_capture_envelope(config_.snapshot_path).has_value()) return true;
  std::ifstream probe(config_.snapshot_path, std::ios::binary);
  return static_cast<bool>(probe);
}

void ReplicationFollower::note(const std::string& line) const {
  if (config_.log) config_.log(line);
}

std::string ReplicationFollower::stats_text() const {
  std::ostringstream out;
  out << "follower.captures_applied " << stats_.captures_applied << "\n"
      << "follower.bases_applied " << stats_.bases_applied << "\n"
      << "follower.captures_rejected " << stats_.captures_rejected << "\n"
      << "follower.reconnects " << stats_.reconnects << "\n"
      << "follower.messages_shed " << stats_.messages_shed << "\n"
      << "follower.last_capture_id " << stats_.last_capture_id << "\n";
  return out.str();
}

bool ReplicationFollower::poll_control(std::chrono::milliseconds timeout) {
  if (config_.control == nullptr) {
    if (timeout.count() > 0) std::this_thread::sleep_for(timeout);
    return false;
  }
  control_scratch_.clear();
  config_.control->poll(control_scratch_, timeout);
  bool promote = false;
  for (Envelope& envelope : control_scratch_) {
    switch (envelope.message.type) {
      case MessageType::kPromote:
        promote = true;
        if (envelope.reply) {
          envelope.reply->deliver(
              make_promote_ack(true, stats_.last_capture_id));
        }
        break;
      case MessageType::kStatsRequest:
        if (envelope.reply) {
          envelope.reply->deliver(make_stats_reply(stats_text()));
        }
        break;
      default:
        // A follower serves no jobs: samples, swaps, anything else on
        // the control listener is shed (and visible in the stats).
        ++stats_.messages_shed;
        break;
    }
  }
  return promote;
}

ReplicationFollower::Outcome ReplicationFollower::run() {
  std::optional<Clock::time_point> link_down_since;
  bool connected_before = false;

  while (!should_stop()) {
    // ---- (Re)connect + cursor handshake -----------------------------
    std::unique_ptr<TcpClient> leader;
    try {
      leader = std::make_unique<TcpClient>(config_.leader_host,
                                           config_.leader_port);
      leader->send(make_follow_request(stats_.last_capture_id));
    } catch (const TransportError&) {
      leader.reset();
    }

    if (leader == nullptr) {
      if (!link_down_since) link_down_since = Clock::now();
      if (config_.promote_grace.count() > 0 &&
          Clock::now() - *link_down_since >= config_.promote_grace &&
          promotable()) {
        note("follower: leader link down past grace period; promoting from "
             "local chain (last capture " +
             std::to_string(stats_.last_capture_id) + ")");
        return Outcome::kPromoted;
      }
      if (poll_control(config_.reconnect_interval)) return Outcome::kPromoted;
      continue;
    }

    if (connected_before) ++stats_.reconnects;
    connected_before = true;
    link_down_since.reset();
    note("follower: connected to leader " + config_.leader_host + ":" +
         std::to_string(config_.leader_port) + ", resuming from capture " +
         std::to_string(stats_.last_capture_id));

    // ---- Mirror the capture stream ----------------------------------
    bool link_alive = true;
    while (link_alive && !should_stop()) {
      Message message;
      switch (leader->receive_status(message, config_.poll_interval)) {
        case TcpClient::ReceiveStatus::kClosed:
          link_alive = false;
          break;
        case TcpClient::ReceiveStatus::kTimeout:
          break;
        case TcpClient::ReceiveStatus::kMessage: {
          if (message.type != MessageType::kSnapBase &&
              message.type != MessageType::kSnapDelta) {
            ++stats_.messages_shed;
            break;
          }
          std::string error;
          const bool base = message.type == MessageType::kSnapBase;
          if (!apply_capture(message, base, &error)) {
            ++stats_.captures_rejected;
            note("follower: rejected " +
                 std::string(base ? "base" : "delta") + " capture " +
                 std::to_string(message.capture_id) + ": " + error);
            try {
              leader->send(make_snap_ack(false, message.capture_id, error));
            } catch (const TransportError&) {
            }
            // A rejected delta usually means our cursor and the
            // leader's stream disagree — drop the link and
            // re-handshake from the durable local cursor.
            link_alive = false;
            break;
          }
          stats_.last_capture_id = message.capture_id;
          ++stats_.captures_applied;
          if (base) ++stats_.bases_applied;
          try {
            leader->send(make_snap_ack(true, message.capture_id));
          } catch (const TransportError&) {
            link_alive = false;
          }
          break;
        }
      }
      if (poll_control(std::chrono::milliseconds(0))) {
        return Outcome::kPromoted;
      }
    }
    link_down_since = Clock::now();
    note("follower: leader link lost");
  }
  return Outcome::kStopped;
}

bool ReplicationFollower::apply_capture(const Message& message, bool base,
                                        std::string* error) {
  // 1. The blob must be a well-formed V2 envelope agreeing with the
  //    frame's routing fields — never persist a capture the leader
  //    itself is confused about.
  const auto envelope = blob_envelope(message.snapshot_blob);
  if (!envelope) {
    *error = "capture blob is not EFD-SNAP-V2";
    return false;
  }
  const auto expected_kind =
      base ? core::CaptureKind::kBase : core::CaptureKind::kDelta;
  if (envelope->kind != expected_kind ||
      envelope->capture_id != message.capture_id ||
      envelope->parent_id != message.parent_id) {
    *error = "frame/envelope mismatch";
    return false;
  }
  if (!base && message.parent_id != stats_.last_capture_id) {
    *error = "delta parent " + std::to_string(message.parent_id) +
             " is not our newest capture " +
             std::to_string(stats_.last_capture_id);
    return false;
  }

  // 2. Durable persist. A base resets the local chain: superseded
  //    deltas are deleted AFTER the base replaces the file, so a crash
  //    in between leaves stale deltas that no longer chain — which the
  //    restore detects and discards loudly in favor of the new base.
  const std::string target =
      base ? config_.snapshot_path
           : delta_path(config_.snapshot_path, message.capture_id);
  if (!write_file_durable(target, message.snapshot_blob.data(),
                          message.snapshot_blob.size(), error)) {
    return false;
  }
  if (base) remove_chain_deltas(config_.snapshot_path);

  // 3. Shadow validation: restore the WHOLE durable local chain into a
  //    throwaway service. This proves the bytes on disk — not the bytes
  //    in memory — replay end to end before we ack.
  if (config_.shadow_factory) {
    try {
      auto shadow = config_.shadow_factory();
      const ChainRestoreResult check =
          restore_service_from_chain(*shadow, config_.snapshot_path);
      if (!check.fallback_error.empty()) {
        *error = "chain validation fell back: " + check.fallback_error;
        if (!base) std::remove(target.c_str());
        return false;
      }
    } catch (const std::exception& failure) {
      *error = std::string("chain validation failed: ") + failure.what();
      if (!base) std::remove(target.c_str());
      return false;
    }
  }
  return true;
}

}  // namespace efd::ingest
