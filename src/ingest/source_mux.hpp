#pragma once
/// \file source_mux.hpp
/// \brief N registered sample sources → one polled stream, with
/// per-source identity and accounting.
///
/// A production fingerprinting endpoint ingests from many emitters at
/// once: per-node samplers over lossy UDP, co-located daemons over a
/// shared-memory ring, remote replayers over TCP. SourceMux is the
/// fan-in: any number of SampleSources register under a stable name,
/// each gets a dense SourceId, and the mux presents them to the ingest
/// pipeline as one SampleSource whose envelopes are stamped with the
/// source they arrived on — so verdict routing, traffic capture, and the
/// stats scrape all stay per-source after the merge.
///
/// Poll discipline (one consumer — the pipeline):
///  1. A non-blocking sweep over every live source, starting at a
///     rotating index so no source is structurally favored. Anything
///     ready is tagged and returned immediately.
///  2. Only if nothing was ready anywhere, each live source in turn is
///     polled with an equal slice of the remaining timeout (>= 1 ms), so
///     the worst-case idle latency stays bounded by the caller's
///     timeout while a message on ANY source wakes the loop within one
///     slice.
///
/// Exhaustion is collective: a source whose poll() returns false is
/// retired (its final batch is still delivered), and the mux reports
/// exhaustion only once every registered source has retired — one
/// replayer hanging up must not stop service for the others.
///
/// Per-source counters: envelopes/samples are counted at poll time,
/// verdicts are reported back by the pipeline (note_verdict), and the
/// transport's own TransportCounters (frames, decode errors, drops,
/// gaps, back-pressure) are sampled on demand — the `source.<id>.*`
/// rows of the kStatsReply scrape. restored cursors (per-source
/// envelope counts carried by EFD-SNAP-V1) seed the envelope counter so
/// monitoring stays continuous across a restart.
///
/// Thread-safety: poll() belongs to one consumer thread; register/
/// note_verdict/seed_cursor/stats are safe from any thread.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "ingest/buffer_pool.hpp"
#include "ingest/transport.hpp"

namespace efd::ingest {

/// One registered source's aggregate view (stats scrape material).
struct SourceMuxStats {
  SourceId id = 0;
  std::string name;                ///< registration name (stable)
  std::uint64_t envelopes = 0;     ///< messages dispatched (incl. restored cursor)
  std::uint64_t samples = 0;       ///< samples inside those messages
  std::uint64_t verdicts = 0;      ///< verdicts routed back to this source
  std::uint64_t restored_cursor = 0; ///< envelope count seeded from a snapshot
  bool exhausted = false;          ///< source retired (closed and drained)
  TransportCounters transport;     ///< the source's own loss/pressure view
  /// Sample-buffer recycling effectiveness of the source's own pool
  /// (hit/miss/discard); meaningful only when has_pool (servers that
  /// decode frames own one; has_pool false = global-pool source).
  SampleBufferPool::Stats pool{};
  bool has_pool = false;
};

class SourceMux final : public SampleSource {
 public:
  SourceMux() = default;

  SourceMux(const SourceMux&) = delete;
  SourceMux& operator=(const SourceMux&) = delete;

  /// Registers a source under a stable \p name (the snapshot cursor
  /// key — keep it identical across restarts). A name already taken is
  /// disambiguated deterministically ("name#<id>"), so duplicate
  /// registrations (e.g. `--listen tcp:0` twice) cannot make cursor
  /// restore misattribute one source's history to another. Returns the
  /// dense id. \p source is borrowed and must outlive the mux.
  SourceId add_source(std::string name, SampleSource& source);

  std::size_t source_count() const;

  /// Polls the registered set (see the poll discipline above). Every
  /// appended envelope carries the id of the source it arrived on.
  bool poll(std::vector<Envelope>& out,
            std::chrono::milliseconds timeout) override;

  /// Pipeline report: one verdict was delivered for a job that arrived
  /// on \p id. Unknown ids are ignored.
  void note_verdict(SourceId id);

  /// Seeds the envelope counter of the source registered under \p name
  /// from a restored snapshot cursor, so lifetime per-source counters
  /// are continuous across a restart. Returns false when no source of
  /// that name is registered (the operator changed the topology — the
  /// cursor is dropped, never misattributed).
  bool seed_cursor(const std::string& name, std::uint64_t cursor);

  /// Aggregated TransportCounters across every registered source.
  TransportCounters transport_counters() const override;

  /// Per-source snapshot, in registration (id) order.
  std::vector<SourceMuxStats> stats() const;

 private:
  struct Entry {
    SourceId id = 0;
    std::string name;
    SampleSource* source = nullptr;
    std::atomic<std::uint64_t> envelopes{0};
    std::atomic<std::uint64_t> samples{0};
    std::atomic<std::uint64_t> verdicts{0};
    std::atomic<std::uint64_t> restored_cursor{0};
    std::atomic<bool> exhausted{false};
  };

  /// Polls one entry, tags + counts its envelopes, retires it on
  /// exhaustion. Returns the number of envelopes appended.
  std::size_t poll_entry(Entry& entry, std::vector<Envelope>& out,
                         std::chrono::milliseconds timeout);

  mutable std::mutex mutex_;  ///< guards entries_ growth
  std::vector<std::shared_ptr<Entry>> entries_;
  std::atomic<std::uint64_t> generation_{0};  ///< bumped per registration

  // Consumer-thread poll state. Entries are never removed and the
  // shared_ptrs in entries_ pin them for the mux's lifetime, so the
  // cached raw pointers stay valid; the cache refreshes (one brief
  // lock) only when the registration generation moved — the hot poll
  // loop pays no per-call allocation or refcount traffic.
  std::vector<Entry*> cached_entries_;
  std::uint64_t cached_generation_ = 0;
  std::vector<Entry*> live_scratch_;
  std::size_t rotate_ = 0;  ///< poll fairness cursor (consumer thread)
};

}  // namespace efd::ingest
