#include "ingest/source_mux.hpp"

#include <algorithm>
#include <utility>

namespace efd::ingest {

SourceId SourceMux::add_source(std::string name, SampleSource& source) {
  std::lock_guard lock(mutex_);
  auto entry = std::make_shared<Entry>();
  entry->id = static_cast<SourceId>(entries_.size());
  // Names key the snapshot cursors: a duplicate (e.g. `--listen tcp:0`
  // twice) would make seed_cursor misattribute one source's restored
  // count to the other. Disambiguate deterministically by id, so the
  // same command line re-derives the same names on restart.
  const auto taken = [this](const std::string& candidate) {
    for (const auto& existing : entries_) {
      if (existing->name == candidate) return true;
    }
    return false;
  };
  if (taken(name)) {
    std::string candidate;
    for (SourceId suffix = entry->id; ; ++suffix) {
      candidate = name + "#" + std::to_string(suffix);
      if (!taken(candidate)) break;
    }
    name = std::move(candidate);
  }
  entry->name = std::move(name);
  entry->source = &source;
  entries_.push_back(std::move(entry));
  generation_.fetch_add(1, std::memory_order_release);
  return entries_.back()->id;
}

std::size_t SourceMux::source_count() const {
  std::lock_guard lock(mutex_);
  return entries_.size();
}

std::size_t SourceMux::poll_entry(Entry& entry, std::vector<Envelope>& out,
                                  std::chrono::milliseconds timeout) {
  const std::size_t before = out.size();
  const bool live = entry.source->poll(out, timeout);
  for (std::size_t i = before; i < out.size(); ++i) {
    out[i].source = entry.id;
    entry.envelopes.fetch_add(1, std::memory_order_relaxed);
    entry.samples.fetch_add(out[i].message.samples.size(),
                            std::memory_order_relaxed);
  }
  if (!live) {
    // Retired: its final batch (if any) was delivered above; the source
    // contract guarantees nothing more will ever appear.
    entry.exhausted.store(true, std::memory_order_release);
  }
  return out.size() - before;
}

bool SourceMux::poll(std::vector<Envelope>& out,
                     std::chrono::milliseconds timeout) {
  // Refresh the consumer-thread entry cache only when a registration
  // happened — the hot loop polls with zero allocation/refcounting.
  if (cached_generation_ != generation_.load(std::memory_order_acquire)) {
    std::lock_guard lock(mutex_);
    cached_entries_.clear();
    for (const auto& entry : entries_) cached_entries_.push_back(entry.get());
    cached_generation_ = generation_.load(std::memory_order_relaxed);
  }
  const std::vector<Entry*>& entries = cached_entries_;
  if (entries.empty()) return false;  // nothing registered: exhausted

  std::vector<Entry*>& live = live_scratch_;
  live.clear();
  // Rotate the sweep's starting index so a chatty low-id source cannot
  // structurally starve the others of the "first look".
  const std::size_t start = rotate_++;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    Entry& entry = *entries[(start + i) % entries.size()];
    if (!entry.exhausted.load(std::memory_order_acquire)) {
      live.push_back(&entry);
    }
  }
  if (live.empty()) return false;

  // Pass 1: non-blocking sweep — drain whatever is already waiting on
  // any source.
  std::size_t appended = 0;
  for (Entry* entry : live) {
    appended += poll_entry(*entry, out, std::chrono::milliseconds(0));
  }
  if (appended > 0) return true;

  // Pass 2: nothing ready anywhere — give each still-live source an
  // equal slice of the timeout (>= 1 ms), returning as soon as one
  // yields. Sources later in this round get the first look next call.
  const auto slice = std::max<std::chrono::milliseconds>(
      std::chrono::milliseconds(1),
      timeout / static_cast<long>(std::max<std::size_t>(live.size(), 1)));
  bool any_live = false;
  for (Entry* entry : live) {
    if (entry->exhausted.load(std::memory_order_acquire)) continue;
    appended += poll_entry(*entry, out, slice);
    any_live |= !entry->exhausted.load(std::memory_order_acquire);
    if (appended > 0) return true;
  }
  if (any_live) return true;
  // Everything retired this round; report exhaustion only when no
  // registered source can ever produce again.
  for (const auto& entry : entries) {
    if (!entry->exhausted.load(std::memory_order_acquire)) return true;
  }
  return false;
}

void SourceMux::note_verdict(SourceId id) {
  std::lock_guard lock(mutex_);
  if (id < entries_.size()) {
    entries_[id]->verdicts.fetch_add(1, std::memory_order_relaxed);
  }
}

bool SourceMux::seed_cursor(const std::string& name, std::uint64_t cursor) {
  std::lock_guard lock(mutex_);
  for (const auto& entry : entries_) {
    if (entry->name == name) {
      entry->restored_cursor.store(cursor, std::memory_order_relaxed);
      entry->envelopes.fetch_add(cursor, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

TransportCounters SourceMux::transport_counters() const {
  TransportCounters total;
  for (const SourceMuxStats& source : stats()) {
    total.frames += source.transport.frames;
    total.decode_errors += source.transport.decode_errors;
    total.drops += source.transport.drops;
    total.gaps += source.transport.gaps;
    total.blocked += source.transport.blocked;
    total.retransmits += source.transport.retransmits;
  }
  return total;
}

std::vector<SourceMuxStats> SourceMux::stats() const {
  std::vector<std::shared_ptr<Entry>> entries;
  {
    std::lock_guard lock(mutex_);
    entries = entries_;
  }
  std::vector<SourceMuxStats> out;
  out.reserve(entries.size());
  for (const auto& entry : entries) {
    SourceMuxStats stats;
    stats.id = entry->id;
    stats.name = entry->name;
    stats.envelopes = entry->envelopes.load(std::memory_order_relaxed);
    stats.samples = entry->samples.load(std::memory_order_relaxed);
    stats.verdicts = entry->verdicts.load(std::memory_order_relaxed);
    stats.restored_cursor =
        entry->restored_cursor.load(std::memory_order_relaxed);
    stats.exhausted = entry->exhausted.load(std::memory_order_acquire);
    stats.transport = entry->source->transport_counters();
    if (const SampleBufferPool* pool = entry->source->buffer_pool()) {
      stats.pool = pool->stats();
      stats.has_pool = true;
    }
    out.push_back(std::move(stats));
  }
  return out;
}

}  // namespace efd::ingest
