#include "ingest/shm_transport.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <new>
#include <thread>
#include <utility>

namespace efd::ingest {

namespace {

using Clock = std::chrono::steady_clock;

/// Copies \p size bytes into a ring at absolute cursor \p pos (wraps).
void ring_write(std::uint8_t* ring, std::uint32_t capacity, std::uint64_t pos,
                const std::uint8_t* data, std::size_t size) {
  const std::size_t at = static_cast<std::size_t>(pos % capacity);
  const std::size_t first = std::min<std::size_t>(size, capacity - at);
  std::memcpy(ring + at, data, first);
  if (first < size) std::memcpy(ring, data + first, size - first);
}

/// Copies \p size bytes out of a ring at absolute cursor \p pos (wraps).
void ring_read(const std::uint8_t* ring, std::uint32_t capacity,
               std::uint64_t pos, std::uint8_t* data, std::size_t size) {
  const std::size_t at = static_cast<std::size_t>(pos % capacity);
  const std::size_t first = std::min<std::size_t>(size, capacity - at);
  std::memcpy(data, ring + at, first);
  if (first < size) std::memcpy(data + first, ring, size - first);
}

/// Millisecond sleep unit of every waiting side: monitoring cadence,
/// not a spin target.
void wait_tick() { std::this_thread::sleep_for(std::chrono::milliseconds(1)); }

/// CLOCK_MONOTONIC ns — comparable across the two processes sharing the
/// segment (std::chrono::steady_clock is CLOCK_MONOTONIC on Linux).
std::int64_t monotonic_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             Clock::now().time_since_epoch())
      .count();
}

/// A consumer silent past this is presumed dead. It refreshes every
/// poll (millisecond cadence when idle), so the margin is generous —
/// wide enough to ride out the poll loop's occasional synchronous work
/// (a large snapshot write or boot-time restore) without declaring a
/// live server dead under a blocked producer.
constexpr std::int64_t kConsumerStaleNs = 30'000'000'000;

/// True when \p segment_name holds an EFD-SHM-V1 segment whose consumer
/// heartbeat is fresh — i.e. a live server owns it. Anything else
/// (missing, undersized, foreign magic, stale or never-set heartbeat)
/// is safe to replace.
bool segment_has_live_consumer(const std::string& segment_name) {
  const int fd = ::shm_open(segment_name.c_str(), O_RDWR, 0600);
  if (fd < 0) return false;
  struct stat info{};
  bool live = false;
  if (::fstat(fd, &info) == 0 &&
      static_cast<std::size_t>(info.st_size) >= sizeof(ShmHeader)) {
    void* mapping = ::mmap(nullptr, sizeof(ShmHeader),
                           PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
    if (mapping != MAP_FAILED) {
      const auto* header = static_cast<const ShmHeader*>(mapping);
      if (header->magic == kShmMagic) {
        const std::int64_t heartbeat =
            header->consumer_heartbeat_ns.load(std::memory_order_acquire);
        live = heartbeat != 0 &&
               monotonic_ns() - heartbeat <= kConsumerStaleNs;
      }
      ::munmap(mapping, sizeof(ShmHeader));
    }
  }
  ::close(fd);
  return live;
}

}  // namespace

std::string shm_segment_name(const std::string& name) {
  std::string out = "/efd_";
  for (const char c : name) {
    out += (std::isalnum(static_cast<unsigned char>(c)) != 0) ? c : '_';
  }
  return out;
}

ShmRegion::ShmRegion(const std::string& name, bool create,
                     std::uint32_t inbound_capacity,
                     std::uint32_t outbound_capacity, int attach_timeout_ms)
    : segment_name_(shm_segment_name(name)), owner_(create) {
  int fd = -1;
  if (create) {
    if (inbound_capacity == 0 || outbound_capacity == 0) {
      throw TransportError("shm ring capacities must be > 0");
    }
    // A stale same-name segment (crashed predecessor) must not leak
    // into this serving lifetime — but a segment whose consumer
    // heartbeat is FRESH belongs to a live server, and replacing it
    // would silently hijack that endpoint (its clients re-attach here,
    // the old process keeps polling an orphan). Probe before unlinking.
    fd = ::shm_open(segment_name_.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
    if (fd < 0 && errno == EEXIST) {
      if (segment_has_live_consumer(segment_name_)) {
        throw TransportError("shm segment " + segment_name_ +
                             " is already served by a live process");
      }
      ::shm_unlink(segment_name_.c_str());
      fd = ::shm_open(segment_name_.c_str(), O_CREAT | O_EXCL | O_RDWR,
                      0600);
    }
    if (fd < 0) {
      throw TransportError("shm_open(create " + segment_name_ +
                           "): " + std::strerror(errno));
    }
    mapped_bytes_ = sizeof(ShmHeader) + inbound_capacity + outbound_capacity;
    if (::ftruncate(fd, static_cast<off_t>(mapped_bytes_)) != 0) {
      const std::string reason = std::strerror(errno);
      ::close(fd);
      ::shm_unlink(segment_name_.c_str());
      throw TransportError("ftruncate " + segment_name_ + ": " + reason);
    }
  } else {
    const auto deadline = Clock::now() + std::chrono::milliseconds(
                                             std::max(attach_timeout_ms, 0));
    for (;;) {
      fd = ::shm_open(segment_name_.c_str(), O_RDWR, 0600);
      if (fd >= 0) {
        struct stat info{};
        if (::fstat(fd, &info) == 0 &&
            static_cast<std::size_t>(info.st_size) > sizeof(ShmHeader)) {
          mapped_bytes_ = static_cast<std::size_t>(info.st_size);
          break;
        }
        ::close(fd);
        fd = -1;
      }
      if (Clock::now() >= deadline) {
        throw TransportError("shm segment " + segment_name_ +
                             " not available");
      }
      wait_tick();
    }
  }

  mapping_ = ::mmap(nullptr, mapped_bytes_, PROT_READ | PROT_WRITE,
                    MAP_SHARED, fd, 0);
  ::close(fd);  // the mapping keeps the segment alive
  if (mapping_ == MAP_FAILED) {
    mapping_ = nullptr;
    if (owner_) ::shm_unlink(segment_name_.c_str());
    throw TransportError("mmap " + segment_name_ + ": " +
                         std::strerror(errno));
  }

  if (create) {
    header_ = new (mapping_) ShmHeader();
    // Heartbeat before magic: a concurrent same-name creator probes
    // liveness as (magic && fresh heartbeat), so once it can see the
    // magic it also sees a live heartbeat — shrinking the double-start
    // window in which it could unlink this segment to nothing useful.
    header_->consumer_heartbeat_ns.store(monotonic_ns(),
                                         std::memory_order_release);
    header_->magic = kShmMagic;
    header_->version = kShmVersion;
    header_->inbound_capacity = inbound_capacity;
    header_->outbound_capacity = outbound_capacity;
  } else {
    header_ = static_cast<ShmHeader*>(mapping_);
    const auto deadline = Clock::now() + std::chrono::milliseconds(
                                             std::max(attach_timeout_ms, 0));
    while (header_->ready.load(std::memory_order_acquire) == 0) {
      if (Clock::now() >= deadline) {
        throw TransportError("shm segment " + segment_name_ + " never ready");
      }
      wait_tick();
    }
    if (header_->magic != kShmMagic || header_->version != kShmVersion ||
        sizeof(ShmHeader) + header_->inbound_capacity +
                header_->outbound_capacity >
            mapped_bytes_) {
      throw TransportError("shm segment " + segment_name_ +
                           " has an incompatible layout");
    }
  }
  inbound_ = static_cast<std::uint8_t*>(mapping_) + sizeof(ShmHeader);
  outbound_ = inbound_ + header_->inbound_capacity;
  if (create) header_->ready.store(1, std::memory_order_release);
}

ShmRegion::~ShmRegion() {
  if (mapping_ != nullptr) ::munmap(mapping_, mapped_bytes_);
  if (owner_) ::shm_unlink(segment_name_.c_str());
}

/// Writes verdict frames into the outbound ring; sheds (counted) when
/// the emitter stopped reading — the pipeline thread never stalls here.
class ShmRingServer::ReplySink final : public VerdictSink {
 public:
  explicit ReplySink(std::shared_ptr<ShmRegion> region)
      : region_(std::move(region)) {}

  void deliver(const Message& verdict) override {
    ShmHeader& header = region_->header();
    std::vector<std::uint8_t> frame;
    encode_frame(verdict, frame);
    const std::uint64_t head = header.out_head.load(std::memory_order_relaxed);
    const std::uint64_t tail = header.out_tail.load(std::memory_order_acquire);
    // out_tail is the peer's cursor: a corrupt value (tail > head, or a
    // delta past the ring) must shed the verdict, not fake free space.
    if (head - tail > header.outbound_capacity) {
      header.verdicts_dropped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    const std::uint64_t space = header.outbound_capacity - (head - tail);
    if (frame.size() > space) {
      header.verdicts_dropped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    ring_write(region_->outbound(), header.outbound_capacity, head,
               frame.data(), frame.size());
    header.out_head.store(head + frame.size(), std::memory_order_release);
  }

 private:
  std::shared_ptr<ShmRegion> region_;
};

ShmRingServer::ShmRingServer(const std::string& name)
    : ShmRingServer(name, Config()) {}

ShmRingServer::ShmRingServer(const std::string& name, const Config& config)
    : name_(name),
      config_(config),
      region_(std::make_shared<ShmRegion>(name, /*create=*/true,
                                          config.inbound_bytes,
                                          config.outbound_bytes)),
      reply_(std::make_shared<ReplySink>(region_)) {
  decoder_.set_buffer_pool(&pool_);  // recycle within this server
  // Liveness is visible to producers from the first attach, not the
  // first poll.
  region_->header().consumer_heartbeat_ns.store(monotonic_ns(),
                                                std::memory_order_relaxed);
}

ShmRingServer::~ShmRingServer() { stop(); }

void ShmRingServer::stop() {
  region_->header().consumer_closed.store(1, std::memory_order_release);
}

std::size_t ShmRingServer::drain_inbound() {
  ShmHeader& header = region_->header();
  const std::uint64_t tail = header.in_tail.load(std::memory_order_relaxed);
  const std::uint64_t head = header.in_head.load(std::memory_order_acquire);
  // The producer owns in_head and shares the segment: NEVER trust the
  // delta. A cursor pair that claims more bytes than the ring holds
  // (including tail > head underflow) is corruption — retire the
  // source, exactly like a poisoned frame stream, instead of
  // over-allocating or reading past the mapping.
  if (head - tail > header.inbound_capacity) {
    decode_errors_.fetch_add(1, std::memory_order_relaxed);
    dead_ = true;
    stop();
    return 0;
  }
  const std::size_t available = static_cast<std::size_t>(head - tail);
  if (available == 0) return 0;
  scratch_.resize(available);
  ring_read(region_->inbound(), header.inbound_capacity, tail,
            scratch_.data(), available);
  header.in_tail.store(tail + available, std::memory_order_release);
  decoder_.feed(scratch_.data(), available);
  bytes_.fetch_add(available, std::memory_order_relaxed);
  return available;
}

bool ShmRingServer::poll(std::vector<Envelope>& out,
                         std::chrono::milliseconds timeout) {
  if (dead_) return false;
  ShmHeader& header = region_->header();
  const auto deadline = Clock::now() + timeout;
  std::size_t appended = 0;
  for (;;) {
    header.consumer_heartbeat_ns.store(monotonic_ns(),
                                       std::memory_order_relaxed);
    drain_inbound();
    if (dead_) return appended > 0;  // cursor corruption: source retired
    Message message;
    DecodeStatus status;
    while (appended < config_.max_messages_per_poll &&
           (status = decoder_.next(message)) == DecodeStatus::kMessage) {
      out.push_back(Envelope{std::move(message), reply_, /*source=*/0,
                             /*pool=*/&pool_});
      message = Message();
      ++appended;
      frames_.fetch_add(1, std::memory_order_relaxed);
    }
    if (decoder_.failed()) {
      // Corrupt framing is unrecoverable mid-stream, exactly like a
      // poisoned TCP connection: retire the source, keep the service.
      decode_errors_.fetch_add(1, std::memory_order_relaxed);
      dead_ = true;
      stop();  // unblock (and fail) the producer
      return appended > 0;
    }
    if (appended > 0) return true;
    const bool producer_done =
        header.producer_closed.load(std::memory_order_acquire) != 0;
    const bool drained =
        header.in_head.load(std::memory_order_acquire) ==
            header.in_tail.load(std::memory_order_relaxed) &&
        decoder_.buffered_bytes() == 0;
    if (producer_done && drained) {
      // Session turnover, the TCP-hangup analog: this emitter finished
      // and is fully drained, so re-open the segment for the next one
      // instead of retiring the listener — a sole shm listener must not
      // shut the endpoint down because one replay ended. Only a corrupt
      // stream (dead_) retires the source.
      header.producer_closed.store(0, std::memory_order_release);
    }
    if (Clock::now() >= deadline) return true;  // normal timeout
    wait_tick();
  }
}

ShmRingServer::Stats ShmRingServer::stats() const {
  Stats stats;
  stats.bytes = bytes_.load(std::memory_order_relaxed);
  stats.frames = frames_.load(std::memory_order_relaxed);
  stats.decode_errors = decode_errors_.load(std::memory_order_relaxed);
  const ShmHeader& header = region_->header();
  stats.producer_blocked =
      header.producer_blocked.load(std::memory_order_relaxed);
  stats.verdicts_dropped =
      header.verdicts_dropped.load(std::memory_order_relaxed);
  return stats;
}

TransportCounters ShmRingServer::transport_counters() const {
  const Stats stats = this->stats();
  TransportCounters counters;
  counters.frames = stats.frames;
  counters.decode_errors = stats.decode_errors;
  counters.drops = stats.verdicts_dropped;
  counters.blocked = stats.producer_blocked;
  return counters;
}

ShmRingClient::ShmRingClient(const std::string& name, int attach_timeout_ms)
    : region_(std::make_shared<ShmRegion>(name, /*create=*/false, 0, 0,
                                          attach_timeout_ms)) {}

void ShmRingClient::send(Message message) {
  ShmHeader& header = region_->header();
  encode_buffer_.clear();
  encode_frame(message, encode_buffer_);
  if (encode_buffer_.size() > header.inbound_capacity) {
    throw TransportError("frame larger than the shm inbound ring");
  }
  bool counted_block = false;
  for (;;) {
    if (header.consumer_closed.load(std::memory_order_acquire) != 0) {
      throw TransportError("send on a closed shm transport");
    }
    const std::uint64_t head = header.in_head.load(std::memory_order_relaxed);
    const std::uint64_t tail = header.in_tail.load(std::memory_order_acquire);
    if (head - tail > header.inbound_capacity) {
      // The consumer's tail cursor is corrupt: fail loudly rather than
      // write into a ring whose occupancy can no longer be reasoned
      // about.
      throw TransportError("shm inbound cursors corrupt");
    }
    const std::uint64_t space = header.inbound_capacity - (head - tail);
    if (encode_buffer_.size() <= space) {
      ring_write(region_->inbound(), header.inbound_capacity, head,
                 encode_buffer_.data(), encode_buffer_.size());
      header.in_head.store(head + encode_buffer_.size(),
                           std::memory_order_release);
      return;
    }
    if (!counted_block) {
      // One back-pressure event per stalled send, like the ring
      // transport's blocked_sends.
      header.producer_blocked.fetch_add(1, std::memory_order_relaxed);
      counted_block = true;
    }
    // Liveness: a consumer that CRASHED (rather than closed) stops
    // refreshing its heartbeat; blocking against its orphaned segment
    // would otherwise spin forever.
    const std::int64_t heartbeat =
        header.consumer_heartbeat_ns.load(std::memory_order_relaxed);
    if (heartbeat != 0 && monotonic_ns() - heartbeat > kConsumerStaleNs) {
      throw TransportError("shm consumer heartbeat stale (service dead?)");
    }
    wait_tick();
  }
}

bool ShmRingClient::receive(Message& out, std::chrono::milliseconds timeout) {
  ShmHeader& header = region_->header();
  const auto deadline = Clock::now() + timeout;
  for (;;) {
    switch (decoder_.next(out)) {
      case DecodeStatus::kMessage:
        return true;
      case DecodeStatus::kError:
        return false;
      case DecodeStatus::kNeedMore:
        break;
    }
    const std::uint64_t tail = header.out_tail.load(std::memory_order_relaxed);
    const std::uint64_t head = header.out_head.load(std::memory_order_acquire);
    if (head - tail > header.outbound_capacity) {
      return false;  // corrupt peer cursor: never allocate from it
    }
    const std::size_t available = static_cast<std::size_t>(head - tail);
    if (available > 0) {
      std::vector<std::uint8_t> chunk(available);
      ring_read(region_->outbound(), header.outbound_capacity, tail,
                chunk.data(), available);
      header.out_tail.store(tail + available, std::memory_order_release);
      decoder_.feed(chunk);
      continue;
    }
    if (Clock::now() >= deadline) return false;
    wait_tick();
  }
}

void ShmRingClient::finish_sending() {
  region_->header().producer_closed.store(1, std::memory_order_release);
}

}  // namespace efd::ingest
