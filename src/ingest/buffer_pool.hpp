#pragma once
/// \file buffer_pool.hpp
/// \brief Fixed-budget recycler for decoded sample-batch buffers.
///
/// Every kSampleBatch frame used to materialize a fresh
/// std::vector<WireSample> (plus one heap string per long metric name)
/// in the decoder and free it after dispatch — per-envelope churn on the
/// ingest hot path. The pool closes that loop: FrameDecoder acquires a
/// recycled buffer, decodes into it IN PLACE (strings keep their
/// capacity across reuse — read_string assigns, never reallocates for
/// names that fit), and the pipeline releases the buffer back once the
/// batch is dispatched. Steady state: zero allocations per batch for
/// metric names under the SSO limit or seen before.
///
/// The budget is fixed on both axes so the pool can never become a leak:
/// at most kMaxPooledBuffers vectors are retained, and a buffer whose
/// capacity outgrew kMaxPooledCapacity (a pathological batch) is freed
/// instead of cached. Releasing never clears elements — the strings ARE
/// the asset being recycled.
///
/// Thread-safe: acquire/release take a mutex (uncontended at batch
/// granularity — one lock per wire batch, not per sample).

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "ingest/wire_format.hpp"

namespace efd::ingest {

class SampleBufferPool {
 public:
  /// Buffers retained at rest; excess releases free their buffer.
  static constexpr std::size_t kMaxPooledBuffers = 64;
  /// Capacity ceiling for a retained buffer (== kMaxSamplesPerBatch): a
  /// buffer that grew past one maximum wire batch is an outlier and is
  /// freed rather than pinning its memory forever.
  static constexpr std::size_t kMaxPooledCapacity = kMaxSamplesPerBatch;

  struct Stats {
    std::uint64_t hits = 0;      ///< acquires served from the pool
    std::uint64_t misses = 0;    ///< acquires that built a fresh vector
    std::uint64_t returns = 0;   ///< buffers accepted back
    std::uint64_t discards = 0;  ///< releases dropped (full pool / oversize)
  };

  /// A buffer to decode into. May carry stale elements from its previous
  /// use — callers resize() to their count and overwrite every field.
  std::vector<WireSample> acquire();

  /// Hands a drained buffer back. Elements are intentionally NOT
  /// destroyed here (their string capacity is the point); empty-capacity
  /// vectors (e.g. moved-from ones) are ignored.
  void release(std::vector<WireSample>&& buffer);

  Stats stats() const;

 private:
  mutable std::mutex mutex_;
  std::vector<std::vector<WireSample>> free_;
  Stats stats_;
};

/// Process-global pool shared by every FrameDecoder and the pipeline
/// (function-local static: safe lazy init, usable from any thread).
SampleBufferPool& sample_buffer_pool();

}  // namespace efd::ingest
