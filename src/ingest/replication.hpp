#pragma once
/// \file replication.hpp
/// \brief Warm-standby follower: continuously mirrors a leader's
/// EFD-SNAP-V2 capture chain onto local disk, promotable on demand or
/// on leader death.
///
/// `efd_cli serve --follow host:port` runs a ReplicationFollower
/// instead of the ingest loop. The follower connects to the leader's
/// ordinary listener like any peer, sends kFollowRequest carrying the
/// newest capture id already durable in its LOCAL chain (so a
/// restarted follower resumes instead of re-pulling the world), and
/// then applies every kSnapBase / kSnapDelta the leader streams:
///
///  1. envelope check — the frame's capture/parent ids must match the
///     EFD-SNAP-V2 envelope inside the blob (a disagreement means the
///     leader is confused; the capture is rejected, never persisted);
///  2. durable persist — write_file_durable() to the local snapshot
///     path (base) or `<path>.delta.<id>` (delta); a base resets the
///     chain, deleting superseded local deltas;
///  3. shadow validation — a throwaway RecognitionService restores the
///     full local chain from disk, proving the bytes that just became
///     durable actually replay (torn or incoherent captures are
///     removed and rejected before the ack);
///  4. kSnapAck — only after all of the above, so a leader-side ack
///     means the capture genuinely survives follower power loss.
///
/// A delta whose parent is not the follower's newest capture (leader
/// restarted mid-stream, follower missed a frame) is rejected and the
/// connection is dropped to re-handshake from the follower's cursor.
///
/// Promotion ends the loop two ways: an operator's kPromote frame on
/// the follower's own control listener (`efd_cli promote`), or —
/// when promote_grace is nonzero — automatically once the leader link
/// has been dead for that long AND a restorable local base exists.
/// Either way run() returns kPromoted and the caller (cmd_serve)
/// restores from the local chain and starts serving; verdict parity
/// with the dead leader follows from replaying the same durable
/// captures plus the shared replay cursor.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "core/online/recognition_service.hpp"
#include "ingest/source_mux.hpp"

namespace efd::ingest {

struct FollowerConfig {
  std::string leader_host;        ///< leader's listener
  std::uint16_t leader_port = 0;
  std::string snapshot_path;      ///< root of the LOCAL chain (base file)

  /// Auto-promote after the leader link has been down this long
  /// (0 = never; promotion then requires an explicit kPromote).
  std::chrono::milliseconds promote_grace{0};
  std::chrono::milliseconds reconnect_interval{500};
  std::chrono::milliseconds poll_interval{50};

  /// Cooperative stop (the CLI's signal flag). Checked every poll
  /// round; run() returns kStopped soon after it flips.
  const std::atomic<bool>* external_stop = nullptr;

  /// The follower's own listener fan-in (kPromote / kStatsRequest
  /// arrive here). Optional; without it only auto-promotion works.
  SourceMux* control = nullptr;

  /// Builds the throwaway service used to validate each persisted
  /// capture by restoring the full local chain. Must produce a service
  /// configured identically to the one a promotion would boot.
  std::function<std::unique_ptr<core::RecognitionService>()> shadow_factory;

  /// Operator-facing progress/warning lines (nullptr = silent).
  std::function<void(const std::string&)> log;
};

struct FollowerStats {
  std::uint64_t captures_applied = 0;  ///< persisted + validated + acked
  std::uint64_t bases_applied = 0;     ///< subset of the above
  std::uint64_t captures_rejected = 0; ///< envelope/persist/validate failures
  std::uint64_t reconnects = 0;        ///< leader link re-established
  std::uint64_t messages_shed = 0;     ///< non-replication frames ignored
  std::uint64_t last_capture_id = 0;   ///< newest durable local capture
};

class ReplicationFollower {
 public:
  enum class Outcome {
    kPromoted,  ///< caller should restore the local chain and serve
    kStopped,   ///< external_stop flipped — exit without serving
  };

  explicit ReplicationFollower(FollowerConfig config);

  /// Blocks mirroring the leader until promotion or stop. Safe to call
  /// once. Throws nothing: connection failures retry, capture failures
  /// are counted and acked as errors.
  Outcome run();

  const FollowerStats& stats() const noexcept { return stats_; }

 private:
  /// Envelope-check → durable persist → shadow-validate one capture.
  /// False (with \p error filled) = reject; nothing acked yet.
  bool apply_capture(const Message& message, bool base, std::string* error);

  /// Polls the control mux; true = promotion requested.
  bool poll_control(std::chrono::milliseconds timeout);
  bool should_stop() const;
  /// True when a local base exists to promote from.
  bool promotable() const;
  void note(const std::string& line) const;
  std::string stats_text() const;

  FollowerConfig config_;
  FollowerStats stats_;
  std::vector<Envelope> control_scratch_;
};

}  // namespace efd::ingest
