#pragma once
/// \file transport.hpp
/// \brief Transport abstractions of the ingestion pipeline.
///
/// A transport moves wire-format Messages (see wire_format.hpp) from
/// emitters (node daemons, replayers, the in-process sampling loop) to
/// the recognition service, and verdicts back. Four implementations
/// ship: a TCP socket server (tcp_transport.hpp), a lossy-tolerant UDP
/// datagram server (udp_transport.hpp), a cross-process shared-memory
/// ring (shm_transport.hpp), and a bounded in-process ring
/// (ring_transport.hpp). The pipeline (pipeline.hpp) only ever sees the
/// interfaces here — plus SourceMux (source_mux.hpp), which fans any
/// number of registered sources into one polled stream with per-source
/// accounting — so new transports (RDMA, ...) slot in without touching
/// recognition code.

#include <chrono>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "ingest/wire_format.hpp"

namespace efd::ingest {

/// Stable identity of a registered ingest source within a SourceMux
/// (assigned at registration, dense from 0). 0 is also the implicit id
/// of a pipeline's only source in the legacy single-source mode.
using SourceId = std::uint32_t;

/// Where a job's verdict is sent back. Implementations must tolerate
/// delivery from the pipeline's thread and a destroyed peer (best
/// effort: a verdict for a vanished connection is dropped silently).
class VerdictSink {
 public:
  virtual ~VerdictSink() = default;
  virtual void deliver(const Message& verdict) = 0;

  /// Delivers a run of messages bound for the same peer. The default
  /// loops deliver(); transports with a cheaper bulk path override it
  /// (the TCP connection flushes the whole run in one vectored write).
  virtual void deliver_many(std::span<const Message> verdicts) {
    for (const Message& verdict : verdicts) deliver(verdict);
  }
};

class SampleBufferPool;

/// One inbound message plus the reply channel it arrived on (null for
/// fire-and-forget emitters). The mux stamps `source` so verdict
/// routing and per-source accounting survive the fan-in. `pool` is the
/// buffer pool the message's sample vector was acquired from (null =
/// the process-global pool): the consumer returns the vector there
/// after dispatch, so each server's buffers recycle without crossing a
/// shared global free list. Provenance rides the Envelope, NOT the
/// Message — Message stays a pure wire value (its defaulted equality
/// is load-bearing in round-trip tests).
struct Envelope {
  Message message;
  std::shared_ptr<VerdictSink> reply;
  SourceId source = 0;
  SampleBufferPool* pool = nullptr;
};

/// Transport-level health counters a source exposes to the mux/stats
/// scrape. All monotonic. Transports without a concept (e.g. the
/// in-process ring has no sequence numbers) leave the field at 0.
struct TransportCounters {
  std::uint64_t frames = 0;        ///< messages decoded and enqueued
  std::uint64_t decode_errors = 0; ///< corrupt frames/datagrams/streams
  std::uint64_t drops = 0;         ///< messages shed (lossy mode / full queue)
  std::uint64_t gaps = 0;          ///< sequence holes observed (lossy links)
  std::uint64_t blocked = 0;       ///< producer back-pressure events
  /// Control-frame retransmissions observed: on an emitter, kOpenJob/
  /// kCloseJob copies it re-sent while unacked; on a server, duplicate
  /// control frames it absorbed from such an emitter.
  std::uint64_t retransmits = 0;
};

/// Consumer side of a transport: the pipeline polls this.
class SampleSource {
 public:
  virtual ~SampleSource() = default;

  /// Waits up to \p timeout for inbound messages and appends them to
  /// \p out (bounded by the transport's internal batch size). Returns
  /// false once the source is exhausted — closed AND fully drained —
  /// after which no more messages will ever appear. A true return with
  /// an empty \p out is a normal timeout.
  virtual bool poll(std::vector<Envelope>& out,
                    std::chrono::milliseconds timeout) = 0;

  /// Transport-level loss/back-pressure counters (see TransportCounters).
  /// Safe from any thread; default is all-zero.
  virtual TransportCounters transport_counters() const { return {}; }

  /// The source-owned sample buffer pool, when the transport has one
  /// (servers that decode frames); nullptr for sources that borrow the
  /// process-global pool. The mux scrapes hit/miss/discard stats off it
  /// per source.
  virtual const SampleBufferPool* buffer_pool() const { return nullptr; }
};

/// Producer side of a transport: samplers/replayers send through this.
class MessageSender {
 public:
  virtual ~MessageSender() = default;

  /// Delivers one message. Blocking is the back-pressure mechanism: a
  /// full transport stalls the producer, never drops silently.
  virtual void send(Message message) = 0;
};

}  // namespace efd::ingest
