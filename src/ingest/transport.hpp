#pragma once
/// \file transport.hpp
/// \brief Transport abstractions of the ingestion pipeline.
///
/// A transport moves wire-format Messages (see wire_format.hpp) from
/// emitters (node daemons, replayers, the in-process sampling loop) to
/// the recognition service, and verdicts back. Two implementations ship:
/// a TCP socket server (tcp_transport.hpp) and a bounded in-process ring
/// (ring_transport.hpp). The pipeline (pipeline.hpp) only ever sees the
/// interfaces here, so new transports (UDP, shared memory, RDMA) slot in
/// without touching recognition code.

#include <chrono>
#include <memory>
#include <vector>

#include "ingest/wire_format.hpp"

namespace efd::ingest {

/// Where a job's verdict is sent back. Implementations must tolerate
/// delivery from the pipeline's thread and a destroyed peer (best
/// effort: a verdict for a vanished connection is dropped silently).
class VerdictSink {
 public:
  virtual ~VerdictSink() = default;
  virtual void deliver(const Message& verdict) = 0;
};

/// One inbound message plus the reply channel it arrived on (null for
/// fire-and-forget emitters).
struct Envelope {
  Message message;
  std::shared_ptr<VerdictSink> reply;
};

/// Consumer side of a transport: the pipeline polls this.
class SampleSource {
 public:
  virtual ~SampleSource() = default;

  /// Waits up to \p timeout for inbound messages and appends them to
  /// \p out (bounded by the transport's internal batch size). Returns
  /// false once the source is exhausted — closed AND fully drained —
  /// after which no more messages will ever appear. A true return with
  /// an empty \p out is a normal timeout.
  virtual bool poll(std::vector<Envelope>& out,
                    std::chrono::milliseconds timeout) = 0;
};

/// Producer side of a transport: samplers/replayers send through this.
class MessageSender {
 public:
  virtual ~MessageSender() = default;

  /// Delivers one message. Blocking is the back-pressure mechanism: a
  /// full transport stalls the producer, never drops silently.
  virtual void send(Message message) = 0;
};

}  // namespace efd::ingest
