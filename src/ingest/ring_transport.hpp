#pragma once
/// \file ring_transport.hpp
/// \brief Bounded in-process transport over the LDMS ring buffer.
///
/// The zero-copy path for daemons co-located with the service (and the
/// unit-test/bench harness for the pipeline): producers send() decoded
/// Messages into a fixed-capacity ldms::RingBuffer, the pipeline polls
/// them out. The ring is consumed via pop_front — push-time eviction
/// never fires — so a full ring *blocks* the producer: back-pressure,
/// not sample loss. Designed for one consumer (the pipeline); any number
/// of producers may send (a mutex serializes them — at monitoring rates
/// the lock is uncontended; the bound, not the lock, is the point).

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <stdexcept>

#include "ingest/transport.hpp"
#include "ldms/ring_buffer.hpp"

namespace efd::ingest {

class RingTransport final : public SampleSource, public MessageSender {
 public:
  /// \param capacity maximum buffered messages; must be > 0.
  /// \param sample_capacity additional bound on the *samples* buffered
  ///        across all queued batches (0 = the default of 64 x capacity).
  ///        A message bound alone under-constrains memory — `capacity`
  ///        max-size batches would hold capacity x 4096 samples — so the
  ///        producer also blocks once this many samples are retained.
  explicit RingTransport(std::size_t capacity,
                         std::size_t sample_capacity = 0)
      : ring_(capacity),
        sample_capacity_(sample_capacity == 0 ? capacity * 64
                                              : sample_capacity) {}

  /// Verdicts for jobs ingested via send() go here (optional; senders
  /// with their own reply channel use send_with_reply instead).
  void set_verdict_sink(std::shared_ptr<VerdictSink> sink) {
    std::lock_guard lock(mutex_);
    verdict_sink_ = std::move(sink);
  }

  /// Blocks while the ring is full (back-pressure). Throws
  /// std::runtime_error if the transport was closed.
  void send(Message message) override {
    std::unique_lock lock(mutex_);
    send_locked(lock, std::move(message), verdict_sink_);
  }

  /// send() with an explicit reply channel for this message's job (the
  /// TCP server tags each message with its connection).
  void send_with_reply(Message message, std::shared_ptr<VerdictSink> reply) {
    std::unique_lock lock(mutex_);
    send_locked(lock, std::move(message), std::move(reply));
  }

  /// Non-blocking send; false when full (by either bound) or closed.
  bool try_send(Message message) {
    std::shared_ptr<VerdictSink> sink;
    {
      std::lock_guard lock(mutex_);
      sink = verdict_sink_;
    }
    return try_send_with_reply(std::move(message), std::move(sink));
  }

  /// try_send with an explicit reply channel (lossy transports shed on a
  /// full queue instead of blocking their receiver — see udp_transport).
  bool try_send_with_reply(Message message,
                           std::shared_ptr<VerdictSink> reply) {
    {
      std::lock_guard lock(mutex_);
      if (closed_ || ring_.full() || buffered_samples_ >= sample_capacity_) {
        return false;
      }
      buffered_samples_ += message.samples.size();
      ++accepted_;
      ring_.push(Envelope{std::move(message), std::move(reply)});
    }
    not_empty_.notify_one();
    return true;
  }

  /// Marks the producer side finished; poll() drains what remains and
  /// then reports exhaustion. Idempotent.
  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  bool poll(std::vector<Envelope>& out,
            std::chrono::milliseconds timeout) override {
    std::unique_lock lock(mutex_);
    not_empty_.wait_for(lock, timeout,
                        [this] { return !ring_.empty() || closed_; });
    Envelope envelope;
    bool popped = false;
    while (ring_.pop_front(envelope)) {
      buffered_samples_ -= envelope.message.samples.size();
      out.push_back(std::move(envelope));
      popped = true;
    }
    const bool exhausted = closed_ && ring_.empty();
    lock.unlock();
    if (popped) not_full_.notify_all();
    return !exhausted;
  }

  /// Times a producer hit a full ring — the transport-level
  /// back-pressure signal (stats/monitoring).
  std::uint64_t blocked_sends() const {
    std::lock_guard lock(mutex_);
    return blocked_sends_;
  }

  TransportCounters transport_counters() const override {
    std::lock_guard lock(mutex_);
    TransportCounters counters;
    counters.frames = accepted_;
    counters.blocked = blocked_sends_;
    return counters;
  }

 private:
  bool at_capacity() const {
    return ring_.full() || buffered_samples_ >= sample_capacity_;
  }

  void send_locked(std::unique_lock<std::mutex>& lock, Message message,
                   std::shared_ptr<VerdictSink> reply) {
    if (at_capacity() && !closed_) {
      ++blocked_sends_;
      not_full_.wait(lock, [this] { return !at_capacity() || closed_; });
    }
    if (closed_) throw std::runtime_error("send on closed RingTransport");
    buffered_samples_ += message.samples.size();
    ++accepted_;
    ring_.push(Envelope{std::move(message), std::move(reply)});
    lock.unlock();
    not_empty_.notify_one();
  }

  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  ldms::RingBuffer<Envelope> ring_;
  std::size_t sample_capacity_;
  std::size_t buffered_samples_ = 0;
  std::shared_ptr<VerdictSink> verdict_sink_;
  bool closed_ = false;
  std::uint64_t blocked_sends_ = 0;
  std::uint64_t accepted_ = 0;
};

}  // namespace efd::ingest
