#pragma once
/// \file wire_format.hpp
/// \brief EFD-WIRE-V1: versioned, length-prefixed binary codec for
/// monitoring samples and recognition verdicts.
///
/// This is the on-the-wire contract between node-side emitters (LDMS
/// sampling loops, replayers) and the recognition service's ingest
/// pipeline — transport-agnostic: the same frames flow over a TCP
/// socket, an in-process ring, or any future transport.
///
/// Frame layout (all integers little-endian):
///
///   frame    := u32 payload_len | payload          (payload_len bytes)
///   payload  := u8 version (=1) | u8 type | body
///
///   OpenJob     body := u64 job_id | u32 node_count
///   SampleBatch body := u64 job_id | u32 count | count * sample
///     sample         := u32 node_id | i32 t | f64 value
///                       | u16 metric_len | metric bytes
///   CloseJob    body := u64 job_id
///   Verdict     body := u64 job_id | u8 recognized
///                       | u32 matched | u32 fingerprints
///                       | u16 app_len | app | u16 label_len | label
///   Shutdown    body := (empty)
///   SwapDictionary body := dictionary bytes (EFD-DICT-V1, to body end)
///   SwapAck     body := u8 ok | u64 epoch | u16 err_len | err
///   StatsRequest body := (empty)
///   StatsReply  body := u32 text_len | text  (flat "name value" lines)
///   RetrainReport body := u64 cycle | u8 outcome | u64 epoch
///                       | f64 candidate_score | f64 incumbent_score
///                       | u64 window_jobs | u64 holdout_jobs
///   SnapBase    body := u64 capture_id | u64 parent_id (=0)
///                       | capture bytes (EFD-SNAP-V2, to body end)
///   SnapDelta   body := u64 capture_id | u64 parent_id
///                       | capture bytes (EFD-SNAP-V2, to body end)
///   SnapAck     body := u8 ok | u64 capture_id | u16 err_len | err
///   FollowRequest body := u64 last_capture_id (0 = send the full chain)
///   Promote     body := (empty)
///   PromoteAck  body := u8 ok | u64 capture_id | u16 err_len | err
///   Subscribe   body := u32 app_count | app_count * (u16 len | name)
///                       | u32 source_count | source_count * u32 source
///   SubscribeAck body := u8 ok | u64 subscriber_id | u16 err_len | err
///   VerdictEvent body := u64 job_id | u32 source | u64 latency_ns
///                       | u8 recognized | u32 matched | u32 fingerprints
///                       | u16 app_len | app | u16 label_len | label
///
/// Subscribe/SubscribeAck/VerdictEvent are the verdict pub/sub path: any
/// connected peer sends kSubscribe with optional per-application and
/// per-source filters (empty filter lists mean "everything"), gets back a
/// kSubscribeAck carrying its subscriber id, and from then on receives a
/// kVerdictEvent copy of every matching verdict the pipeline flushes.
/// Events ride per-subscriber bounded queues that drop-and-count when the
/// consumer is slow — the verdict flush path never blocks on a
/// subscriber (see ingest/subscription.hpp). latency_ns is the end-to-end
/// sample-enqueue to verdict latency (0 when unknown, e.g. force-closed
/// or snapshot-restored jobs).
///
/// SnapBase/SnapDelta/SnapAck/FollowRequest are the warm-standby
/// replication path: a follower (`serve --follow host:port`) connects
/// like any peer and sends FollowRequest carrying the newest capture id
/// already durable in its local chain; the leader (gated by
/// `--allow-followers` — like kShutdown this is unauthenticated wire
/// input) streams the missing EFD-SNAP-V2 captures and every subsequent
/// one, each acked by the follower once it is durably on the follower's
/// disk. Captures above kMaxFrameBytes cannot travel this path (the
/// kSwapDictionary limitation); the leader counts and skips them.
/// Promote/PromoteAck flip a follower into a serving leader (`efd_cli
/// promote`); the ack reports the newest capture id the follower will
/// restore from.
///
/// StatsRequest/StatsReply are the monitoring scrape path: any connected
/// peer can ask the serving endpoint for its aggregate counters
/// (RecognitionServiceStats + IngestPipelineStats + RetrainStats) as a
/// flat `name value` text block — the precursor of a Prometheus-style
/// endpoint. RetrainReport is pushed (never requested) to every
/// connection the pipeline has seen whenever a closed-loop retrain cycle
/// finishes, so clients observe promotions/gate rejections as they
/// happen; the outcome byte matches retrain::RetrainOutcome.
///
/// SwapDictionary is the live-reconfiguration control frame: it carries a
/// full retrained dictionary and asks the service to hot-swap it behind
/// every open stream (see core/dictionary_handle.hpp). Like kShutdown it
/// is unauthenticated wire input, so the pipeline only honors it when the
/// operator opted in; the SwapAck reply reports the new dictionary epoch
/// (or ok=0 and a reason). Dictionaries above kMaxFrameBytes cannot
/// travel this path — restart with the snapshot/restore flow instead.
///
/// Decoding is defensive by construction: the decoder is fed arbitrary
/// byte streams (network input) and must never crash, read out of
/// bounds, or over-allocate. Frames longer than kMaxFrameBytes, batch
/// counts inconsistent with the frame length, string lengths overrunning
/// the body, unknown versions/types, and trailing garbage inside a body
/// all produce DecodeStatus::kError; after an error the decoder stays
/// failed (a corrupted stream has lost framing — the transport must drop
/// the connection). Allocation is bounded by what actually arrived:
/// sample vectors reserve at most payload-implied counts, never the raw
/// count field.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace efd::ingest {

inline constexpr std::uint8_t kWireVersion = 1;

/// Decode guard: frames above this fail the stream. Note a batch of
/// kMaxSamplesPerBatch samples only fits when metric names stay short
/// (~18 bytes + name per sample); emitters bound *bytes*, not just
/// sample count — TransportFeed flushes at kBatchFlushBytes, which
/// keeps every frame it emits far below this limit.
inline constexpr std::size_t kMaxFrameBytes = 1u << 20;

/// Encode-side cap per kSampleBatch message (emitters flush at this).
inline constexpr std::size_t kMaxSamplesPerBatch = 4096;

/// Encode-side byte threshold at which TransportFeed flushes a pending
/// batch. A single sample's wire size is bounded by 18 + 65535 (u16
/// metric length), so threshold + one sample always fits kMaxFrameBytes.
inline constexpr std::size_t kBatchFlushBytes = 256u << 10;

enum class MessageType : std::uint8_t {
  kOpenJob = 1,
  kSampleBatch = 2,
  kCloseJob = 3,
  kVerdict = 4,
  kShutdown = 5,
  kSwapDictionary = 6,
  kSwapAck = 7,
  kStatsRequest = 8,
  kStatsReply = 9,
  kRetrainReport = 10,
  kSnapBase = 11,       ///< one EFD-SNAP-V2 base capture (leader → follower)
  kSnapDelta = 12,      ///< one EFD-SNAP-V2 delta capture (leader → follower)
  kSnapAck = 13,        ///< follower: capture durably persisted (or not)
  kFollowRequest = 14,  ///< follower's cursor handshake (last capture id)
  kPromote = 15,        ///< operator: stop following, start serving
  kPromoteAck = 16,     ///< follower's reply before it switches over
  kSubscribe = 17,      ///< peer: start streaming me matching verdicts
  kSubscribeAck = 18,   ///< pipeline's reply with the subscriber id
  kVerdictEvent = 19,   ///< one flushed verdict, pushed to subscribers
};

/// Encode-side cap on kSubscribe filter-list lengths (per list).
inline constexpr std::size_t kMaxSubscribeFilters = 64;

/// One monitoring sample as it travels the wire.
struct WireSample {
  std::uint32_t node_id = 0;
  std::int32_t t = 0;
  double value = 0.0;
  std::string metric;

  bool operator==(const WireSample&) const = default;
};

/// A finished job's verdict as it travels back to the emitter.
struct WireVerdict {
  bool recognized = false;
  std::uint32_t matched = 0;
  std::uint32_t fingerprints = 0;
  std::string application;  ///< RecognitionResult::prediction()
  std::string label;        ///< RecognitionResult::label_prediction()

  bool operator==(const WireVerdict&) const = default;
};

/// Outcome of a kSwapDictionary request, shipped back to the requester.
struct WireSwapAck {
  bool ok = false;
  std::uint64_t epoch = 0;  ///< active dictionary epoch after the request
  std::string error;        ///< reason when ok is false

  bool operator==(const WireSwapAck&) const = default;
};

/// One finished closed-loop retrain cycle, broadcast to observers. The
/// outcome byte is retrain::RetrainOutcome (promoted / gated-out /
/// already-active / skipped-no-data / failed / dry-run), transported raw
/// so the wire layer does not depend on the retrain layer.
struct WireRetrainReport {
  std::uint64_t cycle = 0;        ///< lifetime trigger number
  std::uint8_t outcome = 0;
  std::uint64_t epoch = 0;        ///< active dictionary epoch after the cycle
  double candidate_score = 0.0;   ///< validation-gate scores
  double incumbent_score = 0.0;
  std::uint64_t window_jobs = 0;  ///< captured jobs the cycle trained on
  std::uint64_t holdout_jobs = 0; ///< held-out jobs the gate replayed

  bool operator==(const WireRetrainReport&) const = default;
};

/// Outcome of persisting one replicated capture (kSnapAck) or of a
/// promotion request (kPromoteAck).
struct WireSnapAck {
  bool ok = false;
  std::uint64_t capture_id = 0;  ///< the capture acked / restored from
  std::string error;             ///< reason when ok is false

  bool operator==(const WireSnapAck&) const = default;
};

/// A kSubscribe request's filters. Empty lists match everything; a
/// verdict is forwarded when its application matches (or `applications`
/// is empty) AND its source id matches (or `sources` is empty).
struct WireSubscribe {
  std::vector<std::string> applications;
  std::vector<std::uint32_t> sources;

  bool operator==(const WireSubscribe&) const = default;
};

/// kVerdictEvent metadata beyond the verdict itself (which reuses
/// Message::verdict and Message::job_id).
struct WireVerdictEvent {
  std::uint32_t source = 0;      ///< source id the job arrived on
  std::uint64_t latency_ns = 0;  ///< enqueue -> verdict latency (0 unknown)

  bool operator==(const WireVerdictEvent&) const = default;
};

/// One decoded (or to-encode) message. Only the fields of the active
/// type are meaningful.
struct Message {
  MessageType type = MessageType::kShutdown;
  std::uint64_t job_id = 0;
  std::uint32_t node_count = 0;        ///< kOpenJob
  std::vector<WireSample> samples;     ///< kSampleBatch
  WireVerdict verdict;                 ///< kVerdict
  std::vector<std::uint8_t> dictionary_blob;  ///< kSwapDictionary
  WireSwapAck swap_ack;                ///< kSwapAck
  std::string stats_text;              ///< kStatsReply
  WireRetrainReport retrain_report;    ///< kRetrainReport
  std::uint64_t capture_id = 0;        ///< kSnapBase/kSnapDelta: chain id;
                                       ///< kFollowRequest: newest durable id
  std::uint64_t parent_id = 0;         ///< kSnapBase (0) / kSnapDelta
  std::vector<std::uint8_t> snapshot_blob;  ///< kSnapBase/kSnapDelta capture
  WireSnapAck snap_ack;                ///< kSnapAck / kPromoteAck /
                                       ///< kSubscribeAck (capture_id carries
                                       ///< the subscriber id)
  WireSubscribe subscribe;             ///< kSubscribe
  WireVerdictEvent verdict_event;      ///< kVerdictEvent (+ verdict, job_id)

  bool operator==(const Message&) const = default;
};

/// Convenience constructors.
Message make_open_job(std::uint64_t job_id, std::uint32_t node_count);
Message make_close_job(std::uint64_t job_id);
Message make_shutdown();
Message make_swap_dictionary(std::vector<std::uint8_t> dictionary_bytes);
Message make_swap_ack(bool ok, std::uint64_t epoch, std::string error = {});
Message make_stats_request();
Message make_stats_reply(std::string text);
Message make_retrain_report(WireRetrainReport report);
/// \p base selects kSnapBase vs kSnapDelta (a base's parent_id is 0).
Message make_snap_capture(bool base, std::uint64_t capture_id,
                          std::uint64_t parent_id,
                          std::vector<std::uint8_t> capture_bytes);
Message make_snap_ack(bool ok, std::uint64_t capture_id,
                      std::string error = {});
Message make_follow_request(std::uint64_t last_capture_id);
Message make_promote();
Message make_promote_ack(bool ok, std::uint64_t capture_id,
                         std::string error = {});
Message make_subscribe(std::vector<std::string> applications = {},
                       std::vector<std::uint32_t> sources = {});
Message make_subscribe_ack(bool ok, std::uint64_t subscriber_id,
                           std::string error = {});
Message make_verdict_event(std::uint64_t job_id, std::uint32_t source,
                           std::uint64_t latency_ns, WireVerdict verdict);

/// Appends one encoded frame to \p out. Throws std::invalid_argument if
/// the message would exceed the wire limits (batch too large, string too
/// long) — emitter bugs, not data-dependent conditions.
void encode_frame(const Message& message, std::vector<std::uint8_t>& out);

/// Encodes into a fresh buffer.
std::vector<std::uint8_t> encode(const Message& message);

enum class DecodeStatus {
  kNeedMore,  ///< no complete frame buffered yet
  kMessage,   ///< one message produced
  kError,     ///< stream corrupt; decoder is dead (see error())
};

class SampleBufferPool;

/// Incremental frame decoder over an arbitrary byte stream (partial
/// frames across feeds are the normal case for TCP reads).
class FrameDecoder {
 public:
  FrameDecoder();

  /// Appends raw bytes. Accepts anything; errors surface in next().
  void feed(const std::uint8_t* data, std::size_t size);
  void feed(const std::vector<std::uint8_t>& data) {
    feed(data.data(), data.size());
  }

  /// Tries to decode the next buffered frame into \p out.
  DecodeStatus next(Message& out);

  /// True after the first kError; all further next() calls return kError.
  bool failed() const noexcept { return failed_; }

  /// Description of the first error (empty while healthy).
  const std::string& error() const noexcept { return error_; }

  std::uint64_t frames_decoded() const noexcept { return frames_decoded_; }
  std::size_t buffered_bytes() const noexcept {
    return buffer_.size() - offset_;
  }

  /// Overrides where kSampleBatch buffers come from: nullptr decodes
  /// into fresh vectors (the pre-pool behavior — the bench baseline).
  /// Default: the process-global sample_buffer_pool().
  void set_buffer_pool(SampleBufferPool* pool) noexcept { pool_ = pool; }

 private:
  DecodeStatus fail(std::string reason);

  std::vector<std::uint8_t> buffer_;
  std::size_t offset_ = 0;  ///< consumed prefix of buffer_
  bool failed_ = false;
  std::string error_;
  std::uint64_t frames_decoded_ = 0;
  SampleBufferPool* pool_;  ///< set in the constructor (wire_format.cpp)
};

}  // namespace efd::ingest
