#pragma once
/// \file transport_feed.hpp
/// \brief SampleSink adapter: LDMS sampling loops emit to a transport.
///
/// TransportFeed batches the samples a SamplingLoop publishes into
/// kSampleBatch wire messages toward a MessageSender (TCP client,
/// in-process ring, ...), and maps the job lifecycle onto kOpenJob /
/// kCloseJob frames. With this, the same sampling loop that used to feed
/// RecognitionService directly (ServiceFeed) streams to a *remote*
/// service without the loop knowing — the transport swap the ISSUE's
/// "samplers can now emit to a transport instead of a sink".
///
/// Not internally synchronized: one feed belongs to one job's sampling
/// loop thread, exactly like ServiceFeed.

#include <cstdint>

#include "ingest/transport.hpp"
#include "ldms/streaming.hpp"

namespace efd::ingest {

class TransportFeed final : public ldms::JobSink {
 public:
  /// \param sender transport producer (borrowed; must outlive).
  /// \param batch_samples samples buffered per kSampleBatch frame.
  explicit TransportFeed(MessageSender& sender,
                         std::size_t batch_samples = 512)
      : sender_(&sender),
        batch_samples_(batch_samples > 0 ? batch_samples : 1) {
    if (batch_samples_ > kMaxSamplesPerBatch) {
      batch_samples_ = kMaxSamplesPerBatch;
    }
  }

  /// Flushes buffered samples; never throws out of the destructor.
  ~TransportFeed() override {
    try {
      flush();
    } catch (...) {
    }
  }

  void job_opened(std::uint64_t job_id, std::uint32_t node_count) override {
    job_id_ = job_id;
    pending_.job_id = job_id;
    sender_->send(make_open_job(job_id, node_count));
  }

  void publish(std::uint32_t node_id, std::string_view metric_name, int t,
               double value) override {
    // Flush on either bound: sample count, or encoded bytes (so long
    // metric names can never push a frame past kMaxFrameBytes).
    const std::size_t sample_bytes = 18 + metric_name.size();
    if (pending_bytes_ + sample_bytes > kBatchFlushBytes) flush();
    WireSample sample;
    sample.node_id = node_id;
    sample.t = t;
    sample.value = value;
    sample.metric.assign(metric_name);
    pending_.samples.push_back(std::move(sample));
    pending_bytes_ += sample_bytes;
    if (pending_.samples.size() >= batch_samples_) flush();
  }

  void job_closed(std::uint64_t job_id) override {
    flush();
    sender_->send(make_close_job(job_id));
  }

  /// Sends the buffered batch now (empty buffers send nothing).
  void flush() {
    if (pending_.samples.empty()) return;
    pending_.type = MessageType::kSampleBatch;
    pending_.job_id = job_id_;
    sender_->send(std::move(pending_));
    pending_ = Message();
    pending_.job_id = job_id_;
    pending_bytes_ = 0;
  }

 private:
  MessageSender* sender_;
  std::size_t batch_samples_;
  std::uint64_t job_id_ = 0;
  Message pending_;
  std::size_t pending_bytes_ = 0;
};

}  // namespace efd::ingest
