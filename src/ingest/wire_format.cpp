#include "ingest/wire_format.hpp"

#include <chrono>
#include <stdexcept>
#include <utility>

#include "ingest/buffer_pool.hpp"
#include "obs/metrics.hpp"
#include "util/binary_io.hpp"

namespace efd::ingest {

namespace {

using util::ByteReader;
using util::put_f64;
using util::put_string;
using util::put_u32;
using util::put_u64;

/// Body sizes that don't depend on string payloads.
constexpr std::size_t kHeaderBytes = 2;  // version + type
constexpr std::size_t kOpenJobBody = 8 + 4;
constexpr std::size_t kCloseJobBody = 8;
constexpr std::size_t kBatchPrefix = 8 + 4;              // job_id + count
constexpr std::size_t kSampleFixed = 4 + 4 + 8 + 2;      // + metric bytes
constexpr std::size_t kVerdictFixed = 8 + 1 + 4 + 4 + 2 + 2;
constexpr std::size_t kSwapAckFixed = 1 + 8 + 2;
constexpr std::size_t kStatsReplyPrefix = 4;  // u32 text length
constexpr std::size_t kRetrainReportBody = 8 + 1 + 8 + 8 + 8 + 8 + 8;
constexpr std::size_t kSnapCapturePrefix = 8 + 8;  // capture_id + parent_id
constexpr std::size_t kSnapAckFixed = 1 + 8 + 2;
constexpr std::size_t kFollowRequestBody = 8;
constexpr std::size_t kSubscribePrefix = 4;        // app_count (then sources)
constexpr std::size_t kVerdictEventFixed = 8 + 4 + 8 + 1 + 4 + 4 + 2 + 2;

void encode_frame_impl(const Message& message, std::vector<std::uint8_t>& out,
                       std::size_t frame_start);

}  // namespace

Message make_open_job(std::uint64_t job_id, std::uint32_t node_count) {
  Message message;
  message.type = MessageType::kOpenJob;
  message.job_id = job_id;
  message.node_count = node_count;
  return message;
}

Message make_close_job(std::uint64_t job_id) {
  Message message;
  message.type = MessageType::kCloseJob;
  message.job_id = job_id;
  return message;
}

Message make_shutdown() {
  Message message;
  message.type = MessageType::kShutdown;
  return message;
}

Message make_swap_dictionary(std::vector<std::uint8_t> dictionary_bytes) {
  Message message;
  message.type = MessageType::kSwapDictionary;
  message.dictionary_blob = std::move(dictionary_bytes);
  return message;
}

Message make_swap_ack(bool ok, std::uint64_t epoch, std::string error) {
  Message message;
  message.type = MessageType::kSwapAck;
  message.swap_ack.ok = ok;
  message.swap_ack.epoch = epoch;
  message.swap_ack.error = std::move(error);
  return message;
}

Message make_stats_request() {
  Message message;
  message.type = MessageType::kStatsRequest;
  return message;
}

Message make_stats_reply(std::string text) {
  Message message;
  message.type = MessageType::kStatsReply;
  message.stats_text = std::move(text);
  return message;
}

Message make_retrain_report(WireRetrainReport report) {
  Message message;
  message.type = MessageType::kRetrainReport;
  message.retrain_report = report;
  return message;
}

Message make_snap_capture(bool base, std::uint64_t capture_id,
                          std::uint64_t parent_id,
                          std::vector<std::uint8_t> capture_bytes) {
  Message message;
  message.type = base ? MessageType::kSnapBase : MessageType::kSnapDelta;
  message.capture_id = capture_id;
  message.parent_id = base ? 0 : parent_id;
  message.snapshot_blob = std::move(capture_bytes);
  return message;
}

Message make_snap_ack(bool ok, std::uint64_t capture_id, std::string error) {
  Message message;
  message.type = MessageType::kSnapAck;
  message.snap_ack.ok = ok;
  message.snap_ack.capture_id = capture_id;
  message.snap_ack.error = std::move(error);
  return message;
}

Message make_follow_request(std::uint64_t last_capture_id) {
  Message message;
  message.type = MessageType::kFollowRequest;
  message.capture_id = last_capture_id;
  return message;
}

Message make_promote() {
  Message message;
  message.type = MessageType::kPromote;
  return message;
}

Message make_promote_ack(bool ok, std::uint64_t capture_id,
                         std::string error) {
  Message message;
  message.type = MessageType::kPromoteAck;
  message.snap_ack.ok = ok;
  message.snap_ack.capture_id = capture_id;
  message.snap_ack.error = std::move(error);
  return message;
}

Message make_subscribe(std::vector<std::string> applications,
                       std::vector<std::uint32_t> sources) {
  Message message;
  message.type = MessageType::kSubscribe;
  message.subscribe.applications = std::move(applications);
  message.subscribe.sources = std::move(sources);
  return message;
}

Message make_subscribe_ack(bool ok, std::uint64_t subscriber_id,
                           std::string error) {
  Message message;
  message.type = MessageType::kSubscribeAck;
  message.snap_ack.ok = ok;
  message.snap_ack.capture_id = subscriber_id;
  message.snap_ack.error = std::move(error);
  return message;
}

Message make_verdict_event(std::uint64_t job_id, std::uint32_t source,
                           std::uint64_t latency_ns, WireVerdict verdict) {
  Message message;
  message.type = MessageType::kVerdictEvent;
  message.job_id = job_id;
  message.verdict_event.source = source;
  message.verdict_event.latency_ns = latency_ns;
  message.verdict = std::move(verdict);
  return message;
}

void encode_frame(const Message& message, std::vector<std::uint8_t>& out) {
  const std::size_t frame_start = out.size();
  try {
    encode_frame_impl(message, out, frame_start);
  } catch (...) {
    out.resize(frame_start);  // never leave a half-written frame behind
    throw;
  }
}

namespace {

void encode_frame_impl(const Message& message, std::vector<std::uint8_t>& out,
                       std::size_t frame_start) {
  put_u32(out, 0);  // payload length backpatched below
  out.push_back(kWireVersion);
  out.push_back(static_cast<std::uint8_t>(message.type));

  switch (message.type) {
    case MessageType::kOpenJob:
      put_u64(out, message.job_id);
      put_u32(out, message.node_count);
      break;
    case MessageType::kCloseJob:
      put_u64(out, message.job_id);
      break;
    case MessageType::kShutdown:
      break;
    case MessageType::kSampleBatch: {
      if (message.samples.size() > kMaxSamplesPerBatch) {
        throw std::invalid_argument("sample batch exceeds wire limit");
      }
      put_u64(out, message.job_id);
      put_u32(out, static_cast<std::uint32_t>(message.samples.size()));
      for (const WireSample& sample : message.samples) {
        put_u32(out, sample.node_id);
        put_u32(out, static_cast<std::uint32_t>(sample.t));
        put_f64(out, sample.value);
        put_string(out, sample.metric);
      }
      break;
    }
    case MessageType::kVerdict:
      put_u64(out, message.job_id);
      out.push_back(message.verdict.recognized ? 1 : 0);
      put_u32(out, message.verdict.matched);
      put_u32(out, message.verdict.fingerprints);
      put_string(out, message.verdict.application);
      put_string(out, message.verdict.label);
      break;
    case MessageType::kSwapDictionary:
      // The blob runs to the end of the body; the frame's length prefix
      // bounds it (and the kMaxFrameBytes check below enforces the cap).
      out.insert(out.end(), message.dictionary_blob.begin(),
                 message.dictionary_blob.end());
      break;
    case MessageType::kSwapAck:
      out.push_back(message.swap_ack.ok ? 1 : 0);
      put_u64(out, message.swap_ack.epoch);
      put_string(out, message.swap_ack.error);
      break;
    case MessageType::kStatsRequest:
      break;
    case MessageType::kStatsReply:
      // u32 length (stats text can outgrow the u16 string prefix on a
      // busy endpoint); the frame cap below still bounds it.
      put_u32(out, static_cast<std::uint32_t>(message.stats_text.size()));
      out.insert(out.end(), message.stats_text.begin(),
                 message.stats_text.end());
      break;
    case MessageType::kRetrainReport:
      put_u64(out, message.retrain_report.cycle);
      out.push_back(message.retrain_report.outcome);
      put_u64(out, message.retrain_report.epoch);
      put_f64(out, message.retrain_report.candidate_score);
      put_f64(out, message.retrain_report.incumbent_score);
      put_u64(out, message.retrain_report.window_jobs);
      put_u64(out, message.retrain_report.holdout_jobs);
      break;
    case MessageType::kSnapBase:
    case MessageType::kSnapDelta:
      // The capture blob runs to the end of the body; the frame's length
      // prefix bounds it (and the kMaxFrameBytes check below enforces the
      // cap — larger captures cannot travel this path).
      put_u64(out, message.capture_id);
      put_u64(out, message.parent_id);
      out.insert(out.end(), message.snapshot_blob.begin(),
                 message.snapshot_blob.end());
      break;
    case MessageType::kSnapAck:
    case MessageType::kPromoteAck:
      out.push_back(message.snap_ack.ok ? 1 : 0);
      put_u64(out, message.snap_ack.capture_id);
      put_string(out, message.snap_ack.error);
      break;
    case MessageType::kFollowRequest:
      put_u64(out, message.capture_id);
      break;
    case MessageType::kPromote:
      break;
    case MessageType::kSubscribe: {
      if (message.subscribe.applications.size() > kMaxSubscribeFilters ||
          message.subscribe.sources.size() > kMaxSubscribeFilters) {
        throw std::invalid_argument("subscribe filter list exceeds wire limit");
      }
      put_u32(out, static_cast<std::uint32_t>(
                       message.subscribe.applications.size()));
      for (const std::string& application : message.subscribe.applications) {
        put_string(out, application);
      }
      put_u32(out,
              static_cast<std::uint32_t>(message.subscribe.sources.size()));
      for (const std::uint32_t source : message.subscribe.sources) {
        put_u32(out, source);
      }
      break;
    }
    case MessageType::kSubscribeAck:
      out.push_back(message.snap_ack.ok ? 1 : 0);
      put_u64(out, message.snap_ack.capture_id);
      put_string(out, message.snap_ack.error);
      break;
    case MessageType::kVerdictEvent:
      put_u64(out, message.job_id);
      put_u32(out, message.verdict_event.source);
      put_u64(out, message.verdict_event.latency_ns);
      out.push_back(message.verdict.recognized ? 1 : 0);
      put_u32(out, message.verdict.matched);
      put_u32(out, message.verdict.fingerprints);
      put_string(out, message.verdict.application);
      put_string(out, message.verdict.label);
      break;
  }

  const std::size_t payload = out.size() - frame_start - 4;
  if (payload > kMaxFrameBytes) {
    out.resize(frame_start);
    throw std::invalid_argument("frame exceeds kMaxFrameBytes");
  }
  // Backpatch the length prefix.
  for (int i = 0; i < 4; ++i) {
    out[frame_start + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(payload >> (8 * i));
  }
}

}  // namespace

std::vector<std::uint8_t> encode(const Message& message) {
  std::vector<std::uint8_t> out;
  encode_frame(message, out);
  return out;
}

FrameDecoder::FrameDecoder() : pool_(&sample_buffer_pool()) {}

void FrameDecoder::feed(const std::uint8_t* data, std::size_t size) {
  if (failed_ || size == 0) return;
  // Compact the consumed prefix before growing (keeps the buffer bounded
  // by one frame plus one read's worth of bytes).
  if (offset_ > 0 && offset_ >= buffer_.size() / 2) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(offset_));
    offset_ = 0;
  }
  buffer_.insert(buffer_.end(), data, data + size);
}

DecodeStatus FrameDecoder::fail(std::string reason) {
  failed_ = true;
  error_ = std::move(reason);
  buffer_.clear();
  offset_ = 0;
  return DecodeStatus::kError;
}

DecodeStatus FrameDecoder::next(Message& out) {
  if (failed_) return DecodeStatus::kError;

  // Decode-stage timer: one steady_clock pair per sampled frame (1 in
  // HotPathMetrics::kSampleEvery); gated so bench_hot_path can measure
  // the instrumentation on/off.
  const bool timed = obs::hot_path().sample_now();
  const auto decode_start = timed ? std::chrono::steady_clock::now()
                                  : std::chrono::steady_clock::time_point{};

  const std::size_t available = buffer_.size() - offset_;
  if (available < 4) return DecodeStatus::kNeedMore;
  const std::uint8_t* head = buffer_.data() + offset_;
  std::uint32_t payload_len = 0;
  for (int i = 0; i < 4; ++i) {
    payload_len |= static_cast<std::uint32_t>(head[i]) << (8 * i);
  }
  if (payload_len < kHeaderBytes) return fail("frame shorter than header");
  if (payload_len > kMaxFrameBytes) return fail("frame exceeds size limit");
  if (available - 4 < payload_len) return DecodeStatus::kNeedMore;

  ByteReader reader(head + 4, payload_len);
  std::uint8_t version = 0, type = 0;
  reader.read_u8(version);
  reader.read_u8(type);
  if (version != kWireVersion) return fail("unsupported wire version");

  Message message;
  switch (static_cast<MessageType>(type)) {
    case MessageType::kOpenJob:
      message.type = MessageType::kOpenJob;
      if (reader.remaining() != kOpenJobBody ||
          !reader.read_u64(message.job_id) ||
          !reader.read_u32(message.node_count)) {
        return fail("malformed open-job body");
      }
      break;
    case MessageType::kCloseJob:
      message.type = MessageType::kCloseJob;
      if (reader.remaining() != kCloseJobBody ||
          !reader.read_u64(message.job_id)) {
        return fail("malformed close-job body");
      }
      break;
    case MessageType::kShutdown:
      message.type = MessageType::kShutdown;
      if (reader.remaining() != 0) return fail("malformed shutdown body");
      break;
    case MessageType::kSampleBatch: {
      message.type = MessageType::kSampleBatch;
      std::uint32_t count = 0;
      if (reader.remaining() < kBatchPrefix ||
          !reader.read_u64(message.job_id) || !reader.read_u32(count)) {
        return fail("malformed sample-batch prefix");
      }
      // Never trust the count field for allocation: the body that
      // actually arrived bounds how many samples can exist.
      if (static_cast<std::size_t>(count) * kSampleFixed >
          reader.remaining()) {
        return fail("sample count inconsistent with frame length");
      }
      // Decode IN PLACE into a recycled buffer: every field of every
      // element is overwritten below, and read_string assigns into the
      // element's string, reusing its capacity from the previous batch.
      if (pool_ != nullptr) message.samples = pool_->acquire();
      message.samples.resize(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        WireSample& sample = message.samples[i];
        std::uint32_t t_bits = 0;
        if (!reader.read_u32(sample.node_id) || !reader.read_u32(t_bits) ||
            !reader.read_f64(sample.value) ||
            !reader.read_string(sample.metric)) {
          return fail("truncated sample in batch");
        }
        sample.t = static_cast<std::int32_t>(t_bits);
      }
      if (reader.remaining() != 0) return fail("trailing bytes in batch");
      break;
    }
    case MessageType::kVerdict: {
      message.type = MessageType::kVerdict;
      std::uint8_t recognized = 0;
      if (reader.remaining() < kVerdictFixed ||
          !reader.read_u64(message.job_id) || !reader.read_u8(recognized) ||
          !reader.read_u32(message.verdict.matched) ||
          !reader.read_u32(message.verdict.fingerprints) ||
          !reader.read_string(message.verdict.application) ||
          !reader.read_string(message.verdict.label)) {
        return fail("malformed verdict body");
      }
      message.verdict.recognized = recognized != 0;
      if (reader.remaining() != 0) return fail("trailing bytes in verdict");
      break;
    }
    case MessageType::kSwapDictionary:
      message.type = MessageType::kSwapDictionary;
      // Whatever the body holds IS the dictionary blob: allocation is
      // bounded by the bytes that actually arrived (<= kMaxFrameBytes).
      reader.read_bytes(message.dictionary_blob, reader.remaining());
      break;
    case MessageType::kSwapAck: {
      message.type = MessageType::kSwapAck;
      std::uint8_t ok = 0;
      if (reader.remaining() < kSwapAckFixed || !reader.read_u8(ok) ||
          !reader.read_u64(message.swap_ack.epoch) ||
          !reader.read_string(message.swap_ack.error)) {
        return fail("malformed swap-ack body");
      }
      message.swap_ack.ok = ok != 0;
      if (reader.remaining() != 0) return fail("trailing bytes in swap-ack");
      break;
    }
    case MessageType::kStatsRequest:
      message.type = MessageType::kStatsRequest;
      if (reader.remaining() != 0) return fail("malformed stats-request body");
      break;
    case MessageType::kStatsReply: {
      message.type = MessageType::kStatsReply;
      std::uint32_t text_len = 0;
      if (reader.remaining() < kStatsReplyPrefix ||
          !reader.read_u32(text_len)) {
        return fail("malformed stats-reply prefix");
      }
      // The declared length must match the bytes that actually arrived —
      // never an allocation source beyond them.
      if (text_len != reader.remaining()) {
        return fail("stats text length inconsistent with frame length");
      }
      std::vector<std::uint8_t> text;
      reader.read_bytes(text, text_len);
      message.stats_text.assign(text.begin(), text.end());
      break;
    }
    case MessageType::kRetrainReport: {
      message.type = MessageType::kRetrainReport;
      if (reader.remaining() != kRetrainReportBody ||
          !reader.read_u64(message.retrain_report.cycle) ||
          !reader.read_u8(message.retrain_report.outcome) ||
          !reader.read_u64(message.retrain_report.epoch) ||
          !reader.read_f64(message.retrain_report.candidate_score) ||
          !reader.read_f64(message.retrain_report.incumbent_score) ||
          !reader.read_u64(message.retrain_report.window_jobs) ||
          !reader.read_u64(message.retrain_report.holdout_jobs)) {
        return fail("malformed retrain-report body");
      }
      break;
    }
    case MessageType::kSnapBase:
    case MessageType::kSnapDelta: {
      message.type = static_cast<MessageType>(type);
      if (reader.remaining() < kSnapCapturePrefix ||
          !reader.read_u64(message.capture_id) ||
          !reader.read_u64(message.parent_id)) {
        return fail("malformed snap-capture prefix");
      }
      if (message.type == MessageType::kSnapBase && message.parent_id != 0) {
        return fail("snap-base with nonzero parent");
      }
      // Whatever the body holds IS the capture blob: allocation is
      // bounded by the bytes that actually arrived (<= kMaxFrameBytes).
      // The blob's own EFD-SNAP-V2 CRCs are checked at restore time.
      reader.read_bytes(message.snapshot_blob, reader.remaining());
      break;
    }
    case MessageType::kSnapAck:
    case MessageType::kPromoteAck: {
      message.type = static_cast<MessageType>(type);
      std::uint8_t ok = 0;
      if (reader.remaining() < kSnapAckFixed || !reader.read_u8(ok) ||
          !reader.read_u64(message.snap_ack.capture_id) ||
          !reader.read_string(message.snap_ack.error)) {
        return fail("malformed snap-ack body");
      }
      message.snap_ack.ok = ok != 0;
      if (reader.remaining() != 0) return fail("trailing bytes in snap-ack");
      break;
    }
    case MessageType::kFollowRequest:
      message.type = MessageType::kFollowRequest;
      if (reader.remaining() != kFollowRequestBody ||
          !reader.read_u64(message.capture_id)) {
        return fail("malformed follow-request body");
      }
      break;
    case MessageType::kPromote:
      message.type = MessageType::kPromote;
      if (reader.remaining() != 0) return fail("malformed promote body");
      break;
    case MessageType::kSubscribe: {
      message.type = MessageType::kSubscribe;
      std::uint32_t app_count = 0;
      if (reader.remaining() < kSubscribePrefix ||
          !reader.read_u32(app_count)) {
        return fail("malformed subscribe prefix");
      }
      // Each filter name costs at least its u16 length prefix; the body
      // that actually arrived bounds the allocation, never the count.
      if (static_cast<std::size_t>(app_count) * 2 > reader.remaining()) {
        return fail("subscribe app count inconsistent with frame length");
      }
      message.subscribe.applications.resize(app_count);
      for (std::uint32_t i = 0; i < app_count; ++i) {
        if (!reader.read_string(message.subscribe.applications[i])) {
          return fail("truncated subscribe application filter");
        }
      }
      std::uint32_t source_count = 0;
      if (!reader.read_u32(source_count) ||
          static_cast<std::size_t>(source_count) * 4 > reader.remaining()) {
        return fail("subscribe source count inconsistent with frame length");
      }
      message.subscribe.sources.resize(source_count);
      for (std::uint32_t i = 0; i < source_count; ++i) {
        if (!reader.read_u32(message.subscribe.sources[i])) {
          return fail("truncated subscribe source filter");
        }
      }
      if (reader.remaining() != 0) return fail("trailing bytes in subscribe");
      break;
    }
    case MessageType::kSubscribeAck: {
      message.type = MessageType::kSubscribeAck;
      std::uint8_t ok = 0;
      if (reader.remaining() < kSnapAckFixed || !reader.read_u8(ok) ||
          !reader.read_u64(message.snap_ack.capture_id) ||
          !reader.read_string(message.snap_ack.error)) {
        return fail("malformed subscribe-ack body");
      }
      message.snap_ack.ok = ok != 0;
      if (reader.remaining() != 0) {
        return fail("trailing bytes in subscribe-ack");
      }
      break;
    }
    case MessageType::kVerdictEvent: {
      message.type = MessageType::kVerdictEvent;
      std::uint8_t recognized = 0;
      if (reader.remaining() < kVerdictEventFixed ||
          !reader.read_u64(message.job_id) ||
          !reader.read_u32(message.verdict_event.source) ||
          !reader.read_u64(message.verdict_event.latency_ns) ||
          !reader.read_u8(recognized) ||
          !reader.read_u32(message.verdict.matched) ||
          !reader.read_u32(message.verdict.fingerprints) ||
          !reader.read_string(message.verdict.application) ||
          !reader.read_string(message.verdict.label)) {
        return fail("malformed verdict-event body");
      }
      message.verdict.recognized = recognized != 0;
      if (reader.remaining() != 0) {
        return fail("trailing bytes in verdict-event");
      }
      break;
    }
    default:
      return fail("unknown message type");
  }

  offset_ += 4 + payload_len;
  ++frames_decoded_;
  out = std::move(message);
  if (timed) {
    obs::hot_path().decode_ns.observe(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - decode_start)
            .count());
  }
  return DecodeStatus::kMessage;
}

}  // namespace efd::ingest
