#include "ingest/subscription.hpp"

#include <algorithm>

namespace efd::ingest {

SubscriptionHub::SubscriptionHub(std::size_t queue_capacity)
    : queue_capacity_(queue_capacity == 0 ? 1 : queue_capacity) {
  dispatcher_ = std::thread([this] { dispatch_loop(); });
}

SubscriptionHub::~SubscriptionHub() { stop(); }

void SubscriptionHub::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
}

std::uint64_t SubscriptionHub::subscribe(std::weak_ptr<VerdictSink> sink,
                                         WireSubscribe filters) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto subscriber = std::make_unique<Subscriber>();
  subscriber->id = next_id_++;
  subscriber->sink = std::move(sink);
  subscriber->filters = std::move(filters);
  const std::uint64_t id = subscriber->id;
  subscribers_.push_back(std::move(subscriber));
  subscriber_count_.store(subscribers_.size(), std::memory_order_relaxed);
  return id;
}

bool SubscriptionHub::matches(const Subscriber& subscriber,
                              const Message& event,
                              const std::string& application) {
  const WireSubscribe& filters = subscriber.filters;
  if (!filters.applications.empty() &&
      std::find(filters.applications.begin(), filters.applications.end(),
                application) == filters.applications.end()) {
    return false;
  }
  if (!filters.sources.empty() &&
      std::find(filters.sources.begin(), filters.sources.end(),
                event.verdict_event.source) == filters.sources.end()) {
    return false;
  }
  return true;
}

void SubscriptionHub::publish(const Message& event,
                              const std::string& application) {
  bool queued = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return;
    for (auto& subscriber : subscribers_) {
      if (subscriber->dead) continue;
      if (subscriber->sink.expired()) {
        subscriber->dead = true;
        continue;
      }
      if (!matches(*subscriber, event, application)) continue;
      if (subscriber->queue.size() >= queue_capacity_) {
        // Slow consumer: shed the event, never block the flush path.
        ++subscriber->dropped;
        continue;
      }
      subscriber->queue.push_back(event);
      queued = true;
    }
  }
  if (queued) wake_.notify_one();
}

void SubscriptionHub::dispatch_loop() {
  struct Delivery {
    std::shared_ptr<VerdictSink> sink;
    std::vector<Message> events;
    Subscriber* subscriber = nullptr;
  };

  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    wake_.wait(lock, [this] {
      if (stopping_) return true;
      for (const auto& subscriber : subscribers_) {
        if (!subscriber->queue.empty()) return true;
      }
      return false;
    });
    if (stopping_) return;

    // Swap every pending queue out under the lock, then deliver with the
    // lock released — sink writes may block (TCP send timeout) and must
    // not stall publish().
    std::vector<Delivery> deliveries;
    for (auto& subscriber : subscribers_) {
      if (subscriber->queue.empty()) continue;
      auto sink = subscriber->sink.lock();
      if (!sink) {
        subscriber->dead = true;
        subscriber->queue.clear();
        continue;
      }
      Delivery delivery;
      delivery.sink = std::move(sink);
      delivery.events.assign(
          std::make_move_iterator(subscriber->queue.begin()),
          std::make_move_iterator(subscriber->queue.end()));
      subscriber->queue.clear();
      delivery.subscriber = subscriber.get();
      deliveries.push_back(std::move(delivery));
    }
    std::erase_if(subscribers_,
                  [](const std::unique_ptr<Subscriber>& subscriber) {
                    return subscriber->dead;
                  });
    subscriber_count_.store(subscribers_.size(), std::memory_order_relaxed);

    lock.unlock();
    for (Delivery& delivery : deliveries) {
      delivery.sink->deliver_many(
          std::span<const Message>(delivery.events));
    }
    lock.lock();
    // `subscriber` pointers stay valid across the unlock: erase_if above
    // ran before release, and subscribe() only appends unique_ptrs.
    for (const Delivery& delivery : deliveries) {
      delivery.subscriber->delivered += delivery.events.size();
    }
  }
}

std::vector<SubscriptionHub::SubscriberStats> SubscriptionHub::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<SubscriberStats> out;
  out.reserve(subscribers_.size());
  for (const auto& subscriber : subscribers_) {
    out.push_back(SubscriberStats{subscriber->id, subscriber->delivered,
                                  subscriber->dropped,
                                  subscriber->queue.size()});
  }
  return out;
}

}  // namespace efd::ingest
