#pragma once
/// \file udp_transport.hpp
/// \brief UDP datagram transport: the lossy-tolerant LDMS ingestion mode.
///
/// Per-node samplers on a big cluster often ship over UDP: no connection
/// state on either side, and a dropped datagram costs one batch of
/// monitoring samples — never a stalled emitter. This transport embraces
/// that: datagrams carry an explicit sequence number, the server COUNTS
/// loss (gaps), duplication, and reordering per peer instead of treating
/// them as errors, and a full internal queue sheds the newest datagram
/// (counted) rather than back-pressuring the socket into invisible
/// kernel drops. Loss degrades per-source counters — visible in the
/// `source.<id>.*` stats rows — never correctness or liveness of the
/// jobs that did arrive.
///
/// Datagram layout (EFD-DGRAM-V1; integers little-endian):
///
///   datagram := u32 magic ("EFDU") | u64 seq | frame
///
/// where `frame` is exactly one EFD-WIRE-V1 frame (wire_format.hpp) —
/// the same fuzz-hardened decoder, fed one datagram at a time; trailing
/// bytes after the frame, a truncated frame, or a bad magic fail that
/// datagram alone (decode_errors), never a stream. seq starts at 1 and
/// increments per datagram per emitter socket; the server tracks the
/// highest seq seen per peer address:
///   seq == last+1  → in order
///   seq  > last+1  → delivered; gap of (seq-last-1) counted
///   seq <= last    → duplicate/reordered; dropped and counted (a
///                    re-delivered kSampleBatch would double-count)
///
/// Verdicts (and stats replies / swap acks) travel back as datagrams to
/// the peer's source address, best-effort: a vanished peer's verdicts
/// are counted as write failures and dropped, like the TCP path.
///
/// Frames must fit one datagram (kMaxUdpPayloadBytes); senders that
/// need bigger batches use TCP or shared memory — see the README's
/// "choosing a transport" table.

#include <netinet/in.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "ingest/buffer_pool.hpp"
#include "ingest/ring_transport.hpp"
#include "ingest/tcp_transport.hpp"  // TransportError
#include "ingest/transport.hpp"

namespace efd::ingest {

/// "EFDU", little-endian.
inline constexpr std::uint32_t kUdpMagic = 0x55444645u;
inline constexpr std::size_t kUdpHeaderBytes = 4 + 8;
/// Encoded frame cap per datagram (headroom under the 65507-byte UDP
/// maximum for the header and pathological stacks).
inline constexpr std::size_t kMaxUdpPayloadBytes = 60 * 1024;

/// Appends one EFD-DGRAM-V1 datagram (header + encoded frame) to \p out.
/// Throws std::invalid_argument when the frame cannot fit a datagram.
void encode_datagram(std::uint64_t seq, const Message& message,
                     std::vector<std::uint8_t>& out);

/// Decodes one datagram. Defensive against arbitrary bytes: returns
/// false (out/seq untouched or partial) on bad magic, truncation, a
/// frame that fails the wire decoder, or trailing bytes — never throws,
/// crashes, or over-allocates beyond the bytes that arrived. \p pool,
/// when non-null, supplies the decoder's sample buffers (the server
/// passes its own pool; standalone callers default to the global one).
bool decode_datagram(const std::uint8_t* data, std::size_t size,
                     std::uint64_t& seq, Message& out,
                     SampleBufferPool* pool = nullptr);

class UdpServer final : public SampleSource {
 public:
  struct Config {
    std::uint16_t port = 0;            ///< 0 = ephemeral (see port())
    std::size_t queue_capacity = 4096; ///< decoded-message bound
    std::size_t queue_sample_capacity = 0;  ///< 0 = 64 x queue_capacity
    /// SO_RCVBUF request (best-effort; the kernel may clamp it). Bigger
    /// buffers absorb replay bursts before the kernel sheds datagrams.
    int receive_buffer_bytes = 4 * 1024 * 1024;
    /// Idle time after which a peer's sequencing state expires (0 =
    /// never). An emitter that reboots and restarts its seq at 1 within
    /// a live session would look like a flood of duplicates; once idle
    /// past this TTL its next datagram starts a fresh session instead.
    /// Long-idle peers are also evicted (amortized sweep), so a server
    /// facing ephemeral-port emitters cannot grow peer state forever.
    /// Tradeoff: gap/duplicate accounting only spans datagrams within
    /// one session — an emitter whose bursts are spaced further apart
    /// than this TTL gets no cross-burst loss accounting. Set it above
    /// the emitters' largest legitimate quiet spell.
    std::chrono::milliseconds peer_ttl{60 * 1000};
  };

  struct Stats {
    std::uint64_t datagrams = 0;       ///< received from the socket
    std::uint64_t frames = 0;          ///< decoded and enqueued
    std::uint64_t decode_errors = 0;   ///< malformed datagrams
    std::uint64_t gaps = 0;            ///< sequence holes (lost datagrams)
    std::uint64_t duplicates = 0;      ///< seq <= last seen (dropped)
    std::uint64_t queue_drops = 0;     ///< shed on a full internal queue
    std::uint64_t verdict_send_failures = 0;
    /// Duplicate kOpenJob/kCloseJob frames absorbed (an unacked emitter
    /// retransmits its control frames — see UdpClient — and each copy
    /// after the first is shed here instead of re-dispatching).
    std::uint64_t control_retransmits = 0;
    std::size_t peers = 0;             ///< source addresses currently tracked
  };

  /// Binds 127.0.0.1:<port>; throws TransportError.
  explicit UdpServer(const Config& config);
  ~UdpServer() override;

  UdpServer(const UdpServer&) = delete;
  UdpServer& operator=(const UdpServer&) = delete;

  std::uint16_t port() const noexcept { return port_; }

  bool poll(std::vector<Envelope>& out,
            std::chrono::milliseconds timeout) override;

  /// Closes the socket and joins the receiver; poll() reports
  /// exhaustion once the queue drains. Idempotent.
  void stop();

  Stats stats() const;
  TransportCounters transport_counters() const override;

  /// The server-owned sample buffer pool the receiver's decoders
  /// acquire from (and the consumer releases back to).
  const SampleBufferPool* buffer_pool() const override { return &pool_; }

 private:
  struct SharedSocket;  ///< mutex-guarded fd holder (outlives stop())
  struct PeerSink;
  /// Control frames remembered per peer for retransmit absorption.
  /// Must cover the emitter's whole unacked window even when jobs
  /// interleave (the client re-sends up to kMaxPendingControl opens
  /// AND closes with every datagram), so it is a ring, not a last-id.
  static constexpr std::size_t kControlHistorySize = 32;
  struct ControlSeen {
    std::uint64_t job_id = ~0ull;  ///< ~0 = empty slot
    bool close = false;
  };
  struct PeerState {
    std::uint64_t last_seq = 0;
    /// Ring of recently dispatched open/close frames; a repeat
    /// anywhere in it is an emitter retransmit, shed before dispatch.
    std::array<ControlSeen, kControlHistorySize> control_seen{};
    std::size_t control_next = 0;
    std::chrono::steady_clock::time_point last_activity{};
    std::shared_ptr<PeerSink> sink;
  };

  void receive_loop();
  /// Sequencing, dedup, and enqueue for one received datagram
  /// (receiver thread).
  void handle_datagram(const sockaddr_in& peer, const std::uint8_t* data,
                       std::size_t size);
  /// Amortized eviction of peers idle past the TTL (receiver thread).
  void sweep_idle_peers(std::chrono::steady_clock::time_point now);

  Config config_;
  int fd_ = -1;
  std::shared_ptr<SharedSocket> socket_;
  std::uint16_t port_ = 0;
  RingTransport queue_;
  /// Server-local sample buffer recycling (see TcpServer::pool_).
  SampleBufferPool pool_;
  std::thread receiver_;
  std::atomic<bool> stopping_{false};

  /// Per-peer sequencing state (receiver thread only).
  std::unordered_map<std::uint64_t, PeerState> peers_;
  std::size_t peers_sweep_at_ = 64;

  std::atomic<std::uint64_t> datagrams_{0};
  std::atomic<std::uint64_t> frames_{0};
  std::atomic<std::uint64_t> decode_errors_{0};
  std::atomic<std::uint64_t> gaps_{0};
  std::atomic<std::uint64_t> duplicates_{0};
  std::atomic<std::uint64_t> queue_drops_{0};
  std::atomic<std::uint64_t> control_retransmits_{0};
  std::atomic<std::size_t> peer_count_{0};
  /// Shared with every PeerSink (a sink held by undelivered envelopes
  /// can outlive the server).
  std::shared_ptr<std::atomic<std::uint64_t>> verdict_send_failures_ =
      std::make_shared<std::atomic<std::uint64_t>>(0);
};

/// Datagram emitter toward a UdpServer: send() frames, receive()
/// verdict datagrams. Mirrors TcpClient's shape so `efd_cli replay`
/// treats the transports interchangeably.
///
/// Control frames get extra protection on this lossy link: a lost
/// kSampleBatch costs one batch of samples, but a lost kOpenJob loses
/// the WHOLE job (the server sheds samples for a job it never saw open)
/// and a lost kCloseJob strands it until the stale sweep. So kOpenJob/
/// kCloseJob are kept pending and re-sent — bundled with each subsequent
/// send() in one sendmmsg() call, each copy under a fresh sequence
/// number — until the first verdict for their job acks the path, or a
/// bounded retransmit budget runs out. The server absorbs the duplicate
/// copies (Stats::control_retransmits) so re-delivery never re-opens or
/// re-closes anything.
class UdpClient final : public MessageSender {
 public:
  /// Pending control frames tracked at once (oldest dropped beyond).
  static constexpr std::size_t kMaxPendingControl = 8;
  /// Copies re-sent per control frame before giving up.
  static constexpr int kMaxRetransmits = 16;
  /// Connects (in the UDP sense) to host:port; throws TransportError.
  UdpClient(const std::string& host, std::uint16_t port);
  ~UdpClient() override;

  UdpClient(const UdpClient&) = delete;
  UdpClient& operator=(const UdpClient&) = delete;

  /// Encodes and sends one datagram. Throws TransportError on a socket
  /// failure or a frame too large for a datagram (emitters bound their
  /// batch size — see kMaxUdpPayloadBytes).
  void send(Message message) override;

  /// Waits up to \p timeout for the next inbound message (verdicts,
  /// acks). Returns false on timeout or a malformed datagram.
  bool receive(Message& out, std::chrono::milliseconds timeout);

  /// UDP has no half-close; provided for interface parity with
  /// TcpClient (the server ends jobs via kCloseJob frames or its sweep).
  void finish_sending() {}

  /// Control-frame copies re-sent so far (monotonic).
  std::uint64_t retransmits() const noexcept {
    return retransmits_.load(std::memory_order_relaxed);
  }

  /// Unacked control frames currently pending (test/monitoring view).
  std::size_t pending_control() const;

 private:
  struct PendingControl {
    Message message;
    int remaining = kMaxRetransmits;
  };

  int fd_ = -1;
  mutable std::mutex write_mutex_;
  std::uint64_t next_seq_ = 0;
  std::vector<std::uint8_t> encode_buffer_;
  /// Unacked kOpenJob/kCloseJob frames awaiting a verdict ack (guarded
  /// by write_mutex_; receive() takes it briefly to clear acks).
  std::vector<PendingControl> pending_control_;
  /// sendmmsg scratch: one datagram buffer per bundled message.
  std::vector<std::vector<std::uint8_t>> datagram_buffers_;
  std::atomic<std::uint64_t> retransmits_{0};
};

}  // namespace efd::ingest
