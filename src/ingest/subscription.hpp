#pragma once

// Verdict pub/sub hub.  Peers subscribe over the wire (kSubscribe, with
// optional per-application / per-source filters) and receive a
// kVerdictEvent copy of every matching verdict the pipeline flushes.
//
// Contract: publish() NEVER blocks.  Each subscriber owns a bounded
// queue; when it is full the event is dropped and counted against that
// subscriber.  A single dispatcher thread drains the queues and performs
// the (potentially blocking) sink writes, so one stalled TCP consumer
// delays other subscribers' delivery at worst, and the verdict flush
// path — which runs on the pipeline's ingest thread — not at all.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "ingest/transport.hpp"
#include "ingest/wire_format.hpp"

namespace efd::ingest {

class SubscriptionHub {
 public:
  /// Default per-subscriber queue bound (events, not bytes).
  static constexpr std::size_t kDefaultQueueCapacity = 1024;

  struct SubscriberStats {
    std::uint64_t id = 0;
    std::uint64_t delivered = 0;  ///< events handed to the sink
    std::uint64_t dropped = 0;    ///< events shed on a full queue
    std::uint64_t queued = 0;     ///< current queue depth
  };

  explicit SubscriptionHub(
      std::size_t queue_capacity = kDefaultQueueCapacity);
  ~SubscriptionHub();

  SubscriptionHub(const SubscriptionHub&) = delete;
  SubscriptionHub& operator=(const SubscriptionHub&) = delete;

  /// Registers a subscriber; the sink is held weakly (a dead connection
  /// is reaped on the next publish/dispatch touching it). Returns the
  /// subscriber id echoed in the kSubscribeAck.
  std::uint64_t subscribe(std::weak_ptr<VerdictSink> sink,
                          WireSubscribe filters);

  /// Fans one verdict event out to every matching live subscriber's
  /// queue. Non-blocking: full queues drop-and-count. `application` is
  /// the verdict's predicted application (matched against the
  /// subscription's application filters).
  void publish(const Message& event, const std::string& application);

  /// True if at least one subscriber is registered (cheap pre-check so
  /// the flush path skips event construction entirely with no peers).
  bool has_subscribers() const noexcept {
    return subscriber_count_.load(std::memory_order_relaxed) > 0;
  }

  std::vector<SubscriberStats> stats() const;

  /// Stops the dispatcher thread; further publishes are dropped.
  void stop();

 private:
  struct Subscriber {
    std::uint64_t id = 0;
    std::weak_ptr<VerdictSink> sink;
    WireSubscribe filters;
    std::deque<Message> queue;  // guarded by hub mutex_
    std::uint64_t delivered = 0;
    std::uint64_t dropped = 0;
    bool dead = false;
  };

  void dispatch_loop();
  static bool matches(const Subscriber& subscriber, const Message& event,
                      const std::string& application);

  const std::size_t queue_capacity_;
  mutable std::mutex mutex_;
  std::condition_variable wake_;
  std::vector<std::unique_ptr<Subscriber>> subscribers_;
  std::uint64_t next_id_ = 1;
  std::atomic<std::size_t> subscriber_count_{0};
  bool stopping_ = false;
  std::thread dispatcher_;
};

}  // namespace efd::ingest
