#include "ingest/buffer_pool.hpp"

#include <utility>

namespace efd::ingest {

std::vector<WireSample> SampleBufferPool::acquire() {
  {
    std::lock_guard lock(mutex_);
    if (!free_.empty()) {
      std::vector<WireSample> buffer = std::move(free_.back());
      free_.pop_back();
      ++stats_.hits;
      return buffer;
    }
    ++stats_.misses;
  }
  return {};
}

void SampleBufferPool::release(std::vector<WireSample>&& buffer) {
  if (buffer.capacity() == 0) return;  // moved-from or never-used: nothing to keep
  std::lock_guard lock(mutex_);
  if (free_.size() >= kMaxPooledBuffers ||
      buffer.capacity() > kMaxPooledCapacity) {
    ++stats_.discards;
    return;  // buffer frees on scope exit
  }
  ++stats_.returns;
  free_.push_back(std::move(buffer));
}

SampleBufferPool::Stats SampleBufferPool::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

SampleBufferPool& sample_buffer_pool() {
  static SampleBufferPool pool;
  return pool;
}

}  // namespace efd::ingest
