#include "ingest/tcp_transport.hpp"

#include <arpa/inet.h>
#include <limits.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#ifndef IOV_MAX
#define IOV_MAX 1024
#endif

namespace efd::ingest {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw TransportError(what + ": " + std::strerror(errno));
}

void close_fd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

/// Writes the whole buffer; returns false on a broken connection.
bool write_all(int fd, const std::uint8_t* data, std::size_t size) {
  while (size > 0) {
    const ssize_t written = ::send(fd, data, size, MSG_NOSIGNAL);
    if (written < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += written;
    size -= static_cast<std::size_t>(written);
  }
  return true;
}

}  // namespace

/// One accepted connection. The shared_ptr doubles as the Envelope reply
/// channel, so a Connection outlives its reader thread for as long as
/// undelivered verdicts reference it.
struct TcpServer::Connection final : VerdictSink {
  Connection(int fd,
             std::shared_ptr<std::atomic<std::uint64_t>> write_failures)
      : fd(fd), write_failures(std::move(write_failures)) {}
  ~Connection() override {
    std::lock_guard lock(write_mutex);
    close_fd(fd);
  }

  void deliver(const Message& verdict) override {
    std::vector<std::uint8_t> frame;
    encode_frame(verdict, frame);
    std::lock_guard lock(write_mutex);
    if (fd < 0) {  // connection already gone: best-effort drop
      write_failures->fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if (!write_all(fd, frame.data(), frame.size())) {
      // Peer vanished, or it stopped reading verdicts and the send
      // timed out (SO_SNDTIMEO, set at accept). deliver() runs on the
      // pipeline's only thread, so a peer that never drains its socket
      // must cost at most one timeout — kill the connection rather
      // than let one slow consumer stall every other connection. A
      // timed-out partial write has corrupted the peer's framing
      // anyway.
      write_failures->fetch_add(1, std::memory_order_relaxed);
      ::shutdown(fd, SHUT_RDWR);
    }
  }

  void deliver_many(std::span<const Message> verdicts) override {
    if (verdicts.empty()) return;
    if (verdicts.size() == 1) {
      deliver(verdicts.front());
      return;
    }
    std::lock_guard lock(write_mutex);
    if (fd < 0) {
      write_failures->fetch_add(verdicts.size(), std::memory_order_relaxed);
      return;
    }
    // One encoded frame per reused slot; the whole run then leaves in
    // IOV_MAX-sized vectored writes — one syscall instead of one per
    // verdict. Slots and iovecs are members so a steady verdict rate
    // recycles their capacity.
    if (write_slots.size() < verdicts.size()) {
      write_slots.resize(verdicts.size());
    }
    write_iov.clear();
    write_iov.reserve(verdicts.size());
    for (std::size_t i = 0; i < verdicts.size(); ++i) {
      write_slots[i].clear();
      encode_frame(verdicts[i], write_slots[i]);
      write_iov.push_back(
          iovec{write_slots[i].data(), write_slots[i].size()});
    }
    // iov index == frame index (one iovec per frame), so on failure the
    // frames not yet fully written are exactly the ones counted lost.
    std::size_t next = 0;
    while (next < write_iov.size()) {
      const std::size_t chunk =
          std::min<std::size_t>(IOV_MAX, write_iov.size() - next);
      msghdr msg{};
      msg.msg_iov = &write_iov[next];
      msg.msg_iovlen = chunk;
      const ssize_t written = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
      if (written < 0) {
        if (errno == EINTR) continue;
        // Same discipline as deliver(): a vanished or stalled peer
        // (SO_SNDTIMEO) costs at most one timeout, then the connection
        // dies — a timed-out partial write corrupted its framing anyway.
        write_failures->fetch_add(verdicts.size() - next,
                                  std::memory_order_relaxed);
        ::shutdown(fd, SHUT_RDWR);
        return;
      }
      // Consume fully-written frames; adjust the first partial one.
      std::size_t remaining = static_cast<std::size_t>(written);
      while (remaining > 0) {
        if (remaining >= write_iov[next].iov_len) {
          remaining -= write_iov[next].iov_len;
          ++next;
        } else {
          write_iov[next].iov_base =
              static_cast<std::uint8_t*>(write_iov[next].iov_base) +
              remaining;
          write_iov[next].iov_len -= remaining;
          remaining = 0;
        }
      }
    }
  }

  void shutdown_socket() {
    std::lock_guard lock(write_mutex);
    if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
  }

  std::mutex write_mutex;
  int fd;
  std::shared_ptr<std::atomic<std::uint64_t>> write_failures;
  std::thread reader;
  std::atomic<bool> finished{false};
  /// deliver_many scratch (guarded by write_mutex).
  std::vector<std::vector<std::uint8_t>> write_slots;
  std::vector<iovec> write_iov;
};

TcpServer::TcpServer(const Config& config)
    : config_(config),
      queue_(config.queue_capacity, config.queue_sample_capacity) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw_errno("socket");
  const int reuse = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));

  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  address.sin_port = htons(config.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&address),
             sizeof(address)) < 0) {
    close_fd(listen_fd_);
    throw_errno("bind");
  }
  socklen_t length = sizeof(address);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&address),
                    &length) < 0) {
    close_fd(listen_fd_);
    throw_errno("getsockname");
  }
  port_ = ntohs(address.sin_port);
  if (::listen(listen_fd_, 64) < 0) {
    close_fd(listen_fd_);
    throw_errno("listen");
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
}

TcpServer::~TcpServer() { stop(); }

void TcpServer::accept_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener closed by stop()
    }
    const int nodelay = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof(nodelay));
    // Bound verdict writes: a peer that stops reading stalls deliver()
    // for at most this long before the connection is dropped.
    timeval send_timeout{};
    send_timeout.tv_sec = 5;
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &send_timeout,
                 sizeof(send_timeout));
    auto connection =
        std::make_shared<Connection>(fd, verdict_write_failures_);
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard lock(connections_mutex_);
      reap_finished_connections();
      connections_.push_back(connection);
    }
    connection->reader =
        std::thread([this, connection] { reader_loop(connection); });
  }
}

void TcpServer::reader_loop(const std::shared_ptr<Connection>& connection) {
  FrameDecoder decoder;
  decoder.set_buffer_pool(&pool_);  // recycle within this server
  std::vector<std::uint8_t> chunk(config_.read_chunk);
  bool dropped = false;
  while (!stopping_.load(std::memory_order_acquire)) {
    const ssize_t received =
        ::recv(connection->fd, chunk.data(), chunk.size(), 0);
    if (received < 0 && errno == EINTR) continue;
    if (received <= 0) break;  // EOF or error: emitter finished
    decoder.feed(chunk.data(), static_cast<std::size_t>(received));

    Message message;
    DecodeStatus status;
    while ((status = decoder.next(message)) == DecodeStatus::kMessage) {
      frames_.fetch_add(1, std::memory_order_relaxed);
      // Blocking send = end-to-end back-pressure: stop reading the
      // socket until the pipeline catches up.
      try {
        queue_.send_with_reply(std::move(message), connection);
      } catch (const std::runtime_error&) {
        dropped = true;  // server stopping underneath us
        break;
      }
    }
    if (status == DecodeStatus::kError) {
      // Corrupted framing is unrecoverable; drop the connection.
      connections_dropped_.fetch_add(1, std::memory_order_relaxed);
      dropped = true;
    }
    if (dropped) break;
  }
  if (dropped) connection->shutdown_socket();
  connection->finished.store(true, std::memory_order_release);
}

void TcpServer::reap_finished_connections() {
  // Caller holds connections_mutex_. Joins readers that already exited
  // so long-lived servers don't accumulate dead threads.
  for (auto it = connections_.begin(); it != connections_.end();) {
    if ((*it)->finished.load(std::memory_order_acquire)) {
      if ((*it)->reader.joinable()) (*it)->reader.join();
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

bool TcpServer::poll(std::vector<Envelope>& out,
                     std::chrono::milliseconds timeout) {
  // Stamp pool provenance on the entries this call appended, so the
  // consumer releases sample buffers back to THIS server's pool.
  const std::size_t before = out.size();
  const bool alive = queue_.poll(out, timeout);
  for (std::size_t i = before; i < out.size(); ++i) out[i].pool = &pool_;
  return alive;
}

void TcpServer::stop() {
  if (stopping_.exchange(true, std::memory_order_acq_rel)) return;
  // Wake accept() with shutdown(); the fd value itself is only mutated
  // after the accept thread is gone (it reads listen_fd_ every loop).
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  close_fd(listen_fd_);

  // Close the queue BEFORE joining readers: a reader blocked on a full
  // queue (back-pressure) must wake and exit or the join deadlocks.
  queue_.close();
  std::vector<std::shared_ptr<Connection>> connections;
  {
    std::lock_guard lock(connections_mutex_);
    connections.swap(connections_);
  }
  for (const auto& connection : connections) connection->shutdown_socket();
  for (const auto& connection : connections) {
    if (connection->reader.joinable()) connection->reader.join();
  }
}

TcpServer::Stats TcpServer::stats() const {
  Stats stats;
  stats.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  stats.connections_dropped =
      connections_dropped_.load(std::memory_order_relaxed);
  stats.frames = frames_.load(std::memory_order_relaxed);
  stats.verdict_write_failures =
      verdict_write_failures_->load(std::memory_order_relaxed);
  {
    std::lock_guard lock(connections_mutex_);
    for (const auto& connection : connections_) {
      if (!connection->finished.load(std::memory_order_acquire)) {
        ++stats.active_connections;
      }
    }
  }
  return stats;
}

TransportCounters TcpServer::transport_counters() const {
  const Stats stats = this->stats();
  TransportCounters counters;
  counters.frames = stats.frames;
  counters.decode_errors = stats.connections_dropped;
  counters.drops = stats.verdict_write_failures;
  counters.blocked = queue_.blocked_sends();
  return counters;
}

TcpClient::TcpClient(const std::string& host, std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw_errno("socket");

  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &address.sin_addr) != 1) {
    close_fd(fd_);
    throw TransportError("invalid host address: " + host);
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&address),
                sizeof(address)) < 0) {
    close_fd(fd_);
    throw_errno("connect to " + host + ":" + std::to_string(port));
  }
  const int nodelay = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof(nodelay));
}

TcpClient::~TcpClient() { close_fd(fd_); }

void TcpClient::send(Message message) {
  std::lock_guard lock(write_mutex_);
  encode_buffer_.clear();
  encode_frame(message, encode_buffer_);
  if (!write_all(fd_, encode_buffer_.data(), encode_buffer_.size())) {
    throw TransportError("connection lost while sending");
  }
}

bool TcpClient::receive(Message& out, std::chrono::milliseconds timeout) {
  return receive_status(out, timeout) == ReceiveStatus::kMessage;
}

TcpClient::ReceiveStatus TcpClient::receive_status(
    Message& out, std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  std::uint8_t chunk[16 * 1024];
  for (;;) {
    switch (decoder_.next(out)) {
      case DecodeStatus::kMessage:
        return ReceiveStatus::kMessage;
      case DecodeStatus::kError:
        // Corrupt framing is unrecoverable on a stream socket: the
        // connection is as dead as an EOF.
        return ReceiveStatus::kClosed;
      case DecodeStatus::kNeedMore:
        break;
    }
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return ReceiveStatus::kTimeout;
    pollfd pfd{fd_, POLLIN, 0};
    const auto wait = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - now);
    const int ready = ::poll(&pfd, 1, static_cast<int>(wait.count()));
    if (ready < 0 && errno == EINTR) continue;
    if (ready < 0) return ReceiveStatus::kClosed;
    if (ready == 0) return ReceiveStatus::kTimeout;
    const ssize_t received = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (received < 0 && errno == EINTR) continue;
    if (received <= 0) return ReceiveStatus::kClosed;  // EOF / socket error
    decoder_.feed(chunk, static_cast<std::size_t>(received));
  }
}

void TcpClient::finish_sending() {
  std::lock_guard lock(write_mutex_);
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

}  // namespace efd::ingest
