#pragma once
/// \file shm_transport.hpp
/// \brief Cross-process shared-memory ring transport (EFD-SHM-V1).
///
/// The zero-syscall path for a monitoring daemon co-located with the
/// serving endpoint: the mmap-backed, cross-process variant of the PR 2
/// in-process ring discipline. A POSIX shared-memory segment carries two
/// single-producer/single-consumer byte rings — inbound (emitter →
/// service) for EFD-WIRE-V1 frames, outbound (service → emitter) for
/// verdict/ack frames — plus a control header. The server creates and
/// owns the segment; one client attaches by name.
///
/// Segment layout:
///
///   segment  := ShmHeader | inbound bytes | outbound bytes
///   ShmHeader: magic "EFDSHM1\0", version, ring capacities, ready
///              flag, producer/consumer closed flags, and four
///              monotonic head/tail byte cursors (std::atomic<u64>,
///              required lock-free — position = cursor % capacity).
///
/// Discipline mirrors RingTransport: the inbound ring *blocks* the
/// producer when full (back-pressure, counted — never silent loss),
/// while the outbound ring sheds verdicts when the emitter stops
/// reading (counted — the service's poll loop must never stall on one
/// slow peer). Framing reuses the wire codec verbatim: the consumer
/// feeds drained bytes to the same fuzz-hardened FrameDecoder the TCP
/// reader uses, and a corrupt stream (or hostile ring cursors) retires
/// the source (like a dropped TCP connection) rather than crashing it.
///
/// Sessions turn over like TCP connections: when a producer declares
/// itself finished (finish_sending) and its bytes are drained, the
/// server resets the closed flag and keeps serving, so the next emitter
/// can attach to the same segment — a sole shm listener does not shut
/// the endpoint down because one replay ended. Producers detect a DEAD
/// consumer (crashed without closing) via a heartbeat the server
/// refreshes every poll; a send blocked against a stale heartbeat fails
/// loudly instead of waiting on an orphaned segment forever.
///
/// Synchronization is purely acquire/release on the head/tail cursors;
/// waiting sides sleep-poll at millisecond granularity (monitoring
/// cadence, not a microsecond bus). One producer process/thread and one
/// consumer each side — this is a point-to-point transport; register
/// several segments on the SourceMux for several co-located daemons.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ingest/buffer_pool.hpp"
#include "ingest/tcp_transport.hpp"  // TransportError
#include "ingest/transport.hpp"
#include "ingest/wire_format.hpp"

namespace efd::ingest {

inline constexpr std::uint64_t kShmMagic = 0x0031'4D48'5344'4645ull;  // "EFDSHM1\0"
inline constexpr std::uint32_t kShmVersion = 1;

/// Control header at the start of an EFD-SHM-V1 segment. Everything the
/// two processes share is either written once before `ready` publishes
/// (magic/version/capacities) or an atomic.
struct ShmHeader {
  std::uint64_t magic = 0;
  std::uint32_t version = 0;
  std::uint32_t inbound_capacity = 0;
  std::uint32_t outbound_capacity = 0;
  std::uint32_t reserved = 0;
  std::atomic<std::uint32_t> ready{0};
  std::atomic<std::uint32_t> producer_closed{0};
  std::atomic<std::uint32_t> consumer_closed{0};
  std::atomic<std::uint64_t> in_head{0};   ///< bytes written, emitter side
  std::atomic<std::uint64_t> in_tail{0};   ///< bytes consumed, service side
  std::atomic<std::uint64_t> out_head{0};  ///< bytes written, service side
  std::atomic<std::uint64_t> out_tail{0};  ///< bytes consumed, emitter side
  std::atomic<std::uint64_t> producer_blocked{0};  ///< back-pressure waits
  std::atomic<std::uint64_t> verdicts_dropped{0};  ///< outbound ring full
  /// CLOCK_MONOTONIC stamp the consumer refreshes every poll. Liveness
  /// for producers: a served segment whose consumer process died (never
  /// setting consumer_closed) goes stale here, so a blocked send() can
  /// fail loudly instead of waiting on an orphan forever.
  std::atomic<std::int64_t> consumer_heartbeat_ns{0};
};
static_assert(std::atomic<std::uint64_t>::is_always_lock_free,
              "EFD-SHM-V1 requires lock-free 64-bit atomics");

/// Maps "name" to the segment path both sides open ("/efd_<sanitized>").
std::string shm_segment_name(const std::string& name);

/// One mapped segment (create or attach) — shared plumbing of the
/// server and client classes below.
class ShmRegion {
 public:
  /// Creates (replacing any stale same-name segment) or attaches.
  /// Attach waits up to \p attach_timeout_ms for the segment to exist
  /// and publish ready. Throws TransportError.
  ShmRegion(const std::string& name, bool create,
            std::uint32_t inbound_capacity, std::uint32_t outbound_capacity,
            int attach_timeout_ms = 5000);
  ~ShmRegion();

  ShmRegion(const ShmRegion&) = delete;
  ShmRegion& operator=(const ShmRegion&) = delete;

  ShmHeader& header() noexcept { return *header_; }
  std::uint8_t* inbound() noexcept { return inbound_; }
  std::uint8_t* outbound() noexcept { return outbound_; }

 private:
  std::string segment_name_;
  bool owner_ = false;
  void* mapping_ = nullptr;
  std::size_t mapped_bytes_ = 0;
  ShmHeader* header_ = nullptr;
  std::uint8_t* inbound_ = nullptr;
  std::uint8_t* outbound_ = nullptr;
};

/// Service side: creates the segment, decodes inbound frames, replies
/// on the outbound ring.
class ShmRingServer final : public SampleSource {
 public:
  struct Config {
    std::uint32_t inbound_bytes = 1u << 20;   ///< emitter → service ring
    std::uint32_t outbound_bytes = 256u << 10; ///< service → emitter ring
    std::size_t max_messages_per_poll = 512;
  };

  struct Stats {
    std::uint64_t bytes = 0;          ///< inbound bytes consumed
    std::uint64_t frames = 0;         ///< messages decoded
    std::uint64_t decode_errors = 0;  ///< 0 or 1: a corrupt stream retires
    std::uint64_t producer_blocked = 0;
    std::uint64_t verdicts_dropped = 0;
  };

  explicit ShmRingServer(const std::string& name);
  ShmRingServer(const std::string& name, const Config& config);
  ~ShmRingServer() override;

  const std::string& name() const noexcept { return name_; }

  bool poll(std::vector<Envelope>& out,
            std::chrono::milliseconds timeout) override;

  /// Marks the consumer side closed (producers error instead of
  /// blocking forever). Idempotent; the destructor calls it.
  void stop();

  Stats stats() const;
  TransportCounters transport_counters() const override;

  /// The server-owned sample buffer pool its decoder acquires from
  /// (and the consumer releases back to).
  const SampleBufferPool* buffer_pool() const override { return &pool_; }

 private:
  class ReplySink;

  /// Drains available inbound bytes into the decoder; returns bytes.
  std::size_t drain_inbound();

  std::string name_;
  Config config_;
  std::shared_ptr<ShmRegion> region_;
  std::shared_ptr<ReplySink> reply_;
  /// Server-local sample buffer recycling (see TcpServer::pool_).
  SampleBufferPool pool_;
  FrameDecoder decoder_;
  bool dead_ = false;  ///< corrupt stream: source retired
  std::vector<std::uint8_t> scratch_;
  std::atomic<std::uint64_t> bytes_{0};
  std::atomic<std::uint64_t> frames_{0};
  std::atomic<std::uint64_t> decode_errors_{0};
};

/// Emitter side: attaches to a server's segment; send() blocks on a
/// full inbound ring (back-pressure), receive() reads verdict frames
/// off the outbound ring. Mirrors TcpClient's shape for `efd_cli
/// replay`.
class ShmRingClient final : public MessageSender {
 public:
  /// Attaches to the segment \p name (waits for the server to create
  /// it); throws TransportError on timeout or layout mismatch.
  explicit ShmRingClient(const std::string& name,
                         int attach_timeout_ms = 5000);

  /// Encodes one frame into the inbound ring; blocks while full. Throws
  /// TransportError when the service closed or the frame can never fit.
  void send(Message message) override;

  /// Waits up to \p timeout for the next outbound message.
  bool receive(Message& out, std::chrono::milliseconds timeout);

  /// Declares the emitter done: the server drains what remains, then
  /// reports the source exhausted.
  void finish_sending();

 private:
  std::shared_ptr<ShmRegion> region_;
  FrameDecoder decoder_;
  std::vector<std::uint8_t> encode_buffer_;
};

}  // namespace efd::ingest
