#include "ingest/pipeline.hpp"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <span>
#include <sstream>
#include <string_view>
#include <system_error>
#include <utility>
#include <vector>

#include "core/online/service_snapshot.hpp"
#include "core/rounding_kernel.hpp"
#include "ingest/buffer_pool.hpp"
#include "ingest/snapshot_chain.hpp"
#include "ingest/subscription.hpp"
#include "obs/exposition.hpp"
#include "obs/http_server.hpp"
#include "obs/metrics.hpp"
#include "retrain/retrain_controller.hpp"
#include "util/thread_pool.hpp"

namespace efd::ingest {

namespace {

std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Minimal JSON string escape for /index values (source names, error
// text): quotes, backslashes, and control bytes.
std::string json_escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

Message make_verdict_message(const core::JobVerdict& verdict) {
  Message message;
  message.type = MessageType::kVerdict;
  message.job_id = verdict.job_id;
  message.verdict.recognized = verdict.result.recognized;
  message.verdict.matched =
      static_cast<std::uint32_t>(verdict.result.matched_count);
  message.verdict.fingerprints =
      static_cast<std::uint32_t>(verdict.result.fingerprint_count);
  message.verdict.application = verdict.result.prediction();
  message.verdict.label = verdict.result.label_prediction();
  return message;
}

IngestPipeline::IngestPipeline(core::RecognitionService& service,
                               SourceMux& sources,
                               IngestPipelineConfig config,
                               util::ThreadPool* pool)
    : service_(service), sources_(&sources), config_(config), pool_(pool) {
  init_observability();
}

IngestPipeline::IngestPipeline(core::RecognitionService& service,
                               SampleSource& source,
                               IngestPipelineConfig config,
                               util::ThreadPool* pool)
    : service_(service),
      owned_mux_(std::make_unique<SourceMux>()),
      sources_(owned_mux_.get()),
      config_(config),
      pool_(pool) {
  owned_mux_->add_source("source", source);
  init_observability();
}

void IngestPipeline::init_observability() {
  start_ns_ = steady_now_ns();
  if (config_.http_port < 0) return;
  // Started here, not in run(): readiness probes should see the endpoint
  // as soon as the process constructed its pipeline, and a bind conflict
  // should fail construction loudly instead of surfacing mid-serve.
  http_ = std::make_unique<obs::HttpServer>(
      static_cast<std::uint16_t>(config_.http_port),
      [this](const obs::HttpRequest& request) {
        obs::HttpResponse response;
        if (request.target == "/metrics") {
          response.content_type = "text/plain; version=0.0.4; charset=utf-8";
          response.body =
              obs::render_metrics(render_stats_text(), obs::global_metrics());
        } else if (request.target == "/index") {
          response.content_type = "application/json";
          response.body = render_index_json();
        } else if (request.target == "/healthz") {
          response.content_type = "application/json";
          response.body = "{\"status\":\"ok\",\"role\":\"leader\"}\n";
        } else {
          response.status = 404;
          response.body = "not found\n";
        }
        return response;
      });
}

std::uint16_t IngestPipeline::http_port() const noexcept {
  return http_ != nullptr ? http_->port() : 0;
}

IngestPipeline::~IngestPipeline() {
  stop();
  join();
}

void IngestPipeline::start() {
  thread_ = std::thread([this] { run(); });
}

void IngestPipeline::join() {
  if (thread_.joinable()) thread_.join();
}

void IngestPipeline::maybe_rebind_reply(
    std::uint64_t job_id, const std::shared_ptr<VerdictSink>& reply,
    SourceId source) {
  // A job restored from a snapshot is open in the service but has no
  // reply route (its emitter's connection died with the old process).
  // Bind it to the first (source, connection) that streams it, so a
  // reconnecting emitter — on whichever transport it comes back over —
  // receives the verdict it is still owed.
  if (reply == nullptr || replies_.contains(job_id)) return;
  if (!service_.has_job(job_id)) return;
  replies_[job_id] = ReplyRoute{reply, source};
  jobs_rebound_.fetch_add(1, std::memory_order_relaxed);
}

void IngestPipeline::deliver_parked(
    std::uint64_t job_id, const std::shared_ptr<VerdictSink>& reply,
    SourceId source) {
  if (reply == nullptr || parked_verdicts_.empty()) return;
  const auto it = parked_verdicts_.find(job_id);
  if (it == parked_verdicts_.end()) return;
  reply->deliver(it->second);
  parked_verdicts_.erase(it);
  sources_->note_verdict(source);
  verdicts_delivered_.fetch_add(1, std::memory_order_relaxed);
}

void IngestPipeline::observe_sink(const std::shared_ptr<VerdictSink>& reply) {
  if (config_.retrain == nullptr || reply == nullptr) return;
  // Assign, never try_emplace: a new connection's sink can be allocated
  // at a freed sink's address, and the stale expired entry would
  // otherwise shadow it forever.
  observers_[reply.get()] = reply;
  // Bound the map across connection churn even when no retrain cycle
  // ever publishes (the other pruning point). Sweep only when the map
  // has grown past twice its post-sweep size: genuinely amortized — a
  // steady population of live connections never re-pays the scan on
  // every message.
  if (observers_.size() >= observers_sweep_at_) {
    for (auto it = observers_.begin(); it != observers_.end();) {
      it = it->second.expired() ? observers_.erase(it) : std::next(it);
    }
    observers_sweep_at_ = std::max<std::size_t>(64, observers_.size() * 2);
  }
}

void IngestPipeline::dispatch(Envelope& envelope) {
  Message& message = envelope.message;
  observe_sink(envelope.reply);
  switch (message.type) {
    case MessageType::kOpenJob:
      deliver_parked(message.job_id, envelope.reply, envelope.source);
      if (service_.open_job(message.job_id, message.node_count,
                            envelope.source)) {
        jobs_opened_.fetch_add(1, std::memory_order_relaxed);
        replies_[message.job_id] =
            ReplyRoute{envelope.reply, envelope.source};
        if (config_.retrain != nullptr) {
          config_.retrain->recorder().job_opened(
              message.job_id, message.node_count, envelope.source);
        }
      } else {
        open_rejected_.fetch_add(1, std::memory_order_relaxed);
        // Open for a job restored from a snapshot: the stream already
        // exists, but the new connection is its emitter now.
        maybe_rebind_reply(message.job_id, envelope.reply, envelope.source);
      }
      break;
    case MessageType::kSampleBatch: {
      deliver_parked(message.job_id, envelope.reply, envelope.source);
      maybe_rebind_reply(message.job_id, envelope.reply, envelope.source);
      // One stream resolution + lock cycle per wire batch, not per
      // sample (the dispatch thread's hot path).
      scratch_.clear();
      scratch_.reserve(message.samples.size());
      for (const WireSample& sample : message.samples) {
        scratch_.push_back({sample.node_id, sample.t, sample.value,
                            std::string_view(sample.metric)});
      }
      service_.push_batch(message.job_id, scratch_);
      samples_.fetch_add(message.samples.size(), std::memory_order_relaxed);
      if (config_.retrain != nullptr) {
        // Zero-copy capture tap: this batch is fully dispatched; the
        // recorder moves the samples it wants out of the vector.
        config_.retrain->recorder().record_batch(message.job_id,
                                                 std::move(message.samples));
      }
      // The batch is consumed either way; recycle its backing buffer
      // (and the string capacity of any samples the tap left behind)
      // for the decoder's next acquire — back to the pool it came from
      // (the owning server's, or the process-global default).
      SampleBufferPool& pool =
          envelope.pool != nullptr ? *envelope.pool : sample_buffer_pool();
      pool.release(std::move(message.samples));
      break;
    }
    case MessageType::kCloseJob:
      deliver_parked(message.job_id, envelope.reply, envelope.source);
      maybe_rebind_reply(message.job_id, envelope.reply, envelope.source);
      if (service_.close_job(message.job_id)) {
        jobs_closed_.fetch_add(1, std::memory_order_relaxed);
      }
      break;
    case MessageType::kShutdown:
      if (config_.stop_on_shutdown_message) stop();
      break;
    case MessageType::kSwapDictionary: {
      if (!config_.allow_dictionary_swap) {
        swaps_rejected_.fetch_add(1, std::memory_order_relaxed);
        if (envelope.reply != nullptr) {
          envelope.reply->deliver(make_swap_ack(
              false, service_.dictionary_handle().version(),
              "dictionary swap disabled on this endpoint"));
        }
        break;
      }
      try {
        std::istringstream blob(
            std::string(message.dictionary_blob.begin(),
                        message.dictionary_blob.end()));
        core::ShardedDictionary next = core::ShardedDictionary::load(
            blob, service_.dictionary().shard_count());
        const auto outcome = service_.swap_dictionary(std::move(next));
        if (outcome.already_active) {
          // A byte-identical candidate must not burn an epoch; tell the
          // operator their push was a no-op instead of acking a "new"
          // epoch that never existed.
          swaps_rejected_.fetch_add(1, std::memory_order_relaxed);
          if (envelope.reply != nullptr) {
            envelope.reply->deliver(make_swap_ack(
                false, outcome.epoch,
                "already-active: candidate is identical to the live "
                "dictionary"));
          }
          break;
        }
        dictionary_swaps_.fetch_add(1, std::memory_order_relaxed);
        if (envelope.reply != nullptr) {
          envelope.reply->deliver(make_swap_ack(true, outcome.epoch));
        }
      } catch (const std::exception& error) {
        swaps_rejected_.fetch_add(1, std::memory_order_relaxed);
        if (envelope.reply != nullptr) {
          envelope.reply->deliver(
              make_swap_ack(false, service_.dictionary_handle().version(),
                            error.what()));
        }
      }
      break;
    }
    case MessageType::kStatsRequest:
      stats_requests_.fetch_add(1, std::memory_order_relaxed);
      if (envelope.reply != nullptr) {
        envelope.reply->deliver(make_stats_reply(render_stats_text()));
      }
      break;
    case MessageType::kFollowRequest:
      handle_follow_request(envelope);
      break;
    case MessageType::kSubscribe:
      handle_subscribe(envelope);
      break;
    case MessageType::kSnapAck:
      // A follower's receipt: the capture is durable on ITS disk (or
      // was rejected — the follower re-handshakes on its own).
      (envelope.message.snap_ack.ok ? snap_acks_ok_ : snap_acks_failed_)
          .fetch_add(1, std::memory_order_relaxed);
      break;
    case MessageType::kPromote:
      // Promotion is a follower-side operation; a leader politely
      // declines so `efd_cli promote` pointed at the wrong endpoint
      // fails loudly instead of hanging.
      unexpected_messages_.fetch_add(1, std::memory_order_relaxed);
      if (envelope.reply != nullptr) {
        envelope.reply->deliver(
            make_promote_ack(false, 0, "this endpoint is not a follower"));
      }
      break;
    case MessageType::kVerdict:
    case MessageType::kSwapAck:
    case MessageType::kStatsReply:
    case MessageType::kRetrainReport:
    case MessageType::kSnapBase:
    case MessageType::kSnapDelta:
    case MessageType::kPromoteAck:
    case MessageType::kSubscribeAck:
    case MessageType::kVerdictEvent:
    default:
      // Verdicts, acks, stats replies, retrain reports, and replicated
      // captures flow outbound only; anything else is a peer bug.
      unexpected_messages_.fetch_add(1, std::memory_order_relaxed);
      break;
  }
}

void IngestPipeline::handle_subscribe(Envelope& envelope) {
  if (envelope.reply == nullptr) {
    // Fire-and-forget transport (UDP, replayed file): there is no
    // channel to stream events back on, so the subscription is a peer
    // bug, not a half-honorable request.
    unexpected_messages_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (hub_ == nullptr) {
    // Lazy: a pipeline nobody subscribes to never pays for the hub's
    // dispatcher thread. Created on the run() thread; readers (stats,
    // /metrics) see it only through the released pointer below.
    hub_ = std::make_unique<SubscriptionHub>(config_.subscriber_queue_capacity);
    hub_ptr_.store(hub_.get(), std::memory_order_release);
  }
  const std::uint64_t id =
      hub_->subscribe(envelope.reply, std::move(envelope.message.subscribe));
  subscribe_requests_.fetch_add(1, std::memory_order_relaxed);
  envelope.reply->deliver(make_subscribe_ack(true, id));
}

std::string IngestPipeline::render_stats_text() const {
  // One "name value" line per counter — the grep/awk-able precursor of a
  // Prometheus-style endpoint. Names are stable: downstream tooling
  // diffs them across scrapes.
  std::ostringstream out;
  const core::RecognitionServiceStats service = service_.stats();
  out << "service.active_jobs " << service.active_jobs << "\n"
      << "service.pending_verdicts " << service.pending_verdicts << "\n"
      << "service.queued_samples " << service.queued_samples << "\n"
      << "service.jobs_opened " << service.jobs_opened << "\n"
      << "service.jobs_completed " << service.jobs_completed << "\n"
      << "service.jobs_evicted " << service.jobs_evicted << "\n"
      << "service.samples_pushed " << service.samples_pushed << "\n"
      << "service.samples_dropped " << service.samples_dropped << "\n"
      << "service.samples_late " << service.samples_late << "\n"
      << "service.samples_overflowed " << service.samples_overflowed << "\n"
      << "service.samples_rejected " << service.samples_rejected << "\n"
      << "service.pushes_blocked " << service.pushes_blocked << "\n"
      << "service.dictionary_epoch " << service.dictionary_epoch << "\n"
      << "service.dictionary_swaps " << service.dictionary_swaps << "\n"
      << "service.dictionary_swaps_noop " << service.dictionary_swaps_noop
      << "\n"
      << "service.jobs_on_stale_epoch " << service.jobs_on_stale_epoch
      << "\n"
      << "dictionary.index_build_seconds " << service.index_build_seconds
      << "\n"
      << "dictionary.index_bytes " << service.index_bytes << "\n";
  for (const core::SourceIngressStats& ingress : service.by_source) {
    const std::string prefix =
        "service.source." + std::to_string(ingress.source) + ".";
    out << prefix << "jobs_opened " << ingress.jobs_opened << "\n"
        << prefix << "jobs_completed " << ingress.jobs_completed << "\n"
        << prefix << "samples_pushed " << ingress.samples_pushed << "\n";
  }

  const IngestPipelineStats pipeline = stats();
  out << "ingest.envelopes " << pipeline.envelopes << "\n"
      << "ingest.samples " << pipeline.samples << "\n"
      << "ingest.jobs_opened " << pipeline.jobs_opened << "\n"
      << "ingest.open_rejected " << pipeline.open_rejected << "\n"
      << "ingest.jobs_closed " << pipeline.jobs_closed << "\n"
      << "ingest.verdicts_delivered " << pipeline.verdicts_delivered << "\n"
      << "ingest.unexpected_messages " << pipeline.unexpected_messages << "\n"
      << "ingest.sweeps " << pipeline.sweeps << "\n"
      << "ingest.evicted " << pipeline.evicted << "\n"
      << "ingest.snapshots_written " << pipeline.snapshots_written << "\n"
      << "ingest.snapshot_failures " << pipeline.snapshot_failures << "\n"
      << "ingest.snapshot_bases " << pipeline.snapshot_bases << "\n"
      << "ingest.snapshot_deltas " << pipeline.snapshot_deltas << "\n"
      << "ingest.restore_deltas_discarded "
      << pipeline.restore_deltas_discarded << "\n"
      << "ingest.followers_accepted " << pipeline.followers_accepted << "\n"
      << "ingest.follow_rejected " << pipeline.follow_rejected << "\n"
      << "ingest.captures_replicated " << pipeline.captures_replicated << "\n"
      << "ingest.captures_oversize " << pipeline.captures_oversize << "\n"
      << "ingest.snap_acks_ok " << pipeline.snap_acks_ok << "\n"
      << "ingest.snap_acks_failed " << pipeline.snap_acks_failed << "\n"
      << "ingest.jobs_restored " << pipeline.jobs_restored << "\n"
      << "ingest.jobs_rebound " << pipeline.jobs_rebound << "\n"
      << "ingest.dictionary_swaps " << pipeline.dictionary_swaps << "\n"
      << "ingest.swaps_rejected " << pipeline.swaps_rejected << "\n"
      << "ingest.stats_requests " << pipeline.stats_requests << "\n"
      << "ingest.retrain_reports " << pipeline.retrain_reports << "\n"
      << "ingest.subscribe_requests " << pipeline.subscribe_requests << "\n"
      << "ingest.verdict_events " << pipeline.verdict_events << "\n";

  // The scrape format is one value token per line, so the reason text
  // is whitespace-folded; "none" keeps the row present (and diffable)
  // on healthy endpoints.
  std::string snapshot_error = pipeline.snapshot_last_error;
  if (snapshot_error.empty()) {
    snapshot_error = "none";
  } else {
    std::replace_if(
        snapshot_error.begin(), snapshot_error.end(),
        [](unsigned char c) { return std::isspace(c) != 0; }, '_');
  }
  out << "ingest.snapshot_last_error " << snapshot_error << "\n";

  // Process-global sample-buffer pool (sources without their own pool
  // recycle here). hits/misses gauge whether the allocation-free decode
  // loop is actually closed; discards climbing = pool budget too small
  // for the live batch sizes.
  const SampleBufferPool::Stats pool = sample_buffer_pool().stats();
  out << "pool.hits " << pool.hits << "\n"
      << "pool.misses " << pool.misses << "\n"
      << "pool.returns " << pool.returns << "\n"
      << "pool.discards " << pool.discards << "\n";

  // One row block per registered source: the operator's view of WHERE
  // traffic (and loss — drops/gaps on lossy transports) comes from.
  for (const SourceMuxStats& source : sources_->stats()) {
    const std::string prefix = "source." + std::to_string(source.id) + ".";
    out << prefix << "name " << source.name << "\n"
        << prefix << "envelopes " << source.envelopes << "\n"
        << prefix << "samples " << source.samples << "\n"
        << prefix << "verdicts " << source.verdicts << "\n"
        << prefix << "frames " << source.transport.frames << "\n"
        << prefix << "decode_errors " << source.transport.decode_errors
        << "\n"
        << prefix << "drops " << source.transport.drops << "\n"
        << prefix << "gaps " << source.transport.gaps << "\n"
        << prefix << "blocked " << source.transport.blocked << "\n"
        << prefix << "retransmits " << source.transport.retransmits << "\n"
        << prefix << "restored_cursor " << source.restored_cursor << "\n"
        << prefix << "exhausted " << (source.exhausted ? 1 : 0) << "\n";
    if (source.has_pool) {
      // The source's own buffer pool (servers that decode frames).
      out << prefix << "pool_hits " << source.pool.hits << "\n"
          << prefix << "pool_misses " << source.pool.misses << "\n"
          << prefix << "pool_returns " << source.pool.returns << "\n"
          << prefix << "pool_discards " << source.pool.discards << "\n";
    }
  }

  if (config_.retrain != nullptr) {
    const retrain::RetrainStats retrain = config_.retrain->stats();
    out << "retrain.cycles_triggered " << retrain.cycles_triggered << "\n"
        << "retrain.cycles_trained " << retrain.cycles_trained << "\n"
        << "retrain.cycles_promoted " << retrain.cycles_promoted << "\n"
        << "retrain.cycles_gated_out " << retrain.cycles_gated_out << "\n"
        << "retrain.cycles_already_active " << retrain.cycles_already_active
        << "\n"
        << "retrain.cycles_skipped_no_data "
        << retrain.cycles_skipped_no_data << "\n"
        << "retrain.cycles_failed " << retrain.cycles_failed << "\n"
        << "retrain.cycles_dry_run " << retrain.cycles_dry_run << "\n"
        << "retrain.last_cycle " << retrain.last_cycle << "\n"
        << "retrain.last_promoted_epoch " << retrain.last_promoted_epoch
        << "\n"
        << "retrain.last_candidate_score " << retrain.last_candidate_score
        << "\n"
        << "retrain.last_incumbent_score " << retrain.last_incumbent_score
        << "\n";
    const retrain::TrafficRecorderStats recorder =
        config_.retrain->recorder().stats();
    out << "retrain.window_jobs " << recorder.window_jobs << "\n"
        << "retrain.window_samples " << recorder.window_samples << "\n"
        << "retrain.window_applications " << recorder.applications << "\n"
        << "retrain.jobs_captured " << recorder.jobs_captured << "\n"
        << "retrain.jobs_admitted " << recorder.jobs_admitted << "\n"
        << "retrain.jobs_replaced " << recorder.jobs_replaced << "\n"
        << "retrain.jobs_sampled_out " << recorder.jobs_sampled_out << "\n"
        << "retrain.jobs_unrecognized " << recorder.jobs_unrecognized << "\n"
        << "retrain.jobs_untracked " << recorder.jobs_untracked << "\n"
        << "retrain.samples_recorded " << recorder.samples_recorded << "\n"
        << "retrain.samples_filtered " << recorder.samples_filtered << "\n"
        << "retrain.window_resets " << recorder.window_resets << "\n";
  }

  // Process identity and age — folded into efd_build_info /
  // efd_uptime_seconds by the Prometheus exposition.
  out << "uptime.seconds "
      << (steady_now_ns() - start_ns_) / 1'000'000'000 << "\n"
      << "build.version " << obs::build_version() << "\n"
      << "build.sha " << obs::build_sha() << "\n"
      << "build.kernel " << core::kernel_name() << "\n";

  // One row block per live verdict subscriber: delivered/dropped tell an
  // operator WHICH consumer is too slow for the verdict rate.
  if (const SubscriptionHub* hub = hub_ptr_.load(std::memory_order_acquire)) {
    for (const SubscriptionHub::SubscriberStats& sub : hub->stats()) {
      const std::string prefix = "subscriber." + std::to_string(sub.id) + ".";
      out << prefix << "delivered " << sub.delivered << "\n"
          << prefix << "dropped " << sub.dropped << "\n"
          << prefix << "queued " << sub.queued << "\n";
    }
  }

  // Deterministic row order: the blocks above are emitted in code order,
  // but consumers diff scrapes and the Prometheus renderer groups rows
  // into families — a global lexicographic sort makes both stable no
  // matter how the blocks above grow or reorder.
  std::string text = std::move(out).str();
  std::vector<std::string_view> rows;
  for (std::size_t at = 0; at < text.size();) {
    std::size_t end = text.find('\n', at);
    if (end == std::string::npos) end = text.size();
    rows.push_back(std::string_view(text).substr(at, end - at));
    at = end + 1;
  }
  std::sort(rows.begin(), rows.end());
  std::string sorted;
  sorted.reserve(text.size());
  for (const std::string_view row : rows) {
    sorted.append(row);
    sorted.push_back('\n');
  }
  return sorted;
}

std::string IngestPipeline::render_index_json() const {
  // Everything here reads thread-safe snapshots (service stats, mux
  // stats, this pipeline's atomics) — callable from the HTTP thread
  // while run() is mid-poll.
  constexpr std::size_t kMaxListedJobs = 256;
  const core::RecognitionServiceStats service = service_.stats();
  const std::vector<std::uint64_t> jobs = service_.open_job_ids();
  const IngestPipelineStats pipeline = stats();

  std::ostringstream out;
  out << "{\"uptime_seconds\":"
      << (steady_now_ns() - start_ns_) / 1'000'000'000
      << ",\"build\":{\"version\":\"" << json_escape(obs::build_version())
      << "\",\"sha\":\"" << json_escape(obs::build_sha())
      << "\",\"kernel\":\"" << json_escape(core::kernel_name()) << "\"}"
      << ",\"dictionary\":{\"epoch\":" << service.dictionary_epoch
      << ",\"swaps\":" << service.dictionary_swaps << "}";

  out << ",\"jobs\":{\"active\":" << service.active_jobs
      << ",\"pending_verdicts\":" << service.pending_verdicts << ",\"ids\":[";
  const std::size_t listed = std::min(jobs.size(), kMaxListedJobs);
  for (std::size_t i = 0; i < listed; ++i) {
    if (i != 0) out << ',';
    out << jobs[i];
  }
  out << "],\"ids_truncated\":" << (jobs.size() > listed ? "true" : "false")
      << "}";

  out << ",\"sources\":[";
  bool first = true;
  for (const SourceMuxStats& source : sources_->stats()) {
    if (!first) out << ',';
    first = false;
    out << "{\"id\":" << source.id << ",\"name\":\""
        << json_escape(source.name) << "\",\"envelopes\":" << source.envelopes
        << ",\"samples\":" << source.samples
        << ",\"verdicts\":" << source.verdicts
        << ",\"exhausted\":" << (source.exhausted ? "true" : "false") << "}";
  }
  out << "]";

  out << ",\"snapshot_chain\":{\"length\":"
      << chain_length_.load(std::memory_order_relaxed)
      << ",\"last_capture_id\":"
      << chain_last_capture_id_.load(std::memory_order_relaxed)
      << ",\"written\":" << pipeline.snapshots_written
      << ",\"failures\":" << pipeline.snapshot_failures
      << ",\"last_error\":\"" << json_escape(pipeline.snapshot_last_error)
      << "\"}";

  out << ",\"followers\":{\"live\":"
      << followers_live_.load(std::memory_order_relaxed)
      << ",\"accepted\":" << pipeline.followers_accepted << "}";

  out << ",\"subscribers\":[";
  if (const SubscriptionHub* hub = hub_ptr_.load(std::memory_order_acquire)) {
    first = true;
    for (const SubscriptionHub::SubscriberStats& sub : hub->stats()) {
      if (!first) out << ',';
      first = false;
      out << "{\"id\":" << sub.id << ",\"delivered\":" << sub.delivered
          << ",\"dropped\":" << sub.dropped << ",\"queued\":" << sub.queued
          << "}";
    }
  }
  out << "]}\n";
  return std::move(out).str();
}

void IngestPipeline::publish_retrain_reports() {
  if (config_.retrain == nullptr) return;
  const std::vector<retrain::RetrainReport> reports =
      config_.retrain->drain_reports();
  if (reports.empty()) return;
  for (const retrain::RetrainReport& report : reports) {
    WireRetrainReport wire;
    wire.cycle = report.cycle;
    wire.outcome = static_cast<std::uint8_t>(report.outcome);
    wire.epoch = report.epoch;
    wire.candidate_score = report.candidate_score;
    wire.incumbent_score = report.incumbent_score;
    wire.window_jobs = report.window_jobs;
    wire.holdout_jobs = report.holdout_jobs;
    const Message message = make_retrain_report(wire);
    for (auto it = observers_.begin(); it != observers_.end();) {
      if (const auto sink = it->second.lock()) {
        sink->deliver(message);
        retrain_reports_.fetch_add(1, std::memory_order_relaxed);
        ++it;
      } else {
        it = observers_.erase(it);  // connection is gone
      }
    }
  }
}

void IngestPipeline::set_snapshot_error(std::string reason) {
  const std::lock_guard<std::mutex> lock(error_mutex_);
  snapshot_last_error_ = std::move(reason);
}

void IngestPipeline::write_snapshot() {
  // Encode the capture in memory first: base (full, Dictionary
  // included) when the dictionary epoch moved or the chain is at its
  // length limit, an incremental delta otherwise.
  std::ostringstream buffer(std::ios::binary);
  core::SnapshotCaptureInfo info;
  try {
    std::vector<std::uint8_t> retrain_state;
    if (config_.retrain != nullptr) {
      retrain_state = config_.retrain->encode_state();
    }
    // One named resume cursor per registered source (its lifetime
    // envelope count), alongside the legacy aggregate cursor. Only
    // genuinely multi-source pipelines write the extended Meta body:
    // a single-source deployment's per-source cursor would be
    // redundant with the aggregate.
    std::vector<core::SourceCursor> cursors;
    const std::vector<SourceMuxStats> source_stats = sources_->stats();
    if (source_stats.size() > 1) {
      for (const SourceMuxStats& source : source_stats) {
        cursors.push_back({source.name, source.envelopes});
      }
    }
    const bool force_base =
        config_.snapshot_chain_limit == 0 ||
        chain_.deltas_since_base >= config_.snapshot_chain_limit;
    info = service_.snapshot_capture(
        buffer, chain_, force_base,
        envelopes_.load(std::memory_order_relaxed), retrain_state, cursors);
  } catch (const std::exception& error) {
    // Durability is best-effort while serving: count it, surface the
    // reason in the scrape, keep going. The chain state is untouched
    // (snapshot_capture commits only on success).
    snapshot_failures_.fetch_add(1, std::memory_order_relaxed);
    set_snapshot_error(error.what());
    return;
  }

  const std::string blob = std::move(buffer).str();
  const std::string target =
      info.base ? config_.snapshot_path
                : delta_path(config_.snapshot_path, info.capture_id);
  std::string error;
  if (!write_file_durable(target, blob.data(), blob.size(), &error)) {
    snapshot_failures_.fetch_add(1, std::memory_order_relaxed);
    set_snapshot_error(target + ": " + error);
    // The capture id is burned but its bytes never became durable, so
    // the on-disk chain no longer links to the in-memory one: force
    // the next capture to start a fresh base.
    chain_.last_capture_id = 0;
    return;
  }
  if (info.base) {
    // The new base supersedes every delta. Deleting AFTER the rename
    // means a crash in between leaves stale deltas whose parent ids no
    // longer chain — which restore detects and discards loudly in
    // favor of this (correct) base.
    remove_chain_deltas(config_.snapshot_path);
    snapshot_bases_.fetch_add(1, std::memory_order_relaxed);
    chain_records_.clear();
  } else {
    snapshot_deltas_.fetch_add(1, std::memory_order_relaxed);
  }

  // Remember the capture for follower catch-up and stream it to every
  // live follower. 18 = the kSnapBase/kSnapDelta frame's own header
  // (u32 len | version | type | u64 capture_id | u64 parent_id).
  ChainRecord record;
  record.base = info.base;
  record.capture_id = info.capture_id;
  record.parent_id = info.parent_id;
  if (blob.size() + 18 <= kMaxFrameBytes) {
    record.bytes = std::make_shared<const std::vector<std::uint8_t>>(
        blob.begin(), blob.end());
  }
  if (!followers_.empty()) {
    if (record.bytes == nullptr) {
      captures_oversize_.fetch_add(1, std::memory_order_relaxed);
    } else {
      const Message frame =
          make_snap_capture(record.base, record.capture_id, record.parent_id,
                            std::vector<std::uint8_t>(*record.bytes));
      for (auto it = followers_.begin(); it != followers_.end();) {
        if (const auto sink = it->lock()) {
          sink->deliver(frame);
          captures_replicated_.fetch_add(1, std::memory_order_relaxed);
          ++it;
        } else {
          it = followers_.erase(it);  // follower is gone
        }
      }
    }
  }
  chain_records_.push_back(std::move(record));
  // Mirror the run()-thread-only chain/follower bookkeeping into atomics
  // for the HTTP /index handler.
  chain_length_.store(chain_records_.size(), std::memory_order_relaxed);
  chain_last_capture_id_.store(info.capture_id, std::memory_order_relaxed);
  followers_live_.store(followers_.size(), std::memory_order_relaxed);

  const std::uint64_t count =
      snapshots_written_.fetch_add(1, std::memory_order_relaxed) + 1;
  verdicts_at_last_snapshot_ =
      verdicts_delivered_.load(std::memory_order_relaxed);
  if (config_.on_snapshot) config_.on_snapshot(count, target);
}

void IngestPipeline::handle_follow_request(Envelope& envelope) {
  if (!config_.allow_followers || envelope.reply == nullptr) {
    // Gated off, or a fire-and-forget transport with no channel to
    // stream captures back on.
    follow_rejected_.fetch_add(1, std::memory_order_relaxed);
    if (envelope.reply != nullptr) {
      envelope.reply->deliver(
          make_snap_ack(false, 0, "followers disabled on this endpoint"));
    }
    return;
  }

  // Catch-up: everything after the follower's durable cursor. A cursor
  // we do not hold (leader restarted, follower from another lineage)
  // gets the full chain — the base resets the follower's local chain.
  std::size_t start = 0;
  if (const std::uint64_t cursor = envelope.message.capture_id; cursor != 0) {
    for (std::size_t i = 0; i < chain_records_.size(); ++i) {
      if (chain_records_[i].capture_id == cursor) {
        start = i + 1;
        break;
      }
    }
  }
  for (std::size_t i = start; i < chain_records_.size(); ++i) {
    const ChainRecord& record = chain_records_[i];
    if (record.bytes == nullptr) {
      // Too large for a wire frame (the kSwapDictionary limitation):
      // nothing after it can apply either. The follower re-syncs at
      // the next base small enough to travel.
      captures_oversize_.fetch_add(1, std::memory_order_relaxed);
      envelope.reply->deliver(make_snap_ack(
          false, record.capture_id,
          "capture exceeds the wire frame limit; awaiting a smaller base"));
      break;
    }
    envelope.reply->deliver(
        make_snap_capture(record.base, record.capture_id, record.parent_id,
                          std::vector<std::uint8_t>(*record.bytes)));
    captures_replicated_.fetch_add(1, std::memory_order_relaxed);
  }

  followers_accepted_.fetch_add(1, std::memory_order_relaxed);
  for (const std::weak_ptr<VerdictSink>& existing : followers_) {
    if (existing.lock() == envelope.reply) return;  // re-handshake, same link
  }
  followers_.push_back(envelope.reply);
  followers_live_.store(followers_.size(), std::memory_order_relaxed);
}

std::uint64_t IngestPipeline::flush_verdicts() {
  // Stage first, ship second: verdicts that drained in one poll cycle
  // and route to the same connection leave in a single deliver_many()
  // call (one vectored syscall on the TCP path) instead of one write
  // per verdict. The staging vectors are members, so a steady verdict
  // rate reuses their capacity allocation-free.
  std::uint64_t delivered = 0;
  obs::HotPathMetrics& hot = obs::hot_path();
  const bool timed = hot.enabled.load(std::memory_order_relaxed);
  const std::int64_t flush_start = timed ? steady_now_ns() : 0;
  // hub_ is created and owned by this (the run()) thread; publish() fans
  // a copy of each verdict out to subscriber queues without ever
  // blocking — slow consumers shed events in the hub, not here.
  SubscriptionHub* const hub =
      hub_ != nullptr && hub_->has_subscribers() ? hub_.get() : nullptr;
  std::vector<Message>& messages = outbound_verdicts_;
  std::vector<ReplyRoute>& routes = outbound_routes_;
  messages.clear();
  routes.clear();
  for (const core::JobVerdict& verdict : service_.drain_verdicts()) {
    if (config_.on_verdict) config_.on_verdict(verdict);
    if (hub != nullptr) {
      const std::uint64_t latency_ns =
          verdict.enqueue_ns > 0 && verdict.verdict_ns > verdict.enqueue_ns
              ? static_cast<std::uint64_t>(verdict.verdict_ns -
                                           verdict.enqueue_ns)
              : 0;
      Message event = make_verdict_message(verdict);
      event.type = MessageType::kVerdictEvent;
      event.verdict_event.source = verdict.source;
      event.verdict_event.latency_ns = latency_ns;
      hub->publish(event, event.verdict.application);
      verdict_events_.fetch_add(1, std::memory_order_relaxed);
    }
    if (config_.retrain != nullptr) {
      // Capture tap: the verdict's label is what the captured samples
      // train under (self-training from served traffic).
      config_.retrain->recorder().job_finished(
          verdict.job_id, verdict.result.recognized,
          verdict.result.label_prediction());
    }
    ++delivered;
    const auto it = replies_.find(verdict.job_id);
    if (it == replies_.end()) continue;
    if (it->second.sink != nullptr) {
      messages.push_back(make_verdict_message(verdict));
      routes.push_back(it->second);
    }
    replies_.erase(it);
  }
  for (std::size_t i = 0; i < messages.size();) {
    std::size_t j = i + 1;
    while (j < messages.size() && routes[j].sink == routes[i].sink) ++j;
    routes[i].sink->deliver_many(
        std::span<const Message>(messages).subspan(i, j - i));
    for (std::size_t k = i; k < j; ++k) {
      // Only an actual delivery counts toward source.<id>.verdicts
      // ("verdicts routed back") — fire-and-forget emitters have no
      // reply channel.
      sources_->note_verdict(routes[k].source);
    }
    i = j;
  }
  messages.clear();
  routes.clear();
  if (delivered > 0) {
    verdicts_delivered_.fetch_add(delivered, std::memory_order_relaxed);
    // Only flushes that moved a verdict are observed — the poll loop
    // calls this every iteration and empty passes would swamp the
    // histogram with no-op timings.
    if (timed) hot.flush_ns.observe(steady_now_ns() - flush_start);
  }
  return delivered;
}

std::uint64_t IngestPipeline::run() {
  // Declare every registered source's tag to the service up front, so a
  // multi-listener deployment shows its service.source.* rows (even
  // all-zero ones) from the first scrape — not only once a job happens
  // to arrive on a non-zero source.
  for (const SourceMuxStats& source : sources_->stats()) {
    service_.register_source_tag(source.id);
  }
  if (config_.restore_on_start && !config_.snapshot_path.empty()) {
    // Only a genuinely ABSENT file is a normal first boot. A snapshot
    // that exists but cannot be opened (permissions, I/O error) — like a
    // corrupt one — throws SnapshotError out of run(): crash recovery
    // with bad state is the operator's call (delete the file to boot
    // fresh), never something to guess past silently.
    std::error_code probe;
    if (std::filesystem::exists(config_.snapshot_path, probe)) {
      const ChainRestoreResult restored =
          restore_service_from_chain(service_, config_.snapshot_path);
      if (!restored.fallback_error.empty()) {
        // The base restored but its delta chain did not: the discard
        // is loud — stderr for the operator, the scrape for monitors —
        // never a silent rewind to older state.
        restore_deltas_discarded_.store(restored.deltas_discarded,
                                        std::memory_order_relaxed);
        set_snapshot_error("restore discarded " +
                           std::to_string(restored.deltas_discarded) +
                           " delta(s): " + restored.fallback_error);
        std::fprintf(stderr,
                     "warning: snapshot chain at %s: discarded %zu delta(s) "
                     "and fell back to the base: %s\n",
                     config_.snapshot_path.c_str(), restored.deltas_discarded,
                     restored.fallback_error.c_str());
      }
      // Continue the restored capture lineage: the next capture is a
      // fresh base whose id follows everything already on disk, so a
      // follower that held the old chain sees a reset, never a rewind.
      chain_.next_capture_id = restored.last_capture_id + 1;
      const core::ServiceRestoreInfo& info = restored.info;
      jobs_restored_.store(info.jobs_restored, std::memory_order_relaxed);
      // Seed per-source envelope counters from the snapshot's named
      // cursors, so lifetime source.<id>.* rows stay continuous across
      // the restart. A cursor whose name no longer matches a registered
      // source (the operator rewired the topology) is dropped — never
      // misattributed to a different transport.
      for (const core::SourceCursor& cursor : info.source_cursors) {
        sources_->seed_cursor(cursor.name, cursor.cursor);
      }
      if (config_.retrain != nullptr &&
          !config_.retrain->restore_state(info.retrain_state)) {
        // The section passed its CRC, so a decode failure is version
        // skew, not bit rot — fail as loudly as any other corrupt
        // snapshot rather than silently zeroing the retrain lineage.
        throw core::SnapshotError("retrain state rejected by controller");
      }
      // Verdicts that completed pre-crash but were never shipped: park
      // them for the emitter's reconnect (see deliver_parked) instead of
      // flushing them at nobody on the first loop iteration. They are
      // NOT offered to the traffic recorder: their samples died with the
      // old process.
      for (core::JobVerdict& verdict : service_.drain_verdicts()) {
        if (config_.on_verdict) config_.on_verdict(verdict);
        parked_verdicts_[verdict.job_id] = make_verdict_message(verdict);
      }
    }
  }

  std::uint64_t total_delivered = 0;
  const auto start = std::chrono::steady_clock::now();
  auto last_sweep = start;
  auto last_snapshot = start;
  std::vector<Envelope> batch;
  bool more = true;

  while (more && !stop_.load(std::memory_order_acquire)) {
    if (config_.external_stop != nullptr &&
        config_.external_stop->load(std::memory_order_relaxed)) {
      // Signal-driven shutdown (SIGTERM/SIGINT in the CLI): break into
      // the normal wind-down below — drain, close jobs, final snapshot
      // — instead of dying with the last snapshot stale.
      break;
    }
    batch.clear();
    more = sources_->poll(batch, config_.poll_timeout);
    if (!batch.empty()) {
      envelopes_.fetch_add(batch.size(), std::memory_order_relaxed);
      for (Envelope& envelope : batch) dispatch(envelope);
    }

    // Recognize everything the batch enqueued (deferred services; a
    // no-op for inline ones), then ship finished verdicts back. With
    // the worker pool active the service's own workers score as pushes
    // arrive — no poll-boundary scoring pass at all.
    if (!service_.workers_active()) service_.process_pending(pool_);
    total_delivered += flush_verdicts();

    const auto now = std::chrono::steady_clock::now();
    if (now - last_sweep >= config_.sweep_interval) {
      const std::size_t evicted = service_.sweep_stale_jobs();
      sweeps_.fetch_add(1, std::memory_order_relaxed);
      if (evicted > 0) {
        evicted_.fetch_add(evicted, std::memory_order_relaxed);
        total_delivered += flush_verdicts();
      }
      last_sweep = now;
    }

    if (config_.retrain != nullptr) {
      // Closed loop: check the retrain triggers at the poll boundary
      // (the cycle itself runs on the controller's background thread —
      // recognition keeps flowing) and fan finished cycles out to every
      // connection as kRetrainReport frames.
      config_.retrain->maybe_trigger(now);
      publish_retrain_reports();
    }

    if (!config_.snapshot_path.empty()) {
      const bool interval_due =
          config_.snapshot_interval.count() > 0 &&
          now - last_snapshot >= config_.snapshot_interval;
      const bool verdicts_due =
          config_.snapshot_every_verdicts > 0 &&
          verdicts_delivered_.load(std::memory_order_relaxed) -
                  verdicts_at_last_snapshot_ >=
              config_.snapshot_every_verdicts;
      if (interval_due || verdicts_due) {
        write_snapshot();
        last_snapshot = now;
      }
    }

    if (config_.max_verdicts != 0 &&
        verdicts_delivered_.load(std::memory_order_relaxed) >=
            config_.max_verdicts) {
      break;
    }
  }

  if (config_.close_jobs_on_end) {
    // The source is gone (or we are stopping): every job this pipeline
    // opened still deserves a verdict — the unknown-application
    // safeguard for emitters that died mid-stream.
    std::vector<std::uint64_t> open_jobs;
    open_jobs.reserve(replies_.size());
    for (const auto& [job_id, route] : replies_) open_jobs.push_back(job_id);
    for (const std::uint64_t job_id : open_jobs) {
      if (service_.close_job(job_id)) {
        jobs_closed_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    total_delivered += flush_verdicts();
  }
  if (config_.retrain != nullptr) {
    // Wind the loop down cleanly: wait out an in-flight cycle so the
    // final snapshot (below) carries its outcome, and ship the last
    // reports to whoever is still connected.
    config_.retrain->join();
    publish_retrain_reports();
  }
  if (!config_.snapshot_path.empty() &&
      (config_.snapshot_interval.count() > 0 ||
       config_.snapshot_every_verdicts > 0)) {
    // Final snapshot on a clean exit: the successor process restarts
    // with continuous lifetime counters (and whatever streams remain).
    write_snapshot();
  }
  return total_delivered;
}

IngestPipelineStats IngestPipeline::stats() const {
  IngestPipelineStats stats;
  stats.envelopes = envelopes_.load(std::memory_order_relaxed);
  stats.samples = samples_.load(std::memory_order_relaxed);
  stats.jobs_opened = jobs_opened_.load(std::memory_order_relaxed);
  stats.open_rejected = open_rejected_.load(std::memory_order_relaxed);
  stats.jobs_closed = jobs_closed_.load(std::memory_order_relaxed);
  stats.verdicts_delivered =
      verdicts_delivered_.load(std::memory_order_relaxed);
  stats.unexpected_messages =
      unexpected_messages_.load(std::memory_order_relaxed);
  stats.sweeps = sweeps_.load(std::memory_order_relaxed);
  stats.evicted = evicted_.load(std::memory_order_relaxed);
  stats.snapshots_written = snapshots_written_.load(std::memory_order_relaxed);
  stats.snapshot_failures = snapshot_failures_.load(std::memory_order_relaxed);
  stats.snapshot_bases = snapshot_bases_.load(std::memory_order_relaxed);
  stats.snapshot_deltas = snapshot_deltas_.load(std::memory_order_relaxed);
  stats.restore_deltas_discarded =
      restore_deltas_discarded_.load(std::memory_order_relaxed);
  stats.followers_accepted =
      followers_accepted_.load(std::memory_order_relaxed);
  stats.follow_rejected = follow_rejected_.load(std::memory_order_relaxed);
  stats.captures_replicated =
      captures_replicated_.load(std::memory_order_relaxed);
  stats.captures_oversize = captures_oversize_.load(std::memory_order_relaxed);
  stats.snap_acks_ok = snap_acks_ok_.load(std::memory_order_relaxed);
  stats.snap_acks_failed = snap_acks_failed_.load(std::memory_order_relaxed);
  {
    const std::lock_guard<std::mutex> lock(error_mutex_);
    stats.snapshot_last_error = snapshot_last_error_;
  }
  stats.jobs_restored = jobs_restored_.load(std::memory_order_relaxed);
  stats.jobs_rebound = jobs_rebound_.load(std::memory_order_relaxed);
  stats.dictionary_swaps = dictionary_swaps_.load(std::memory_order_relaxed);
  stats.swaps_rejected = swaps_rejected_.load(std::memory_order_relaxed);
  stats.stats_requests = stats_requests_.load(std::memory_order_relaxed);
  stats.retrain_reports = retrain_reports_.load(std::memory_order_relaxed);
  stats.subscribe_requests =
      subscribe_requests_.load(std::memory_order_relaxed);
  stats.verdict_events = verdict_events_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace efd::ingest
