#include "ingest/pipeline.hpp"

#include <utility>
#include <vector>

#include "util/thread_pool.hpp"

namespace efd::ingest {

Message make_verdict_message(const core::JobVerdict& verdict) {
  Message message;
  message.type = MessageType::kVerdict;
  message.job_id = verdict.job_id;
  message.verdict.recognized = verdict.result.recognized;
  message.verdict.matched =
      static_cast<std::uint32_t>(verdict.result.matched_count);
  message.verdict.fingerprints =
      static_cast<std::uint32_t>(verdict.result.fingerprint_count);
  message.verdict.application = verdict.result.prediction();
  message.verdict.label = verdict.result.label_prediction();
  return message;
}

IngestPipeline::IngestPipeline(core::RecognitionService& service,
                               SampleSource& source,
                               IngestPipelineConfig config,
                               util::ThreadPool* pool)
    : service_(service), source_(source), config_(config), pool_(pool) {}

IngestPipeline::~IngestPipeline() {
  stop();
  join();
}

void IngestPipeline::start() {
  thread_ = std::thread([this] { run(); });
}

void IngestPipeline::join() {
  if (thread_.joinable()) thread_.join();
}

void IngestPipeline::dispatch(Envelope& envelope) {
  Message& message = envelope.message;
  switch (message.type) {
    case MessageType::kOpenJob:
      if (service_.open_job(message.job_id, message.node_count)) {
        jobs_opened_.fetch_add(1, std::memory_order_relaxed);
        replies_[message.job_id] = envelope.reply;
      } else {
        open_rejected_.fetch_add(1, std::memory_order_relaxed);
      }
      break;
    case MessageType::kSampleBatch: {
      // One stream resolution + lock cycle per wire batch, not per
      // sample (the dispatch thread's hot path).
      scratch_.clear();
      scratch_.reserve(message.samples.size());
      for (const WireSample& sample : message.samples) {
        scratch_.push_back({sample.node_id, sample.t, sample.value,
                            std::string_view(sample.metric)});
      }
      service_.push_batch(message.job_id, scratch_);
      samples_.fetch_add(message.samples.size(), std::memory_order_relaxed);
      break;
    }
    case MessageType::kCloseJob:
      if (service_.close_job(message.job_id)) {
        jobs_closed_.fetch_add(1, std::memory_order_relaxed);
      }
      break;
    case MessageType::kShutdown:
      if (config_.stop_on_shutdown_message) stop();
      break;
    case MessageType::kVerdict:
    default:
      // Verdicts flow outbound only; anything else is a peer bug.
      unexpected_messages_.fetch_add(1, std::memory_order_relaxed);
      break;
  }
}

std::uint64_t IngestPipeline::flush_verdicts() {
  std::uint64_t delivered = 0;
  for (const core::JobVerdict& verdict : service_.drain_verdicts()) {
    if (config_.on_verdict) config_.on_verdict(verdict);
    const auto it = replies_.find(verdict.job_id);
    if (it != replies_.end()) {
      if (it->second != nullptr) it->second->deliver(make_verdict_message(verdict));
      replies_.erase(it);
    }
    ++delivered;
  }
  if (delivered > 0) {
    verdicts_delivered_.fetch_add(delivered, std::memory_order_relaxed);
  }
  return delivered;
}

std::uint64_t IngestPipeline::run() {
  std::uint64_t total_delivered = 0;
  auto last_sweep = std::chrono::steady_clock::now();
  std::vector<Envelope> batch;
  bool more = true;

  while (more && !stop_.load(std::memory_order_acquire)) {
    batch.clear();
    more = source_.poll(batch, config_.poll_timeout);
    if (!batch.empty()) {
      envelopes_.fetch_add(batch.size(), std::memory_order_relaxed);
      for (Envelope& envelope : batch) dispatch(envelope);
    }

    // Recognize everything the batch enqueued (deferred services; a
    // no-op for inline ones), then ship finished verdicts back.
    service_.process_pending(pool_);
    total_delivered += flush_verdicts();

    const auto now = std::chrono::steady_clock::now();
    if (now - last_sweep >= config_.sweep_interval) {
      const std::size_t evicted = service_.sweep_stale_jobs();
      sweeps_.fetch_add(1, std::memory_order_relaxed);
      if (evicted > 0) {
        evicted_.fetch_add(evicted, std::memory_order_relaxed);
        total_delivered += flush_verdicts();
      }
      last_sweep = now;
    }

    if (config_.max_verdicts != 0 &&
        verdicts_delivered_.load(std::memory_order_relaxed) >=
            config_.max_verdicts) {
      break;
    }
  }

  if (config_.close_jobs_on_end) {
    // The source is gone (or we are stopping): every job this pipeline
    // opened still deserves a verdict — the unknown-application
    // safeguard for emitters that died mid-stream.
    std::vector<std::uint64_t> open_jobs;
    open_jobs.reserve(replies_.size());
    for (const auto& [job_id, reply] : replies_) open_jobs.push_back(job_id);
    for (const std::uint64_t job_id : open_jobs) {
      if (service_.close_job(job_id)) {
        jobs_closed_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    total_delivered += flush_verdicts();
  }
  return total_delivered;
}

IngestPipelineStats IngestPipeline::stats() const {
  IngestPipelineStats stats;
  stats.envelopes = envelopes_.load(std::memory_order_relaxed);
  stats.samples = samples_.load(std::memory_order_relaxed);
  stats.jobs_opened = jobs_opened_.load(std::memory_order_relaxed);
  stats.open_rejected = open_rejected_.load(std::memory_order_relaxed);
  stats.jobs_closed = jobs_closed_.load(std::memory_order_relaxed);
  stats.verdicts_delivered =
      verdicts_delivered_.load(std::memory_order_relaxed);
  stats.unexpected_messages =
      unexpected_messages_.load(std::memory_order_relaxed);
  stats.sweeps = sweeps_.load(std::memory_order_relaxed);
  stats.evicted = evicted_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace efd::ingest
