#include "ingest/udp_transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "util/binary_io.hpp"

namespace efd::ingest {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw TransportError(what + ": " + std::strerror(errno));
}

void close_fd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

}  // namespace

void encode_datagram(std::uint64_t seq, const Message& message,
                     std::vector<std::uint8_t>& out) {
  const std::size_t start = out.size();
  util::put_u32(out, kUdpMagic);
  util::put_u64(out, seq);
  try {
    encode_frame(message, out);
  } catch (...) {
    out.resize(start);
    throw;
  }
  if (out.size() - start > kUdpHeaderBytes + kMaxUdpPayloadBytes) {
    out.resize(start);
    throw std::invalid_argument(
        "frame too large for a UDP datagram; lower the batch size or use "
        "tcp/shm");
  }
}

bool decode_datagram(const std::uint8_t* data, std::size_t size,
                     std::uint64_t& seq, Message& out,
                     SampleBufferPool* pool) {
  if (size < kUdpHeaderBytes) return false;
  util::ByteReader reader(data, size);
  std::uint32_t magic = 0;
  if (!reader.read_u32(magic) || magic != kUdpMagic) return false;
  if (!reader.read_u64(seq)) return false;
  // One datagram = exactly one EFD-WIRE-V1 frame, decoded by the same
  // fuzz-hardened decoder the stream transports use. A fresh decoder per
  // datagram: datagrams are independent — corruption cannot poison a
  // stream, only fail its own datagram.
  FrameDecoder decoder;
  if (pool != nullptr) decoder.set_buffer_pool(pool);
  decoder.feed(data + kUdpHeaderBytes, size - kUdpHeaderBytes);
  Message message;
  if (decoder.next(message) != DecodeStatus::kMessage) return false;
  if (decoder.buffered_bytes() != 0) return false;  // trailing bytes
  out = std::move(message);
  return true;
}

struct UdpServer::SharedSocket {
  std::mutex mutex;
  int fd = -1;
};

/// Best-effort datagram reply channel to one peer address. The socket is
/// the server's; the shared mutex-guarded holder keeps delivery safe
/// against (and after) server shutdown.
struct UdpServer::PeerSink final : VerdictSink {
  PeerSink(std::shared_ptr<SharedSocket> socket, sockaddr_in peer,
           std::shared_ptr<std::atomic<std::uint64_t>> failures)
      : socket(std::move(socket)),
        peer(peer),
        failures(std::move(failures)) {}

  void deliver(const Message& verdict) override {
    std::vector<std::uint8_t> datagram;
    try {
      encode_datagram(next_seq.fetch_add(1, std::memory_order_relaxed) + 1,
                      verdict, datagram);
    } catch (const std::exception&) {
      // Reply too large for a datagram (e.g. a huge stats text): lossy
      // transport, lossy reply — counted, never fatal.
      failures->fetch_add(1, std::memory_order_relaxed);
      return;
    }
    std::lock_guard lock(socket->mutex);
    if (socket->fd < 0 ||
        ::sendto(socket->fd, datagram.data(), datagram.size(), MSG_NOSIGNAL,
                 reinterpret_cast<const sockaddr*>(&peer),
                 sizeof(peer)) < 0) {
      failures->fetch_add(1, std::memory_order_relaxed);
    }
  }

  std::shared_ptr<SharedSocket> socket;
  sockaddr_in peer;
  std::atomic<std::uint64_t> next_seq{0};
  std::shared_ptr<std::atomic<std::uint64_t>> failures;
};

UdpServer::UdpServer(const Config& config)
    : config_(config),
      queue_(config.queue_capacity, config.queue_sample_capacity) {
  fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd_ < 0) throw_errno("socket");

  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  address.sin_port = htons(config.port);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&address), sizeof(address)) <
      0) {
    close_fd(fd_);
    throw_errno("bind");
  }
  socklen_t length = sizeof(address);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&address), &length) <
      0) {
    close_fd(fd_);
    throw_errno("getsockname");
  }
  port_ = ntohs(address.sin_port);

  if (config_.receive_buffer_bytes > 0) {
    // Best-effort: the kernel clamps to rmem_max. A bigger buffer only
    // moves where a burst is shed, and our shed is the counted one.
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &config_.receive_buffer_bytes,
                 sizeof(config_.receive_buffer_bytes));
  }
  // Periodic recv timeout so the receiver observes stop() without
  // needing to close the socket underneath it.
  timeval recv_timeout{};
  recv_timeout.tv_usec = 100 * 1000;
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &recv_timeout,
               sizeof(recv_timeout));

  socket_ = std::make_shared<SharedSocket>();
  socket_->fd = fd_;
  receiver_ = std::thread([this] { receive_loop(); });
}

UdpServer::~UdpServer() { stop(); }

void UdpServer::receive_loop() {
  // Batched receive: one recvmmsg() syscall drains up to kReceiveBatch
  // datagrams that are already queued in the kernel — a replay burst
  // costs 1/kReceiveBatch of the per-datagram syscall overhead.
  // MSG_WAITFORONE blocks for the first datagram only (bounded by the
  // socket's SO_RCVTIMEO, so stop() is still observed every 100 ms) and
  // returns immediately with whatever else is waiting.
  constexpr std::size_t kReceiveBatch = 16;
  constexpr std::size_t kDatagramBytes = 64 * 1024;
  std::vector<std::vector<std::uint8_t>> buffers(
      kReceiveBatch, std::vector<std::uint8_t>(kDatagramBytes));
  std::vector<sockaddr_in> peers(kReceiveBatch);
  std::vector<iovec> iovs(kReceiveBatch);
  std::vector<mmsghdr> headers(kReceiveBatch);

  while (!stopping_.load(std::memory_order_acquire)) {
    // Re-arm every header: the kernel overwrites msg_namelen/msg_len.
    for (std::size_t i = 0; i < kReceiveBatch; ++i) {
      iovs[i] = iovec{buffers[i].data(), buffers[i].size()};
      headers[i] = mmsghdr{};
      headers[i].msg_hdr.msg_name = &peers[i];
      headers[i].msg_hdr.msg_namelen = sizeof(peers[i]);
      headers[i].msg_hdr.msg_iov = &iovs[i];
      headers[i].msg_hdr.msg_iovlen = 1;
    }
    const int received = ::recvmmsg(fd_, headers.data(), kReceiveBatch,
                                    MSG_WAITFORONE, nullptr);
    if (received < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      break;  // socket gone
    }
    for (int i = 0; i < received; ++i) {
      handle_datagram(peers[static_cast<std::size_t>(i)],
                      buffers[static_cast<std::size_t>(i)].data(),
                      headers[static_cast<std::size_t>(i)].msg_len);
    }
  }
}

void UdpServer::handle_datagram(const sockaddr_in& peer,
                                const std::uint8_t* data, std::size_t size) {
  datagrams_.fetch_add(1, std::memory_order_relaxed);

  std::uint64_t seq = 0;
  Message message;
  if (!decode_datagram(data, size, seq, message, &pool_) || seq == 0) {
    // One bad datagram fails alone: datagrams are independent, so the
    // peer's later traffic still flows (unlike a corrupted TCP stream).
    decode_errors_.fetch_add(1, std::memory_order_relaxed);
    return;
  }

  const auto now = std::chrono::steady_clock::now();
  const std::uint64_t key =
      (static_cast<std::uint64_t>(peer.sin_addr.s_addr) << 16) |
      ntohs(peer.sin_port);
  PeerState& state = peers_[key];
  if (state.sink == nullptr) {
    state.sink = std::make_shared<PeerSink>(socket_, peer,
                                            verdict_send_failures_);
    // Stamp activity BEFORE the sweep: the new entry must not look
    // epoch-old and get erased out from under this reference.
    state.last_activity = now;
    peer_count_.fetch_add(1, std::memory_order_relaxed);
    sweep_idle_peers(now);
  } else if (config_.peer_ttl.count() > 0 &&
             now - state.last_activity > config_.peer_ttl) {
    // Session restart: an emitter that rebooted restarts its seq at 1.
    // After a TTL of silence its old high-water mark must not shed the
    // new session's traffic as "duplicates" for hours.
    state.last_seq = 0;
    state.control_seen.fill(ControlSeen{});
    state.control_next = 0;
  }
  state.last_activity = now;
  if (state.last_seq == 0) {
    // First datagram of a session (brand-new peer, TTL resume, or a
    // peer the idle sweep evicted and that came back): accept at face
    // value, count NO initial gap. A session's pre-contact history is
    // indistinguishable from a late start, and booking it as loss
    // would poison the very counter operators use to exclude lossy
    // sources. Within-session holes below are the reliable signal.
  } else if (seq <= state.last_seq) {
    // Duplicate or reordered-behind-delivery: re-dispatching would
    // double-count its samples, so it is shed — and counted.
    duplicates_.fetch_add(1, std::memory_order_relaxed);
    return;
  } else if (seq > state.last_seq + 1) {
    gaps_.fetch_add(seq - state.last_seq - 1, std::memory_order_relaxed);
  }
  state.last_seq = seq;

  // Emitter control-frame retransmits arrive under FRESH sequence
  // numbers (so the duplicate shed above cannot catch them); absorb a
  // repeat of any recently dispatched open/close here instead of
  // re-dispatching it into the pipeline (a re-delivered kOpenJob for a
  // finished job would re-open it as a ghost). Linear scan of a small
  // ring: control frames are two per job, never the sample hot path.
  if (message.type == MessageType::kOpenJob ||
      message.type == MessageType::kCloseJob) {
    const bool close = message.type == MessageType::kCloseJob;
    for (const ControlSeen& seen : state.control_seen) {
      if (seen.job_id == message.job_id && seen.close == close) {
        control_retransmits_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
    }
    state.control_seen[state.control_next] = ControlSeen{message.job_id, close};
    state.control_next = (state.control_next + 1) % kControlHistorySize;
  }

  // Lossy discipline end-to-end: a full internal queue sheds the
  // datagram visibly instead of stalling the receiver into opaque
  // kernel-buffer drops.
  if (queue_.try_send_with_reply(std::move(message), state.sink)) {
    frames_.fetch_add(1, std::memory_order_relaxed);
  } else {
    queue_drops_.fetch_add(1, std::memory_order_relaxed);
  }
}

void UdpServer::sweep_idle_peers(std::chrono::steady_clock::time_point now) {
  // Amortized (only when the map doubled past its post-sweep size):
  // a steady peer population never re-pays the scan, but a server
  // facing ephemeral-port replayers cannot accumulate state forever.
  if (config_.peer_ttl.count() <= 0 || peers_.size() < peers_sweep_at_) {
    return;
  }
  std::size_t evicted = 0;
  for (auto it = peers_.begin(); it != peers_.end();) {
    if (now - it->second.last_activity > config_.peer_ttl) {
      it = peers_.erase(it);  // the sink stays alive via live envelopes
      ++evicted;
    } else {
      ++it;
    }
  }
  peer_count_.fetch_sub(evicted, std::memory_order_relaxed);
  peers_sweep_at_ = std::max<std::size_t>(64, peers_.size() * 2);
}

bool UdpServer::poll(std::vector<Envelope>& out,
                     std::chrono::milliseconds timeout) {
  // Stamp pool provenance on the entries this call appended, so the
  // consumer releases sample buffers back to THIS server's pool.
  const std::size_t before = out.size();
  const bool alive = queue_.poll(out, timeout);
  for (std::size_t i = before; i < out.size(); ++i) out[i].pool = &pool_;
  return alive;
}

void UdpServer::stop() {
  if (stopping_.exchange(true, std::memory_order_acq_rel)) return;
  if (receiver_.joinable()) receiver_.join();
  {
    // The receiver is gone; sinks held by undelivered envelopes observe
    // fd < 0 under the shared mutex from here on.
    std::lock_guard lock(socket_->mutex);
    close_fd(socket_->fd);
    fd_ = -1;
  }
  queue_.close();
}

UdpServer::Stats UdpServer::stats() const {
  Stats stats;
  stats.datagrams = datagrams_.load(std::memory_order_relaxed);
  stats.frames = frames_.load(std::memory_order_relaxed);
  stats.decode_errors = decode_errors_.load(std::memory_order_relaxed);
  stats.gaps = gaps_.load(std::memory_order_relaxed);
  stats.duplicates = duplicates_.load(std::memory_order_relaxed);
  stats.queue_drops = queue_drops_.load(std::memory_order_relaxed);
  stats.verdict_send_failures =
      verdict_send_failures_->load(std::memory_order_relaxed);
  stats.control_retransmits =
      control_retransmits_.load(std::memory_order_relaxed);
  stats.peers = peer_count_.load(std::memory_order_relaxed);
  return stats;
}

TransportCounters UdpServer::transport_counters() const {
  const Stats stats = this->stats();
  TransportCounters counters;
  counters.frames = stats.frames;
  counters.decode_errors = stats.decode_errors;
  counters.drops = stats.duplicates + stats.queue_drops;
  counters.gaps = stats.gaps;
  counters.blocked = 0;  // lossy mode never back-pressures
  counters.retransmits = stats.control_retransmits;
  return counters;
}

UdpClient::UdpClient(const std::string& host, std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd_ < 0) throw_errno("socket");

  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &address.sin_addr) != 1) {
    close_fd(fd_);
    throw TransportError("invalid host address: " + host);
  }
  // Connected-UDP: send()/recv() without per-call addressing, and only
  // the server's replies are accepted.
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&address),
                sizeof(address)) < 0) {
    close_fd(fd_);
    throw_errno("connect to " + host + ":" + std::to_string(port));
  }
}

UdpClient::~UdpClient() { close_fd(fd_); }

void UdpClient::send(Message message) {
  std::lock_guard lock(write_mutex_);

  // Bundle every still-pending control frame ahead of this message —
  // one sendmmsg() syscall ships the retransmits AND the new frame.
  // Each copy gets a fresh sequence number: the server's duplicate shed
  // is seq-based, so a stale seq would be discarded before its content
  // could be absorbed (and would poison the gap accounting).
  std::size_t count = 0;
  const auto add_datagram = [&](const Message& m) {
    if (count == datagram_buffers_.size()) datagram_buffers_.emplace_back();
    std::vector<std::uint8_t>& buffer = datagram_buffers_[count];
    buffer.clear();
    encode_datagram(++next_seq_, m, buffer);
    ++count;
  };
  for (auto it = pending_control_.begin(); it != pending_control_.end();) {
    add_datagram(it->message);
    retransmits_.fetch_add(1, std::memory_order_relaxed);
    if (--it->remaining <= 0) {
      it = pending_control_.erase(it);  // budget exhausted: give up
    } else {
      ++it;
    }
  }
  add_datagram(message);

  std::vector<iovec> iovs(count);
  std::vector<mmsghdr> headers(count);
  for (std::size_t i = 0; i < count; ++i) {
    iovs[i] = iovec{datagram_buffers_[i].data(), datagram_buffers_[i].size()};
    headers[i] = mmsghdr{};
    headers[i].msg_hdr.msg_iov = &iovs[i];
    headers[i].msg_hdr.msg_iovlen = 1;
  }
  std::size_t sent = 0;
  while (sent < count) {
    const int n = ::sendmmsg(fd_, headers.data() + sent,
                             static_cast<unsigned int>(count - sent),
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("datagram send");
    }
    sent += static_cast<std::size_t>(n);
  }

  // Track the just-sent control frame AFTER shipping it, so its own
  // send() doesn't count as a retransmit. Oldest pending is dropped
  // beyond the bound — the budget caps memory, not correctness (a job
  // whose open truly vanished ends in the server's stale sweep).
  if (message.type == MessageType::kOpenJob ||
      message.type == MessageType::kCloseJob) {
    if (pending_control_.size() >= kMaxPendingControl) {
      pending_control_.erase(pending_control_.begin());
    }
    pending_control_.push_back(PendingControl{std::move(message)});
  }
}

std::size_t UdpClient::pending_control() const {
  std::lock_guard lock(write_mutex_);
  return pending_control_.size();
}

bool UdpClient::receive(Message& out, std::chrono::milliseconds timeout) {
  std::uint8_t buffer[64 * 1024];
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return false;
    pollfd pfd{fd_, POLLIN, 0};
    const auto wait =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now);
    const int ready = ::poll(&pfd, 1, static_cast<int>(wait.count()));
    if (ready < 0 && errno == EINTR) continue;
    if (ready <= 0) return false;
    const ssize_t received = ::recv(fd_, buffer, sizeof(buffer), 0);
    if (received < 0 && errno == EINTR) continue;
    if (received < 0) return false;
    std::uint64_t seq = 0;
    if (decode_datagram(buffer, static_cast<std::size_t>(received), seq,
                        out)) {
      if (out.type == MessageType::kVerdict) {
        // A verdict proves the server knows this job: its control
        // frames arrived, so stop re-sending them.
        std::lock_guard lock(write_mutex_);
        std::erase_if(pending_control_, [&](const PendingControl& pending) {
          return pending.message.job_id == out.job_id;
        });
      }
      return true;
    }
    // Malformed reply datagram: skip it, keep waiting for a good one.
  }
}

}  // namespace efd::ingest
