#include "ingest/udp_transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "util/binary_io.hpp"

namespace efd::ingest {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw TransportError(what + ": " + std::strerror(errno));
}

void close_fd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

}  // namespace

void encode_datagram(std::uint64_t seq, const Message& message,
                     std::vector<std::uint8_t>& out) {
  const std::size_t start = out.size();
  util::put_u32(out, kUdpMagic);
  util::put_u64(out, seq);
  try {
    encode_frame(message, out);
  } catch (...) {
    out.resize(start);
    throw;
  }
  if (out.size() - start > kUdpHeaderBytes + kMaxUdpPayloadBytes) {
    out.resize(start);
    throw std::invalid_argument(
        "frame too large for a UDP datagram; lower the batch size or use "
        "tcp/shm");
  }
}

bool decode_datagram(const std::uint8_t* data, std::size_t size,
                     std::uint64_t& seq, Message& out) {
  if (size < kUdpHeaderBytes) return false;
  util::ByteReader reader(data, size);
  std::uint32_t magic = 0;
  if (!reader.read_u32(magic) || magic != kUdpMagic) return false;
  if (!reader.read_u64(seq)) return false;
  // One datagram = exactly one EFD-WIRE-V1 frame, decoded by the same
  // fuzz-hardened decoder the stream transports use. A fresh decoder per
  // datagram: datagrams are independent — corruption cannot poison a
  // stream, only fail its own datagram.
  FrameDecoder decoder;
  decoder.feed(data + kUdpHeaderBytes, size - kUdpHeaderBytes);
  Message message;
  if (decoder.next(message) != DecodeStatus::kMessage) return false;
  if (decoder.buffered_bytes() != 0) return false;  // trailing bytes
  out = std::move(message);
  return true;
}

struct UdpServer::SharedSocket {
  std::mutex mutex;
  int fd = -1;
};

/// Best-effort datagram reply channel to one peer address. The socket is
/// the server's; the shared mutex-guarded holder keeps delivery safe
/// against (and after) server shutdown.
struct UdpServer::PeerSink final : VerdictSink {
  PeerSink(std::shared_ptr<SharedSocket> socket, sockaddr_in peer,
           std::shared_ptr<std::atomic<std::uint64_t>> failures)
      : socket(std::move(socket)),
        peer(peer),
        failures(std::move(failures)) {}

  void deliver(const Message& verdict) override {
    std::vector<std::uint8_t> datagram;
    try {
      encode_datagram(next_seq.fetch_add(1, std::memory_order_relaxed) + 1,
                      verdict, datagram);
    } catch (const std::exception&) {
      // Reply too large for a datagram (e.g. a huge stats text): lossy
      // transport, lossy reply — counted, never fatal.
      failures->fetch_add(1, std::memory_order_relaxed);
      return;
    }
    std::lock_guard lock(socket->mutex);
    if (socket->fd < 0 ||
        ::sendto(socket->fd, datagram.data(), datagram.size(), MSG_NOSIGNAL,
                 reinterpret_cast<const sockaddr*>(&peer),
                 sizeof(peer)) < 0) {
      failures->fetch_add(1, std::memory_order_relaxed);
    }
  }

  std::shared_ptr<SharedSocket> socket;
  sockaddr_in peer;
  std::atomic<std::uint64_t> next_seq{0};
  std::shared_ptr<std::atomic<std::uint64_t>> failures;
};

UdpServer::UdpServer(const Config& config)
    : config_(config),
      queue_(config.queue_capacity, config.queue_sample_capacity) {
  fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd_ < 0) throw_errno("socket");

  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  address.sin_port = htons(config.port);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&address), sizeof(address)) <
      0) {
    close_fd(fd_);
    throw_errno("bind");
  }
  socklen_t length = sizeof(address);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&address), &length) <
      0) {
    close_fd(fd_);
    throw_errno("getsockname");
  }
  port_ = ntohs(address.sin_port);

  if (config_.receive_buffer_bytes > 0) {
    // Best-effort: the kernel clamps to rmem_max. A bigger buffer only
    // moves where a burst is shed, and our shed is the counted one.
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &config_.receive_buffer_bytes,
                 sizeof(config_.receive_buffer_bytes));
  }
  // Periodic recv timeout so the receiver observes stop() without
  // needing to close the socket underneath it.
  timeval recv_timeout{};
  recv_timeout.tv_usec = 100 * 1000;
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &recv_timeout,
               sizeof(recv_timeout));

  socket_ = std::make_shared<SharedSocket>();
  socket_->fd = fd_;
  receiver_ = std::thread([this] { receive_loop(); });
}

UdpServer::~UdpServer() { stop(); }

void UdpServer::receive_loop() {
  std::vector<std::uint8_t> buffer(64 * 1024);
  while (!stopping_.load(std::memory_order_acquire)) {
    sockaddr_in peer{};
    socklen_t peer_len = sizeof(peer);
    const ssize_t received =
        ::recvfrom(fd_, buffer.data(), buffer.size(), 0,
                   reinterpret_cast<sockaddr*>(&peer), &peer_len);
    if (received < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      break;  // socket gone
    }
    datagrams_.fetch_add(1, std::memory_order_relaxed);

    std::uint64_t seq = 0;
    Message message;
    if (!decode_datagram(buffer.data(), static_cast<std::size_t>(received),
                         seq, message) ||
        seq == 0) {
      // One bad datagram fails alone: datagrams are independent, so the
      // peer's later traffic still flows (unlike a corrupted TCP stream).
      decode_errors_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }

    const auto now = std::chrono::steady_clock::now();
    const std::uint64_t key =
        (static_cast<std::uint64_t>(peer.sin_addr.s_addr) << 16) |
        ntohs(peer.sin_port);
    PeerState& state = peers_[key];
    if (state.sink == nullptr) {
      state.sink = std::make_shared<PeerSink>(socket_, peer,
                                              verdict_send_failures_);
      // Stamp activity BEFORE the sweep: the new entry must not look
      // epoch-old and get erased out from under this reference.
      state.last_activity = now;
      peer_count_.fetch_add(1, std::memory_order_relaxed);
      sweep_idle_peers(now);
    } else if (config_.peer_ttl.count() > 0 &&
               now - state.last_activity > config_.peer_ttl) {
      // Session restart: an emitter that rebooted restarts its seq at 1.
      // After a TTL of silence its old high-water mark must not shed the
      // new session's traffic as "duplicates" for hours.
      state.last_seq = 0;
    }
    state.last_activity = now;
    if (state.last_seq == 0) {
      // First datagram of a session (brand-new peer, TTL resume, or a
      // peer the idle sweep evicted and that came back): accept at face
      // value, count NO initial gap. A session's pre-contact history is
      // indistinguishable from a late start, and booking it as loss
      // would poison the very counter operators use to exclude lossy
      // sources. Within-session holes below are the reliable signal.
    } else if (seq <= state.last_seq) {
      // Duplicate or reordered-behind-delivery: re-dispatching would
      // double-count its samples, so it is shed — and counted.
      duplicates_.fetch_add(1, std::memory_order_relaxed);
      continue;
    } else if (seq > state.last_seq + 1) {
      gaps_.fetch_add(seq - state.last_seq - 1, std::memory_order_relaxed);
    }
    state.last_seq = seq;

    // Lossy discipline end-to-end: a full internal queue sheds the
    // datagram visibly instead of stalling the receiver into opaque
    // kernel-buffer drops.
    if (queue_.try_send_with_reply(std::move(message), state.sink)) {
      frames_.fetch_add(1, std::memory_order_relaxed);
    } else {
      queue_drops_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

void UdpServer::sweep_idle_peers(std::chrono::steady_clock::time_point now) {
  // Amortized (only when the map doubled past its post-sweep size):
  // a steady peer population never re-pays the scan, but a server
  // facing ephemeral-port replayers cannot accumulate state forever.
  if (config_.peer_ttl.count() <= 0 || peers_.size() < peers_sweep_at_) {
    return;
  }
  std::size_t evicted = 0;
  for (auto it = peers_.begin(); it != peers_.end();) {
    if (now - it->second.last_activity > config_.peer_ttl) {
      it = peers_.erase(it);  // the sink stays alive via live envelopes
      ++evicted;
    } else {
      ++it;
    }
  }
  peer_count_.fetch_sub(evicted, std::memory_order_relaxed);
  peers_sweep_at_ = std::max<std::size_t>(64, peers_.size() * 2);
}

bool UdpServer::poll(std::vector<Envelope>& out,
                     std::chrono::milliseconds timeout) {
  return queue_.poll(out, timeout);
}

void UdpServer::stop() {
  if (stopping_.exchange(true, std::memory_order_acq_rel)) return;
  if (receiver_.joinable()) receiver_.join();
  {
    // The receiver is gone; sinks held by undelivered envelopes observe
    // fd < 0 under the shared mutex from here on.
    std::lock_guard lock(socket_->mutex);
    close_fd(socket_->fd);
    fd_ = -1;
  }
  queue_.close();
}

UdpServer::Stats UdpServer::stats() const {
  Stats stats;
  stats.datagrams = datagrams_.load(std::memory_order_relaxed);
  stats.frames = frames_.load(std::memory_order_relaxed);
  stats.decode_errors = decode_errors_.load(std::memory_order_relaxed);
  stats.gaps = gaps_.load(std::memory_order_relaxed);
  stats.duplicates = duplicates_.load(std::memory_order_relaxed);
  stats.queue_drops = queue_drops_.load(std::memory_order_relaxed);
  stats.verdict_send_failures =
      verdict_send_failures_->load(std::memory_order_relaxed);
  stats.peers = peer_count_.load(std::memory_order_relaxed);
  return stats;
}

TransportCounters UdpServer::transport_counters() const {
  const Stats stats = this->stats();
  TransportCounters counters;
  counters.frames = stats.frames;
  counters.decode_errors = stats.decode_errors;
  counters.drops = stats.duplicates + stats.queue_drops;
  counters.gaps = stats.gaps;
  counters.blocked = 0;  // lossy mode never back-pressures
  return counters;
}

UdpClient::UdpClient(const std::string& host, std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd_ < 0) throw_errno("socket");

  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &address.sin_addr) != 1) {
    close_fd(fd_);
    throw TransportError("invalid host address: " + host);
  }
  // Connected-UDP: send()/recv() without per-call addressing, and only
  // the server's replies are accepted.
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&address),
                sizeof(address)) < 0) {
    close_fd(fd_);
    throw_errno("connect to " + host + ":" + std::to_string(port));
  }
}

UdpClient::~UdpClient() { close_fd(fd_); }

void UdpClient::send(Message message) {
  std::lock_guard lock(write_mutex_);
  encode_buffer_.clear();
  encode_datagram(++next_seq_, message, encode_buffer_);
  if (::send(fd_, encode_buffer_.data(), encode_buffer_.size(),
             MSG_NOSIGNAL) < 0) {
    throw_errno("datagram send");
  }
}

bool UdpClient::receive(Message& out, std::chrono::milliseconds timeout) {
  std::uint8_t buffer[64 * 1024];
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return false;
    pollfd pfd{fd_, POLLIN, 0};
    const auto wait =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now);
    const int ready = ::poll(&pfd, 1, static_cast<int>(wait.count()));
    if (ready < 0 && errno == EINTR) continue;
    if (ready <= 0) return false;
    const ssize_t received = ::recv(fd_, buffer, sizeof(buffer), 0);
    if (received < 0 && errno == EINTR) continue;
    if (received < 0) return false;
    std::uint64_t seq = 0;
    if (decode_datagram(buffer, static_cast<std::size_t>(received), seq,
                        out)) {
      return true;
    }
    // Malformed reply datagram: skip it, keep waiting for a good one.
  }
}

}  // namespace efd::ingest
