#pragma once
/// \file snapshot_chain.hpp
/// \brief On-disk layout and durability discipline for EFD-SNAP-V2
/// capture chains (and legacy EFD-SNAP-V1 files).
///
/// Layout: the base capture lives at the configured snapshot path;
/// every delta lives next to it as `<path>.delta.<capture_id>`. A new
/// base atomically replaces the file at the snapshot path and then
/// deletes the superseded delta files — a crash between the two leaves
/// stale deltas whose parent ids no longer chain, which restore detects
/// and discards with a loud fallback to the (correct) new base.
///
/// Durability: write_file_durable() is the single write path — tmp file
/// in the same directory, write, fsync, atomic rename, fsync of the
/// parent directory — so a power loss can never leave a zero-length or
/// torn file at the final path, and a completed rename survives the
/// directory entry itself being lost. Used by the serving pipeline's
/// snapshot writer and by the warm-standby follower persisting
/// replicated captures.
///
/// Restore: restore_service_from_chain() dispatches on the file magic —
/// EFD-SNAP-V1 restores directly (legacy single-file snapshots keep
/// working), EFD-SNAP-V2 replays base → deltas. A broken link or
/// corrupt delta falls back to the base alone, loudly (the caller gets
/// the reason and a discard count); a base that itself fails to decode
/// propagates SnapshotError — an unreadable snapshot fails the boot
/// loudly rather than silently starting empty.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/online/recognition_service.hpp"

namespace efd::ingest {

/// Durably replaces the file at \p path with \p size bytes: same-
/// directory tmp file, write + ::fsync, ::rename, parent-directory
/// fsync. On failure returns false, fills \p error (errno text), and
/// removes the tmp file.
bool write_file_durable(const std::string& path, const void* data,
                        std::size_t size, std::string* error);

/// `<base_path>.delta.<capture_id>` — where one chain delta lives.
std::string delta_path(const std::string& base_path,
                       std::uint64_t capture_id);

/// One delta file found next to a base.
struct ChainFile {
  std::string path;
  std::uint64_t capture_id = 0;
};

/// Every `<base_path>.delta.<id>` in the base's directory, sorted by
/// capture id. Non-numeric suffixes are ignored.
std::vector<ChainFile> list_chain_deltas(const std::string& base_path);

/// Best-effort delete of every delta file next to \p base_path (a new
/// base supersedes the old chain). Returns the number removed.
std::size_t remove_chain_deltas(const std::string& base_path);

/// The V2 chain envelope of the capture file at \p path (magic, kind,
/// ids), read without decoding the body. nullopt when the file is
/// missing, too short, or not EFD-SNAP-V2.
struct CaptureEnvelope {
  core::CaptureKind kind = core::CaptureKind::kBase;
  std::uint64_t capture_id = 0;
  std::uint64_t parent_id = 0;
};
std::optional<CaptureEnvelope> peek_capture_envelope(const std::string& path);

/// What restore_service_from_chain rebuilt.
struct ChainRestoreResult {
  core::ServiceRestoreInfo info;
  std::uint64_t last_capture_id = 0;  ///< newest capture applied (0 = V1)
  std::size_t deltas_applied = 0;
  /// Deltas found on disk but discarded by the loud base-only fallback.
  std::size_t deltas_discarded = 0;
  std::string fallback_error;  ///< why they were discarded (empty = none)
  bool legacy_v1 = false;      ///< the base was an EFD-SNAP-V1 file
};

/// Restores \p service from the snapshot chain rooted at \p base_path.
/// Throws core::SnapshotError when the base itself is unreadable (torn,
/// truncated, corrupt) — boot must fail loudly, not silently start
/// empty. A failure replaying the deltas retries with the base alone
/// and reports the discard in the result.
ChainRestoreResult restore_service_from_chain(
    core::RecognitionService& service, const std::string& base_path);

}  // namespace efd::ingest
