#pragma once
/// \file tcp_transport.hpp
/// \brief TCP transport: the network ingestion front end.
///
/// TcpServer binds a listening socket, accepts monitoring connections,
/// and runs one reader thread per connection that decodes EFD-WIRE-V1
/// frames and forwards them — tagged with the connection as the verdict
/// reply channel — into a bounded internal RingTransport the pipeline
/// polls. Back-pressure is end-to-end: a full internal ring blocks the
/// reader, which stops draining the socket, which fills the kernel
/// receive window, which stalls the remote sender. A connection whose
/// byte stream fails to decode is dropped (corrupted framing is
/// unrecoverable) and counted.
///
/// TcpClient is the emitter side: connect, send() frames, receive()
/// verdict messages. Used by `efd_cli replay` and by TransportFeed for
/// sampling loops that emit to a remote service.
///
/// Threading: the server owns one accept thread plus one reader thread
/// per live connection. stop() (and the destructor) shuts the listener
/// and all sockets down and joins every thread. Verdict delivery
/// (Connection::deliver) may run concurrently with the reader; socket
/// writes are serialized by a per-connection mutex.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "ingest/buffer_pool.hpp"
#include "ingest/ring_transport.hpp"
#include "ingest/transport.hpp"

namespace efd::ingest {

/// Thrown on socket-level failures (bind, connect, write).
class TransportError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class TcpServer final : public SampleSource {
 public:
  struct Config {
    std::uint16_t port = 0;          ///< 0 = ephemeral (see port())
    std::size_t queue_capacity = 4096; ///< decoded-message bound
    /// Bound on buffered *samples* across queued batches (0 = 64 x
    /// queue_capacity); the real memory bound — see ring_transport.hpp.
    std::size_t queue_sample_capacity = 0;
    std::size_t read_chunk = 64 * 1024;
  };

  struct Stats {
    std::uint64_t connections_accepted = 0;
    std::uint64_t connections_dropped = 0;  ///< decode errors
    std::uint64_t frames = 0;
    /// Verdicts that could not be written back (peer gone, or it
    /// stopped reading and the send timed out — that connection is
    /// then dropped).
    std::uint64_t verdict_write_failures = 0;
    std::size_t active_connections = 0;
  };

  /// Binds and listens on 127.0.0.1:<port>; throws TransportError.
  explicit TcpServer(const Config& config);
  ~TcpServer() override;

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// The bound port (resolves ephemeral requests).
  std::uint16_t port() const noexcept { return port_; }

  bool poll(std::vector<Envelope>& out,
            std::chrono::milliseconds timeout) override;

  /// Closes the listener and every connection, joins all threads.
  /// Idempotent; poll() reports exhaustion once the queue drains.
  void stop();

  Stats stats() const;

  /// Mux view: frames decoded, corrupt connections as decode errors,
  /// failed verdict writes as drops, reader back-pressure stalls.
  TransportCounters transport_counters() const override;

  /// The server-owned sample buffer pool every reader thread's decoder
  /// acquires from (and the consumer releases back to).
  const SampleBufferPool* buffer_pool() const override { return &pool_; }

 private:
  struct Connection;

  void accept_loop();
  void reader_loop(const std::shared_ptr<Connection>& connection);
  void reap_finished_connections();

  Config config_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  RingTransport queue_;
  /// Server-local sample buffer recycling: reader decoders acquire
  /// here, poll() stamps each Envelope with the provenance, dispatch
  /// releases back. Keeps the hot acquire/release cycle off the
  /// process-global pool's shared free list.
  SampleBufferPool pool_;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};

  mutable std::mutex connections_mutex_;
  std::vector<std::shared_ptr<Connection>> connections_;

  std::atomic<std::uint64_t> connections_accepted_{0};
  std::atomic<std::uint64_t> connections_dropped_{0};
  std::atomic<std::uint64_t> frames_{0};
  /// Shared with every Connection (a connection — held alive by
  /// undelivered Envelopes — can outlive the server).
  std::shared_ptr<std::atomic<std::uint64_t>> verdict_write_failures_ =
      std::make_shared<std::atomic<std::uint64_t>>(0);
};

/// Blocking client for one connection to a TcpServer (or any EFD-WIRE-V1
/// endpoint).
class TcpClient final : public MessageSender {
 public:
  /// Connects to host:port; throws TransportError.
  TcpClient(const std::string& host, std::uint16_t port);
  ~TcpClient() override;

  TcpClient(const TcpClient&) = delete;
  TcpClient& operator=(const TcpClient&) = delete;

  /// Encodes and writes one frame. Blocking write is the back-pressure
  /// path; throws TransportError on a broken connection.
  void send(Message message) override;

  /// Waits up to \p timeout for the next inbound message (verdicts).
  /// Returns false on timeout, EOF, or a decode error.
  bool receive(Message& out, std::chrono::milliseconds timeout);

  /// receive(), but distinguishing a quiet link from a dead one — the
  /// replication follower's liveness signal (its promote-grace clock
  /// starts at kClosed, not at an idle leader).
  enum class ReceiveStatus {
    kMessage,  ///< one message decoded into \p out
    kTimeout,  ///< no complete frame within \p timeout; link still up
    kClosed,   ///< EOF, socket error, or corrupt framing — link is dead
  };
  ReceiveStatus receive_status(Message& out, std::chrono::milliseconds timeout);

  /// Half-closes the write side so the server sees EOF after the last
  /// frame; receive() keeps working.
  void finish_sending();

 private:
  int fd_ = -1;
  std::mutex write_mutex_;
  FrameDecoder decoder_;
  std::vector<std::uint8_t> encode_buffer_;
};

}  // namespace efd::ingest
