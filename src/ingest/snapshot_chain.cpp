/// \file snapshot_chain.cpp
/// \brief Durable snapshot-chain file I/O (layout: snapshot_chain.hpp).

#include "ingest/snapshot_chain.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <system_error>

#include "core/online/service_snapshot.hpp"

namespace efd::ingest {

namespace {

/// errno as "what: strerror" for operator-facing error strings.
std::string errno_text(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

/// The directory holding \p path ("." for bare filenames).
std::string parent_dir(const std::string& path) {
  const auto parent = std::filesystem::path(path).parent_path();
  return parent.empty() ? std::string(".") : parent.string();
}

/// fsync on a directory fd makes the rename itself durable: without it
/// a power loss after rename can still resurrect the old directory
/// entry. Best-effort on filesystems that reject directory fsync.
void fsync_dir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

bool write_file_durable(const std::string& path, const void* data,
                        std::size_t size, std::string* error) {
  const std::string tmp = path + ".tmp";
  // O_TRUNC: a tmp leftover from a crashed writer is garbage by
  // definition (the rename never happened), so overwriting is correct.
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    if (error != nullptr) *error = errno_text("open tmp");
    return false;
  }
  const char* cursor = static_cast<const char*>(data);
  std::size_t left = size;
  while (left > 0) {
    const ssize_t wrote = ::write(fd, cursor, left);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      if (error != nullptr) *error = errno_text("write");
      ::close(fd);
      std::remove(tmp.c_str());
      return false;
    }
    cursor += wrote;
    left -= static_cast<std::size_t>(wrote);
  }
  // The fsync BEFORE the rename is the whole point: rename publishes
  // the file atomically, but only bytes already on the platter survive
  // a power loss — without this, the final path can hold a torn or
  // zero-length file.
  if (::fsync(fd) != 0) {
    if (error != nullptr) *error = errno_text("fsync");
    ::close(fd);
    std::remove(tmp.c_str());
    return false;
  }
  if (::close(fd) != 0) {
    if (error != nullptr) *error = errno_text("close");
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    if (error != nullptr) *error = errno_text("rename");
    std::remove(tmp.c_str());
    return false;
  }
  fsync_dir(parent_dir(path));
  return true;
}

std::string delta_path(const std::string& base_path,
                       std::uint64_t capture_id) {
  return base_path + ".delta." + std::to_string(capture_id);
}

std::vector<ChainFile> list_chain_deltas(const std::string& base_path) {
  std::vector<ChainFile> deltas;
  const std::string prefix =
      std::filesystem::path(base_path).filename().string() + ".delta.";
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(parent_dir(base_path), ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() <= prefix.size() || name.compare(0, prefix.size(), prefix)) {
      continue;
    }
    const std::string suffix = name.substr(prefix.size());
    if (suffix.find_first_not_of("0123456789") != std::string::npos) continue;
    ChainFile file;
    file.path = entry.path().string();
    try {
      file.capture_id = std::stoull(suffix);
    } catch (const std::exception&) {
      continue;  // out-of-range id: not ours
    }
    deltas.push_back(std::move(file));
  }
  std::sort(deltas.begin(), deltas.end(),
            [](const ChainFile& a, const ChainFile& b) {
              return a.capture_id < b.capture_id;
            });
  return deltas;
}

std::size_t remove_chain_deltas(const std::string& base_path) {
  std::size_t removed = 0;
  for (const ChainFile& file : list_chain_deltas(base_path)) {
    if (std::remove(file.path.c_str()) == 0) ++removed;
  }
  return removed;
}

std::optional<CaptureEnvelope> peek_capture_envelope(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  char magic[core::kSnapshotMagicBytes] = {};
  std::uint8_t envelope[1 + 8 + 8] = {};
  in.read(magic, sizeof(magic));
  in.read(reinterpret_cast<char*>(envelope), sizeof(envelope));
  if (!in || !std::equal(magic, magic + sizeof(magic), core::kSnapshotMagicV2)) {
    return std::nullopt;
  }
  CaptureEnvelope out;
  out.kind = static_cast<core::CaptureKind>(envelope[0]);
  for (int i = 0; i < 8; ++i) {
    out.capture_id |= static_cast<std::uint64_t>(envelope[1 + i]) << (8 * i);
    out.parent_id |= static_cast<std::uint64_t>(envelope[9 + i]) << (8 * i);
  }
  return out;
}

ChainRestoreResult restore_service_from_chain(
    core::RecognitionService& service, const std::string& base_path) {
  ChainRestoreResult result;

  std::ifstream base(base_path, std::ios::binary);
  if (!base) {
    throw core::SnapshotError("EFD-SNAP-V1: cannot open snapshot file " +
                              base_path);
  }
  char magic[core::kSnapshotMagicBytes] = {};
  base.read(magic, sizeof(magic));
  const bool v2 =
      base.gcount() == static_cast<std::streamsize>(sizeof(magic)) &&
      std::equal(magic, magic + sizeof(magic), core::kSnapshotMagicV2);
  base.clear();
  base.seekg(0);

  if (!v2) {
    // EFD-SNAP-V1 (or garbage — restore() throws loudly either way).
    result.info = service.restore(base);
    result.legacy_v1 = true;
    return result;
  }

  const auto deltas = list_chain_deltas(base_path);
  if (!deltas.empty()) {
    std::vector<std::ifstream> files;
    std::vector<std::istream*> parts;
    files.reserve(deltas.size());
    parts.reserve(deltas.size() + 1);
    parts.push_back(&base);
    bool open_failed = false;
    for (const ChainFile& file : deltas) {
      files.emplace_back(file.path, std::ios::binary);
      if (!files.back()) {
        open_failed = true;
        break;
      }
      parts.push_back(&files.back());
    }
    if (!open_failed) {
      try {
        result.info = service.restore_chain(parts);
        result.deltas_applied = deltas.size();
        result.last_capture_id = deltas.back().capture_id;
        return result;
      } catch (const core::SnapshotError& error) {
        result.fallback_error = error.what();
      }
    } else {
      result.fallback_error = "cannot open delta file";
    }
    result.deltas_discarded = deltas.size();
    base.clear();
    base.seekg(0);
  }

  // Base only — either there were no deltas, or the chain replay failed
  // and we fall back to the last complete base (the caller reports the
  // discard loudly). A base that fails HERE throws out: unreadable
  // snapshots must fail the boot, not silently start empty.
  std::istream* base_only[] = {&base};
  result.info = service.restore_chain(base_only);
  if (const auto envelope = peek_capture_envelope(base_path)) {
    result.last_capture_id = envelope->capture_id;
  }
  return result;
}

}  // namespace efd::ingest
