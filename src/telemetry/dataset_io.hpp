#pragma once
/// \file dataset_io.hpp
/// \brief CSV persistence for datasets, matching the long-format layout of
/// the Taxonomist artifact: one row per (execution, node, metric, second).
///
/// Layout:
///   execution_id,application,input_size,node_id,metric,second,value
///
/// The format is deliberately verbose but lossless and greppable; a 1000-
/// execution dataset is a few hundred MB uncompressed, which matches the
/// artifact's scale.

#include <iosfwd>
#include <string>

#include "telemetry/dataset.hpp"

namespace efd::telemetry {

/// Writes the dataset in long CSV format (with header row).
void write_csv(const Dataset& dataset, std::ostream& out);

/// Writes to a file; throws std::runtime_error on I/O failure.
void write_csv_file(const Dataset& dataset, const std::string& path);

/// Reads a long-format CSV produced by write_csv. Metric order follows
/// first appearance. Throws std::runtime_error on malformed input.
Dataset read_csv(std::istream& in);

/// Reads from a file; throws std::runtime_error on I/O failure.
Dataset read_csv_file(const std::string& path);

}  // namespace efd::telemetry
