#include "telemetry/dataset.hpp"

#include <algorithm>
#include <stdexcept>

namespace efd::telemetry {

std::size_t Dataset::metric_slot(std::string_view name) const {
  for (std::size_t i = 0; i < metric_names_.size(); ++i) {
    if (metric_names_[i] == name) return i;
  }
  throw std::out_of_range("dataset does not carry metric: " + std::string(name));
}

bool Dataset::has_metric(std::string_view name) const noexcept {
  return std::find(metric_names_.begin(), metric_names_.end(), name) !=
         metric_names_.end();
}

void Dataset::add(ExecutionRecord record) {
  if (record.node_count() > 0 && record.metric_count() != metric_names_.size()) {
    throw std::invalid_argument(
        "record metric count does not match dataset metric list");
  }
  records_.push_back(std::move(record));
}

std::vector<std::string> Dataset::applications() const {
  std::set<std::string> unique;
  for (const auto& record : records_) unique.insert(record.label().application);
  return {unique.begin(), unique.end()};
}

std::vector<std::string> Dataset::input_sizes() const {
  std::set<std::string> unique;
  for (const auto& record : records_) unique.insert(record.label().input_size);
  return {unique.begin(), unique.end()};
}

std::vector<std::string> Dataset::full_labels() const {
  std::set<std::string> unique;
  for (const auto& record : records_) unique.insert(record.label().full());
  return {unique.begin(), unique.end()};
}

std::vector<std::size_t> Dataset::select(
    const std::function<bool(const ExecutionRecord&)>& predicate) const {
  std::vector<std::size_t> indices;
  for (std::size_t i = 0; i < records_.size(); ++i) {
    if (predicate(records_[i])) indices.push_back(i);
  }
  return indices;
}

Dataset Dataset::subset(const std::vector<std::size_t>& indices) const {
  Dataset out(metric_names_);
  out.reserve(indices.size());
  for (std::size_t index : indices) out.add(records_.at(index));
  return out;
}

Dataset Dataset::with_metrics(const std::vector<std::string>& names) const {
  std::vector<std::size_t> slots;
  slots.reserve(names.size());
  for (const auto& name : names) slots.push_back(metric_slot(name));

  Dataset out(names);
  out.reserve(records_.size());
  for (const auto& record : records_) {
    ExecutionRecord trimmed(record.id(), record.label(), record.node_count(),
                            names.size());
    for (std::size_t n = 0; n < record.node_count(); ++n) {
      for (std::size_t m = 0; m < slots.size(); ++m) {
        trimmed.series(n, m) = record.series(n, slots[m]);
      }
    }
    out.add(std::move(trimmed));
  }
  return out;
}

std::uint64_t Dataset::total_samples() const noexcept {
  std::uint64_t total = 0;
  for (const auto& record : records_) {
    for (const auto& node : record.nodes()) {
      for (const auto& series : node.per_metric) total += series.size();
    }
  }
  return total;
}

DatasetSummary summarize(const Dataset& dataset) {
  DatasetSummary summary;
  summary.executions = dataset.size();
  summary.applications = dataset.applications().size();
  summary.input_sizes = dataset.input_sizes().size();
  summary.metrics = dataset.metric_names().size();
  summary.samples = dataset.total_samples();
  double min_duration = dataset.empty() ? 0.0 : 1e300;
  for (const auto& record : dataset.records()) {
    min_duration = std::min(min_duration, record.min_duration_seconds());
  }
  summary.min_duration_seconds = dataset.empty() ? 0.0 : min_duration;
  return summary;
}

}  // namespace efd::telemetry
