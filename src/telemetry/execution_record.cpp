#include "telemetry/execution_record.hpp"

#include <algorithm>

namespace efd::telemetry {

ExecutionLabel parse_label(const std::string& full_label) {
  const std::size_t pos = full_label.rfind('_');
  if (pos == std::string::npos || pos == 0 || pos + 1 >= full_label.size()) {
    return ExecutionLabel{full_label, ""};
  }
  return ExecutionLabel{full_label.substr(0, pos), full_label.substr(pos + 1)};
}

ExecutionRecord::ExecutionRecord(std::uint64_t id, ExecutionLabel label,
                                 std::size_t node_count, std::size_t metric_count)
    : id_(id), label_(std::move(label)) {
  nodes_.resize(node_count);
  for (std::size_t n = 0; n < node_count; ++n) {
    nodes_[n].node_id = static_cast<std::uint32_t>(n);
    nodes_[n].per_metric.resize(metric_count, TimeSeries(1.0));
  }
}

double ExecutionRecord::min_duration_seconds() const noexcept {
  double shortest = nodes_.empty() ? 0.0 : 1e300;
  for (const NodeSeries& node : nodes_) {
    for (const TimeSeries& series : node.per_metric) {
      shortest = std::min(shortest, series.duration_seconds());
    }
  }
  return nodes_.empty() ? 0.0 : shortest;
}

bool ExecutionRecord::covers(Interval interval) const noexcept {
  for (const NodeSeries& node : nodes_) {
    for (const TimeSeries& series : node.per_metric) {
      if (!series.covers(interval)) return false;
    }
  }
  return !nodes_.empty();
}

}  // namespace efd::telemetry
