#include "telemetry/resample.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/stats.hpp"

namespace efd::telemetry {

TimeSeries downsample(const TimeSeries& series, std::size_t factor,
                      DownsampleMethod method) {
  if (factor == 0) throw std::invalid_argument("downsample factor must be >= 1");
  if (factor == 1) return series;

  TimeSeries out(series.period_seconds() * static_cast<double>(factor));
  out.reserve((series.size() + factor - 1) / factor);
  const auto samples = series.samples();
  for (std::size_t begin = 0; begin < samples.size(); begin += factor) {
    const std::size_t end = std::min(begin + factor, samples.size());
    const auto group = samples.subspan(begin, end - begin);
    switch (method) {
      case DownsampleMethod::kMean:
        out.push_back(util::mean(group));
        break;
      case DownsampleMethod::kFirst:
        out.push_back(group.front());
        break;
      case DownsampleMethod::kMax:
        out.push_back(util::max_value(group));
        break;
    }
  }
  return out;
}

ExecutionRecord downsample(const ExecutionRecord& record, std::size_t factor,
                           DownsampleMethod method) {
  ExecutionRecord out(record.id(), record.label(), record.node_count(),
                      record.metric_count());
  for (std::size_t n = 0; n < record.node_count(); ++n) {
    for (std::size_t m = 0; m < record.metric_count(); ++m) {
      out.series(n, m) = downsample(record.series(n, m), factor, method);
    }
  }
  return out;
}

Dataset downsample(const Dataset& dataset, std::size_t factor,
                   DownsampleMethod method) {
  Dataset out(dataset.metric_names());
  out.reserve(dataset.size());
  for (const auto& record : dataset.records()) {
    out.add(downsample(record, factor, method));
  }
  return out;
}

}  // namespace efd::telemetry
