#pragma once
/// \file resample.hpp
/// \brief Sampling-cadence transforms.
///
/// The paper's dataset is sampled at 1 Hz, but MODA deployments trade
/// monitoring overhead against fidelity by sampling more coarsely. These
/// helpers downsample series/records/datasets to a coarser period so the
/// cadence ablation can measure how much monitoring the EFD actually
/// needs (bench/ablation_sampling_period).

#include "telemetry/dataset.hpp"
#include "telemetry/time_series.hpp"

namespace efd::telemetry {

/// How sample groups are collapsed when downsampling.
enum class DownsampleMethod {
  kMean,   ///< average within each new period (LDMS-style aggregation)
  kFirst,  ///< take the first sample (pure decimation)
  kMax,    ///< retain peaks (useful for spike-sensitive counters)
};

/// Downsamples to \p factor times the original period (factor >= 1).
/// The last partial group is collapsed from the remaining samples.
/// Throws std::invalid_argument for factor == 0.
TimeSeries downsample(const TimeSeries& series, std::size_t factor,
                      DownsampleMethod method = DownsampleMethod::kMean);

/// Downsamples every series of a record.
ExecutionRecord downsample(const ExecutionRecord& record, std::size_t factor,
                           DownsampleMethod method = DownsampleMethod::kMean);

/// Downsamples every record of a dataset (metric axis unchanged).
Dataset downsample(const Dataset& dataset, std::size_t factor,
                   DownsampleMethod method = DownsampleMethod::kMean);

}  // namespace efd::telemetry
