#pragma once
/// \file time_series.hpp
/// \brief Regularly sampled time series plus the half-open time interval
/// type the fingerprint builder operates on.
///
/// All series in this project are sampled at a fixed period (1 Hz in the
/// paper's dataset), so a series is simply a start time, a period, and a
/// dense value vector — no per-sample timestamps are stored.

#include <cstddef>
#include <span>
#include <vector>

namespace efd::telemetry {

/// Half-open interval [begin, end) in seconds relative to execution start.
/// The paper's fingerprints use [60, 120).
struct Interval {
  int begin_seconds = 0;
  int end_seconds = 0;

  int length() const noexcept { return end_seconds - begin_seconds; }
  bool valid() const noexcept { return end_seconds > begin_seconds && begin_seconds >= 0; }
  bool operator==(const Interval&) const = default;
};

/// The interval used throughout the paper: 60 to 120 seconds after launch,
/// chosen to skip initialization-phase perturbations while still reporting
/// early in the execution.
inline constexpr Interval kPaperInterval{60, 120};

/// Fixed-period sampled series.
class TimeSeries {
 public:
  TimeSeries() = default;

  /// \param period_seconds sampling period (1 for the paper's dataset).
  explicit TimeSeries(double period_seconds) : period_(period_seconds) {}

  /// Constructs from existing samples.
  TimeSeries(std::vector<double> values, double period_seconds = 1.0)
      : values_(std::move(values)), period_(period_seconds) {}

  double period_seconds() const noexcept { return period_; }
  std::size_t size() const noexcept { return values_.size(); }
  bool empty() const noexcept { return values_.empty(); }

  /// Duration covered by the samples, in seconds.
  double duration_seconds() const noexcept {
    return static_cast<double>(values_.size()) * period_;
  }

  void reserve(std::size_t n) { values_.reserve(n); }
  void push_back(double value) { values_.push_back(value); }
  void clear() noexcept { values_.clear(); }

  double operator[](std::size_t i) const noexcept { return values_[i]; }
  double& operator[](std::size_t i) noexcept { return values_[i]; }

  std::span<const double> samples() const noexcept { return values_; }
  std::vector<double>& mutable_samples() noexcept { return values_; }

  /// Samples whose timestamps fall inside [interval.begin, interval.end).
  /// Clamped to the available range; may be empty if the series is shorter
  /// than the interval start.
  std::span<const double> window(Interval interval) const noexcept;

  /// Mean of the samples inside the interval; 0 if the window is empty.
  /// This is the statistical feature the paper fingerprints.
  double mean_over(Interval interval) const noexcept;

  /// True if the series fully covers the interval.
  bool covers(Interval interval) const noexcept;

 private:
  std::vector<double> values_;
  double period_ = 1.0;
};

}  // namespace efd::telemetry
