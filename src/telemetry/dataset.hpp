#pragma once
/// \file dataset.hpp
/// \brief A collection of labeled executions sharing one metric list — the
/// in-memory replica of the Taxonomist figshare artifact's shape.

#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "telemetry/execution_record.hpp"
#include "telemetry/metric_registry.hpp"

namespace efd::telemetry {

/// Labeled executions plus the (shared) list of metrics each record's
/// per-node series vectors are aligned with.
class Dataset {
 public:
  Dataset() = default;

  /// \param metric_names the metric axis; every record added must have one
  /// series per name per node, in this order.
  explicit Dataset(std::vector<std::string> metric_names)
      : metric_names_(std::move(metric_names)) {}

  const std::vector<std::string>& metric_names() const noexcept {
    return metric_names_;
  }

  /// Slot index of a metric name within this dataset; throws
  /// std::out_of_range if absent.
  std::size_t metric_slot(std::string_view name) const;

  /// True if the dataset carries the metric.
  bool has_metric(std::string_view name) const noexcept;

  std::size_t size() const noexcept { return records_.size(); }
  bool empty() const noexcept { return records_.empty(); }

  const ExecutionRecord& record(std::size_t index) const { return records_.at(index); }
  ExecutionRecord& record(std::size_t index) { return records_.at(index); }
  const std::vector<ExecutionRecord>& records() const noexcept { return records_; }

  /// Appends a record. The record's metric_count must match the dataset's
  /// metric list; throws std::invalid_argument otherwise.
  void add(ExecutionRecord record);

  /// Reserves storage for n records.
  void reserve(std::size_t n) { records_.reserve(n); }

  /// Distinct application names, sorted.
  std::vector<std::string> applications() const;

  /// Distinct input sizes, sorted.
  std::vector<std::string> input_sizes() const;

  /// Distinct full labels ("ft_X"), sorted.
  std::vector<std::string> full_labels() const;

  /// Indices of records matching a predicate.
  std::vector<std::size_t> select(
      const std::function<bool(const ExecutionRecord&)>& predicate) const;

  /// New dataset (same metric axis) containing copies of the selected records.
  Dataset subset(const std::vector<std::size_t>& indices) const;

  /// New dataset restricted to a subset of metrics (by name). Series data
  /// for the kept metrics is copied; throws if a name is absent.
  Dataset with_metrics(const std::vector<std::string>& names) const;

  /// Total sample count across all records/nodes/metrics (for reporting).
  std::uint64_t total_samples() const noexcept;

 private:
  std::vector<std::string> metric_names_;
  std::vector<ExecutionRecord> records_;
};

/// Summary counts used by the Table 2 bench and README examples.
struct DatasetSummary {
  std::size_t executions = 0;
  std::size_t applications = 0;
  std::size_t input_sizes = 0;
  std::size_t metrics = 0;
  std::uint64_t samples = 0;
  double min_duration_seconds = 0.0;
};

DatasetSummary summarize(const Dataset& dataset);

}  // namespace efd::telemetry
