#pragma once
/// \file metric_registry.hpp
/// \brief Catalog of system metrics, mirroring the LDMS metric sets used by
/// the Taxonomist dataset the paper evaluates on.
///
/// The published dataset carries 562 metrics drawn from /proc/vmstat,
/// /proc/meminfo, Cray Aries NIC counters ("metric_set_nic") and per-core
/// procstat. We register the same naming scheme: a compact set of
/// behaviour-modeled metrics (the ones the paper names in Tables 3 and 4,
/// plus enough others for realistic sweeps) and programmatically generated
/// filler metrics to reach the full catalog size.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace efd::telemetry {

/// Identifies a metric within a MetricRegistry. Stable for the lifetime of
/// the registry; also used to index per-execution series storage.
using MetricId = std::uint32_t;

/// Sentinel for "no such metric".
inline constexpr MetricId kInvalidMetric = 0xffffffffu;

/// Source group of a metric, mirroring LDMS sampler plugins.
enum class MetricGroup : std::uint8_t {
  kVmstat,    ///< /proc/vmstat counters (paged/mapped/anon pages, ...)
  kMeminfo,   ///< /proc/meminfo gauges (MemFree, Committed_AS, ...)
  kNic,       ///< Cray Aries network counters (AMO/PI packets, flits)
  kCpu,       ///< per-node aggregated procstat (user/sys/idle jiffies)
  kOther,     ///< filler metrics present in the catalog but not modeled
};

/// Returns the canonical suffix the dataset uses for a group
/// ("vmstat", "meminfo", "metric_set_nic", "procstat", "other").
std::string_view group_suffix(MetricGroup group) noexcept;

/// Static description of one metric.
struct MetricInfo {
  std::string name;        ///< full dataset name, e.g. "nr_mapped_vmstat"
  MetricGroup group;       ///< source sampler
  double typical_scale;    ///< order of magnitude of typical values
  bool modeled;            ///< true if the simulator produces app-specific
                           ///< behaviour for it (false => pure noise filler)
};

/// Immutable after construction; cheap to share by reference.
class MetricRegistry {
 public:
  /// Builds the default catalog: every metric the paper names, a few dozen
  /// additional modeled metrics, and filler up to \p catalog_size entries
  /// (562 matches the published dataset; the original system had 721).
  static MetricRegistry standard_catalog(std::size_t catalog_size = 562);

  /// Empty registry for incremental construction (tests).
  MetricRegistry() = default;

  /// Registers a metric; returns its id. Throws std::invalid_argument on
  /// duplicate names.
  MetricId add(MetricInfo info);

  /// Number of metrics.
  std::size_t size() const noexcept { return metrics_.size(); }

  /// Metric info by id. Precondition: id < size().
  const MetricInfo& info(MetricId id) const { return metrics_.at(id); }

  /// Name by id.
  const std::string& name(MetricId id) const { return metrics_.at(id).name; }

  /// Lookup by name; nullopt if unknown.
  std::optional<MetricId> find(std::string_view name) const;

  /// Lookup by name; throws std::out_of_range if unknown.
  MetricId require(std::string_view name) const;

  /// Ids of all metrics with app-specific modeled behaviour.
  std::vector<MetricId> modeled_metrics() const;

  /// Ids of all metrics in a group.
  std::vector<MetricId> metrics_in_group(MetricGroup group) const;

  /// All ids, in registration order.
  std::vector<MetricId> all_metrics() const;

 private:
  std::vector<MetricInfo> metrics_;
  std::unordered_map<std::string, MetricId> by_name_;
};

/// Names of the metrics the paper highlights (Table 3 order). These are
/// guaranteed to exist in the standard catalog.
const std::vector<std::string>& paper_table3_metrics();

/// The headline metric used throughout the paper (Tables 3-4, Figure 2).
inline constexpr std::string_view kHeadlineMetric = "nr_mapped_vmstat";

}  // namespace efd::telemetry
