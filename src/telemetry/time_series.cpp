#include "telemetry/time_series.hpp"

#include <algorithm>
#include <cmath>

#include "util/stats.hpp"

namespace efd::telemetry {

std::span<const double> TimeSeries::window(Interval interval) const noexcept {
  if (!interval.valid() || values_.empty() || period_ <= 0.0) return {};
  // Sample i has timestamp i * period_. Include samples with
  // begin <= t < end.
  const auto first = static_cast<std::size_t>(
      std::ceil(static_cast<double>(interval.begin_seconds) / period_));
  const auto last_exclusive = static_cast<std::size_t>(
      std::ceil(static_cast<double>(interval.end_seconds) / period_));
  if (first >= values_.size()) return {};
  const std::size_t end = std::min(last_exclusive, values_.size());
  if (end <= first) return {};
  return std::span<const double>(values_).subspan(first, end - first);
}

double TimeSeries::mean_over(Interval interval) const noexcept {
  return util::mean(window(interval));
}

bool TimeSeries::covers(Interval interval) const noexcept {
  if (!interval.valid() || period_ <= 0.0) return false;
  const auto last_exclusive = static_cast<std::size_t>(
      std::ceil(static_cast<double>(interval.end_seconds) / period_));
  return values_.size() >= last_exclusive;
}

}  // namespace efd::telemetry
