#include "telemetry/metric_registry.hpp"

#include <stdexcept>

namespace efd::telemetry {

std::string_view group_suffix(MetricGroup group) noexcept {
  switch (group) {
    case MetricGroup::kVmstat: return "vmstat";
    case MetricGroup::kMeminfo: return "meminfo";
    case MetricGroup::kNic: return "metric_set_nic";
    case MetricGroup::kCpu: return "procstat";
    case MetricGroup::kOther: return "other";
  }
  return "other";
}

MetricId MetricRegistry::add(MetricInfo info) {
  if (by_name_.count(info.name) > 0) {
    throw std::invalid_argument("duplicate metric name: " + info.name);
  }
  const MetricId id = static_cast<MetricId>(metrics_.size());
  by_name_.emplace(info.name, id);
  metrics_.push_back(std::move(info));
  return id;
}

std::optional<MetricId> MetricRegistry::find(std::string_view name) const {
  const auto it = by_name_.find(std::string(name));
  if (it == by_name_.end()) return std::nullopt;
  return it->second;
}

MetricId MetricRegistry::require(std::string_view name) const {
  const auto id = find(name);
  if (!id) throw std::out_of_range("unknown metric: " + std::string(name));
  return *id;
}

std::vector<MetricId> MetricRegistry::modeled_metrics() const {
  std::vector<MetricId> ids;
  for (MetricId id = 0; id < metrics_.size(); ++id) {
    if (metrics_[id].modeled) ids.push_back(id);
  }
  return ids;
}

std::vector<MetricId> MetricRegistry::metrics_in_group(MetricGroup group) const {
  std::vector<MetricId> ids;
  for (MetricId id = 0; id < metrics_.size(); ++id) {
    if (metrics_[id].group == group) ids.push_back(id);
  }
  return ids;
}

std::vector<MetricId> MetricRegistry::all_metrics() const {
  std::vector<MetricId> ids(metrics_.size());
  for (MetricId id = 0; id < metrics_.size(); ++id) ids[id] = id;
  return ids;
}

const std::vector<std::string>& paper_table3_metrics() {
  static const std::vector<std::string> names = {
      "nr_mapped_vmstat",
      "Committed_AS_meminfo",
      "nr_active_anon_vmstat",
      "nr_anon_pages_vmstat",
      "Active_meminfo",
      "Mapped_meminfo",
      "AnonPages_meminfo",
      "MemFree_meminfo",
      "PageTables_meminfo",
      "nr_page_table_pages_vmstat",
      "AMO_PKTS_metric_set_nic",
      "AMO_FLITS_metric_set_nic",
      "PI_PKTS_metric_set_nic",
  };
  return names;
}

MetricRegistry MetricRegistry::standard_catalog(std::size_t catalog_size) {
  MetricRegistry registry;

  // --- Metrics named in the paper (Tables 3 and 4), behaviour-modeled. ---
  // typical_scale reflects plausible magnitudes on a 64 GiB compute node.
  registry.add({"nr_mapped_vmstat", MetricGroup::kVmstat, 1e4, true});
  registry.add({"Committed_AS_meminfo", MetricGroup::kMeminfo, 1e7, true});
  registry.add({"nr_active_anon_vmstat", MetricGroup::kVmstat, 1e6, true});
  registry.add({"nr_anon_pages_vmstat", MetricGroup::kVmstat, 1e6, true});
  registry.add({"Active_meminfo", MetricGroup::kMeminfo, 1e7, true});
  registry.add({"Mapped_meminfo", MetricGroup::kMeminfo, 1e5, true});
  registry.add({"AnonPages_meminfo", MetricGroup::kMeminfo, 1e7, true});
  registry.add({"MemFree_meminfo", MetricGroup::kMeminfo, 1e7, true});
  registry.add({"PageTables_meminfo", MetricGroup::kMeminfo, 1e4, true});
  registry.add({"nr_page_table_pages_vmstat", MetricGroup::kVmstat, 1e4, true});
  registry.add({"AMO_PKTS_metric_set_nic", MetricGroup::kNic, 1e5, true});
  registry.add({"AMO_FLITS_metric_set_nic", MetricGroup::kNic, 1e5, true});
  registry.add({"PI_PKTS_metric_set_nic", MetricGroup::kNic, 1e6, true});

  // --- Additional modeled metrics for sweeps and multi-metric work. ---
  registry.add({"nr_inactive_anon_vmstat", MetricGroup::kVmstat, 1e5, true});
  registry.add({"nr_active_file_vmstat", MetricGroup::kVmstat, 1e5, true});
  registry.add({"nr_dirty_vmstat", MetricGroup::kVmstat, 1e3, true});
  registry.add({"nr_writeback_vmstat", MetricGroup::kVmstat, 1e2, true});
  registry.add({"pgfault_vmstat", MetricGroup::kVmstat, 1e5, true});
  registry.add({"pgmajfault_vmstat", MetricGroup::kVmstat, 1e1, true});
  registry.add({"Cached_meminfo", MetricGroup::kMeminfo, 1e6, true});
  registry.add({"Buffers_meminfo", MetricGroup::kMeminfo, 1e5, true});
  registry.add({"Slab_meminfo", MetricGroup::kMeminfo, 1e5, true});
  registry.add({"Shmem_meminfo", MetricGroup::kMeminfo, 1e4, true});
  registry.add({"PI_FLITS_metric_set_nic", MetricGroup::kNic, 1e6, true});
  registry.add({"BTE_PKTS_metric_set_nic", MetricGroup::kNic, 1e4, true});
  registry.add({"BTE_FLITS_metric_set_nic", MetricGroup::kNic, 1e4, true});
  registry.add({"RDMA_PKTS_metric_set_nic", MetricGroup::kNic, 1e5, true});
  registry.add({"user_procstat", MetricGroup::kCpu, 1e2, true});
  registry.add({"sys_procstat", MetricGroup::kCpu, 1e1, true});
  registry.add({"idle_procstat", MetricGroup::kCpu, 1e2, true});
  registry.add({"iowait_procstat", MetricGroup::kCpu, 1e0, true});
  registry.add({"hwcntr_flops_procstat", MetricGroup::kCpu, 1e9, true});
  registry.add({"hwcntr_l3_misses_procstat", MetricGroup::kCpu, 1e7, true});

  // --- Filler metrics: present in the catalog, not behaviour-modeled. ---
  // Their simulated values are node-level background noise, so any
  // classifier that relies on them alone scores poorly (they populate the
  // long tail of Table 3).
  static const char* kFillerStems[] = {
      "nr_free_pages",      "nr_alloc_batch",   "nr_inactive_file",
      "nr_unevictable",     "nr_mlock",         "nr_file_pages",
      "nr_slab_reclaimable","nr_slab_unreclaimable", "nr_kernel_stack",
      "nr_unstable",        "nr_bounce",        "nr_vmscan_write",
      "nr_shmem",           "nr_dirtied",       "nr_written",
      "numa_hit",           "numa_miss",        "numa_foreign",
      "numa_local",         "numa_other",       "pgpgin",
      "pgpgout",            "pswpin",           "pswpout",
      "pgalloc_normal",     "pgfree",           "pgactivate",
      "pgdeactivate",       "pgrefill_normal",  "pgsteal_kswapd",
      "pgscan_kswapd",      "pgscan_direct",    "pginodesteal",
      "slabs_scanned",      "kswapd_inodesteal","pageoutrun",
      "allocstall",         "pgrotated",        "drop_pagecache",
      "drop_slab",          "thp_fault_alloc",  "thp_collapse_alloc",
      "thp_split",          "unevictable_pgs_culled", "workingset_refault",
  };
  std::size_t stem_index = 0;
  std::size_t variant = 0;
  const MetricGroup filler_groups[] = {MetricGroup::kVmstat, MetricGroup::kMeminfo,
                                       MetricGroup::kNic, MetricGroup::kCpu};
  while (registry.size() < catalog_size) {
    const char* stem = kFillerStems[stem_index % std::size(kFillerStems)];
    const MetricGroup group = filler_groups[variant % std::size(filler_groups)];
    std::string name = std::string(stem);
    if (variant > 0) name += "_" + std::to_string(variant);
    name += "_" + std::string(group_suffix(group));
    if (!registry.find(name)) {
      registry.add({std::move(name), group, 1e4, false});
    }
    ++stem_index;
    if (stem_index % std::size(kFillerStems) == 0) ++variant;
  }
  return registry;
}

}  // namespace efd::telemetry
