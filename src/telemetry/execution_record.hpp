#pragma once
/// \file execution_record.hpp
/// \brief Labeled telemetry of one application execution across its nodes.
///
/// An ExecutionRecord is the unit the paper's experiments split on: one
/// submission of one application with one input size, running on N nodes,
/// with a dense 1 Hz series per (node, metric). The metric axis is shared
/// across an entire Dataset (see dataset.hpp) so records store series in a
/// vector parallel to the dataset's metric list.

#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/metric_registry.hpp"
#include "telemetry/time_series.hpp"

namespace efd::telemetry {

/// Application identity: name plus input size ("ft" + "X" -> "ft_X").
/// Input experiments score correctness at the application-name level.
struct ExecutionLabel {
  std::string application;  ///< e.g. "ft", "miniAMR", "kripke"
  std::string input_size;   ///< e.g. "X", "Y", "Z", "L"

  /// Canonical combined label used as dictionary value ("ft_X").
  std::string full() const { return application + "_" + input_size; }

  bool operator==(const ExecutionLabel&) const = default;
  auto operator<=>(const ExecutionLabel&) const = default;
};

/// Parses "ft_X" back into {application="ft", input_size="X"}. Application
/// names may themselves contain underscores; the input size is the final
/// component.
ExecutionLabel parse_label(const std::string& full_label);

/// Telemetry of one node within an execution: one series per metric, in
/// the order of the owning dataset's metric list.
struct NodeSeries {
  std::uint32_t node_id = 0;
  std::vector<TimeSeries> per_metric;
};

/// One labeled application execution.
class ExecutionRecord {
 public:
  ExecutionRecord() = default;
  ExecutionRecord(std::uint64_t id, ExecutionLabel label, std::size_t node_count,
                  std::size_t metric_count);

  std::uint64_t id() const noexcept { return id_; }
  const ExecutionLabel& label() const noexcept { return label_; }
  void set_label(ExecutionLabel label) { label_ = std::move(label); }

  std::size_t node_count() const noexcept { return nodes_.size(); }
  std::size_t metric_count() const noexcept {
    return nodes_.empty() ? 0 : nodes_.front().per_metric.size();
  }

  const NodeSeries& node(std::size_t index) const { return nodes_.at(index); }
  NodeSeries& node(std::size_t index) { return nodes_.at(index); }
  const std::vector<NodeSeries>& nodes() const noexcept { return nodes_; }

  /// Series for (node, metric-slot). Slot indices are dataset metric-list
  /// positions, not registry MetricIds.
  const TimeSeries& series(std::size_t node_index, std::size_t metric_slot) const {
    return nodes_.at(node_index).per_metric.at(metric_slot);
  }
  TimeSeries& series(std::size_t node_index, std::size_t metric_slot) {
    return nodes_.at(node_index).per_metric.at(metric_slot);
  }

  /// Shortest series length across all (node, metric) pairs, in seconds.
  double min_duration_seconds() const noexcept;

  /// True if every (node, metric) series covers the interval.
  bool covers(Interval interval) const noexcept;

 private:
  std::uint64_t id_ = 0;
  ExecutionLabel label_;
  std::vector<NodeSeries> nodes_;
};

}  // namespace efd::telemetry
