#include "telemetry/dataset_io.hpp"

#include <fstream>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/csv.hpp"
#include "util/string_utils.hpp"

namespace efd::telemetry {

void write_csv(const Dataset& dataset, std::ostream& out) {
  util::CsvWriter writer(out);
  writer.write_row({"execution_id", "application", "input_size", "node_id",
                    "metric", "second", "value"});
  for (const auto& record : dataset.records()) {
    const std::string id = std::to_string(record.id());
    for (const auto& node : record.nodes()) {
      const std::string node_id = std::to_string(node.node_id);
      for (std::size_t m = 0; m < node.per_metric.size(); ++m) {
        const auto& metric = dataset.metric_names()[m];
        const auto& series = node.per_metric[m];
        for (std::size_t t = 0; t < series.size(); ++t) {
          writer.write_row({id, record.label().application,
                            record.label().input_size, node_id, metric,
                            std::to_string(t), util::format_mean(series[t])});
        }
      }
    }
  }
}

void write_csv_file(const Dataset& dataset, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  write_csv(dataset, out);
  if (!out) throw std::runtime_error("write failed: " + path);
}

Dataset read_csv(std::istream& in) {
  std::string line;
  if (!std::getline(in, line)) throw std::runtime_error("empty dataset CSV");
  const auto header = util::parse_csv_line(line);
  if (header.size() != 7 || header[0] != "execution_id") {
    throw std::runtime_error("unexpected dataset CSV header");
  }

  // First pass data structures keyed by execution id.
  struct PendingExecution {
    ExecutionLabel label;
    // (node_id, metric_slot) -> samples indexed by second.
    std::map<std::pair<std::uint32_t, std::size_t>, std::vector<double>> series;
    std::uint32_t max_node = 0;
  };
  std::map<std::uint64_t, PendingExecution> pending;
  std::vector<std::string> metric_names;
  std::map<std::string, std::size_t> metric_slots;

  std::size_t line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    const auto fields = util::parse_csv_line(line);
    if (fields.size() != 7) {
      throw std::runtime_error("bad dataset CSV row at line " +
                               std::to_string(line_number));
    }
    const auto exec_id = util::parse_int(fields[0]);
    const auto node_id = util::parse_int(fields[3]);
    const auto second = util::parse_int(fields[5]);
    const auto value = util::parse_double(fields[6]);
    if (!exec_id || !node_id || !second || !value) {
      throw std::runtime_error("unparsable dataset CSV row at line " +
                               std::to_string(line_number));
    }
    auto [slot_it, inserted] =
        metric_slots.emplace(fields[4], metric_names.size());
    if (inserted) metric_names.push_back(fields[4]);
    const std::size_t slot = slot_it->second;

    auto& exec = pending[static_cast<std::uint64_t>(*exec_id)];
    exec.label = ExecutionLabel{fields[1], fields[2]};
    exec.max_node = std::max(exec.max_node, static_cast<std::uint32_t>(*node_id));
    auto& samples =
        exec.series[{static_cast<std::uint32_t>(*node_id), slot}];
    const auto index = static_cast<std::size_t>(*second);
    if (samples.size() <= index) samples.resize(index + 1, 0.0);
    samples[index] = *value;
  }

  Dataset dataset(metric_names);
  dataset.reserve(pending.size());
  for (const auto& [exec_id, exec] : pending) {
    ExecutionRecord record(exec_id, exec.label, exec.max_node + 1,
                           metric_names.size());
    for (const auto& [key, samples] : exec.series) {
      record.series(key.first, key.second) = TimeSeries(samples, 1.0);
    }
    dataset.add(std::move(record));
  }
  return dataset;
}

Dataset read_csv_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open dataset CSV: " + path);
  return read_csv(in);
}

}  // namespace efd::telemetry
