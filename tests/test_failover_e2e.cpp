/// \file test_failover_e2e.cpp
/// \brief End-to-end durability and warm-standby failover through the
/// real efd_cli binary. Two flows:
///
///  1. Clean signal shutdown: `kill -TERM` on a serving process must
///     drain, write a final snapshot, and exit 0 — and a `--restore`
///     restart from that snapshot must replay to full verdict parity.
///  2. Leader/standby failover: a leader with --allow-followers streams
///     its base+delta capture chain to a `--follow` standby; the leader
///     is hard-killed mid-replay (--die-after-snapshots: _Exit, no
///     cleanup), the standby is flipped live with `efd_cli promote`, and
///     finishing the replay against the promoted standby must produce
///     EXACTLY the verdict table of an uninterrupted baseline run.

#include <gtest/gtest.h>

#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "ingest/snapshot_chain.hpp"

namespace {

#ifndef EFD_CLI_PATH
#error "EFD_CLI_PATH must be defined by the build"
#endif

std::string cli() { return EFD_CLI_PATH; }

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + std::to_string(::getpid()) + "_" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::pair<int, std::string> run(const std::string& command_line) {
  const std::string out_file = temp_path("failover_stdout.txt");
  const int status =
      std::system((command_line + " > " + out_file + " 2>&1").c_str());
  const std::string output = slurp(out_file);
  std::remove(out_file.c_str());
  return {status, output};
}

/// Launches a command in the background; pid lands in \p pid_file.
void spawn(const std::string& command_line, const std::string& out_file,
           const std::string& pid_file) {
  const std::string full = command_line + " > " + out_file +
                           " 2>&1 & echo $! > " + pid_file;
  ASSERT_EQ(std::system(full.c_str()), 0) << full;
}

/// spawn(), plus the command's EXIT CODE lands in \p exit_file once it
/// finishes — the SIGTERM test must prove the server exited 0, not just
/// that it died.
void spawn_with_exit_code(const std::string& command_line,
                          const std::string& out_file,
                          const std::string& pid_file,
                          const std::string& exit_file) {
  const std::string full = "{ " + command_line + " > " + out_file +
                           " 2>&1 & echo $! > " + pid_file + "; wait $(cat " +
                           pid_file + "); echo $? > " + exit_file + "; } &";
  ASSERT_EQ(std::system(full.c_str()), 0) << full;
}

long read_pid(const std::string& pid_file) {
  std::ifstream in(pid_file);
  long pid = 0;
  in >> pid;
  return pid;
}

bool process_alive(long pid) { return pid > 1 && ::kill(pid, 0) == 0; }

/// Waits (up to ~30 s) for the pid to exit; SIGKILLs it on timeout.
void await_exit(long pid) {
  for (int attempt = 0; attempt < 300; ++attempt) {
    if (!process_alive(pid)) return;
    ::usleep(100 * 1000);
  }
  if (pid > 1) ::kill(static_cast<pid_t>(pid), SIGKILL);
}

/// Scrapes "listening on port N" out of a growing server log.
int await_port(const std::string& out_file) {
  for (int attempt = 0; attempt < 100; ++attempt) {
    std::ifstream in(out_file);
    std::string line;
    while (std::getline(in, line)) {
      const auto at = line.find("listening on port ");
      if (at != std::string::npos) return std::atoi(line.c_str() + at + 18);
    }
    ::usleep(100 * 1000);
  }
  return 0;
}

/// Waits (up to ~30 s) for a file to exist and be non-empty.
bool await_file(const std::string& path) {
  for (int attempt = 0; attempt < 300; ++attempt) {
    std::ifstream in(path, std::ios::binary);
    if (in.good() && in.peek() != std::ifstream::traits_type::eof()) {
      return true;
    }
    ::usleep(100 * 1000);
  }
  return false;
}

/// Waits (up to ~30 s) for \p needle to appear in a growing log file.
bool await_log_line(const std::string& out_file, const std::string& needle) {
  for (int attempt = 0; attempt < 300; ++attempt) {
    if (slurp(out_file).find(needle) != std::string::npos) return true;
    ::usleep(100 * 1000);
  }
  return false;
}

/// The verdict rows of a replay table: "| <execution id> | truth |
/// prediction | ..." lines. Sorted, so two replays compare independent
/// of arrival order.
std::vector<std::string> verdict_rows(const std::string& output) {
  std::vector<std::string> rows;
  std::stringstream in(output);
  std::string line;
  while (std::getline(in, line)) {
    if (line.size() < 3 || line[0] != '|') continue;
    const auto first = line.find_first_not_of(" |");
    if (first == std::string::npos || !std::isdigit(line[first])) continue;
    rows.push_back(line);
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

struct ServeGuard {
  std::string pid_file;
  ~ServeGuard() {
    const long pid = read_pid(pid_file);
    if (pid > 1) ::kill(static_cast<pid_t>(pid), SIGTERM);
    std::remove(pid_file.c_str());
  }
};

void copy_file(const std::string& from, const std::string& to) {
  std::ifstream src(from, std::ios::binary);
  std::ofstream dst(to, std::ios::binary);
  dst << src.rdbuf();
}

class FailoverE2e : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data_path_ = new std::string(temp_path("failover_history.csv"));
    dict_path_ = new std::string(temp_path("failover_apps.efd"));
    const auto [gen_status, gen_output] =
        run(cli() + " generate --out " + *data_path_ +
            " --repetitions 2 --no-large --seed 42");
    ASSERT_EQ(gen_status, 0) << gen_output;
    const auto [train_status, train_output] =
        run(cli() + " train --data " + *data_path_ + " --out " + *dict_path_);
    ASSERT_EQ(train_status, 0) << train_output;
  }

  static void TearDownTestSuite() {
    std::remove(data_path_->c_str());
    std::remove(dict_path_->c_str());
    delete data_path_;
    delete dict_path_;
  }

  /// One uninterrupted serve + full replay: the parity reference. The
  /// server runs without --max-jobs (a server that exits the moment the
  /// 66th verdict is WRITTEN can close the socket while the client is
  /// still streaming its tail samples — "connection lost while
  /// sending"); the replay exits on its own once it holds every
  /// verdict, and the server is then drained with SIGTERM.
  static std::string baseline_replay() {
    const std::string base_out = temp_path("failover_base_serve.txt");
    const std::string base_pid = temp_path("failover_base_pid.txt");
    spawn(cli() + " serve --dict " + *dict_path_ + " --quiet", base_out,
          base_pid);
    ServeGuard guard{base_pid};
    const int port = await_port(base_out);
    EXPECT_GT(port, 0) << slurp(base_out);
    const auto [status, output] = run(cli() + " replay --data " + *data_path_ +
                                      " --port " + std::to_string(port));
    EXPECT_EQ(status, 0) << output;
    const long pid = read_pid(base_pid);
    if (pid > 1) ::kill(static_cast<pid_t>(pid), SIGTERM);
    await_exit(pid);
    std::remove(base_out.c_str());
    return output;
  }

  static constexpr int kJobs = 66;  // 11 applications x 3 inputs x 2 reps
  static std::string* data_path_;
  static std::string* dict_path_;
};

std::string* FailoverE2e::data_path_ = nullptr;
std::string* FailoverE2e::dict_path_ = nullptr;

TEST_F(FailoverE2e, SigtermDrainsWritesFinalSnapshotAndExitsZero) {
  const std::string snapshot_path = temp_path("sigterm_snapshot.efds");
  const std::string serve_out = temp_path("sigterm_serve.txt");
  const std::string serve_pid = temp_path("sigterm_pid.txt");
  const std::string serve_exit = temp_path("sigterm_exit.txt");
  const std::string replay_out = temp_path("sigterm_replay.txt");
  const std::string replay_pid = temp_path("sigterm_replay_pid.txt");

  // No --max-jobs exit: SIGTERM is the ONLY way this server stops, so
  // the 0 exit code below can't come from a normal wind-down.
  spawn_with_exit_code(cli() + " serve --dict " + *dict_path_ +
                           " --snapshot-path " + snapshot_path +
                           " --snapshot-every 2 --quiet",
                       serve_out, serve_pid, serve_exit);
  ServeGuard guard{serve_pid};
  const int port = await_port(serve_out);
  ASSERT_GT(port, 0) << slurp(serve_out);

  // Replay in the background — paced, so the TERM lands mid-stream —
  // and interrupt the server once at least one snapshot landed (every
  // 2 verdicts).
  spawn(cli() + " replay --data " + *data_path_ + " --port " +
            std::to_string(port) + " --pace-us 300",
        replay_out, replay_pid);
  ServeGuard replay_guard{replay_pid};
  ASSERT_TRUE(await_file(snapshot_path)) << slurp(serve_out);

  const long pid = read_pid(serve_pid);
  ASSERT_GT(pid, 1);
  ASSERT_EQ(::kill(static_cast<pid_t>(pid), SIGTERM), 0);
  await_exit(pid);
  await_exit(read_pid(replay_pid));  // its connection died with the server

  // Exit code 0 — a drain, not a crash — and the summary was printed.
  ASSERT_TRUE(await_file(serve_exit));
  EXPECT_EQ(slurp(serve_exit).substr(0, 1), "0") << slurp(serve_out);
  EXPECT_NE(slurp(serve_out).find("served "), std::string::npos)
      << slurp(serve_out);

  // The final snapshot is restorable: a --restore restart serves the
  // full replay to completion.
  const std::string restore_out = temp_path("sigterm_restore.txt");
  const std::string restore_pid = temp_path("sigterm_restore_pid.txt");
  spawn(cli() + " serve --dict " + *dict_path_ + " --snapshot-path " +
            snapshot_path + " --snapshot-every 16 --restore --quiet",
        restore_out, restore_pid);
  ServeGuard restore_guard{restore_pid};
  const int restore_port = await_port(restore_out);
  ASSERT_GT(restore_port, 0) << slurp(restore_out);
  const auto [status, output] = run(cli() + " replay --data " + *data_path_ +
                                    " --port " + std::to_string(restore_port));
  ASSERT_EQ(status, 0) << output;
  EXPECT_NE(output.find(std::to_string(kJobs) + "/" + std::to_string(kJobs) +
                        " correct"),
            std::string::npos)
      << output;
  const long restore_srv = read_pid(restore_pid);
  if (restore_srv > 1) ::kill(static_cast<pid_t>(restore_srv), SIGTERM);
  await_exit(restore_srv);

  efd::ingest::remove_chain_deltas(snapshot_path);
  std::remove(snapshot_path.c_str());
  std::remove(serve_out.c_str());
  std::remove(serve_exit.c_str());
  std::remove(replay_out.c_str());
  std::remove(restore_out.c_str());
}

TEST_F(FailoverE2e, PromotedStandbyFinishesReplayWithExactVerdictParity) {
  const std::string baseline = baseline_replay();
  ASSERT_EQ(verdict_rows(baseline).size(), static_cast<std::size_t>(kJobs))
      << baseline;

  // ---- Leader: replicates its chain, hard-dies after 4 captures. ----
  const std::string leader_snap = temp_path("failover_leader.efds");
  const std::string leader_out = temp_path("failover_leader.txt");
  const std::string leader_pid = temp_path("failover_leader_pid.txt");
  spawn(cli() + " serve --dict " + *dict_path_ + " --max-jobs " +
            std::to_string(kJobs) + " --snapshot-path " + leader_snap +
            " --snapshot-every 2 --allow-followers --die-after-snapshots 4" +
            " --quiet",
        leader_out, leader_pid);
  ServeGuard leader_guard{leader_pid};
  const int leader_port = await_port(leader_out);
  ASSERT_GT(leader_port, 0) << slurp(leader_out);

  // ---- Standby: follows the leader, persists its own local chain. ----
  const std::string standby_snap = temp_path("failover_standby.efds");
  const std::string standby_out = temp_path("failover_standby.txt");
  const std::string standby_pid = temp_path("failover_standby_pid.txt");
  spawn(cli() + " serve --dict " + *dict_path_ + " --snapshot-path " +
            standby_snap + " --snapshot-every 16 --follow 127.0.0.1:" +
            std::to_string(leader_port),
        standby_out, standby_pid);
  ServeGuard standby_guard{standby_pid};
  const int standby_port = await_port(standby_out);
  ASSERT_GT(standby_port, 0) << slurp(standby_out);
  ASSERT_TRUE(await_log_line(standby_out, "connected to leader"))
      << slurp(standby_out);

  // ---- Kill the leader mid-replay (it _Exits after 4 captures). ----
  // Paced: an unpaced replay delivers its verdicts in a handful of
  // poll-loop bursts, so the every-2-verdicts cadence fires fewer than
  // 4 times before --max-jobs winds the leader down normally and the
  // crash never happens.
  const std::string replay_out = temp_path("failover_replay.txt");
  const std::string replay_pid = temp_path("failover_replay_pid.txt");
  spawn(cli() + " replay --data " + *data_path_ + " --port " +
            std::to_string(leader_port) + " --pace-us 300",
        replay_out, replay_pid);
  ServeGuard replay_guard{replay_pid};
  await_exit(read_pid(leader_pid));
  await_exit(read_pid(replay_pid));
  EXPECT_NE(slurp(leader_out).find("fault-injection: simulated crash"),
            std::string::npos)
      << slurp(leader_out);

  // The standby must hold a replicated local base by now.
  ASSERT_TRUE(await_file(standby_snap)) << slurp(standby_out);

  // Preserve the replicated delta chain for CI artifact upload before
  // the promotion below starts rebasing it.
  if (const char* artifact_dir = std::getenv("EFD_SNAPSHOT_ARTIFACT_DIR")) {
    copy_file(standby_snap, std::string(artifact_dir) + "/standby-base.efds");
    for (const efd::ingest::ChainFile& delta :
         efd::ingest::list_chain_deltas(standby_snap)) {
      copy_file(delta.path, std::string(artifact_dir) + "/standby-delta." +
                                std::to_string(delta.capture_id));
    }
  }

  // ---- Promote the standby and finish the replay against it. ----
  const auto [promote_status, promote_output] =
      run(cli() + " promote --port " + std::to_string(standby_port));
  ASSERT_EQ(promote_status, 0) << promote_output;
  EXPECT_NE(promote_output.find("promoted: standby will serve from capture"),
            std::string::npos)
      << promote_output;
  ASSERT_TRUE(await_log_line(standby_out, "promoted: serving"))
      << slurp(standby_out);

  const auto [status, output] = run(cli() + " replay --data " + *data_path_ +
                                    " --port " + std::to_string(standby_port));
  ASSERT_EQ(status, 0) << output;

  // Exact verdict parity with the uninterrupted baseline: same count,
  // same per-execution rows (truth, prediction, match counts).
  EXPECT_NE(output.find(std::to_string(kJobs) + "/" + std::to_string(kJobs) +
                        " correct"),
            std::string::npos)
      << output;
  EXPECT_EQ(verdict_rows(output), verdict_rows(baseline));

  // Drain the standby; its shutdown summary must account for the full
  // replay it served after promotion.
  const long standby_srv = read_pid(standby_pid);
  if (standby_srv > 1) ::kill(static_cast<pid_t>(standby_srv), SIGTERM);
  await_exit(standby_srv);
  EXPECT_NE(slurp(standby_out).find("served " + std::to_string(kJobs) +
                                    " verdicts"),
            std::string::npos)
      << slurp(standby_out);

  for (const std::string& path : {leader_snap, standby_snap}) {
    efd::ingest::remove_chain_deltas(path);
    std::remove(path.c_str());
  }
  for (const std::string& path :
       {leader_out, standby_out, replay_out}) {
    std::remove(path.c_str());
  }
}

}  // namespace
